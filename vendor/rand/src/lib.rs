//! Minimal API-compatible shim for `rand` 0.8.
//!
//! The build container has no network access to crates.io, so this vendored
//! crate provides the subset of the real API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given seed,
//! which is all the dataset generators and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A deterministic, seedable PRNG (xoshiro256++).
    ///
    /// The real `StdRng` is a ChaCha block cipher; this shim only promises
    /// determinism-per-seed and a uniform stream, which is what the
    /// workspace's generators and tests require.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A random number generator core (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable RNG (mirrors `rand::SeedableRng`; only `seed_from_u64` is
/// provided because that is the sole constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Create a generator deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(state: u64) -> Self {
        rngs::StdRng::from_u64_seed(state)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `lo..hi`. Panics if the range is empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Sample uniformly from `lo..=hi`. Panics if the range is empty.
    fn sample_in_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_in_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as u64) - (lo as u64);
                lo + (rng.next_u64() % span) as $t
            }

            fn sample_in_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as u64) - (lo as u64) + 1;
                if span == 0 {
                    // lo..=hi covers the whole u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }

            fn sample_in_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range {lo}..{hi}");
        lo + <f64 as Standard>::sample_standard(rng) * (hi - lo)
    }

    fn sample_in_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_in(rng, lo, hi)
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Convenience extension methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T: SampleUniform, RG: SampleRange<T>>(&mut self, range: RG) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let a_stream: Vec<u32> = (0..32).map(|_| a.gen_range(0..1 << 30)).collect();
        let c_stream: Vec<u32> = (0..32).map(|_| c.gen_range(0..1 << 30)).collect();
        assert_ne!(a_stream, c_stream);
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
