//! Minimal API-compatible shim for the `rustc-hash` crate.
//!
//! The build container has no network access to crates.io, so this vendored
//! crate provides the subset of the real API the workspace uses:
//! [`FxHasher`], [`FxHashMap`], [`FxHashSet`], [`FxBuildHasher`]. The hash
//! function is the same multiply-fold scheme as upstream `FxHasher` (a
//! non-cryptographic, DoS-unprotected hasher tuned for small keys).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The fast, non-cryptographic hasher used throughout rustc.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = self.hash.rotate_left(ROTATE).wrapping_mul(SEED) ^ word;
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));

        let s: FxHashSet<(u32, u32)> = [(1, 2), (3, 4), (1, 2)].into_iter().collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn distinct_keys_hash_differently() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let h = |k: u64| bh.hash_one(k);
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
    }
}
