//! Minimal API-compatible shim for `criterion` 0.5.
//!
//! The build container has no network access to crates.io, so this vendored
//! crate implements the subset of the real API the workspace's nine bench
//! targets use: [`Criterion::benchmark_group`], group knobs (`sample_size`,
//! `warm_up_time`, `measurement_time`), [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock loop: warm up for `warm_up_time`, then
//! run batches until `measurement_time` elapses and report the mean
//! time/iteration. There are no plots, no statistics, no saved baselines —
//! enough to smoke-run the benches and eyeball relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A two-part benchmark identifier (`function_id/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the nominal sample count (accepted for API compatibility; the
    /// shim times by wall clock, not sample count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set how long to warm up before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Set how long to measure.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.warm_up_time, self.measurement_time);
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher {
            warm_up_time,
            measurement_time,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Time a closure: warm up, then run batches until the measurement
    /// window closes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also calibrates a batch size of roughly 1ms.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            warm_iters += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((0.001 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let mut iters: u64 = 0;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn report(&self, group: &str, id: &str) {
        if self.iters == 0 {
            println!("{group}/{id}: no measurement (Bencher::iter never called)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if ns < 1_000.0 {
            (ns, "ns")
        } else if ns < 1_000_000.0 {
            (ns / 1_000.0, "µs")
        } else if ns < 1_000_000_000.0 {
            (ns / 1_000_000.0, "ms")
        } else {
            (ns / 1_000_000_000.0, "s")
        };
        println!(
            "{group}/{id}: {value:.3} {unit}/iter ({} iters)",
            self.iters
        );
    }
}

/// Define a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Mirror libtest's `--bench`/filter args being ignored gracefully.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_round_trips() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = false;
        group.bench_function(BenchmarkId::new("id", "param"), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.bench_with_input(BenchmarkId::new("id2", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert!(ran);
    }
}
