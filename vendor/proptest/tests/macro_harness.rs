//! Self-tests for the `proptest!` macro harness.
//!
//! The workspace's property suites rely on this shim actually *running*
//! test bodies, so these tests pin the non-vacuousness of the runner:
//! bodies execute the configured number of times, `prop_assume!` rejects
//! without failing, and a violated property panics.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

static BODY_RUNS: AtomicU32 = AtomicU32::new(0);
static ASSUME_PASSES: AtomicU32 = AtomicU32::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bodies_actually_execute(x in 0u32..100, y in 0usize..5) {
        BODY_RUNS.fetch_add(1, Ordering::SeqCst);
        prop_assert!(x < 100);
        prop_assert!(y < 5);
    }

    #[test]
    fn assume_filters_without_failing(x in 0u32..100) {
        prop_assume!(x % 2 == 0);
        ASSUME_PASSES.fetch_add(1, Ordering::SeqCst);
        prop_assert_eq!(x % 2, 0);
    }

    #[test]
    fn tuples_vecs_and_oneof_compose(
        pairs in prop::collection::vec((0u32..8, 0u32..8), 0..20),
        tag in prop_oneof![Just("left"), prop::sample::select(vec!["mid", "right"])],
    ) {
        prop_assert!(pairs.len() < 20);
        prop_assert!(pairs.iter().all(|&(a, b)| a < 8 && b < 8));
        prop_assert!(matches!(tag, "left" | "mid" | "right"));
    }
}

/// Runs after the whole binary's proptest fns in this process have been
/// spawned by libtest; ordering between tests is not guaranteed, so this
/// only checks the counters once the counted tests must have finished.
#[test]
fn harness_ran_the_configured_case_count() {
    // Force deterministic ordering: call the generated fns directly.
    // (libtest also runs them; the counters only grow, so >= is the bound.)
    bodies_actually_execute();
    assume_filters_without_failing();
    assert!(
        BODY_RUNS.load(Ordering::SeqCst) >= 40,
        "proptest bodies ran {} times, expected >= 40",
        BODY_RUNS.load(Ordering::SeqCst)
    );
    assert!(
        ASSUME_PASSES.load(Ordering::SeqCst) >= 40,
        "prop_assume-passing bodies ran {} times, expected >= 40",
        ASSUME_PASSES.load(Ordering::SeqCst)
    );
}

#[test]
#[should_panic(expected = "failed at case")]
fn violated_property_panics() {
    proptest! {
        fn inner_always_fails(x in 0u32..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }
    inner_always_fails();
}

#[test]
#[should_panic(expected = "too many rejected cases")]
fn unsatisfiable_assume_panics() {
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        fn inner_never_satisfied(x in 0u32..10) {
            prop_assume!(x > 100);
        }
    }
    inner_never_satisfied();
}
