//! Minimal API-compatible shim for `proptest` 1.x.
//!
//! The build container has no network access to crates.io, so this vendored
//! crate implements the subset of proptest the workspace's property tests
//! use: the [`strategy::Strategy`] trait (`prop_map`, `prop_recursive`, `boxed`),
//! range/tuple/`Just`/`select`/`vec` strategies, the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//! `prop_assume!` macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failing case reports the failure message only;
//! * generation is seeded deterministically per test (stable across runs);
//! * rejection via `prop_assume!` retries up to a fixed multiple of the
//!   configured case count.

pub mod strategy;
pub mod test_runner;

/// `proptest::prelude` — everything the tests import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The `prop` module tree (`prop::collection`, `prop::sample`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::collection_vec as vec;
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::sample_select as select;
    }
}

/// The `proptest!` macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::seeded_rng(stringify!($name));
            let mut cases_run: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(20).max(100);
            while cases_run < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest '{}': too many rejected cases ({} attempts for {} cases)",
                        stringify!($name), attempts, config.cases,
                    );
                }
                #[allow(unused_parens)]
                let ($($pat),+) = (
                    $($crate::strategy::Strategy::new_value(&($strat), &mut rng)),+
                );
                let outcome: $crate::test_runner::TestCaseResult =
                    (move || -> $crate::test_runner::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                match outcome {
                    Ok(()) => cases_run += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name), cases_run, msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
