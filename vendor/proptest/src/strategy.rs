//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically produces values from an RNG. Unlike real
//! proptest there is no value tree and no shrinking: `new_value` returns the
//! final value directly.

use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// A source of generated values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into composite values, up to `depth` levels.
    ///
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility but unused — depth alone bounds recursion here.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), branch(strat).boxed()]).boxed();
        }
        strat
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among several strategies of the same value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }
}

/// Integer ranges are strategies: `0..n` samples uniformly from the range.
impl<T: SampleUniform + 'static> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// `prop::collection::vec(element, size_range)`.
pub fn collection_vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// The result of [`collection_vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `prop::sample::select(options)` — pick one of the given values.
pub fn sample_select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// The result of [`sample_select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_vecs_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = collection_vec((0u32..10, 0usize..3), 2..8);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((2..8).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 10);
                assert!(b < 3);
            }
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }
        let leaf = (0u32..5).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(4, 32, 3, |inner| {
            collection_vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_node = false;
        for _ in 0..200 {
            if matches!(strat.new_value(&mut rng), Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node, "recursion never produced a composite value");
    }

    #[test]
    fn map_and_select() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = sample_select(vec!["a", "bb"]).prop_map(str::len);
        for _ in 0..20 {
            let n = strat.new_value(&mut rng);
            assert!(n == 1 || n == 2);
        }
    }
}
