//! Test-runner types: configuration, case errors, deterministic seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — retried, not a failure.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test RNG: the seed is derived from the test name so
/// every run regenerates the identical case sequence (no shrinking exists
/// in this shim, so reproducibility is the debugging story).
pub fn seeded_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}
