//! Integration: engine snapshots warm-restart the serving state.
//!
//! The acceptance bar for the serving layer: after `save` → (process
//! death) → `load`, the first query over the restored engine is answered
//! from a **`Fresh`** cache entry — zero misses, zero stale refreshes,
//! zero rebuilds — i.e. neither Tarjan nor the closure sweep runs again.

use rtc_rpq::core::{snapshot, Engine, EngineConfig, Strategy};
use rtc_rpq::graph::{fixtures::paper_graph, GraphDelta};
use rtc_rpq::prelude::*;
use rtc_rpq::server::session::{Session, Status};

#[test]
fn warm_restart_answers_from_fresh_cache() {
    // A serving session: several queries sharing two closure bodies, plus
    // an online delta, all through one long-lived engine.
    let mut engine = Engine::new_dynamic(paper_graph());
    let queries = [
        Regex::parse("(b.c)+").unwrap(),
        Regex::parse("d.(b.c)+.c").unwrap(),
        Regex::parse("c.(a.b)+.b").unwrap(),
    ];
    let before: Vec<PairSet> = queries
        .iter()
        .map(|q| engine.evaluate(q).unwrap())
        .collect();
    let mut delta = GraphDelta::new();
    delta.insert(6, "b", 8).insert(8, "c", 6);
    engine.apply_delta(&delta);
    let after: Vec<PairSet> = queries
        .iter()
        .map(|q| engine.evaluate(q).unwrap())
        .collect();
    assert_ne!(before[0], after[0], "delta must change (b.c)+ results");
    assert_eq!(engine.epoch(), 1);
    assert_eq!(engine.cache().rtc_count(), 2); // b·c and a·b

    let mut bytes = Vec::new();
    snapshot::write_snapshot(&engine, &mut bytes).unwrap();

    // "Restart": a brand-new engine from the snapshot alone.
    let mut warm = snapshot::read_snapshot(&bytes[..], EngineConfig::default()).unwrap();
    assert_eq!(warm.epoch(), 1);
    assert_eq!(warm.cache().rtc_count(), 2);

    let restored: Vec<PairSet> = queries.iter().map(|q| warm.evaluate(q).unwrap()).collect();
    assert_eq!(restored, after, "warm engine must answer identically");
    // The Fresh-hit criterion: nothing was recomputed.
    assert_eq!(warm.cache().misses(), 0, "a miss means an RTC was rebuilt");
    assert_eq!(
        warm.cache().stale_hits(),
        0,
        "a stale hit means a refresh ran"
    );
    assert!(warm.cache().hits() >= 2);
    let m = warm.maintenance_metrics();
    assert_eq!(m.rebuild_refreshes, 0);
    assert_eq!(m.incremental_refreshes, 0);

    // The warm engine is a full citizen: later deltas stale + refresh.
    let mut delta = GraphDelta::new();
    delta.delete(6, "b", 8);
    warm.apply_delta(&delta);
    let reverted = warm.evaluate(&queries[0]).unwrap();
    assert_eq!(reverted, before[0]);
}

#[test]
fn warm_restart_matches_cold_engine_for_all_strategies() {
    for strategy in Strategy::ALL {
        let config = EngineConfig {
            strategy,
            ..EngineConfig::default()
        };
        let engine = Engine::with_config_versioned(
            rtc_rpq::graph::VersionedGraph::new(paper_graph()),
            config,
        );
        let q = Regex::parse("d.(b.c)+.c").unwrap();
        let expected = engine.evaluate(&q).unwrap();

        let mut bytes = Vec::new();
        snapshot::write_snapshot(&engine, &mut bytes).unwrap();
        let warm = snapshot::read_snapshot(&bytes[..], config).unwrap();
        assert_eq!(warm.evaluate(&q).unwrap(), expected, "{strategy}");
        if strategy != Strategy::NoSharing {
            assert_eq!(warm.cache().misses(), 0, "{strategy}");
        }
    }
}

#[test]
fn serving_session_snapshot_flow() {
    // The same flow through the serving front-end's command language.
    let dir = std::env::temp_dir().join("rtc_rpq_warm_restart_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flow.snap");
    let path_str = path.to_str().unwrap();

    let mut session = Session::new();
    session.execute("gen paper").unwrap();
    session.execute("query d.(b.c)+.c").unwrap();
    session.execute("delta ins 6 b 8 ins 8 c 6").unwrap();
    session.execute("query d.(b.c)+.c").unwrap(); // refreshes at epoch 1
    let saved = session.execute(&format!("save {path_str}")).unwrap();
    assert!(matches!(saved.status, Status::Ok(_)), "{saved:?}");

    let mut restarted = Session::new();
    let loaded = restarted.execute(&format!("load {path_str}")).unwrap();
    match &loaded.status {
        Status::Ok(m) => assert!(m.starts_with("warm restart"), "{m}"),
        Status::Err(e) => panic!("load failed: {e}"),
    }
    restarted.execute("query d.(b.c)+.c").unwrap();
    assert_eq!(restarted.engine().cache().misses(), 0);
    assert!(restarted.engine().cache().hits() >= 1);
    assert_eq!(restarted.engine().epoch(), 1);
    std::fs::remove_file(&path).ok();
}
