//! TABLE IV as a test: the generated datasets must carry the statistics
//! the paper's table records (within the documented power-of-two padding
//! of the R-MAT vertex grid).

mod common;

use rtc_rpq::datasets::rmat::{rmat_n_scaled, RmatConfig};
use rtc_rpq::datasets::surrogate::{self, SPECS};
use rtc_rpq::datasets::{rmat_graph, workload};
use rtc_rpq::graph::metrics::{out_degree_distribution, reciprocity, scc_size_distribution};
use rtc_rpq::graph::GraphStats;

/// The RMAT_N family at reduced scale: |E| = degree · |Σ| · |V| exactly.
#[test]
fn rmat_family_degree_formula() {
    for n in [0u32, 2, 4] {
        let g = rmat_n_scaled(n, 10, 42);
        let s = GraphStats::of(&g);
        assert_eq!(s.vertices, 1 << 10);
        assert_eq!(s.labels, 4);
        let expected_degree = 2f64.powi(n as i32 - 2);
        assert!(
            (s.degree_per_label - expected_degree).abs() < 1e-9,
            "RMAT_{n}: degree {} != {expected_degree}",
            s.degree_per_label
        );
    }
}

/// Surrogates hit TABLE IV's |E| and |Σ| exactly; degree within the
/// padding tolerance.
#[test]
fn surrogate_stats_match_table4() {
    let cases = [
        (surrogate::robots_like(), &SPECS[1]),
        (surrogate::advogato_like(), &SPECS[2]),
        (surrogate::youtube_like(), &SPECS[3]),
    ];
    for (g, spec) in cases {
        let s = GraphStats::of(&g);
        assert_eq!(s.edges, spec.edges, "{}", spec.name);
        assert_eq!(s.labels, spec.labels, "{}", spec.name);
        let rel = (s.degree_per_label - spec.paper_degree).abs() / spec.paper_degree;
        assert!(
            rel < 0.5,
            "{}: degree {} vs paper {}",
            spec.name,
            s.degree_per_label,
            spec.paper_degree
        );
    }
}

/// The scaled Yago2s surrogate preserves the degree-0.02 regime and the
/// trivial-SCC structure that drives the paper's Yago2s exception.
#[test]
fn yago_surrogate_is_in_the_trivial_scc_regime() {
    let g = surrogate::yago2s_like(4000);
    assert_eq!(g.label_count(), 104);
    assert!(g.degree_per_label() < 0.05);
    let sccs = scc_size_distribution(&g);
    // Label-ignoring SCCs are still essentially all trivial at this density.
    assert!(sccs.mean < 1.6, "mean SCC size {}", sccs.mean);
}

/// R-MAT skew is visible in the degree distribution (hub at low ids),
/// while the uniform quadrant configuration is not.
#[test]
fn rmat_skew_shows_in_degree_distribution() {
    let skewed = rmat_graph(&RmatConfig::new(10, 8192, 2, 9));
    let d = out_degree_distribution(&skewed);
    assert!(
        d.max as f64 > d.mean * 8.0,
        "skewed R-MAT should have hubs: max {} mean {}",
        d.max,
        d.mean
    );
    let mut uniform_cfg = RmatConfig::new(10, 8192, 2, 9);
    uniform_cfg.a = 0.25;
    uniform_cfg.b = 0.25;
    uniform_cfg.c = 0.25;
    uniform_cfg.d = 0.25;
    let uniform = rmat_graph(&uniform_cfg);
    let du = out_degree_distribution(&uniform);
    assert!(
        du.max < d.max,
        "uniform should be flatter: {} vs {}",
        du.max,
        d.max
    );
}

/// Reciprocity metric behaves across generators (cycles vs DAG-ish RMAT).
#[test]
fn reciprocity_across_generators() {
    let cyc = rtc_rpq::datasets::structured::cycle_graph(64, "a");
    // A directed cycle of length > 2 has no reciprocal edges.
    assert_eq!(reciprocity(&cyc), 0.0);
    let two = rtc_rpq::datasets::structured::cycle_graph(2, "a");
    assert_eq!(reciprocity(&two), 1.0);
}

/// Section V-A workload statistics: 10 Rs per length at paper settings,
/// nested prefixes, all parseable and single-clause.
#[test]
fn workload_matches_section5a() {
    let alphabet: Vec<String> = (0..4).map(|i| format!("l{i}")).collect();
    let sets = workload::generate_workload(&alphabet, &workload::WorkloadConfig::default());
    assert_eq!(sets.len(), 30); // 10 per length × lengths {1,2,3}
    for set in &sets {
        assert_eq!(set.queries.len(), 10);
        for k in [1usize, 2, 4, 6, 8, 10] {
            assert_eq!(set.prefix(k).len(), k);
            assert_eq!(set.prefix(k), &set.queries[..k]);
        }
    }
}
