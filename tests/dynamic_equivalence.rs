//! Dynamic-graph correctness: incremental maintenance must be *bitwise
//! identical* to rebuild-from-scratch — the same `Rtc` expansion/stats,
//! the same `FullTc` pairs, and the same `Engine::evaluate` results across
//! all three strategies and thread counts {1, 2} — over random delta
//! sequences (insert-only, delete-only and mixed), including the
//! delete-then-reinsert and SCC-split/merge patterns.

mod common;

use common::{random_graph, rng, ALPHABET};
use proptest::prelude::*;
use rand::Rng;
use rtc_rpq::core::{Engine, EngineConfig, Strategy};
use rtc_rpq::graph::{GraphBuilder, GraphDelta, PairSet, VertexId};
use rtc_rpq::reduction::{DynamicRtc, FullTc, MaintenanceConfig, Rtc};
use rtc_rpq::regex::Regex;

/// Damage thresholds covering both maintenance paths plus the default.
const THRESHOLDS: [f64; 3] = [2.0, 0.0, 0.25];

fn vid(pairs: &[(u32, u32)]) -> Vec<(VertexId, VertexId)> {
    pairs
        .iter()
        .map(|&(a, b)| (VertexId(a), VertexId(b)))
        .collect()
}

/// Asserts a maintained structure equals a from-scratch rebuild of the
/// same relation, at `Rtc` level (expansion + all stats) and `FullTc`
/// level (Lemma 1 ties them together).
fn assert_rtc_equivalent(dynamic: &DynamicRtc, label: &str) {
    let pairs = dynamic.pairs();
    let fresh = Rtc::from_pairs(&pairs);
    let snap = dynamic.snapshot();
    assert_eq!(snap.expand(), fresh.expand(), "{label}: expansion");
    assert_eq!(snap.stats(), fresh.stats(), "{label}: stats");
    let full = FullTc::from_pairs(&pairs);
    assert_eq!(snap.expand(), full.expand(), "{label}: Lemma 1");
}

// `rtc_rpq::core::Strategy` (the engine enum) shadows proptest's trait of
// the same name, so spell the trait path out.
fn arb_batches(
    n: u32,
    batches: usize,
    batch_len: usize,
) -> impl proptest::strategy::Strategy<Value = Vec<Vec<(u32, u32, u32)>>> {
    // First element: 0 = delete, 1 = insert (the vendored proptest shim
    // has no bool strategy).
    prop::collection::vec(
        prop::collection::vec((0u32..2, 0..n, 0..n), 1..batch_len),
        1..batches,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mixed random delta sequences: after every batch the maintained
    /// structure equals rebuild-from-scratch, at every damage threshold.
    #[test]
    fn random_mixed_deltas_match_rebuild(
        base in prop::collection::vec((0u32..16, 0u32..16), 0..40),
        batches in arb_batches(16, 6, 10),
    ) {
        for &threshold in &THRESHOLDS {
            let config = MaintenanceConfig { damage_threshold: threshold };
            let base_pairs: PairSet = base.iter().copied().collect();
            let mut dynamic = DynamicRtc::from_pairs(&base_pairs);
            for (i, batch) in batches.iter().enumerate() {
                let inserts: Vec<(u32, u32)> =
                    batch.iter().filter(|b| b.0 == 1).map(|b| (b.1, b.2)).collect();
                let deletes: Vec<(u32, u32)> =
                    batch.iter().filter(|b| b.0 == 0).map(|b| (b.1, b.2)).collect();
                dynamic.apply(&vid(&inserts), &vid(&deletes), &config);
                assert_rtc_equivalent(&dynamic, &format!("t={threshold} batch {i}"));
            }
        }
    }

    /// Insert-only growth from an arbitrary base.
    #[test]
    fn insert_only_deltas_match_rebuild(
        base in prop::collection::vec((0u32..12, 0u32..12), 0..25),
        adds in prop::collection::vec((0u32..12, 0u32..12), 1..30),
    ) {
        let base_pairs: PairSet = base.iter().copied().collect();
        let config = MaintenanceConfig { damage_threshold: 2.0 };
        // One pair at a time (maximal merge coverage)...
        let mut one_by_one = DynamicRtc::from_pairs(&base_pairs);
        for &p in &adds {
            one_by_one.apply(&vid(&[p]), &[], &config);
        }
        assert_rtc_equivalent(&one_by_one, "insert one-by-one");
        // ...and as a single batch.
        let mut batched = DynamicRtc::from_pairs(&base_pairs);
        batched.apply(&vid(&adds), &[], &config);
        assert_rtc_equivalent(&batched, "insert batched");
        prop_assert_eq!(one_by_one.pairs(), batched.pairs());
    }

    /// Delete-only shrinkage down to (possibly) empty, then reinsert
    /// everything — the structure must round-trip exactly.
    #[test]
    fn delete_then_reinsert_round_trips(
        base in prop::collection::vec((0u32..12, 0u32..12), 1..30),
        order in prop::collection::vec(0usize..1000, 1..30),
    ) {
        let base_pairs: PairSet = base.iter().copied().collect();
        let config = MaintenanceConfig { damage_threshold: 2.0 };
        let mut dynamic = DynamicRtc::from_pairs(&base_pairs);
        let all: Vec<(u32, u32)> = base_pairs.iter().map(|(a, b)| (a.raw(), b.raw())).collect();
        // Delete in a scrambled order, checking equivalence as we go.
        let mut remaining = all.clone();
        for &o in &order {
            if remaining.is_empty() {
                break;
            }
            let victim = remaining.swap_remove(o % remaining.len());
            dynamic.apply(&[], &vid(&[victim]), &config);
        }
        assert_rtc_equivalent(&dynamic, "after deletes");
        // Reinsert everything: bitwise identical to the original build.
        dynamic.apply(&vid(&all), &[], &config);
        assert_rtc_equivalent(&dynamic, "after reinsert");
        let fresh = Rtc::from_pairs(&base_pairs);
        let snap = dynamic.snapshot();
        prop_assert_eq!(snap.expand(), fresh.expand());
        prop_assert_eq!(snap.stats(), fresh.stats());
    }
}

/// SCC split/merge stress: cycles repeatedly broken and re-closed.
#[test]
fn scc_split_and_merge_cycles() {
    let config = MaintenanceConfig {
        damage_threshold: 2.0,
    };
    // A ring of three 3-cycles chained through bridges, all collapsed into
    // one big SCC by a closing edge.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for c in 0..3u32 {
        let o = c * 3;
        pairs.extend([(o, o + 1), (o + 1, o + 2), (o + 2, o)]);
        pairs.push((o + 2, (o + 3) % 9)); // bridge to the next cluster
    }
    let base: PairSet = pairs.iter().copied().collect();
    let mut dynamic = DynamicRtc::from_pairs(&base);
    assert_eq!(dynamic.scc_count(), 1, "ring of rings is one SCC");

    // Break the outer ring: three separate SCCs again.
    dynamic.apply(&[], &vid(&[(8, 0)]), &config);
    assert_rtc_equivalent(&dynamic, "outer ring broken");
    assert_eq!(dynamic.snapshot().scc_count(), 3);

    // Break an inner cycle: its members become singletons.
    dynamic.apply(&[], &vid(&[(2, 0)]), &config);
    assert_rtc_equivalent(&dynamic, "inner cycle broken");

    // Re-close both: back to one SCC, bitwise identical to fresh.
    dynamic.apply(&vid(&[(2, 0), (8, 0)]), &[], &config);
    assert_rtc_equivalent(&dynamic, "re-closed");
    assert_eq!(dynamic.scc_count(), 1);
    assert_eq!(dynamic.snapshot().expand(), Rtc::from_pairs(&base).expand());
}

/// Engine-level equivalence: a dynamic engine absorbing update streams
/// answers every query exactly like a fresh engine over the rebuilt
/// graph — for every strategy, at 1 and 2 worker threads.
#[test]
fn engine_apply_delta_matches_fresh_engine() {
    let queries: Vec<Regex> = ["(a.b)+", "a.(b.c)+.c", "(a|b)+", "c*.(a.b)*", "b+"]
        .iter()
        .map(|q| Regex::parse(q).unwrap())
        .collect();
    let mut r = rng(0xD15C0);
    for case in 0..8 {
        let n = r.gen_range(5..16);
        let m = r.gen_range(6..40);
        let g = random_graph(&mut r, n, m);
        // Plan a shared update stream: 4 rounds of mixed ops.
        type Edges = Vec<(u32, String, u32)>;
        let mut rounds: Vec<(Edges, Edges)> = Vec::new();
        let mut edges: Vec<(u32, String, u32)> = g
            .all_edges()
            .map(|(s, l, d)| (s.raw(), g.labels().name(l).to_owned(), d.raw()))
            .collect();
        for _ in 0..4 {
            let mut deletes = Vec::new();
            for _ in 0..r.gen_range(0..4) {
                if edges.is_empty() {
                    break;
                }
                let at = r.gen_range(0..edges.len());
                deletes.push(edges.swap_remove(at));
            }
            let mut inserts = Vec::new();
            for _ in 0..r.gen_range(1..5) {
                let e = (
                    r.gen_range(0..n),
                    ALPHABET[r.gen_range(0..ALPHABET.len())].to_owned(),
                    r.gen_range(0..n),
                );
                if !edges.contains(&e) {
                    edges.push(e.clone());
                }
                inserts.push(e);
            }
            rounds.push((deletes, inserts));
        }

        for strategy in Strategy::ALL {
            for threads in [1usize, 2] {
                let config = EngineConfig {
                    strategy,
                    threads,
                    ..EngineConfig::default()
                };
                let mut dynamic = Engine::with_config(&g, config);
                // Warm the cache at epoch 0 so refreshes actually happen.
                dynamic.evaluate_set(&queries).unwrap();
                // Independently tracked edge state for the oracle build.
                let mut oracle_edges: Vec<(u32, String, u32)> = g
                    .all_edges()
                    .map(|(s, l, d)| (s.raw(), g.labels().name(l).to_owned(), d.raw()))
                    .collect();
                for (round, (deletes, inserts)) in rounds.iter().enumerate() {
                    let mut delta = GraphDelta::new();
                    for (s, l, d) in deletes {
                        delta.delete(*s, l, *d);
                        oracle_edges.retain(|e| e != &(*s, l.clone(), *d));
                    }
                    for (s, l, d) in inserts {
                        delta.insert(*s, l, *d);
                        if !oracle_edges.contains(&(*s, l.clone(), *d)) {
                            oracle_edges.push((*s, l.clone(), *d));
                        }
                    }
                    dynamic.apply_delta(&delta);
                    let got = dynamic.evaluate_set(&queries).unwrap();

                    // The oracle: a fresh build of the tracked edge set
                    // (GraphBuilder path — independent of VersionedGraph).
                    let mut b = GraphBuilder::new();
                    b.ensure_vertices(dynamic.graph().vertex_count());
                    for (s, l, d) in &oracle_edges {
                        b.add_edge(*s, l, *d);
                    }
                    let rebuilt = b.build();
                    let expect = Engine::with_config(&rebuilt, config)
                        .evaluate_set(&queries)
                        .unwrap();
                    assert_eq!(
                        got, expect,
                        "case {case}, {strategy}, {threads} threads, round {round}"
                    );
                }
            }
        }
    }
}

/// A delta stream can make a query's relation grow, vanish and reappear;
/// the engine must track it through delete-then-reinsert exactly.
#[test]
fn engine_delete_then_reinsert_is_exact() {
    let mut b = GraphBuilder::new();
    b.add_edge(0, "a", 1)
        .add_edge(1, "b", 2)
        .add_edge(2, "a", 3)
        .add_edge(3, "b", 0); // (a·b)+ has a 4-cycle core
    let g = b.build();
    let q = Regex::parse("(a.b)+").unwrap();
    for strategy in Strategy::ALL {
        let mut e = Engine::with_strategy(&g, strategy);
        let original = e.evaluate(&q).unwrap();
        assert!(original.contains(VertexId(0), VertexId(0)), "{strategy}");

        let mut cut = GraphDelta::new();
        cut.delete(3, "b", 0);
        e.apply_delta(&cut);
        let broken = e.evaluate(&q).unwrap();
        assert!(!broken.contains(VertexId(0), VertexId(0)), "{strategy}");

        let mut heal = GraphDelta::new();
        heal.insert(3, "b", 0);
        e.apply_delta(&heal);
        assert_eq!(e.evaluate(&q).unwrap(), original, "{strategy}");
        assert_eq!(e.epoch(), 2);
    }
}
