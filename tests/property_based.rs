//! Property-based tests (proptest) over the core data structures and the
//! end-to-end pipeline invariants.

mod common;

use proptest::prelude::*;
use rtc_rpq::core::{Engine, EngineConfig, Strategy as EvalStrategy};
use rtc_rpq::eval::algebraic::plus_closure;
use rtc_rpq::eval::evaluate_algebraic;
use rtc_rpq::graph::{GraphBuilder, PairSet, ReprMode, RowSet, RowSetPolicy, VertexId};
use rtc_rpq::reduction::{FullTc, Rtc};
use rtc_rpq::regex::Regex;

// ---------- generators ----------

fn arb_pairs(max_v: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_v, 0..max_v), 0..max_len)
}

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        prop::sample::select(vec!["a", "b", "c"]).prop_map(Regex::label),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::plus),
            inner.clone().prop_map(Regex::star),
            inner.prop_map(Regex::optional),
        ]
    })
}

fn arb_graph() -> impl Strategy<Value = rtc_rpq::graph::LabeledMultigraph> {
    (
        2u32..14,
        prop::collection::vec((0u32..14, 0usize..3, 0u32..14), 0..40),
    )
        .prop_map(|(n, triples)| {
            let labels = ["a", "b", "c"];
            let mut b = GraphBuilder::new();
            b.ensure_vertices(n as usize);
            for (s, l, d) in triples {
                b.add_edge(s % n, labels[l], d % n);
            }
            b.build()
        })
}

// ---------- PairSet algebra ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union is commutative, associative and idempotent.
    #[test]
    fn pairset_union_laws(a in arb_pairs(16, 30), b in arb_pairs(16, 30), c in arb_pairs(16, 30)) {
        let a: PairSet = a.into_iter().collect();
        let b: PairSet = b.into_iter().collect();
        let c: PairSet = c.into_iter().collect();
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    /// Difference/intersection are consistent with union.
    #[test]
    fn pairset_set_identities(a in arb_pairs(16, 30), b in arb_pairs(16, 30)) {
        let a: PairSet = a.into_iter().collect();
        let b: PairSet = b.into_iter().collect();
        // (a \ b) ∪ (a ∩ b) = a
        prop_assert_eq!(a.difference(&b).union(&a.intersect(&b)), a.clone());
        // (a \ b) ∩ b = ∅
        prop_assert!(a.difference(&b).intersect(&b).is_empty());
    }

    /// Composition is associative and identity-neutral.
    #[test]
    fn pairset_compose_laws(a in arb_pairs(10, 20), b in arb_pairs(10, 20), c in arb_pairs(10, 20)) {
        let a: PairSet = a.into_iter().collect();
        let b: PairSet = b.into_iter().collect();
        let c: PairSet = c.into_iter().collect();
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
        let id = PairSet::identity(10);
        prop_assert_eq!(a.compose(&id), a.clone());
        prop_assert_eq!(id.compose(&a), a);
    }

    /// Sortedness invariant survives every construction path.
    #[test]
    fn pairset_always_sorted_unique(pairs in arb_pairs(20, 60)) {
        let p: PairSet = pairs.into_iter().collect();
        let v: Vec<_> = p.iter().collect();
        prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
    }
}

// ---------- RowSet hybrid representation ----------

fn arb_ids(max_v: u32, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..max_v, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Dense and sparse backings agree on union, intersection, difference
    /// and iteration for every mix of representations. Up to 80 draws over
    /// a 160-id universe straddles the default 1/32 promotion boundary
    /// from both sides.
    #[test]
    fn rowset_dense_equals_sparse(a in arb_ids(160, 80), b in arb_ids(160, 80)) {
        let sa = RowSet::from_unsorted(a);
        let sb = RowSet::from_unsorted(b);
        let mut da = sa.clone();
        da.promote(160);
        let mut db = sb.clone();
        db.promote(160);
        // Promotion preserves contents, length and iteration order.
        prop_assert_eq!(&sa, &da);
        prop_assert_eq!(sa.len(), da.len());
        prop_assert!(sa.iter().eq(da.iter()));
        let union = sa.union(&sb).to_vec();
        let inter = sa.intersect(&sb).to_vec();
        let diff = sa.difference(&sb).to_vec();
        for (x, y) in [(&sa, &sb), (&sa, &db), (&da, &sb), (&da, &db)] {
            prop_assert_eq!(x.union(y).to_vec(), union.clone());
            prop_assert_eq!(x.intersect(y).to_vec(), inter.clone());
            prop_assert_eq!(x.difference(y).to_vec(), diff.clone());
            // In-place forms agree with the pure forms, and their changed
            // flags tell the truth.
            let mut u = x.clone();
            prop_assert_eq!(u.union_in_place(y), union != x.to_vec());
            prop_assert_eq!(u.to_vec(), union.clone());
            let mut d = x.clone();
            prop_assert_eq!(d.difference_in_place(y), diff != x.to_vec());
            prop_assert_eq!(d.to_vec(), diff.clone());
        }
    }

    /// `normalize` never changes contents, for any mode at any crossover —
    /// the promotion/demotion boundary only moves the representation.
    #[test]
    fn rowset_normalize_preserves_contents(
        ids in arb_ids(200, 100),
        crossover in prop::sample::select(vec![0.0, 1.0 / 64.0, 1.0 / 32.0, 1.0 / 16.0, 0.5, 1.0]),
    ) {
        let base = RowSet::from_unsorted(ids);
        for mode in [ReprMode::Adaptive, ReprMode::ForceSparse, ReprMode::ForceDense] {
            let policy = RowSetPolicy { mode, crossover };
            let mut r = base.clone();
            r.normalize(200, &policy);
            prop_assert_eq!(&r, &base, "mode {:?} crossover {}", mode, crossover);
            prop_assert_eq!(r.len(), base.len());
            if mode == ReprMode::ForceSparse {
                prop_assert!(!r.is_dense());
            }
            if mode == ReprMode::ForceDense && !base.is_empty() {
                prop_assert!(r.is_dense());
            }
        }
    }
}

// ---------- closure invariants ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1 as a property: RTC expansion == full TC == fixpoint.
    #[test]
    fn rtc_expansion_matches_all_closures(pairs in arb_pairs(24, 70)) {
        let base: PairSet = pairs.into_iter().collect();
        let rtc = Rtc::from_pairs(&base).expand();
        let full = FullTc::from_pairs(&base).expand();
        let fix = plus_closure(&base);
        prop_assert_eq!(&rtc, &full);
        prop_assert_eq!(&rtc, &fix);
        // TC is idempotent and contains the base.
        prop_assert_eq!(plus_closure(&fix), fix.clone());
        prop_assert!(base.difference(&fix).is_empty());
    }

    /// The RTC never stores more pairs or vertices than the full closure.
    #[test]
    fn rtc_is_never_bigger(pairs in arb_pairs(24, 70)) {
        let base: PairSet = pairs.into_iter().collect();
        let rtc = Rtc::from_pairs(&base);
        let full = FullTc::from_pairs(&base);
        prop_assert!(rtc.closure_pair_count() <= full.pair_count());
        prop_assert!(rtc.scc_count() <= full.vertex_count());
    }
}

// ---------- end-to-end pipeline ----------

proptest! {
    // End-to-end cases are the most expensive; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The flagship property: every strategy equals the algebraic oracle on
    /// arbitrary graph × arbitrary query.
    #[test]
    fn engine_matches_oracle(g in arb_graph(), q in arb_regex()) {
        let oracle = evaluate_algebraic(&g, &q);
        for strategy in EvalStrategy::ALL {
            let got = Engine::with_strategy(&g, strategy).evaluate(&q).unwrap();
            prop_assert_eq!(&got, &oracle, "strategy {} on query {}", strategy, &q);
        }
    }

    /// R* ≡ R+ ∪ identity, through the whole engine.
    #[test]
    fn star_is_plus_union_identity(g in arb_graph(), q in arb_regex()) {
        let plus = Engine::new(&g).evaluate(&Regex::plus(q.clone())).unwrap();
        let star = Engine::new(&g).evaluate(&Regex::star(q)).unwrap();
        let id = PairSet::identity(g.vertex_count());
        prop_assert_eq!(star, plus.union(&id));
    }

    /// Representation-ablation invariance: forced-sparse, forced-dense and
    /// adaptive engines return identical results under every strategy at 1
    /// and 2 threads (ISSUE 7 satellite).
    #[test]
    fn engine_invariant_under_representation(g in arb_graph(), q in arb_regex()) {
        let oracle = evaluate_algebraic(&g, &q);
        for strategy in EvalStrategy::ALL {
            for threads in [1usize, 2] {
                for policy in [
                    RowSetPolicy::sparse(),
                    RowSetPolicy::dense(),
                    RowSetPolicy::adaptive(),
                ] {
                    let config = EngineConfig {
                        strategy,
                        threads,
                        representation: policy,
                        ..EngineConfig::default()
                    };
                    let got = Engine::with_config(&g, config).evaluate(&q).unwrap();
                    prop_assert_eq!(
                        &got,
                        &oracle,
                        "strategy {} threads {} mode {:?} on {}",
                        strategy,
                        threads,
                        policy.mode,
                        &q
                    );
                }
            }
        }
    }

    /// Query results only mention vertices that exist in the graph.
    #[test]
    fn results_stay_in_vertex_range(g in arb_graph(), q in arb_regex()) {
        let r = Engine::new(&g).evaluate(&q).unwrap();
        let n = g.vertex_count() as u32;
        for (s, e) in r.iter() {
            prop_assert!(s < VertexId(n) && e < VertexId(n));
        }
    }
}
