//! The paper's formal claims (Lemmas 1–4, Theorems 1–2) checked on
//! randomized inputs through independent computation paths.

mod common;

use common::{random_graph, random_regex, rng};
use rand::Rng;
use rtc_rpq::eval::algebraic::plus_closure;
use rtc_rpq::eval::{evaluate_algebraic, ProductEvaluator};
use rtc_rpq::graph::{tarjan_scc, Condensation, MappedDigraph, PairSet};
use rtc_rpq::reduction::{nuutila_closure, tc_condensation, tc_naive, FullTc, Rtc};
use rtc_rpq::regex::Regex;

/// Lemma 1: R⁺_G = TC(G_R). The left side comes from the automaton
/// evaluator on G; the right side from BFS closure over the reduced graph.
#[test]
fn lemma1_plus_equals_tc_of_reduced_graph() {
    let mut r = rng(11);
    for case in 0..60 {
        let n = r.gen_range(4..20);
        let m = r.gen_range(5..60);
        let g = random_graph(&mut r, n, m);
        let body = random_regex(&mut r, 2);
        let plus_query = Regex::plus(body.clone());
        if plus_query.nullable() {
            // Nullable bodies fold identity into R_G; Lemma 1 still holds
            // but the direct statement is about the closure — skip to keep
            // the check sharp (nullable cases are covered elsewhere).
            continue;
        }
        let lhs = ProductEvaluator::new(&g, &plus_query).evaluate();
        let r_g = ProductEvaluator::new(&g, &body).evaluate();
        let rhs = FullTc::from_pairs(&r_g).expand();
        assert_eq!(lhs, rhs, "case {case}: R = {body}");
    }
}

/// Lemma 3 / Theorem 1: expanding TC(Ḡ_R) by SCC membership reproduces
/// TC(G_R) exactly.
#[test]
fn theorem1_rtc_expansion_equals_full_tc() {
    let mut r = rng(13);
    for case in 0..80 {
        let n = r.gen_range(2..40);
        let edges = r.gen_range(1..120);
        let pairs: PairSet = (0..edges)
            .map(|_| (r.gen_range(0..n), r.gen_range(0..n)))
            .collect();
        let rtc = Rtc::from_pairs(&pairs);
        let full = FullTc::from_pairs(&pairs);
        assert_eq!(rtc.expand(), full.expand(), "case {case}");
        assert_eq!(rtc.expanded_pair_count(), full.pair_count(), "case {case}");
        // The RTC is never larger than the full closure.
        assert!(rtc.closure_pair_count() <= full.pair_count());
    }
}

/// Lemma 2 (Purdom): SCC members are reachability-equivalent — every
/// member of an SCC reaches exactly the same vertex set through TC.
#[test]
fn lemma2_scc_members_share_reachability() {
    let mut r = rng(17);
    for _ in 0..30 {
        let n = r.gen_range(3..25);
        let edges: Vec<(u32, u32)> = (0..r.gen_range(5..80))
            .map(|_| (r.gen_range(0..n), r.gen_range(0..n)))
            .collect();
        let g = rtc_rpq::graph::Digraph::from_edges(n as usize, edges);
        let tc = tc_naive(&g);
        let scc = tarjan_scc(&g);
        for s in 0..scc.count() {
            let members = scc.members(rtc_rpq::graph::SccId(s as u32));
            let first = tc.row(members[0] as usize);
            for &m in &members[1..] {
                assert_eq!(tc.row(m as usize), first, "SCC {s} members disagree");
            }
        }
    }
}

/// Lemma 4: (A·B)_G = π(A_G ⋈ B_G), cross-checked between the automaton
/// evaluator (concatenated query) and explicit pair-set composition.
#[test]
fn lemma4_concat_is_join() {
    let mut r = rng(19);
    for case in 0..50 {
        let n = r.gen_range(4..16);
        let m = r.gen_range(5..50);
        let g = random_graph(&mut r, n, m);
        let a = random_regex(&mut r, 2);
        let b = random_regex(&mut r, 2);
        let concat = Regex::concat(vec![a.clone(), b.clone()]);
        let joined = evaluate_algebraic(&g, &a).compose(&evaluate_algebraic(&g, &b));
        let direct = ProductEvaluator::new(&g, &concat).evaluate();
        assert_eq!(direct, joined, "case {case}: A={a} B={b}");
    }
}

/// All transitive-closure implementations agree pairwise on random digraphs.
#[test]
fn tc_algorithms_agree() {
    let mut r = rng(23);
    for case in 0..50 {
        let n = r.gen_range(1..50);
        let edges: Vec<(u32, u32)> = (0..r.gen_range(0..150))
            .map(|_| (r.gen_range(0..n), r.gen_range(0..n)))
            .collect();
        let g = rtc_rpq::graph::Digraph::from_edges(n as usize, edges);
        let naive = tc_naive(&g);
        let purdom = tc_condensation(&g);
        assert_eq!(
            naive.iter_rows().collect::<Vec<_>>(),
            purdom.iter_rows().collect::<Vec<_>>(),
            "case {case}: naive vs purdom"
        );
        // Nuutila produces the same SCC closure as the two-phase pipeline.
        let (scc_a, closure_a) = nuutila_closure(&g);
        let scc_b = tarjan_scc(&g);
        let cond = Condensation::new(&g, &scc_b);
        let closure_b = rtc_rpq::reduction::closure_of_condensation(&cond);
        assert_eq!(scc_a.count(), scc_b.count());
        assert_eq!(
            closure_a.iter_rows().collect::<Vec<_>>(),
            closure_b.iter_rows().collect::<Vec<_>>(),
            "case {case}: nuutila vs purdom"
        );
    }
}

/// The semi-naive `plus_closure` (oracle) agrees with the graph-based TC.
#[test]
fn seminaive_closure_agrees_with_graph_tc() {
    let mut r = rng(29);
    for case in 0..50 {
        let n = r.gen_range(1..30);
        let pairs: PairSet = (0..r.gen_range(0..80))
            .map(|_| (r.gen_range(0..n), r.gen_range(0..n)))
            .collect();
        let by_fixpoint = plus_closure(&pairs);
        let by_graph = FullTc::from_pairs(&pairs).expand();
        assert_eq!(by_fixpoint, by_graph, "case {case}");
    }
}

/// Vertex-level reduction bookkeeping: |V̄_R| ≤ |V_R|, member sets
/// partition V_R, and the self-loop rule matches cycle membership.
#[test]
fn vertex_level_reduction_invariants() {
    let mut r = rng(31);
    for _ in 0..40 {
        let n = r.gen_range(2..30);
        let pairs: PairSet = (0..r.gen_range(1..90))
            .map(|_| (r.gen_range(0..n), r.gen_range(0..n)))
            .collect();
        let gr = MappedDigraph::from_pairset(&pairs);
        let rtc = Rtc::from_pairs(&pairs);
        assert!(rtc.scc_count() <= gr.vertex_count());
        // Member sets partition V_R.
        let mut seen = vec![false; gr.vertex_count()];
        for s in 0..rtc.scc_count() {
            for v in rtc.members_original(rtc_rpq::graph::SccId(s as u32)) {
                let c = gr.mapping.compact(v).expect("member is in V_R") as usize;
                assert!(!seen[c], "vertex in two SCCs");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "member sets must cover V_R");
        // (s̄, s̄) ∈ TC(Ḡ) iff some member reaches itself in TC(G_R).
        let full = FullTc::from_pairs(&pairs);
        for s in 0..rtc.scc_count() as u32 {
            let sid = rtc_rpq::graph::SccId(s);
            let self_reach = rtc.successors(sid).contains(s);
            let member_self = rtc
                .members_original(sid)
                .any(|v| full.successors_original(v).any(|w| w == v));
            assert_eq!(
                self_reach, member_self,
                "self-loop rule mismatch at SCC {s}"
            );
        }
    }
}
