//! End-to-end checks of every worked example in the paper (Examples 1–9),
//! run through the full public API.

mod common;

use rtc_rpq::core::{Engine, Strategy};
use rtc_rpq::graph::fixtures::paper_graph;
use rtc_rpq::graph::{PairSet, VertexId};
use rtc_rpq::reduction::{reduce_for, FullTc, Rtc};
use rtc_rpq::regex::Regex;

fn pairs(ps: &PairSet) -> Vec<(u32, u32)> {
    ps.iter().map(|(a, b)| (a.raw(), b.raw())).collect()
}

/// Example 1 / Fig. 2: (d·(b·c)+·c)_G = {(v7,v5), (v7,v3)}.
#[test]
fn example1_query_result() {
    let g = paper_graph();
    for strategy in Strategy::ALL {
        let e = Engine::with_strategy(&g, strategy);
        let r = e.evaluate_str("d.(b.c)+.c").unwrap();
        assert_eq!(pairs(&r), vec![(7, 3), (7, 5)], "{strategy}");
    }
}

/// Example 2 / Fig. 3: the NFA for d·(b·c)+·c has 5 states (q0..q4) and
/// the traversal from v7 terminates despite the b·c cycles.
#[test]
fn example2_automaton_and_traversal() {
    let q = Regex::parse("d.(b.c)+.c").unwrap();
    let nfa = rtc_rpq::automata::build_glushkov(&q);
    assert_eq!(nfa.state_count(), 5);
    // Path labels from the example: dbcc and dbcbcc accepted, dbc rejected.
    assert!(nfa.matches(&["d", "b", "c", "c"]));
    assert!(nfa.matches(&["d", "b", "c", "b", "c", "c"]));
    assert!(!nfa.matches(&["d", "b", "c"]));
}

/// Example 3 / Fig. 5: edge-level reduction for b·c.
#[test]
fn example3_edge_level_reduction() {
    let g = paper_graph();
    let gr = reduce_for(&g, &Regex::parse("b.c").unwrap());
    let mut edges: Vec<(u32, u32)> = gr
        .original_edges()
        .map(|(s, d)| (s.raw(), d.raw()))
        .collect();
    edges.sort_unstable();
    assert_eq!(edges, vec![(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)]);
    assert_eq!(gr.vertex_count(), 5);
}

/// Example 4 / Lemma 1: (b·c)+_G = TC(G_{b·c}), the 10 listed pairs.
#[test]
fn example4_lemma1() {
    let g = paper_graph();
    let e = Engine::new(&g);
    let plus = e.evaluate_str("(b.c)+").unwrap();
    let expect = vec![
        (2, 2),
        (2, 4),
        (2, 6),
        (3, 3),
        (3, 5),
        (4, 2),
        (4, 4),
        (4, 6),
        (5, 3),
        (5, 5),
    ];
    assert_eq!(pairs(&plus), expect);
    // And TC(G_{b·c}) computed independently from R_G agrees.
    let r_g = e.evaluate_str("b.c").unwrap();
    let full = FullTc::from_pairs(&r_g);
    assert_eq!(pairs(&full.expand()), expect);
}

/// Example 5 / Fig. 6: the vertex-level reduction of G_{b·c} has three
/// SCCs — s{v2,v4}, s{v6}, s{v3,v5} — and Ē has 3 edges (2 loops + 1).
#[test]
fn example5_vertex_level_reduction() {
    let g = paper_graph();
    let e = Engine::new(&g);
    let r_g = e.evaluate_str("b.c").unwrap();
    let rtc = Rtc::from_pairs(&r_g);
    assert_eq!(rtc.scc_count(), 3);
    assert_eq!(rtc.stats().ebar_edges, 3);
    let s24 = rtc.scc_of_original(VertexId(2)).unwrap();
    assert_eq!(rtc.scc_of_original(VertexId(4)), Some(s24));
    let members: Vec<u32> = rtc.members_original(s24).map(|v| v.raw()).collect();
    assert_eq!(members, vec![2, 4]);
}

/// Example 6 / Lemma 3 + Theorem 1: TC(Ḡ_{b·c}) has exactly 3 pairs and
/// its Cartesian-product expansion equals TC(G_{b·c}).
#[test]
fn example6_theorem1() {
    let g = paper_graph();
    let e = Engine::new(&g);
    let r_g = e.evaluate_str("b.c").unwrap();
    let rtc = Rtc::from_pairs(&r_g);
    assert_eq!(rtc.closure_pair_count(), 3);
    let plus = e.evaluate_str("(b.c)+").unwrap();
    assert_eq!(rtc.expand(), plus);
}

/// Example 7: the recursion trees of the three queries, checked through
/// the engine's cache behaviour — `(a·b)*` reuses the RTC computed for
/// `a·(a·b)+·b`, and `b` (from `(a·b)*·b+`) is reused inside `(a·b+·c)+`.
#[test]
fn example7_recursion_and_reuse() {
    let g = paper_graph();
    let e = Engine::new(&g);
    e.evaluate_str("a").unwrap();
    assert_eq!(e.cache().rtc_count(), 0); // no closures yet

    e.evaluate_str("a.(a.b)+.b").unwrap();
    assert_eq!(e.cache().rtc_count(), 1); // RTC for a·b
    let hits_before = e.cache().hits();

    e.evaluate_str("(a.b)*.b+.(a.b+.c)+").unwrap();
    // New RTCs for b and a·b+·c; the a·b RTC was a cache hit.
    assert_eq!(e.cache().rtc_count(), 3);
    assert!(e.cache().hits() > hits_before);
}

/// Examples 8–9: the useless/redundant operations exist in the
/// FullSharing plan and are eliminated (counted) by Algorithm 2.
#[test]
fn example8_9_elimination_counters() {
    let g = paper_graph();

    // RTCSharing counts eliminations.
    let rtc = Engine::with_strategy(&g, Strategy::RtcSharing);
    rtc.evaluate_str("a.(b.c)+").unwrap();
    let s = rtc.elimination_stats();
    // a_G = {(0,1),(7,8)}: both end vertices are off b·c paths → useless-1.
    assert_eq!(s.useless1_skipped, 2);

    // From d_G = {(7,4)}: v4 is on a b·c cycle; expansion runs unchecked.
    let rtc2 = Engine::with_strategy(&g, Strategy::RtcSharing);
    rtc2.evaluate_str("d.(b.c)+").unwrap();
    let s2 = rtc2.elimination_stats();
    assert_eq!(s2.useless1_skipped, 0);
    assert!(s2.useless2_unchecked_inserts > 0);

    // FullSharing on a graph with converging closure branches incurs
    // duplicate hits (the redundant operations of Fig. 8).
    let full = Engine::with_strategy(&g, Strategy::FullSharing);
    full.evaluate_str("c.(b.c)+").unwrap();
    let rtc_equiv = Engine::with_strategy(&g, Strategy::RtcSharing)
        .evaluate_str("c.(b.c)+")
        .unwrap();
    let full_res = full.evaluate_str("c.(b.c)+").unwrap();
    assert_eq!(full_res, rtc_equiv);
}

/// The full Example 7 query set returns identical results under all
/// strategies (the DNF/batch-unit machinery vs plain automaton runs).
#[test]
fn example7_queries_all_strategies_agree() {
    let g = paper_graph();
    let queries = ["a", "a.(a.b)+.b", "(a.b)*.b+.(a.b+.c)+"];
    for q in queries {
        let mut results = Vec::new();
        for strategy in Strategy::ALL {
            let e = Engine::with_strategy(&g, strategy);
            results.push(e.evaluate_str(q).unwrap());
        }
        assert_eq!(results[0], results[1], "No vs Full on {q}");
        assert_eq!(results[1], results[2], "Full vs RTC on {q}");
    }
}

/// TABLE III's size claim on the running example: the RTC is strictly
/// smaller than the full closure it replaces.
#[test]
fn table3_size_comparison() {
    let g = paper_graph();
    let e = Engine::new(&g);
    let r_g = e.evaluate_str("b.c").unwrap();
    let rtc = Rtc::from_pairs(&r_g);
    let full = FullTc::from_pairs(&r_g);
    assert!(rtc.closure_pair_count() < full.pair_count());
    assert!(rtc.scc_count() < full.vertex_count());
    assert_eq!(rtc.closure_pair_count(), 3);
    assert_eq!(full.pair_count(), 10);
}
