//! The paper's central structural claim, verified as tests: the RTC's
//! advantage over the full closure is governed by the average SCC size of
//! `G_R` — large SCCs mean big savings, trivial SCCs (the Yago2s regime)
//! mean parity.

mod common;

use rtc_rpq::core::{Engine, Strategy};
use rtc_rpq::datasets::structured::{cycle_clusters, path_graph, CycleClusterConfig};
use rtc_rpq::eval::ProductEvaluator;
use rtc_rpq::reduction::{FullTc, Rtc};
use rtc_rpq::regex::Regex;

fn shared_sizes(cluster_size: u32) -> (usize, usize, f64) {
    let g = cycle_clusters(&CycleClusterConfig {
        clusters: 256 / cluster_size,
        cluster_size,
        inter_edges: 300,
        labels: 2,
        seed: 77,
    });
    let r_g = ProductEvaluator::new(&g, &Regex::parse("l0").unwrap()).evaluate();
    let rtc = Rtc::from_pairs(&r_g);
    let full = FullTc::from_pairs(&r_g);
    (
        full.pair_count(),
        rtc.closure_pair_count(),
        rtc.average_scc_size(),
    )
}

/// The Fig. 12 mechanism: with |V| fixed, growing the SCC size grows the
/// Full/RTC shared-size ratio monotonically.
#[test]
fn shared_size_ratio_grows_with_scc_size() {
    let mut prev_ratio = 0.0;
    for cluster_size in [1u32, 4, 16, 64] {
        let (full_pairs, rtc_pairs, avg_scc) = shared_sizes(cluster_size);
        assert!(rtc_pairs <= full_pairs);
        let ratio = full_pairs as f64 / rtc_pairs.max(1) as f64;
        assert!(
            ratio >= prev_ratio,
            "ratio must grow with SCC size: {ratio} < {prev_ratio} at {cluster_size}"
        );
        if cluster_size > 1 {
            assert!(avg_scc > 1.0, "clusters must form nontrivial SCCs");
        }
        prev_ratio = ratio;
    }
    // At cluster size 64 the ratio is dramatic (quadratic in SCC size).
    assert!(prev_ratio > 100.0, "final ratio only {prev_ratio}");
}

/// The Yago2s regime: on an acyclic graph every SCC is trivial, the
/// average SCC size is exactly 1.00, and RTC ≈ Full in size.
#[test]
fn acyclic_reduction_gives_parity() {
    let g = path_graph(400, "a");
    let r_g = ProductEvaluator::new(&g, &Regex::parse("a").unwrap()).evaluate();
    let rtc = Rtc::from_pairs(&r_g);
    let full = FullTc::from_pairs(&r_g);
    assert_eq!(rtc.average_scc_size(), 1.0);
    assert_eq!(rtc.closure_pair_count(), full.pair_count());
    assert_eq!(rtc.scc_count(), full.vertex_count());
}

/// Query results are identical across strategies regardless of the SCC
/// regime (the correctness side of the sensitivity sweep).
#[test]
fn strategies_agree_across_scc_regimes() {
    for cluster_size in [1u32, 8, 32] {
        let g = cycle_clusters(&CycleClusterConfig {
            clusters: 128 / cluster_size,
            cluster_size,
            inter_edges: 200,
            labels: 3,
            seed: 99,
        });
        for q in ["l1.(l0)+.l2", "(l0)+", "(l0.l1)+", "l2.(l0)*.l1"] {
            let query = Regex::parse(q).unwrap();
            let mut results = Vec::new();
            for strategy in Strategy::ALL {
                results.push(
                    Engine::with_strategy(&g, strategy)
                        .evaluate(&query)
                        .unwrap(),
                );
            }
            assert_eq!(results[0], results[1], "cluster {cluster_size}, query {q}");
            assert_eq!(results[1], results[2], "cluster {cluster_size}, query {q}");
        }
    }
}

/// In the giant-SCC extreme, the RTC collapses to O(1) pairs while the
/// full closure is quadratic.
#[test]
fn giant_scc_extreme() {
    let g = rtc_rpq::datasets::structured::cycle_graph(200, "a");
    let r_g = ProductEvaluator::new(&g, &Regex::parse("a").unwrap()).evaluate();
    let rtc = Rtc::from_pairs(&r_g);
    let full = FullTc::from_pairs(&r_g);
    assert_eq!(rtc.scc_count(), 1);
    assert_eq!(rtc.closure_pair_count(), 1); // the single self-reaching SCC
    assert_eq!(full.pair_count(), 200 * 200);
    assert_eq!(rtc.expand(), full.expand());
}

/// Elimination counters respond to the SCC structure: redundant-1
/// eliminations appear exactly when Pre tuples land in shared SCCs.
#[test]
fn eliminations_track_scc_structure() {
    // Dense clusters: many Pre endpoints share SCCs → redundant-1 > 0.
    let clustered = cycle_clusters(&CycleClusterConfig {
        clusters: 8,
        cluster_size: 16,
        inter_edges: 400,
        labels: 2,
        seed: 13,
    });
    let e = Engine::new(&clustered);
    e.evaluate_str("l1.(l0)+").unwrap();
    let with_sccs = e.elimination_stats().redundant1_skipped;

    // Acyclic graph: every SCC is a singleton; a Pre relation with distinct
    // end vertices can never collide in an SCC.
    let path = path_graph(256, "l0");
    let e = Engine::new(&path);
    e.evaluate_str("l0.(l0)+").unwrap();
    let without_sccs = e.elimination_stats().redundant1_skipped;

    assert!(
        with_sccs > 0,
        "clustered graph must trigger redundant-1 eliminations"
    );
    assert_eq!(without_sccs, 0, "path graph cannot trigger redundant-1");
}
