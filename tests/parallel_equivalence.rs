//! Parallelism correctness: every parallel path must be *bitwise
//! identical* to its sequential counterpart — same `PairSet`s, same CSR
//! rows — across random graphs, random query sets, and thread counts
//! {1, 2, 8}, including the empty-graph and all-singleton-SCC edge cases.

mod common;

use common::{random_graph, random_regex, rng};
use proptest::prelude::*;
use rand::Rng;
use rtc_rpq::core::{Engine, EngineConfig, Strategy};
use rtc_rpq::graph::{Digraph, MappedDigraph, PairSet};
use rtc_rpq::reduction::{tc_naive, tc_naive_parallel, FullTc, Rtc};
use rtc_rpq::regex::Regex;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

// `rtc_rpq::core::Strategy` (the engine enum) shadows proptest's trait of
// the same name, so spell the trait path out.
fn arb_edges(
    n: u32,
    max_edges: usize,
) -> impl proptest::strategy::Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `tc_naive_parallel` equals `tc_naive` on random digraphs at every
    /// thread count.
    #[test]
    fn parallel_tc_matches_sequential(edges in arb_edges(48, 160)) {
        let g = Digraph::from_edges(48, edges);
        let seq = tc_naive(&g);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&tc_naive_parallel(&g, threads), &seq, "threads {}", threads);
        }
    }

    /// `Rtc::expand_parallel` and `FullTc::from_pairs_parallel` agree with
    /// their sequential counterparts on random relations.
    #[test]
    fn parallel_expansion_matches_sequential(edges in arb_edges(40, 120)) {
        let r_g: PairSet = edges.into_iter().collect();
        let rtc = Rtc::from_pairs(&r_g);
        let seq = rtc.expand();
        let full_seq = FullTc::from_pairs(&r_g).expand();
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&rtc.expand_parallel(threads), &seq, "rtc, threads {}", threads);
            let full_par = FullTc::from_pairs_parallel(&r_g, threads).expand();
            prop_assert_eq!(&full_par, &full_seq, "full, threads {}", threads);
        }
        // Theorem 1 must keep holding through every path.
        prop_assert_eq!(&seq, &full_seq);
    }
}

/// Engine batch evaluation: parallel and sequential produce identical
/// `PairSet`s for every strategy on random (graph, query-set) inputs.
#[test]
fn parallel_batch_evaluation_matches_sequential() {
    let mut r = rng(4242);
    for case in 0..20 {
        let n = r.gen_range(4..20);
        let m = r.gen_range(4..60);
        let g = random_graph(&mut r, n, m);
        let set_size = r.gen_range(2..6);
        let queries: Vec<Regex> = (0..set_size).map(|_| random_regex(&mut r, 2)).collect();
        for strategy in Strategy::ALL {
            let seq = match Engine::with_strategy(&g, strategy).evaluate_set(&queries) {
                Ok(res) => res,
                Err(_) => continue, // DNF budget blown — same error on all paths
            };
            for threads in THREAD_COUNTS {
                let e = Engine::with_config(
                    &g,
                    EngineConfig {
                        strategy,
                        threads,
                        ..EngineConfig::default()
                    },
                );
                let par = e.evaluate_set(&queries).unwrap();
                assert_eq!(
                    par, seq,
                    "case {case}: {strategy} diverged at {threads} threads"
                );
            }
        }
    }
}

/// The empty graph flows through every parallel path.
#[test]
fn empty_graph_parallel_paths() {
    let g = Digraph::from_edges(0, vec![]);
    for threads in THREAD_COUNTS {
        assert_eq!(tc_naive_parallel(&g, threads).rows(), 0);
    }
    let rtc = Rtc::from_pairs(&PairSet::new());
    for threads in THREAD_COUNTS {
        assert!(rtc.expand_parallel(threads).is_empty());
    }
    let lg = rtc_rpq::graph::GraphBuilder::new().build();
    let queries = [Regex::parse("a+").unwrap(), Regex::parse("a.b").unwrap()];
    for threads in THREAD_COUNTS {
        let e = Engine::with_config(
            &lg,
            EngineConfig {
                threads,
                ..EngineConfig::default()
            },
        );
        let results = e.evaluate_set(&queries).unwrap();
        assert!(results.iter().all(PairSet::is_empty), "threads {threads}");
    }
}

/// All-singleton-SCC graphs (DAGs) exercise the expansion's "no self
/// pair" edge case identically on both paths.
#[test]
fn all_singleton_scc_parallel_paths() {
    // A chain DAG: every SCC is a singleton, no closure self-pairs.
    let edges: Vec<(u32, u32)> = (0..63).map(|v| (v, v + 1)).collect();
    let g = Digraph::from_edges(64, edges.clone());
    let seq = tc_naive(&g);
    for threads in THREAD_COUNTS {
        assert_eq!(tc_naive_parallel(&g, threads), seq);
    }
    let r_g: PairSet = edges.into_iter().collect();
    let rtc = Rtc::from_pairs(&r_g);
    assert_eq!(rtc.average_scc_size(), 1.0);
    let expanded_seq = rtc.expand();
    for threads in THREAD_COUNTS {
        let par = rtc.expand_parallel(threads);
        assert_eq!(par, expanded_seq);
        for (a, b) in par.iter() {
            assert_ne!(a, b, "DAG expansion must not contain self pairs");
        }
    }
    // Sanity: the mapped digraph round-trips the DAG.
    let gr = MappedDigraph::from_pairset(&r_g);
    assert_eq!(gr.vertex_count(), 64);
}
