//! Shared helpers for the integration tests: random graph and random
//! query generators with deterministic seeding.
#![allow(dead_code)] // each test binary uses a different subset

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtc_rpq::graph::{GraphBuilder, LabeledMultigraph};
use rtc_rpq::regex::Regex;

/// Labels used by the random generators.
pub const ALPHABET: [&str; 4] = ["a", "b", "c", "d"];

/// A random multigraph with `n` vertices and roughly `edges` labeled edges.
pub fn random_graph(rng: &mut StdRng, n: u32, edges: usize) -> LabeledMultigraph {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n as usize);
    for _ in 0..edges {
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let label = ALPHABET[rng.gen_range(0..ALPHABET.len())];
        b.add_edge(src, label, dst);
    }
    b.build()
}

/// A random regular expression with bounded depth.
///
/// Shapes are weighted toward the paper's workload (concatenations and
/// closures) but cover alternation and options too.
pub fn random_regex(rng: &mut StdRng, depth: u32) -> Regex {
    if depth == 0 {
        return Regex::label(ALPHABET[rng.gen_range(0..ALPHABET.len())]);
    }
    match rng.gen_range(0..10) {
        0..=2 => Regex::label(ALPHABET[rng.gen_range(0..ALPHABET.len())]),
        3..=5 => {
            let k = rng.gen_range(2..=3);
            Regex::concat((0..k).map(|_| random_regex(rng, depth - 1)).collect())
        }
        6 => {
            let k = rng.gen_range(2..=3);
            Regex::alt((0..k).map(|_| random_regex(rng, depth - 1)).collect())
        }
        7 => Regex::plus(random_regex(rng, depth - 1)),
        8 => Regex::star(random_regex(rng, depth - 1)),
        _ => Regex::optional(random_regex(rng, depth - 1)),
    }
}

/// A deterministic RNG for a named test case.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
