//! Eviction correctness under cache budgets.
//!
//! Budgeted engines are driven with deliberately tiny budgets so eviction
//! churns on nearly every operation, and three invariants are checked:
//!
//! 1. **Answers never change.** Every query result is identical to a
//!    fresh *unbounded* engine brought to the same epoch by the same
//!    deltas — eviction may cost rebuild time, never correctness.
//! 2. **The budget holds.** After any public call, occupancy stays within
//!    `max_bytes`/`max_entries` (no pins held; pinned epochs may park a
//!    cache over budget and are tested separately).
//! 3. **Pins win.** Structures referenced by a live [`EpochView`] survive
//!    eviction pressure at newer epochs, and time-travel evaluation at
//!    the pinned epoch still answers from them (`Fresh`, not a rebuild).

mod common;

use common::{random_graph, rng, ALPHABET};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rtc_rpq::core::{CacheBudget, Engine, EngineConfig, RtcLookup};
use rtc_rpq::graph::{GraphDelta, LabeledMultigraph, VersionedGraph};
use rtc_rpq::regex::Regex;

fn bounded_config(max_bytes: Option<usize>, max_entries: Option<usize>) -> EngineConfig {
    EngineConfig {
        cache_budget: CacheBudget {
            max_bytes,
            max_entries,
            ttl_epochs: None,
        },
        ..EngineConfig::default()
    }
}

fn dynamic_engine(graph: LabeledMultigraph, config: EngineConfig) -> Engine<'static> {
    Engine::with_config_versioned(VersionedGraph::new(graph), config)
}

/// A few random edge insertions/deletions over `n` vertices.
fn random_delta(r: &mut StdRng, n: u32) -> GraphDelta {
    let mut d = GraphDelta::new();
    for _ in 0..r.gen_range(1..4) {
        let src = r.gen_range(0..n);
        let dst = r.gen_range(0..n);
        let label = ALPHABET[r.gen_range(0..ALPHABET.len())];
        if r.gen_range(0..10) < 7 {
            d.insert(src, label, dst);
        } else {
            d.delete(src, label, dst);
        }
    }
    d
}

/// Closure-heavy random queries, so the structural cache sees traffic.
fn random_closure_query(r: &mut StdRng, depth: u32) -> Regex {
    common::random_regex(r, depth)
}

const N: u32 = 10;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Invariants 1 + 2: a budgeted engine answers exactly like a fresh
    /// unbounded engine at the same epoch, and its occupancy respects the
    /// budget after every operation.
    #[test]
    fn bounded_engines_answer_like_unbounded_ones(
        seed in 0u64..1_000_000,
        ops in prop::collection::vec((0u32..2, 0u64..u64::MAX), 1..10),
    ) {
        let mut r = rng(seed);
        let base = random_graph(&mut r, N, 30);
        let (max_bytes, max_entries) = (4096usize, 3usize);
        let mut bounded = dynamic_engine(
            base.clone(),
            bounded_config(Some(max_bytes), Some(max_entries)),
        );
        let mut deltas: Vec<GraphDelta> = Vec::new();
        for (flag, op_seed) in ops {
            let is_delta = flag == 1;
            let mut or = rng(op_seed);
            if is_delta {
                let d = random_delta(&mut or, N);
                bounded.apply_delta(&d);
                deltas.push(d);
            } else {
                let q = random_closure_query(&mut or, 2);
                let got = bounded.evaluate(&q).unwrap();
                // The oracle replays the same history on an unbounded
                // engine: same epoch, same graph, no evictions ever.
                let mut oracle = dynamic_engine(base.clone(), EngineConfig::default());
                for d in &deltas {
                    oracle.apply_delta(d);
                }
                prop_assert_eq!(got, oracle.evaluate(&q).unwrap());
            }
            let c = bounded.cache();
            prop_assert!(
                c.occupancy_bytes() <= max_bytes,
                "occupancy {} B over the {} B budget",
                c.occupancy_bytes(),
                max_bytes
            );
            prop_assert!(
                c.occupancy_entries() <= max_entries,
                "{} entries over the {}-entry budget",
                c.occupancy_entries(),
                max_entries
            );
        }
    }

    /// Invariant 3: a pinned epoch's structures survive churn at newer
    /// epochs, and evaluating on the view still answers from the cache.
    #[test]
    fn pinned_views_survive_eviction_pressure(
        seed in 0u64..1_000_000,
        churn in prop::collection::vec((0u32..2, 0u64..u64::MAX), 1..8),
    ) {
        let mut r = rng(seed);
        let base = random_graph(&mut r, N, 40);
        // One entry of headroom: every later insert forces an eviction
        // decision, and only the pin protects the view's structure.
        let mut engine = dynamic_engine(base.clone(), bounded_config(None, Some(1)));

        // Two queries sharing one outermost closure: warming the first
        // caches the closure's RTC; the second can only answer `Fresh`
        // from that same entry.
        let body = Regex::concat(vec![Regex::label("a"), Regex::label("b")]);
        let warm = Regex::concat(vec![Regex::label("c"), Regex::plus(body.clone())]);
        let probe = Regex::concat(vec![Regex::plus(body.clone()), Regex::label("d")]);
        let key = body.canonical_key();

        engine.evaluate(&warm).unwrap();
        let view = engine.pin();
        let pinned_epoch = view.epoch();
        prop_assert!(matches!(
            engine.cache().lookup_rtc_at(&key, pinned_epoch),
            RtcLookup::Fresh(_)
        ));

        for (flag, op_seed) in churn {
            let is_delta = flag == 1;
            let mut or = rng(op_seed);
            if is_delta {
                engine.apply_delta(&random_delta(&mut or, N));
            } else {
                engine.evaluate(&random_closure_query(&mut or, 2)).unwrap();
            }
        }

        // The pinned structure is still resident at its epoch…
        prop_assert!(
            matches!(
                engine.cache().lookup_rtc_at(&key, pinned_epoch),
                RtcLookup::Fresh(_)
            ),
            "pinned RTC '{}' was evicted",
            key
        );
        // …and time-travel evaluation answers from it, identical to an
        // unbounded engine frozen at the pinned epoch.
        let got = view.evaluate(&probe).unwrap();
        let oracle = dynamic_engine(base, EngineConfig::default());
        prop_assert_eq!(got.as_ref(), &oracle.evaluate(&probe).unwrap());

        // Once the view drops, the pin releases and pressure reclaims
        // the old epoch's entries again.
        drop(view);
        engine.cache().enforce_budget();
        prop_assert!(engine.cache().occupancy_entries() <= 1);
    }
}

/// Deterministic spelling of invariant 3's counter story: after churn,
/// re-answering on the view is a structural *hit*, not a rebuild.
#[test]
fn pinned_view_answers_without_rebuilding() {
    use rtc_rpq::graph::fixtures::paper_graph;
    let mut engine = dynamic_engine(paper_graph(), bounded_config(None, Some(1)));
    engine.evaluate_str("d.(b.c)+.c").unwrap();
    let view = engine.pin();

    // Churn: a delta, then a different closure at the live epoch, which
    // (with one entry of budget) could only survive by evicting the
    // pinned structure — it must lose and evict itself instead.
    let mut delta = GraphDelta::new();
    delta.insert(6, "b", 8).insert(8, "c", 6);
    engine.apply_delta(&delta);
    engine.evaluate_str("(a.b)+").unwrap();

    let misses_before = engine.cache().misses();
    let hits_before = engine.cache().hits();
    // Different query string (no result-cache memo), same shared closure.
    let got = view.evaluate_str("(b.c)+.c").unwrap();
    assert_eq!(
        engine.cache().misses(),
        misses_before,
        "rebuild after evict"
    );
    assert!(engine.cache().hits() > hits_before);

    let oracle = Engine::new_dynamic(paper_graph());
    assert_eq!(got.as_ref(), &oracle.evaluate_str("(b.c)+.c").unwrap());
}
