//! Language-preservation of the DNF transformation and agreement between
//! all automata backends, using random words as probes.

mod common;

use common::{random_regex, rng, ALPHABET};
use rand::Rng;
use rtc_rpq::automata::{build_glushkov, build_thompson, DerivativeMatcher, Dfa};
use rtc_rpq::regex::{decompose, to_dnf, Regex};

fn random_word(r: &mut rand::rngs::StdRng, max_len: usize) -> Vec<&'static str> {
    let len = r.gen_range(0..=max_len);
    (0..len)
        .map(|_| ALPHABET[r.gen_range(0..ALPHABET.len())])
        .collect()
}

/// A word matches the query iff it matches some DNF clause.
#[test]
fn dnf_preserves_language() {
    let mut r = rng(41);
    for case in 0..80 {
        let q = random_regex(&mut r, 3);
        let clauses = match to_dnf(&q) {
            Ok(c) => c,
            Err(_) => continue, // clause budget exceeded — guarded elsewhere
        };
        let nfa = build_glushkov(&q);
        let clause_nfas: Vec<_> = clauses
            .iter()
            .map(|c| build_glushkov(&c.to_regex()))
            .collect();
        for _ in 0..20 {
            let w = random_word(&mut r, 6);
            let direct = nfa.matches(&w);
            let via_dnf = clause_nfas.iter().any(|n| n.matches(&w));
            assert_eq!(direct, via_dnf, "case {case}: query {q}, word {w:?}");
        }
    }
}

/// Decomposition round-trip: Pre·R^(+|*)·Post reassembles to a regex with
/// the same language as the original clause.
#[test]
fn decompose_preserves_language() {
    let mut r = rng(43);
    for case in 0..60 {
        let q = random_regex(&mut r, 3);
        let Ok(clauses) = to_dnf(&q) else { continue };
        for clause in &clauses {
            let unit = decompose(clause);
            let reassembled = unit.to_regex();
            let a = build_glushkov(&clause.to_regex());
            let b = build_glushkov(&reassembled);
            for _ in 0..10 {
                let w = random_word(&mut r, 6);
                assert_eq!(
                    a.matches(&w),
                    b.matches(&w),
                    "case {case}: clause {clause}, word {w:?}"
                );
            }
        }
    }
}

/// Glushkov, Thompson, DFA and the derivative matcher accept the same
/// language on random probes.
#[test]
fn automata_backends_agree() {
    let mut r = rng(47);
    for case in 0..60 {
        let q = random_regex(&mut r, 3);
        let glushkov = build_glushkov(&q);
        let thompson = build_thompson(&q);
        let dfa = Dfa::from_nfa(&glushkov);
        let mut derivative = DerivativeMatcher::new(&q);
        for _ in 0..25 {
            let w = random_word(&mut r, 7);
            let expect = glushkov.matches(&w);
            assert_eq!(
                thompson.matches(&w),
                expect,
                "case {case}: thompson, {q}, {w:?}"
            );
            if let Some(d) = &dfa {
                assert_eq!(d.matches(&w), expect, "case {case}: dfa, {q}, {w:?}");
            }
            assert_eq!(
                derivative.matches(&w),
                expect,
                "case {case}: derivative, {q}, {w:?}"
            );
        }
    }
}

/// Nullability agrees between the AST analysis and every backend.
#[test]
fn nullability_is_consistent() {
    let mut r = rng(53);
    for _ in 0..100 {
        let q = random_regex(&mut r, 3);
        let expect = q.nullable();
        assert_eq!(build_glushkov(&q).accepts_empty(), expect, "{q}");
        assert_eq!(build_glushkov(&q).matches(&[]), expect, "{q}");
        assert_eq!(build_thompson(&q).matches(&[]), expect, "{q}");
        assert_eq!(DerivativeMatcher::new(&q).matches(&[]), expect, "{q}");
    }
}

/// Parser ↔ printer round-trip on random expressions.
#[test]
fn parse_display_roundtrip_random() {
    let mut r = rng(59);
    for _ in 0..200 {
        let q = random_regex(&mut r, 4);
        let printed = q.to_string();
        let reparsed =
            Regex::parse(&printed).unwrap_or_else(|e| panic!("failed to reparse '{printed}': {e}"));
        assert_eq!(q, reparsed, "roundtrip failed for {printed}");
    }
}
