//! Integration tests for the engine's production features beyond the
//! paper's core algorithm: witness paths, EXPLAIN plans, backward
//! evaluation, fast paths, and cache lifecycle.

mod common;

use common::{random_graph, random_regex, rng};
use rand::Rng;
use rtc_rpq::core::{explain, explain_set, Engine, EngineConfig, Strategy};
use rtc_rpq::eval::{find_witness, format_witness, ProductEvaluator};
use rtc_rpq::graph::fixtures::paper_graph;
use rtc_rpq::graph::VertexId;
use rtc_rpq::regex::Regex;

/// Witness extraction agrees with engine results on random inputs.
#[test]
fn witnesses_cover_engine_results() {
    let mut r = rng(101);
    for case in 0..25 {
        let n = r.gen_range(4..14);
        let m = r.gen_range(5..40);
        let g = random_graph(&mut r, n, m);
        let q = random_regex(&mut r, 2);
        let result = Engine::new(&g).evaluate(&q).unwrap();
        // Every result pair has a witness whose endpoints match.
        for (s, d) in result.iter().take(50) {
            let w = find_witness(&g, &q, s, d)
                .unwrap_or_else(|| panic!("case {case}: no witness for ({s},{d}) on {q}"));
            if let (Some(first), Some(last)) = (w.first(), w.last()) {
                assert_eq!(first.from, s);
                assert_eq!(last.to, d);
            } else {
                assert_eq!(s, d, "empty witness only for self pairs");
            }
        }
        // And a handful of non-result pairs have none.
        let mut misses = 0;
        for s in 0..n.min(6) {
            for d in 0..n.min(6) {
                let (s, d) = (VertexId(s), VertexId(d));
                if !result.contains(s, d) {
                    assert!(find_witness(&g, &q, s, d).is_none());
                    misses += 1;
                }
            }
        }
        let _ = misses;
    }
}

/// The EXPLAIN plan names exactly the closure bodies the engine caches.
#[test]
fn explain_predicts_cached_bodies() {
    let g = paper_graph();
    let queries = [
        Regex::parse("a.(a.b)+.b").unwrap(),
        Regex::parse("(a.b)*.b+.(a.b+.c)+").unwrap(),
        Regex::parse("d.(b.c)+.c").unwrap(),
    ];
    let plan = explain_set(&queries).unwrap();
    let planned: std::collections::BTreeSet<String> =
        plan.shared_bodies.iter().map(|(k, _)| k.clone()).collect();

    let engine = Engine::new(&g);
    engine.evaluate_set(&queries).unwrap();
    // Engine caches at least the plan-visible bodies (it may cache more:
    // bodies nested inside R are discovered during R's own evaluation).
    assert!(engine.cache().rtc_count() >= planned.len());
    for key in &planned {
        // Re-evaluating a query whose body is `key` must hit the cache.
        let hits_before = engine.cache().hits();
        engine
            .evaluate(&Regex::parse(&format!("({key})+")).unwrap())
            .unwrap();
        assert!(engine.cache().hits() > hits_before, "no hit for {key}");
    }
}

/// The Fig. 7 recursion-tree shape, as EXPLAIN output.
#[test]
fn explain_renders_paper_recursion_tree() {
    let q = Regex::parse("(a.b)*.b+.(a.b+.c)+").unwrap();
    let plan = explain(&q).unwrap();
    let text = plan.to_string();
    assert!(text.contains("(a.b+.c)+"), "{text}");
    assert!(text.contains("(a.b)*.b+"), "{text}");
    assert_eq!(plan.batch_unit_count(), 3);
}

/// Backward evaluation answers "who reaches t" consistently with the
/// forward relation, across random graphs.
#[test]
fn backward_evaluation_consistency() {
    let mut r = rng(103);
    for _ in 0..20 {
        let n = r.gen_range(3..12);
        let m = r.gen_range(4..40);
        let g = random_graph(&mut r, n, m);
        let q = random_regex(&mut r, 2);
        let ev = ProductEvaluator::new(&g, &q);
        let full = ev.evaluate();
        for t in 0..n {
            let t = VertexId(t);
            let expect: Vec<VertexId> = full
                .iter()
                .filter(|&(_, e)| e == t)
                .map(|(s, _)| s)
                .collect();
            assert_eq!(ev.starts_to(t), expect, "target {t}, query {q}");
        }
    }
}

/// Fast paths stay equivalent to the general Algorithm-2 join on random
/// bare-closure queries.
#[test]
fn fast_path_equivalence_randomized() {
    let mut r = rng(107);
    for _ in 0..30 {
        let n = r.gen_range(4..16);
        let m = r.gen_range(5..50);
        let g = random_graph(&mut r, n, m);
        let body = random_regex(&mut r, 2);
        for q in [Regex::plus(body.clone()), Regex::star(body.clone())] {
            let fast = Engine::new(&g).evaluate(&q).unwrap();
            let general = Engine::with_config(
                &g,
                EngineConfig {
                    enable_fast_paths: false,
                    ..EngineConfig::default()
                },
            )
            .evaluate(&q)
            .unwrap();
            assert_eq!(fast, general, "query {q}");
        }
    }
}

/// Cache lifecycle: clear_cache forces recomputation; reset_metrics does not.
#[test]
fn cache_lifecycle() {
    let g = paper_graph();
    let e = Engine::new(&g);
    let q = Regex::parse("d.(b.c)+.c").unwrap();
    e.evaluate(&q).unwrap();
    assert_eq!(e.cache().misses(), 1);

    // reset_metrics clears the hit/miss counters (they are metric
    // accumulators) but keeps cached structures: the re-evaluation is a
    // pure hit, with no new miss.
    e.reset_metrics();
    assert_eq!(e.cache().misses(), 0, "counters are metrics — reset");
    e.evaluate(&q).unwrap();
    assert_eq!(e.cache().misses(), 0, "metrics reset must keep the cache");
    assert!(e.cache().hits() >= 1);

    e.clear_cache();
    e.evaluate(&q).unwrap();
    assert_eq!(e.cache().misses(), 1, "fresh miss counter after clear");
    assert_eq!(e.cache().rtc_count(), 1);
}

/// Witness formatting uses the paper's p(...) notation end-to-end.
#[test]
fn witness_formatting() {
    let g = paper_graph();
    let q = Regex::parse("e.f").unwrap();
    let w = find_witness(&g, &q, VertexId(8), VertexId(8)).unwrap();
    assert_eq!(format_witness(&g, &w), "p(v8, e, v9, f, v8)");
}

/// NoSharing vs the sharing strategies on the full Section V-A workload
/// shape (multiple queries, one engine) — including star workloads.
#[test]
fn workload_shape_equivalence() {
    use rtc_rpq::datasets::workload::{alphabet_of, generate_workload, WorkloadConfig};
    let mut r = rng(109);
    let n = 48;
    let g = random_graph(&mut r, n, 220);
    for use_star in [false, true] {
        let sets = generate_workload(
            &alphabet_of(&g),
            &WorkloadConfig {
                rs_per_length: 1,
                queries_per_set: 4,
                use_star,
                ..WorkloadConfig::default()
            },
        );
        for set in sets.iter().take(2) {
            let mut reference: Option<Vec<usize>> = None;
            for strategy in Strategy::ALL {
                let e = Engine::with_strategy(&g, strategy);
                let results = e.evaluate_set(&set.queries).unwrap();
                let sizes: Vec<usize> = results.iter().map(|p| p.len()).collect();
                match &reference {
                    None => reference = Some(sizes),
                    Some(expect) => assert_eq!(expect, &sizes, "{strategy}, star={use_star}"),
                }
            }
        }
    }
}
