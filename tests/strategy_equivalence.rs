//! Randomized differential testing: the three engine strategies must agree
//! with each other and with the independent algebraic oracle on arbitrary
//! graphs × arbitrary queries.

mod common;

use common::{random_graph, random_regex, rng};
use rtc_rpq::core::{Engine, Strategy};
use rtc_rpq::eval::evaluate_algebraic;

/// 120 random (graph, query) cases across a spread of densities.
#[test]
fn strategies_match_oracle_on_random_cases() {
    let mut r = rng(0xD1F);
    for case in 0..120 {
        let n = r.gen_range_u32(4, 24);
        let edges = r.gen_range_usize(3, 80);
        let g = random_graph(&mut r, n, edges);
        let q = random_regex(&mut r, 3);
        let oracle = evaluate_algebraic(&g, &q);
        for strategy in Strategy::ALL {
            let e = Engine::with_strategy(&g, strategy);
            let got = e.evaluate(&q).unwrap();
            assert_eq!(
                got, oracle,
                "case {case}: strategy {strategy} disagrees on query {q} \
                 (|V|={n}, edges={edges})"
            );
        }
    }
}

/// Query *sets* sharing sub-queries: cache reuse must not change results.
#[test]
fn shared_cache_does_not_change_results() {
    let mut r = rng(77);
    for case in 0..30 {
        let g = random_graph(&mut r, 16, 50);
        let queries: Vec<_> = (0..5).map(|_| random_regex(&mut r, 3)).collect();
        // Fresh engine per query (no sharing possible).
        let isolated: Vec<_> = queries
            .iter()
            .map(|q| Engine::new(&g).evaluate(q).unwrap())
            .collect();
        // One engine across the set (full sharing of RTCs).
        let shared_engine = Engine::new(&g);
        let shared = shared_engine.evaluate_set(&queries).unwrap();
        assert_eq!(isolated, shared, "case {case}: cache reuse changed results");
    }
}

/// Dense graphs with heavy cycles — the regime where SCC collapsing does
/// the most work and bugs in self-loop handling would show.
#[test]
fn strategies_match_on_cyclic_dense_graphs() {
    let mut r = rng(424242);
    for case in 0..40 {
        let n = r.gen_range_u32(3, 10);
        let edges = r.gen_range_usize(20, 60); // dense: many cycles
        let g = random_graph(&mut r, n, edges);
        for q in [
            "a+",
            "(a.b)+",
            "(a|b)+.c",
            "a*.b*",
            "(a.b.c)+",
            "c.(a|b)*.d",
        ] {
            let query = rtc_rpq::regex::Regex::parse(q).unwrap();
            let oracle = evaluate_algebraic(&g, &query);
            for strategy in Strategy::ALL {
                let got = Engine::with_strategy(&g, strategy)
                    .evaluate(&query)
                    .unwrap();
                assert_eq!(got, oracle, "case {case}, query {q}, strategy {strategy}");
            }
        }
    }
}

/// Edge cases: empty graphs, single vertices, self-loops.
#[test]
fn degenerate_graphs() {
    use rtc_rpq::graph::GraphBuilder;
    let empty = GraphBuilder::new().build();
    let mut single = GraphBuilder::new();
    single.ensure_vertices(1);
    let single = single.build();
    let mut looped = GraphBuilder::new();
    looped.add_edge(0, "a", 0);
    let looped = looped.build();

    for g in [&empty, &single, &looped] {
        for q in ["a", "a+", "a*", "a.b", "a|b", "()", "a?"] {
            let query = rtc_rpq::regex::Regex::parse(q).unwrap();
            let oracle = evaluate_algebraic(g, &query);
            for strategy in Strategy::ALL {
                let got = Engine::with_strategy(g, strategy).evaluate(&query).unwrap();
                assert_eq!(got, oracle, "graph |V|={}, query {q}", g.vertex_count());
            }
        }
    }
}

/// Helper trait to keep the rand calls terse in this file.
trait RangeExt {
    fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32;
    fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize;
}

impl RangeExt for rand::rngs::StdRng {
    fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        rand::Rng::gen_range(self, lo..hi)
    }
    fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        rand::Rng::gen_range(self, lo..hi)
    }
}
