//! Workspace smoke test: the `rtc_rpq::prelude` surface resolves and a
//! trivial query round-trips through all three strategies.
//!
//! This is deliberately shallow — it pins the *names* future PRs must keep
//! exported (`Engine`, `Strategy`, `Regex`, `PairSet`, the witness API) and
//! exercises one end-to-end evaluation per strategy on the paper's Fig. 1
//! fixture. Semantic depth lives in `strategy_equivalence.rs` and
//! `paper_examples.rs`.

use rtc_rpq::prelude::*;

#[test]
fn prelude_names_resolve_and_strategies_agree() {
    // GraphBuilder + LabeledMultigraph from the prelude.
    let mut b = GraphBuilder::new();
    b.add_edge(0, "a", 1)
        .add_edge(1, "b", 2)
        .add_edge(2, "a", 0);
    let g: LabeledMultigraph = b.build();

    let q: Regex = Regex::parse("a.b").unwrap();

    let mut results: Vec<PairSet> = Vec::new();
    for strategy in [
        Strategy::NoSharing,
        Strategy::FullSharing,
        Strategy::RtcSharing,
    ] {
        let engine = Engine::with_strategy(&g, strategy);
        let r = engine.evaluate(&q).unwrap();
        assert_eq!(r.len(), 1, "{strategy:?}");
        assert!(r.contains(VertexId(0), VertexId(2)), "{strategy:?}");
        results.push(r);
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn prelude_engine_config_and_explain_resolve() {
    let g = rtc_rpq::graph::fixtures::paper_graph();
    let q = Regex::parse("d.(b.c)+.c").unwrap();

    // EngineConfig is re-exported and drives Engine::with_config.
    let config = EngineConfig {
        strategy: Strategy::RtcSharing,
        ..Default::default()
    };
    let engine = Engine::with_config(&g, config);
    let result = engine.evaluate(&q).unwrap();
    assert_eq!(result.len(), 2);

    // explain / explain_set / QueryPlan resolve from the prelude.
    let plan: QueryPlan = explain(&q).unwrap();
    assert!(!plan.clauses.is_empty());
    let set_plan = explain_set(std::slice::from_ref(&q)).unwrap();
    assert_eq!(set_plan.queries.len(), 1);
}

#[test]
fn prelude_witness_api_round_trips() {
    let g = rtc_rpq::graph::fixtures::paper_graph();
    let q = Regex::parse("d.(b.c)+.c").unwrap();

    // Example 1: (v7, v5) is in the result; its witness must be a real
    // path through the fixture whose rendering mentions both endpoints.
    let steps: Vec<WitnessStep> = find_witness(&g, &q, VertexId(7), VertexId(5)).unwrap();
    assert!(!steps.is_empty());
    let rendered = format_witness(&g, &steps);
    assert!(rendered.contains("v7"), "rendered: {rendered}");
    assert!(rendered.contains("v5"), "rendered: {rendered}");

    // Non-members have no witness.
    assert!(find_witness(&g, &q, VertexId(0), VertexId(5)).is_none());
}
