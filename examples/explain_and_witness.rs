//! Plan introspection and witness paths on the paper's running example.
//!
//! ```text
//! cargo run --release --example explain_and_witness
//! ```
//!
//! Shows three production features layered over the RTCSharing core:
//!
//! * `explain` / `explain_set` — the batch-unit plan (the recursion trees
//!   of the paper's Fig. 7) and the sharing analysis before evaluating;
//! * `find_witness` — an actual shortest path for a result pair (the paths
//!   Fig. 2 draws);
//! * backward evaluation — "who can reach this vertex?" without computing
//!   the full relation.

use rtc_rpq::core::{explain_set, Engine};
use rtc_rpq::eval::{find_witness, format_witness, ProductEvaluator};
use rtc_rpq::graph::fixtures::paper_graph;
use rtc_rpq::graph::VertexId;
use rtc_rpq::regex::Regex;

fn main() {
    let g = paper_graph();

    // The three queries of the paper's Example 7.
    let queries = [
        Regex::parse("a").unwrap(),
        Regex::parse("a.(a.b)+.b").unwrap(),
        Regex::parse("(a.b)*.b+.(a.b+.c)+").unwrap(),
    ];

    println!("=== EXPLAIN (Fig. 7 recursion trees) ===");
    let plan = explain_set(&queries).unwrap();
    println!("{plan}");

    println!("=== Evaluation with sharing ===");
    let engine = Engine::new(&g);
    engine.prepare(&queries).unwrap();
    for q in &queries {
        let r = engine.evaluate(q).unwrap();
        println!("  {q} -> {} pairs", r.len());
    }
    println!(
        "  cache: {} RTCs, {} hits, {} misses\n",
        engine.cache().rtc_count(),
        engine.cache().hits(),
        engine.cache().misses()
    );

    println!("=== Witness paths for d.(b.c)+.c (Fig. 2) ===");
    let q = Regex::parse("d.(b.c)+.c").unwrap();
    let result = engine.evaluate(&q).unwrap();
    for (s, d) in result.iter() {
        let w = find_witness(&g, &q, s, d).unwrap();
        println!("  ({s},{d}): {}", format_witness(&g, &w));
    }

    println!("\n=== Backward evaluation: who reaches v3 via d.(b.c)+.c? ===");
    let ev = ProductEvaluator::new(&g, &q);
    let starts = ev.starts_to(VertexId(3));
    println!("  starts_to(v3) = {starts:?}");
    assert_eq!(starts, vec![VertexId(7)]);
}
