//! Signal-path detection in a protein interaction network — the paper's
//! other motivating application (Section I).
//!
//! ```text
//! cargo run --release --example protein_signal_paths
//! ```
//!
//! Proteins interact through `activates`, `inhibits` and `binds` edges.
//! Signal-path questions become RPQs:
//!
//! * activation cascades:         `activates+`
//! * ultimately-inhibiting paths: `activates*.inhibits`
//! * complex-mediated signaling:  `binds.activates+.inhibits`
//!
//! All three share the `activates` Kleene closure; RTCSharing computes its
//! reduced transitive closure once. The example also demonstrates that the
//! result sets agree with the NoSharing baseline pair-for-pair.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtc_rpq::core::{Engine, Strategy};
use rtc_rpq::graph::{GraphBuilder, VertexId};
use rtc_rpq::regex::Regex;

const PROTEINS: u32 = 1_200;

/// A synthetic pathway network: a backbone of activation cascades with
/// feedback loops, plus sparse inhibition and binding edges.
fn build_pathway_graph() -> rtc_rpq::graph::LabeledMultigraph {
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = GraphBuilder::new();
    b.ensure_vertices(PROTEINS as usize);
    for p in 0..PROTEINS {
        // Downstream activations (signal flows "forward").
        for _ in 0..rng.gen_range(1..4) {
            let downstream = (p + rng.gen_range(1..20)).min(PROTEINS - 1);
            if downstream != p {
                b.add_edge(p, "activates", downstream);
            }
        }
        // Occasional feedback loop closes an activation cycle.
        if p > 30 && rng.gen_bool(0.15) {
            b.add_edge(p, "activates", p - rng.gen_range(1..30));
        }
        if rng.gen_bool(0.2) {
            b.add_edge(p, "inhibits", rng.gen_range(0..PROTEINS));
        }
        if rng.gen_bool(0.25) {
            let partner = rng.gen_range(0..PROTEINS);
            if partner != p {
                // Binding is symmetric: add both directions.
                b.add_edge(p, "binds", partner);
                b.add_edge(partner, "binds", p);
            }
        }
    }
    b.build()
}

fn main() {
    let graph = build_pathway_graph();
    println!(
        "pathway network: |V|={} |E|={} |Σ|={}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    let queries = [
        ("activation cascade", "activates+"),
        ("eventual inhibition", "activates*.inhibits"),
        ("complex-mediated", "binds.activates+.inhibits"),
    ];

    let rtc_engine = Engine::with_strategy(&graph, Strategy::RtcSharing);
    let baseline = Engine::with_strategy(&graph, Strategy::NoSharing);

    for (name, src) in &queries {
        let q = Regex::parse(src).unwrap();
        let fast = rtc_engine.evaluate(&q).unwrap();
        let reference = baseline.evaluate(&q).unwrap();
        assert_eq!(fast, reference, "strategies must agree on {src}");
        println!("  {name:<20} {src:<28} -> {} pairs", fast.len());
    }

    println!(
        "\nRTC sharing: {} closure bodies cached, {} cache hits, {} shared pairs",
        rtc_engine.cache().rtc_count(),
        rtc_engine.cache().hits(),
        rtc_engine.cache().rtc_shared_pairs()
    );

    // Pick a receptor and report which proteins its signal can silence.
    let receptor = VertexId(3);
    let silenced = rtc_engine
        .evaluate(&Regex::parse("activates+.inhibits").unwrap())
        .unwrap();
    let targets: Vec<u32> = silenced
        .ends_of(receptor)
        .iter()
        .take(8)
        .map(|t| t.raw())
        .collect();
    println!(
        "receptor v3 can (transitively) silence {} proteins; first few: {targets:?}",
        silenced.ends_of(receptor).len()
    );

    // Elimination stats make the Algorithm-2 optimizations visible.
    let s = rtc_engine.elimination_stats();
    println!(
        "eliminations: useless-1 {} | redundant-1 {} | redundant-2 {} | unchecked inserts {}",
        s.useless1_skipped,
        s.redundant1_skipped,
        s.redundant2_skipped,
        s.useless2_unchecked_inserts
    );
}
