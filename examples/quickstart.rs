//! Quickstart: build a graph, evaluate RPQs, inspect the shared RTC.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Reproduces the paper's running example (Fig. 1 / Example 1) and shows
//! the three evaluation strategies agreeing while sharing different
//! amounts of data.

use rtc_rpq::core::{Engine, Strategy};
use rtc_rpq::graph::GraphBuilder;
use rtc_rpq::regex::Regex;

fn main() {
    // The edge-labeled directed multigraph of Fig. 1, built by hand.
    // (rtc_rpq::graph::fixtures::paper_graph() is the same graph.)
    let mut b = GraphBuilder::new();
    b.add_edge(0, "a", 1)
        .add_edge(1, "c", 2)
        .add_edge(2, "b", 3)
        .add_edge(2, "b", 5)
        .add_edge(2, "c", 5)
        .add_edge(3, "b", 2)
        .add_edge(4, "b", 1)
        .add_edge(5, "b", 6)
        .add_edge(5, "c", 6)
        .add_edge(5, "c", 4)
        .add_edge(6, "c", 3)
        .add_edge(7, "d", 4)
        .add_edge(7, "a", 8)
        .add_edge(8, "e", 9)
        .add_edge(9, "f", 8);
    let graph = b.build();
    println!(
        "graph: |V|={} |E|={} |Σ|={}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // Example 1: d·(b·c)+·c finds {(v7,v5), (v7,v3)}.
    let query = Regex::parse("d.(b.c)+.c").expect("valid RPQ");
    println!("\nquery: {query}");

    for strategy in Strategy::ALL {
        let engine = Engine::with_strategy(&graph, strategy);
        let result = engine.evaluate(&query).expect("evaluation succeeds");
        let pairs: Vec<String> = result.iter().map(|(s, e)| format!("({s},{e})")).collect();
        println!(
            "  {:<11} -> {{{}}}  shared_pairs={}  time={:?}",
            strategy.to_string(),
            pairs.join(", "),
            engine.shared_data_pairs(),
            engine.breakdown().total,
        );
    }

    // The RTC for b·c is tiny (3 SCC pairs) compared with the 10-pair
    // (b·c)+_G that FullSharing materializes — TABLE III in action.
    let engine = Engine::new(&graph);
    engine.evaluate(&query).unwrap();
    println!(
        "\nRTCSharing cached {} RTC(s) holding {} pairs total (FullSharing would hold 10).",
        engine.cache().rtc_count(),
        engine.cache().rtc_shared_pairs(),
    );

    // A second query reuses the cached RTC for b·c: zero extra shared work.
    let query2 = Regex::parse("a.(b.c)*.c").unwrap();
    let result2 = engine.evaluate(&query2).unwrap();
    println!(
        "second query {query2} -> {} pairs, cache hits = {}",
        result2.len(),
        engine.cache().hits()
    );
}
