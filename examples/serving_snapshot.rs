//! Serving + warm restart, end to end:
//!
//! 1. drive a serving [`Session`] through the same command language the
//!    `rpq` REPL and TCP front-ends speak — generate a graph, run queries
//!    that share one RTC, apply a delta online;
//! 2. `save` an engine snapshot (graph + warm cache) to disk;
//! 3. "restart" into a fresh session, `load` the snapshot, and show the
//!    first query being answered from a `Fresh` cache hit — no Tarjan, no
//!    closure sweep.
//!
//! ```bash
//! cargo run --release --example serving_snapshot
//! ```

use rtc_rpq::server::session::Session;

fn drive(session: &mut Session, line: &str) {
    if let Some(response) = session.execute(line) {
        println!("rpq> {line}");
        print!("{}", response.render());
    }
}

fn main() {
    let dir = std::env::temp_dir().join("rtc_rpq_serving_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let snap = dir.join("engine.snap");
    let snap_str = snap.to_str().expect("utf-8 temp path");

    println!("--- serving session 1: build state ---");
    let mut session = Session::new();
    drive(&mut session, "gen paper");
    drive(&mut session, "query d.(b.c)+.c"); // computes the (b.c) RTC
    drive(&mut session, "query a.(b.c)+"); // shares it (cache hit)
    drive(&mut session, "delta ins 6 b 8 ins 8 c 6");
    drive(&mut session, "query (b.c)+"); // stale -> incremental refresh
    drive(&mut session, "cache");
    drive(&mut session, &format!("save {snap_str}"));

    println!();
    println!("--- serving session 2: warm restart ---");
    let mut restarted = Session::new();
    drive(&mut restarted, &format!("load {snap_str}"));
    drive(&mut restarted, "query (b.c)+"); // Fresh hit: nothing recomputed
    drive(&mut restarted, "cache");

    let engine = restarted.engine();
    let cache = engine.cache();
    assert_eq!(cache.misses(), 0, "warm restart must not miss");
    assert!(cache.hits() >= 1, "warm restart must hit the restored RTC");
    println!();
    println!(
        "warm restart served {} hit(s), {} misses — the RTC survived the restart",
        cache.hits(),
        cache.misses()
    );
    drop(engine);

    std::fs::remove_file(&snap).ok();
}
