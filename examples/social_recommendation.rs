//! Friend recommendation over a social network — one of the motivating
//! applications in the paper's introduction.
//!
//! ```text
//! cargo run --release --example social_recommendation
//! ```
//!
//! The graph models users with `follows` edges, group membership
//! (`member_of`) and content interaction (`likes`). Recommendations are
//! phrased as RPQs:
//!
//! * reachable influencers:   `follows+`
//! * friends-of-friends:      `follows.follows`
//! * shared-interest reach:   `follows*.likes`
//! * community endorsement:   `member_of.(invites)+.member_of_rev`-style
//!   chains (modeled here with forward labels only).
//!
//! Several of these share the Kleene closure `follows+`/`follows*`, so the
//! engine computes one RTC for `follows` and reuses it across all queries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtc_rpq::core::{Engine, Strategy};
use rtc_rpq::graph::{GraphBuilder, VertexId};
use rtc_rpq::regex::Regex;
use std::time::Instant;

const USERS: u32 = 2_000;
const ITEMS: u32 = 300;
const GROUPS: u32 = 50;

fn build_social_graph() -> rtc_rpq::graph::LabeledMultigraph {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut b = GraphBuilder::new();
    let items_base = USERS;
    let groups_base = USERS + ITEMS;
    b.ensure_vertices((USERS + ITEMS + GROUPS) as usize);

    // Preferential-attachment-flavored follow edges: earlier users are
    // more popular, creating realistic hubs and follow cycles.
    for u in 0..USERS {
        let degree = rng.gen_range(1..8);
        for _ in 0..degree {
            let popular = rng.gen_range(0..u.max(1)).min(rng.gen_range(0..USERS));
            if popular != u {
                b.add_edge(u, "follows", popular);
            }
        }
        // Mutual follow-backs close cycles (SCCs for the RTC to collapse).
        if u > 0 && rng.gen_bool(0.35) {
            let friend = rng.gen_range(0..u);
            b.add_edge(u, "follows", friend);
            b.add_edge(friend, "follows", u);
        }
    }
    for u in 0..USERS {
        for _ in 0..rng.gen_range(0..4) {
            b.add_edge(u, "likes", items_base + rng.gen_range(0..ITEMS));
        }
        if rng.gen_bool(0.4) {
            b.add_edge(u, "member_of", groups_base + rng.gen_range(0..GROUPS));
        }
    }
    b.build()
}

fn main() {
    let graph = build_social_graph();
    println!(
        "social graph: |V|={} |E|={} |Σ|={}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // A recommendation workload: four RPQs sharing the `follows` closure.
    let queries = [
        ("influencer reach", "follows+"),
        ("friend-of-friend", "follows.follows"),
        ("interest propagation", "follows*.likes"),
        ("community reach", "follows+.member_of"),
    ];

    for strategy in [Strategy::NoSharing, Strategy::RtcSharing] {
        let engine = Engine::with_strategy(&graph, strategy);
        let t = Instant::now();
        let mut sizes = Vec::new();
        for (_, q) in &queries {
            let r = engine.evaluate(&Regex::parse(q).unwrap()).unwrap();
            sizes.push(r.len());
        }
        println!(
            "\n[{strategy}] total {:?} (results: {:?})",
            t.elapsed(),
            sizes
        );
        if strategy == Strategy::RtcSharing {
            println!(
                "  RTCs cached: {} ({} closure pairs; cache hits {})",
                engine.cache().rtc_count(),
                engine.cache().rtc_shared_pairs(),
                engine.cache().hits()
            );
        }
    }

    // Use the last query to print actual recommendations for one user:
    // groups reachable through the user's (transitive) follow network.
    let engine = Engine::new(&graph);
    let reach = engine
        .evaluate(&Regex::parse("follows+.member_of").unwrap())
        .unwrap();
    let user = VertexId(42);
    let own_groups: Vec<u32> = graph
        .out_with_label(user, graph.labels().get("member_of").unwrap())
        .iter()
        .map(|&(_, g)| g.raw())
        .collect();
    let recs: Vec<u32> = reach
        .ends_of(user)
        .iter()
        .map(|g| g.raw())
        .filter(|g| !own_groups.contains(g))
        .take(5)
        .collect();
    println!(
        "\nuser v42: member of {own_groups:?}; recommended groups via follow network: {recs:?}"
    );
}
