//! The paper's multiple-RPQ experiment in miniature: a Section V-A
//! workload on an R-MAT graph, evaluated under all three strategies with
//! the per-stage breakdown printed (a self-contained Fig. 10 + Fig. 11).
//!
//! ```text
//! cargo run --release --example multi_query_workload
//! ```

use rtc_rpq::core::{Engine, EngineConfig, Strategy};
use rtc_rpq::datasets::rmat::rmat_n_scaled;
use rtc_rpq::datasets::workload::{alphabet_of, generate_workload, WorkloadConfig};

fn main() {
    // RMAT_3-shaped graph at 2^10 vertices: per-label degree 2 (the
    // median point of the paper's synthetic sweep).
    let graph = rmat_n_scaled(3, 10, 45);
    println!(
        "graph: |V|={} |E|={} |Σ|={} degree/label={:.2}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count(),
        graph.degree_per_label()
    );

    // One multiple-RPQ set of 4 queries sharing the closure body R.
    let sets = generate_workload(
        &alphabet_of(&graph),
        &WorkloadConfig {
            rs_per_length: 1,
            r_lengths: vec![2],
            queries_per_set: 4,
            ..WorkloadConfig::default()
        },
    );
    let set = &sets[0];
    println!("\nshared sub-query R = {}", set.r);
    for (i, q) in set.queries.iter().enumerate() {
        println!("  Q{i}: {q}");
    }

    println!(
        "\n{:<12} {:>10} {:>14} {:>12} {:>12} {:>12}",
        "strategy", "total", "shared_data", "pre_join", "remainder", "shared_pairs"
    );
    let mut reference: Option<Vec<usize>> = None;
    for strategy in Strategy::ALL {
        let engine = Engine::with_strategy(&graph, strategy);
        let results = engine.evaluate_set(&set.queries).unwrap();
        let sizes: Vec<usize> = results.iter().map(|r| r.len()).collect();
        match &reference {
            None => reference = Some(sizes),
            Some(expect) => assert_eq!(expect, &sizes, "strategies must agree"),
        }
        let b = engine.breakdown();
        println!(
            "{:<12} {:>10.3?} {:>14.3?} {:>12.3?} {:>12.3?} {:>12}",
            strategy.to_string(),
            b.total,
            b.shared_data,
            b.pre_join,
            b.remainder(),
            engine.shared_data_pairs()
        );
    }

    let reference = reference.unwrap();
    println!(
        "\nAll strategies returned identical result sets ({} pairs per query: {:?}).",
        reference.iter().sum::<usize>(),
        reference
    );
    println!("Note how RTCSharing's shared_data and pre_join shrink while remainder stays flat —");
    println!("that is exactly the Fig. 11 decomposition from the paper.");

    // Parallel batch mode: `prepare` warms the shared RTC once, then the
    // four queries fan out over scoped worker threads. Results are
    // identical to the sequential run at any thread count.
    let threads = 4;
    let par_engine = Engine::with_config(
        &graph,
        EngineConfig {
            strategy: Strategy::RtcSharing,
            threads,
            ..EngineConfig::default()
        },
    );
    let start = std::time::Instant::now();
    let par_results = par_engine.evaluate_set(&set.queries).unwrap();
    let par_sizes: Vec<usize> = par_results.iter().map(|r| r.len()).collect();
    assert_eq!(par_sizes, reference, "parallel batch must agree");
    println!(
        "\nParallel batch (RTCSharing, {} worker threads): {:.3?} wall-clock, \
         same {} result pairs.",
        threads,
        start.elapsed(),
        par_sizes.iter().sum::<usize>()
    );
}
