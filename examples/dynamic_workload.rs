//! Dynamic graphs end to end: an interleaved update/query stream driven
//! through `Engine::apply_delta`, comparing incremental maintenance of
//! the shared RTC against rebuilding a fresh engine per update batch.
//!
//! ```text
//! cargo run --release --example dynamic_workload
//! ```

use rtc_rpq::core::{Engine, EngineConfig, Strategy};
use rtc_rpq::datasets::dynamic::{generate_dynamic_workload, DynamicStep, DynamicWorkloadConfig};
use rtc_rpq::datasets::rmat::rmat_n_scaled;
use rtc_rpq::datasets::workload::{alphabet_of, generate_workload, WorkloadConfig};
use rtc_rpq::graph::VersionedGraph;
use std::time::Instant;

fn main() {
    // RMAT_3-shaped graph at 2^10 vertices, same scale as the static
    // multi_query_workload example.
    let graph = rmat_n_scaled(3, 10, 45);
    println!(
        "graph: |V|={} |E|={} |Σ|={}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // One multiple-RPQ set sharing a closure body.
    let set = generate_workload(
        &alphabet_of(&graph),
        &WorkloadConfig {
            rs_per_length: 1,
            r_lengths: vec![2],
            queries_per_set: 4,
            ..WorkloadConfig::default()
        },
    )
    .remove(0);
    println!(
        "shared sub-query R = {}, {} queries",
        set.r,
        set.queries.len()
    );

    // Small-delta stream: each batch touches ~0.5% of the edges.
    let updates_per_round = (graph.edge_count() / 200).max(4);
    let stream_config = DynamicWorkloadConfig {
        rounds: 8,
        updates_per_round,
        insert_fraction: 0.5,
        reinsert_fraction: 0.25,
        new_label_every: 0,
        seed: 7,
    };
    let stream = generate_dynamic_workload(&graph, &stream_config);
    println!(
        "stream: {} rounds × {} updates (≈{:.2}% of |E| per delta)\n",
        stream_config.rounds,
        updates_per_round,
        100.0 * updates_per_round as f64 / graph.edge_count() as f64
    );

    // Strategy A — dynamic engine: apply each delta, let stale RTCs
    // refresh incrementally, evaluate.
    let mut dynamic =
        Engine::with_config_versioned(VersionedGraph::new(graph.clone()), EngineConfig::default());
    dynamic.evaluate_set(&set.queries).unwrap(); // warm at epoch 0

    // Strategy B — rebuild: a fresh engine (cold cache) over the mutated
    // graph for every query round.
    let mut rebuilt_graph = VersionedGraph::new(graph);

    println!(
        "{:<7} {:>14} {:>14} {:>10}  (results verified equal)",
        "round", "incremental", "rebuild", "speedup"
    );
    let mut inc_total = std::time::Duration::default();
    let mut reb_total = std::time::Duration::default();
    for step in &stream.steps {
        match step {
            DynamicStep::Update(delta) => {
                dynamic.apply_delta(delta);
                rebuilt_graph.apply(delta);
            }
            DynamicStep::QueryRound(round) => {
                let t = Instant::now();
                let incremental_results = dynamic.evaluate_set(&set.queries).unwrap();
                let inc = t.elapsed();

                let t = Instant::now();
                let cold = Engine::with_strategy(rebuilt_graph.graph(), Strategy::RtcSharing);
                let rebuild_results = cold.evaluate_set(&set.queries).unwrap();
                let reb = t.elapsed();

                assert_eq!(incremental_results, rebuild_results, "round {round}");
                inc_total += inc;
                reb_total += reb;
                println!(
                    "{:<7} {:>14.3?} {:>14.3?} {:>9.2}x",
                    round,
                    inc,
                    reb,
                    reb.as_secs_f64() / inc.as_secs_f64().max(1e-9)
                );
            }
        }
    }

    let m = dynamic.maintenance_metrics();
    println!(
        "\ntotals: incremental {:.3?} vs rebuild {:.3?} ({:.2}x)",
        inc_total,
        reb_total,
        reb_total.as_secs_f64() / inc_total.as_secs_f64().max(1e-9)
    );
    println!(
        "maintenance: {} deltas, {} incremental / {} unchanged / {} rebuild refreshes",
        m.deltas_applied, m.incremental_refreshes, m.unchanged_refreshes, m.rebuild_refreshes
    );
    println!(
        "refresh time: incremental {:.3?}, rebuild {:.3?}",
        m.incremental_time, m.rebuild_time
    );
}
