#!/usr/bin/env python3
"""Bench drift check: compare `experiments --json` tables against a baseline.

The nightly workflow runs the experiment driver (`--profile fast`, the same
profile the checked-in baseline under ``scripts/bench_baseline/`` was made
with) and feeds the fresh JSON tables to this script. Every *timing* cell
(header ending in ``(s)``) and every *memory* cell (header ending in
``(B)``, heap bytes) is compared row-by-row against the baseline; a timing
cell that regressed by more than ``--threshold`` percent or a memory cell
that grew by more than ``--mem-threshold`` percent counts as drift, and
any drift fails the run (exit 2). Rows or whole tables missing from
either side are reported but never fatal — profiles evolve; the gate is
about the numbers both sides have.

Usage:
    bench_drift.py --current DIR [--baseline DIR] [--threshold PCT]
                   [--mem-threshold PCT]
    bench_drift.py --self-test

Table JSON shape (written by `rpq_bench::Table::write_json`):
    {"title": "...", "header": ["col", ...], "rows": [{"col": "cell", ...}]}

All cells are strings; timings are seconds in engineering notation
("13.001e-3", "15.034"). The first column of each row is its key.
"""

import argparse
import json
import os
import sys

TIME_SUFFIX = "(s)"
MEM_SUFFIX = "(B)"
# Ratio columns ("2.42x") are measured values too: they must not be part
# of row keys, or a drifting speedup silently de-pairs the row and skips
# the timing/memory comparison entirely.
RATIO_MARKERS = ("speedup", "ratio", "vs ")


def is_measured_col(name):
    """True for columns holding run-dependent measurements."""
    return (
        name.endswith(TIME_SUFFIX)
        or name.endswith(MEM_SUFFIX)
        or any(m in name for m in RATIO_MARKERS)
    )


def parse_number(cell):
    """A timing/memory cell as float, or None when it is not a number."""
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def row_key(header, row):
    """Rows are identified by their non-measured columns (dataset, method,
    strategy, ...), so reordered tables still line up."""
    return tuple(row.get(col, "") for col in header if not is_measured_col(col))


def compare_tables(baseline, current, threshold_pct, mem_threshold_pct):
    """Yields (severity, message) for one table pair.

    severity: "regression" (gate-failing), "note" (informational).
    """
    header = baseline.get("header", [])
    gated_cols = [
        (c, threshold_pct, "s") for c in header if c.endswith(TIME_SUFFIX)
    ] + [(c, mem_threshold_pct, "B") for c in header if c.endswith(MEM_SUFFIX)]
    base_rows = {row_key(header, r): r for r in baseline.get("rows", [])}
    cur_rows = {row_key(header, r): r for r in current.get("rows", [])}

    for key in base_rows.keys() - cur_rows.keys():
        yield "note", f"row {key} missing from current run"
    for key in cur_rows.keys() - base_rows.keys():
        yield "note", f"row {key} new in current run (no baseline)"

    for key in sorted(base_rows.keys() & cur_rows.keys()):
        for col, gate_pct, unit in gated_cols:
            base = parse_number(base_rows[key].get(col))
            cur = parse_number(cur_rows[key].get(col))
            if base is None or cur is None or base <= 0.0:
                continue
            pct = (cur / base - 1.0) * 100.0
            if pct > gate_pct:
                yield (
                    "regression",
                    f"{'/'.join(key)} · {col}: {base:.6g}{unit} -> {cur:.6g}{unit} "
                    f"(+{pct:.1f}% > {gate_pct:.0f}%)",
                )


def load_tables(directory):
    tables = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name), encoding="utf-8") as f:
            tables[name] = json.load(f)
    return tables


def run(baseline_dir, current_dir, threshold_pct, mem_threshold_pct):
    baseline = load_tables(baseline_dir)
    current = load_tables(current_dir)
    if not baseline:
        print(f"error: no baseline tables in {baseline_dir}", file=sys.stderr)
        return 1
    if not current:
        print(f"error: no current tables in {current_dir}", file=sys.stderr)
        return 1

    regressions = 0
    for name in sorted(baseline.keys() | current.keys()):
        if name not in current:
            print(f"[note] table {name}: missing from current run")
            continue
        if name not in baseline:
            print(f"[note] table {name}: no baseline yet")
            continue
        for severity, message in compare_tables(
            baseline[name], current[name], threshold_pct, mem_threshold_pct
        ):
            print(f"[{severity}] {name}: {message}")
            if severity == "regression":
                regressions += 1

    if regressions:
        print(f"\nFAIL: {regressions} timing/memory cell(s) regressed")
        return 2
    print(
        f"\nOK: no timing cell regressed more than {threshold_pct:.0f}% "
        f"and no memory cell grew more than {mem_threshold_pct:.0f}%"
    )
    return 0


def self_test():
    """Unit-checks of the comparison logic (run by CI, needs no bench run)."""
    header = ["dataset", "No(s)", "pairs", "mem(B)", "speedup"]
    base = {
        "title": "t",
        "header": header,
        "rows": [
            {
                "dataset": "A",
                "No(s)": "1.000e-3",
                "pairs": "10",
                "mem(B)": "1000",
                "speedup": "2.42x",
            },
            {
                "dataset": "B",
                "No(s)": "2.000",
                "pairs": "20",
                "mem(B)": "4000",
                "speedup": "1.10x",
            },
            {
                "dataset": "gone",
                "No(s)": "1.0",
                "pairs": "1",
                "mem(B)": "8",
                "speedup": "1.00x",
            },
        ],
    }
    cur = {
        "title": "t",
        "header": header,
        # Every speedup cell differs from the baseline: ratio columns must
        # not be part of row keys, or these rows would all de-pair.
        "rows": [
            # Timing +10% (under the 25% gate), memory +50% (over it).
            {
                "dataset": "A",
                "No(s)": "1.100e-3",
                "pairs": "10",
                "mem(B)": "1500",
                "speedup": "2.61x",
            },
            # Timing +50% (over the gate), memory shrank (fine).
            {
                "dataset": "B",
                "No(s)": "3.000",
                "pairs": "20",
                "mem(B)": "2000",
                "speedup": "0.95x",
            },
            {
                "dataset": "new",
                "No(s)": "5.0",
                "pairs": "2",
                "mem(B)": "8",
                "speedup": "1.00x",
            },
        ],
    }
    results = list(compare_tables(base, cur, 25.0, 25.0))
    regressions = [m for s, m in results if s == "regression"]
    notes = [m for s, m in results if s == "note"]
    assert len(regressions) == 2, regressions
    assert any("B" in m and "No(s)" in m and "+50.0%" in m for m in regressions), (
        regressions
    )
    assert any("A" in m and "mem(B)" in m and "+50.0%" in m for m in regressions), (
        regressions
    )
    assert any("gone" in n for n in notes), notes
    assert any("new" in n for n in notes), notes
    # A tighter timing threshold catches A's timing as well.
    assert (
        len([1 for s, _ in compare_tables(base, cur, 5.0, 25.0) if s == "regression"])
        == 3
    )
    # A looser memory threshold lets A's memory growth through.
    assert (
        len([1 for s, _ in compare_tables(base, cur, 25.0, 60.0) if s == "regression"])
        == 1
    )
    # Non-numeric and non-metric cells never trip the gate.
    assert parse_number("n/a") is None
    assert parse_number("13.001e-3") == 13.001e-3
    # Row keys ignore timing, memory and ratio columns, so a measurement
    # change alone still matches.
    assert row_key(header, base["rows"][0]) == ("A", "10")
    assert is_measured_col("vs sparse") and is_measured_col("time ratio")
    assert not is_measured_col("dense rows")
    print("bench_drift.py self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="scripts/bench_baseline")
    parser.add_argument("--current", help="directory with fresh table JSONs")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="max tolerated per-cell slowdown, percent (default 25)",
    )
    parser.add_argument(
        "--mem-threshold",
        type=float,
        default=25.0,
        help="max tolerated per-cell heap-bytes growth, percent (default 25)",
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.current:
        parser.error("--current is required (or use --self-test)")
    sys.exit(run(args.baseline, args.current, args.threshold, args.mem_threshold))


if __name__ == "__main__":
    main()
