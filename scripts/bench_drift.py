#!/usr/bin/env python3
"""Bench drift check: compare `experiments --json` tables against a baseline.

The nightly workflow runs the experiment driver (`--profile fast`, the same
profile the checked-in baseline under ``scripts/bench_baseline/`` was made
with) and feeds the fresh JSON tables to this script. Every *timing* cell
(header ending in ``(s)``) is compared row-by-row against the baseline; a
cell that regressed by more than ``--threshold`` percent counts as drift,
and any drift fails the run (exit 2). Rows or whole tables missing from
either side are reported but never fatal — profiles evolve; the gate is
about the numbers both sides have.

Usage:
    bench_drift.py --current DIR [--baseline DIR] [--threshold PCT]
    bench_drift.py --self-test

Table JSON shape (written by `rpq_bench::Table::write_json`):
    {"title": "...", "header": ["col", ...], "rows": [{"col": "cell", ...}]}

All cells are strings; timings are seconds in engineering notation
("13.001e-3", "15.034"). The first column of each row is its key.
"""

import argparse
import json
import os
import sys

TIME_SUFFIX = "(s)"


def parse_seconds(cell):
    """A timing cell as float seconds, or None when it is not a number."""
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def row_key(header, row):
    """Rows are identified by their leading non-timing columns (dataset,
    method, strategy, ...), so reordered tables still line up."""
    return tuple(row.get(col, "") for col in header if not col.endswith(TIME_SUFFIX))


def compare_tables(baseline, current, threshold_pct):
    """Yields (severity, message) for one table pair.

    severity: "regression" (gate-failing), "note" (informational).
    """
    header = baseline.get("header", [])
    time_cols = [c for c in header if c.endswith(TIME_SUFFIX)]
    base_rows = {row_key(header, r): r for r in baseline.get("rows", [])}
    cur_rows = {row_key(header, r): r for r in current.get("rows", [])}

    for key in base_rows.keys() - cur_rows.keys():
        yield "note", f"row {key} missing from current run"
    for key in cur_rows.keys() - base_rows.keys():
        yield "note", f"row {key} new in current run (no baseline)"

    for key in sorted(base_rows.keys() & cur_rows.keys()):
        for col in time_cols:
            base = parse_seconds(base_rows[key].get(col))
            cur = parse_seconds(cur_rows[key].get(col))
            if base is None or cur is None or base <= 0.0:
                continue
            pct = (cur / base - 1.0) * 100.0
            if pct > threshold_pct:
                yield (
                    "regression",
                    f"{'/'.join(key)} · {col}: {base:.6g}s -> {cur:.6g}s "
                    f"(+{pct:.1f}% > {threshold_pct:.0f}%)",
                )


def load_tables(directory):
    tables = {}
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name), encoding="utf-8") as f:
            tables[name] = json.load(f)
    return tables


def run(baseline_dir, current_dir, threshold_pct):
    baseline = load_tables(baseline_dir)
    current = load_tables(current_dir)
    if not baseline:
        print(f"error: no baseline tables in {baseline_dir}", file=sys.stderr)
        return 1
    if not current:
        print(f"error: no current tables in {current_dir}", file=sys.stderr)
        return 1

    regressions = 0
    for name in sorted(baseline.keys() | current.keys()):
        if name not in current:
            print(f"[note] table {name}: missing from current run")
            continue
        if name not in baseline:
            print(f"[note] table {name}: no baseline yet")
            continue
        for severity, message in compare_tables(
            baseline[name], current[name], threshold_pct
        ):
            print(f"[{severity}] {name}: {message}")
            if severity == "regression":
                regressions += 1

    if regressions:
        print(f"\nFAIL: {regressions} timing cell(s) regressed >{threshold_pct:.0f}%")
        return 2
    print(f"\nOK: no timing cell regressed more than {threshold_pct:.0f}%")
    return 0


def self_test():
    """Unit-checks of the comparison logic (run by CI, needs no bench run)."""
    header = ["dataset", "No(s)", "pairs"]
    base = {
        "title": "t",
        "header": header,
        "rows": [
            {"dataset": "A", "No(s)": "1.000e-3", "pairs": "10"},
            {"dataset": "B", "No(s)": "2.000", "pairs": "20"},
            {"dataset": "gone", "No(s)": "1.0", "pairs": "1"},
        ],
    }
    cur = {
        "title": "t",
        "header": header,
        "rows": [
            # +10%: under the 25% gate.
            {"dataset": "A", "No(s)": "1.100e-3", "pairs": "10"},
            # +50%: over the gate.
            {"dataset": "B", "No(s)": "3.000", "pairs": "20"},
            {"dataset": "new", "No(s)": "5.0", "pairs": "2"},
        ],
    }
    results = list(compare_tables(base, cur, 25.0))
    regressions = [m for s, m in results if s == "regression"]
    notes = [m for s, m in results if s == "note"]
    assert len(regressions) == 1, regressions
    assert "B" in regressions[0] and "+50.0%" in regressions[0], regressions
    assert any("gone" in n for n in notes), notes
    assert any("new" in n for n in notes), notes
    # A tighter threshold catches A as well.
    assert (
        len([1 for s, _ in compare_tables(base, cur, 5.0) if s == "regression"]) == 2
    )
    # Non-numeric and non-timing cells never trip the gate.
    assert parse_seconds("n/a") is None
    assert parse_seconds("13.001e-3") == 13.001e-3
    # Row keys ignore timing columns, so a timing change alone still matches.
    assert row_key(header, base["rows"][0]) == ("A", "10")
    print("bench_drift.py self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="scripts/bench_baseline")
    parser.add_argument("--current", help="directory with fresh table JSONs")
    parser.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        help="max tolerated per-cell slowdown, percent (default 25)",
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if not args.current:
        parser.error("--current is required (or use --self-test)")
    sys.exit(run(args.baseline, args.current, args.threshold))


if __name__ == "__main__":
    main()
