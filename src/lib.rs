#![warn(missing_docs)]
//! # rtc-rpq
//!
//! A Rust implementation of **"Regular Path Query Evaluation Sharing a
//! Reduced Transitive Closure Based on Graph Reduction"** (Na, Moon, Yi,
//! Whang, Hyun — ICDE 2022).
//!
//! This facade crate re-exports the whole workspace API:
//!
//! * [`graph`] — labeled multigraphs, CSR digraphs, SCCs, condensations.
//! * [`regex`] — the RPQ expression language, parser, DNF, decomposition.
//! * [`automata`] — Glushkov/Thompson/derivative automata backends.
//! * [`eval`] — single-RPQ product-graph evaluation (the NoSharing method).
//! * [`reduction`] — RPQ-based graph reduction and the RTC.
//! * [`core`] — the `Engine` with the RTCSharing / FullSharing / NoSharing
//!   strategies.
//! * [`datasets`] — RMAT generators, real-dataset surrogates, workloads.
//! * [`server`] — the serving front-end: CLI REPL, line-delimited TCP
//!   protocol, and snapshot warm restarts over a long-lived `Engine`.
//!
//! ## Quickstart
//!
//! ```
//! use rtc_rpq::prelude::*;
//!
//! // Build the paper's Fig. 1 graph.
//! let g = rtc_rpq::graph::fixtures::paper_graph();
//!
//! // Evaluate the RPQ of Example 1: d·(b·c)+·c.
//! let mut engine = Engine::new(&g);
//! let q = Regex::parse("d.(b.c)+.c").unwrap();
//! let result = engine.evaluate(&q).unwrap();
//!
//! assert_eq!(result.len(), 2); // {(v7,v5), (v7,v3)}
//! assert!(result.contains(VertexId(7), VertexId(5)));
//! assert!(result.contains(VertexId(7), VertexId(3)));
//! ```

pub use rpq_automata as automata;
pub use rpq_core as core;
pub use rpq_datasets as datasets;
pub use rpq_eval as eval;
pub use rpq_graph as graph;
pub use rpq_reduction as reduction;
pub use rpq_regex as regex;
pub use rpq_server as server;

/// Convenience re-exports for typical use.
pub mod prelude {
    pub use rpq_core::{explain, explain_set, Engine, EngineConfig, QueryPlan, Strategy};
    pub use rpq_eval::{find_witness, format_witness, WitnessStep};
    pub use rpq_graph::{GraphBuilder, LabeledMultigraph, PairSet, VertexId};
    pub use rpq_regex::Regex;
}
