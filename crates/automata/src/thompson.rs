//! Thompson construction with ε-elimination.
//!
//! The classical inductive construction produces an automaton with
//! ε-transitions; [`build_thompson`] then eliminates them, yielding an
//! ε-free [`Nfa`] equivalent to the Glushkov automaton. The two
//! constructions share no code, which makes them useful cross-checks — an
//! integration test verifies they accept the same language on randomized
//! expressions.

use crate::nfa::Nfa;
use rpq_regex::Regex;
use rustc_hash::FxHashMap;

/// A fragment of the ε-NFA under construction: entry and exit state.
#[derive(Clone, Copy)]
struct Frag {
    start: u32,
    end: u32,
}

#[derive(Default)]
struct EpsNfa {
    /// Per-state labeled transitions `(symbol, target)`.
    labeled: Vec<Vec<(u32, u32)>>,
    /// Per-state ε-transitions.
    eps: Vec<Vec<u32>>,
    alphabet: Vec<String>,
    symbol_index: FxHashMap<String, u32>,
}

impl EpsNfa {
    fn new_state(&mut self) -> u32 {
        self.labeled.push(Vec::new());
        self.eps.push(Vec::new());
        (self.labeled.len() - 1) as u32
    }

    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&s) = self.symbol_index.get(label) {
            return s;
        }
        let s = self.alphabet.len() as u32;
        self.alphabet.push(label.to_owned());
        self.symbol_index.insert(label.to_owned(), s);
        s
    }

    fn build(&mut self, r: &Regex) -> Frag {
        match r {
            Regex::Empty => {
                let start = self.new_state();
                let end = self.new_state();
                Frag { start, end }
            }
            Regex::Epsilon => {
                let start = self.new_state();
                let end = self.new_state();
                self.eps[start as usize].push(end);
                Frag { start, end }
            }
            Regex::Label(l) => {
                let sym = self.intern(l);
                let start = self.new_state();
                let end = self.new_state();
                self.labeled[start as usize].push((sym, end));
                Frag { start, end }
            }
            Regex::Concat(parts) => {
                let frags: Vec<Frag> = parts.iter().map(|p| self.build(p)).collect();
                for w in frags.windows(2) {
                    self.eps[w[0].end as usize].push(w[1].start);
                }
                Frag {
                    start: frags.first().expect("concat nonempty").start,
                    end: frags.last().expect("concat nonempty").end,
                }
            }
            Regex::Alt(parts) => {
                let start = self.new_state();
                let end = self.new_state();
                for p in parts {
                    let f = self.build(p);
                    self.eps[start as usize].push(f.start);
                    self.eps[f.end as usize].push(end);
                }
                Frag { start, end }
            }
            Regex::Plus(inner) => {
                let f = self.build(inner);
                let start = self.new_state();
                let end = self.new_state();
                self.eps[start as usize].push(f.start);
                self.eps[f.end as usize].push(end);
                self.eps[f.end as usize].push(f.start);
                Frag { start, end }
            }
            Regex::Star(inner) => {
                let f = self.build(inner);
                let start = self.new_state();
                let end = self.new_state();
                self.eps[start as usize].push(f.start);
                self.eps[f.end as usize].push(end);
                self.eps[f.end as usize].push(f.start);
                self.eps[start as usize].push(end);
                Frag { start, end }
            }
            Regex::Optional(inner) => {
                let f = self.build(inner);
                let start = self.new_state();
                let end = self.new_state();
                self.eps[start as usize].push(f.start);
                self.eps[f.end as usize].push(end);
                self.eps[start as usize].push(end);
                Frag { start, end }
            }
        }
    }

    /// ε-closure of a single state (including itself), as a sorted list.
    fn eps_closure(&self, state: u32) -> Vec<u32> {
        let mut seen = vec![false; self.labeled.len()];
        let mut stack = vec![state];
        seen[state as usize] = true;
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            out.push(s);
            for &t in &self.eps[s as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// Builds an ε-free NFA for `r` via Thompson construction + ε-elimination.
///
/// ε-elimination: state `s` of the result has transition `(a, t)` iff some
/// state in `εclosure(s)` has a labeled transition `(a, t)` in the Thompson
/// automaton, and accepts iff `εclosure(s)` contains the Thompson accept
/// state. Unreachable states are pruned and ids renumbered (initial = 0).
pub fn build_thompson(r: &Regex) -> Nfa {
    let mut eps = EpsNfa::default();
    let frag = eps.build(r);

    let n = eps.labeled.len();
    let mut accepting_raw = vec![false; n];
    let mut rows_raw: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
    for s in 0..n as u32 {
        for c in eps.eps_closure(s) {
            if c == frag.end {
                accepting_raw[s as usize] = true;
            }
            rows_raw[s as usize].extend(eps.labeled[c as usize].iter().copied());
        }
    }

    // Prune unreachable states, renumbering so the initial state is 0.
    let mut order: Vec<u32> = Vec::new();
    let mut index_of = vec![u32::MAX; n];
    let mut stack = vec![frag.start];
    index_of[frag.start as usize] = 0;
    order.push(frag.start);
    while let Some(s) = stack.pop() {
        for &(_, t) in &rows_raw[s as usize] {
            if index_of[t as usize] == u32::MAX {
                index_of[t as usize] = order.len() as u32;
                order.push(t);
                stack.push(t);
            }
        }
    }

    let rows: Vec<Vec<(u32, u32)>> = order
        .iter()
        .map(|&s| {
            rows_raw[s as usize]
                .iter()
                .map(|&(sym, t)| (sym, index_of[t as usize]))
                .collect()
        })
        .collect();
    let accepting: Vec<bool> = order.iter().map(|&s| accepting_raw[s as usize]).collect();

    Nfa::from_parts(eps.alphabet, rows, accepting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glushkov::build_glushkov;

    fn both(src: &str) -> (Nfa, Nfa) {
        let r = Regex::parse(src).unwrap();
        (build_thompson(&r), build_glushkov(&r))
    }

    #[test]
    fn basic_acceptance() {
        let n = build_thompson(&Regex::parse("a.b").unwrap());
        assert!(n.matches(&["a", "b"]));
        assert!(!n.matches(&["a"]));
        assert!(!n.matches(&["b", "a"]));
    }

    #[test]
    fn closure_acceptance() {
        let n = build_thompson(&Regex::parse("(b.c)+").unwrap());
        assert!(n.matches(&["b", "c"]));
        assert!(n.matches(&["b", "c", "b", "c", "b", "c"]));
        assert!(!n.matches(&[]));
        let n = build_thompson(&Regex::parse("(b.c)*").unwrap());
        assert!(n.matches(&[]));
    }

    #[test]
    fn empty_and_epsilon() {
        let empty = build_thompson(&Regex::Empty);
        assert!(!empty.matches(&[]));
        let eps = build_thompson(&Regex::Epsilon);
        assert!(eps.matches(&[]));
        assert!(!eps.matches(&["a"]));
    }

    #[test]
    fn agrees_with_glushkov_on_sample_words() {
        let queries = [
            "a",
            "a.b.c",
            "a|b",
            "(a|b).c",
            "(b.c)+",
            "(b.c)*",
            "a?.b",
            "d.(b.c)+.c",
            "(a.b+.c)+",
            "(a.b)*.b+.(a.b+.c)+",
            "a*.b*",
            "(a|b)*",
        ];
        let words: Vec<Vec<&str>> = vec![
            vec![],
            vec!["a"],
            vec!["b"],
            vec!["c"],
            vec!["a", "b"],
            vec!["b", "c"],
            vec!["a", "b", "c"],
            vec!["b", "c", "b", "c"],
            vec!["d", "b", "c", "c"],
            vec!["d", "b", "c", "b", "c", "c"],
            vec!["a", "b", "b", "c"],
            vec!["a", "a", "b"],
            vec!["a", "b", "a", "b", "b"],
        ];
        for q in queries {
            let (t, g) = both(q);
            for w in &words {
                assert_eq!(
                    t.matches(w),
                    g.matches(w),
                    "thompson vs glushkov disagree on query {q}, word {w:?}"
                );
            }
        }
    }

    #[test]
    fn initial_state_is_zero_after_renumbering() {
        let (t, _) = both("a|b.c");
        // Must be runnable from state 0 with no panics and accept "a".
        assert!(t.matches(&["a"]));
        assert!(t.state_count() >= 2);
    }

    #[test]
    fn unreachable_states_are_pruned() {
        // Thompson for `a|b` creates 8 raw states; after ε-elimination and
        // pruning, far fewer remain reachable.
        let (t, _) = both("a|b");
        assert!(t.state_count() <= 4, "got {} states", t.state_count());
    }
}
