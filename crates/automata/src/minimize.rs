//! DFA minimization by Moore partition refinement.
//!
//! Repeatedly splits state classes on `(acceptance, per-symbol successor
//! class)` signatures until a fixpoint, then collapses each class to one
//! state. A behaviorally-dead class (non-accepting, all transitions
//! self/dead) is removed entirely, its transitions becoming explicit
//! [`DEAD`] entries — so the minimized DFA is also trim.

use crate::dfa::{Dfa, DEAD};
use rustc_hash::FxHashMap;

impl Dfa {
    /// Returns the minimal DFA accepting the same language.
    pub fn minimize(&self) -> Dfa {
        let n = self.state_count();
        let k = self.alphabet().len();
        if n == 0 {
            return self.clone();
        }

        // Classes: start from acceptance; DEAD is the implicit class u32::MAX.
        let mut class: Vec<u32> = (0..n)
            .map(|s| u32::from(self.is_accepting(s as u32)))
            .collect();
        let mut class_count = 2u32;
        loop {
            let mut signature_ids: FxHashMap<(u32, Vec<u32>), u32> = FxHashMap::default();
            let mut next_class = vec![0u32; n];
            for s in 0..n {
                let sig_row: Vec<u32> = (0..k as u32)
                    .map(|sym| {
                        let t = self.next(s as u32, sym);
                        if t == DEAD {
                            u32::MAX
                        } else {
                            class[t as usize]
                        }
                    })
                    .collect();
                let key = (class[s], sig_row);
                let next_id = signature_ids.len() as u32;
                let id = *signature_ids.entry(key).or_insert(next_id);
                next_class[s] = id;
            }
            let new_count = signature_ids.len() as u32;
            if new_count == class_count || new_count as usize == n {
                class = next_class;
                break;
            }
            class = next_class;
            class_count = new_count;
        }

        // Identify the behaviorally-dead class (non-accepting, closed on
        // itself/DEAD): replace it with DEAD transitions.
        let num_classes = class.iter().copied().max().unwrap_or(0) as usize + 1;
        let mut representative = vec![usize::MAX; num_classes];
        for (s, &c) in class.iter().enumerate() {
            if representative[c as usize] == usize::MAX {
                representative[c as usize] = s;
            }
        }
        let is_dead_class = |c: usize| -> bool {
            let rep = representative[c];
            if self.is_accepting(rep as u32) {
                return false;
            }
            (0..k as u32).all(|sym| {
                let t = self.next(rep as u32, sym);
                t == DEAD || class[t as usize] as usize == c
            })
        };
        let dead_class: Option<usize> = (0..num_classes).find(|&c| is_dead_class(c));
        // Never remove the initial state's class, even if it is dead
        // (the empty-language DFA needs one state).
        let dead_class = dead_class.filter(|&c| c != class[0] as usize);

        // Renumber surviving classes, initial class first.
        let mut order: Vec<usize> = Vec::with_capacity(num_classes);
        order.push(class[0] as usize);
        for c in 0..num_classes {
            if Some(c) != dead_class && c != class[0] as usize {
                order.push(c);
            }
        }
        let mut new_id = vec![u32::MAX; num_classes]; // dead stays MAX
        for (i, &c) in order.iter().enumerate() {
            new_id[c] = i as u32;
        }

        let mut transition = vec![DEAD; order.len() * k];
        let mut accepting = vec![false; order.len()];
        for (i, &c) in order.iter().enumerate() {
            let rep = representative[c] as u32;
            accepting[i] = self.is_accepting(rep);
            for sym in 0..k as u32 {
                let t = self.next(rep, sym);
                if t != DEAD {
                    let tc = class[t as usize] as usize;
                    if Some(tc) != dead_class {
                        transition[i * k + sym as usize] = new_id[tc];
                    }
                }
            }
        }
        Dfa::from_raw_parts(self.alphabet().to_vec(), transition, accepting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glushkov::build_glushkov;
    use rpq_regex::Regex;

    fn min_dfa(src: &str) -> Dfa {
        Dfa::from_nfa(&build_glushkov(&Regex::parse(src).unwrap()))
            .unwrap()
            .minimize()
    }

    #[test]
    fn equivalent_expressions_minimize_to_same_size() {
        // (a|b)* and (a*.b*)* denote the same language: their minimal DFAs
        // must have the same state count (1 accepting state over {a,b}).
        let m1 = min_dfa("(a|b)*");
        let m2 = min_dfa("(a*.b*)*");
        assert_eq!(m1.state_count(), m2.state_count());
        assert_eq!(m1.state_count(), 1);
    }

    #[test]
    fn minimization_preserves_language() {
        for src in [
            "a",
            "a.b",
            "(b.c)+",
            "d.(b.c)+.c",
            "a*.b*",
            "(a|b).c?",
            "(a.b+.c)+",
        ] {
            let full = Dfa::from_nfa(&build_glushkov(&Regex::parse(src).unwrap())).unwrap();
            let min = full.minimize();
            assert!(min.state_count() <= full.state_count());
            let words: Vec<Vec<&str>> = vec![
                vec![],
                vec!["a"],
                vec!["b"],
                vec!["a", "b"],
                vec!["b", "c"],
                vec!["d", "b", "c", "c"],
                vec!["a", "b", "b", "c"],
                vec!["b", "c", "b", "c"],
                vec!["a", "b", "c"],
            ];
            for w in &words {
                assert_eq!(full.matches(w), min.matches(w), "query {src}, word {w:?}");
            }
        }
    }

    #[test]
    fn minimization_is_idempotent() {
        for src in ["(b.c)+", "d.(b.c)+.c", "(a|b)*.c"] {
            let m = min_dfa(src);
            let mm = m.minimize();
            assert_eq!(m.state_count(), mm.state_count(), "query {src}");
        }
    }

    #[test]
    fn dead_states_are_removed() {
        // The subset DFA of a.b over alphabet {a, b} has a dead trap state
        // reachable on 'b' from the start; minimization trims it.
        let full = Dfa::from_nfa(&build_glushkov(&Regex::parse("a.b").unwrap())).unwrap();
        let min = full.minimize();
        // States: init, after-a, accept — 3, with no explicit trap.
        assert_eq!(min.state_count(), 3);
        assert!(!min.matches(&["b"]));
        assert!(min.matches(&["a", "b"]));
    }

    #[test]
    fn empty_language_minimizes_to_single_state() {
        let full = Dfa::from_nfa(&build_glushkov(&Regex::Empty)).unwrap();
        let min = full.minimize();
        assert_eq!(min.state_count(), 1);
        assert!(!min.matches(&[]));
    }

    #[test]
    fn kleene_plus_vs_star_sizes_differ() {
        // a+ needs 2 states; a* needs 1.
        assert_eq!(min_dfa("a+").state_count(), 2);
        assert_eq!(min_dfa("a*").state_count(), 1);
    }
}
