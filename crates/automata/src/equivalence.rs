//! Exact language-equivalence checking via derivative bisimulation.
//!
//! Two expressions are language-equivalent iff the pair graph of their
//! Brzozowski derivatives never reaches a pair with disagreeing
//! nullability (Hopcroft–Karp style bisimulation, here with plain memoized
//! pairs — the state spaces are tiny after ACI normalization). This is a
//! *decision procedure*, not a sampler: the DNF and normalization tests
//! use it to check semantic preservation exactly.

use crate::derivative::{aci_normalize, derivative};
use rpq_regex::Regex;
use rustc_hash::FxHashSet;

/// Decides whether `a` and `b` accept exactly the same label sequences.
///
/// Terminates because both derivative spaces are finite modulo the ACI
/// normalization applied at every step.
pub fn language_equivalent(a: &Regex, b: &Regex) -> bool {
    let a0 = aci_normalize(a);
    let b0 = aci_normalize(b);
    let mut seen: FxHashSet<(String, String)> = FxHashSet::default();
    let mut stack = vec![(a0, b0)];
    while let Some((x, y)) = stack.pop() {
        if x.nullable() != y.nullable() {
            return false;
        }
        let key = (x.canonical_key(), y.canonical_key());
        if !seen.insert(key) {
            continue;
        }
        // The joint first-symbol alphabet: symbols outside it derive both
        // sides to ∅, which are trivially equivalent.
        let mut symbols: Vec<&str> = x.labels();
        for l in y.labels() {
            if !symbols.contains(&l) {
                symbols.push(l);
            }
        }
        let pairs: Vec<(Regex, Regex)> = symbols
            .into_iter()
            .map(|sym| {
                (
                    aci_normalize(&derivative(&x, sym)),
                    aci_normalize(&derivative(&y, sym)),
                )
            })
            .collect();
        stack.extend(pairs);
    }
    true
}

/// Decides whether `L(a) ⊆ L(b)`.
///
/// Implemented as bisimulation with a one-sided acceptance check: a
/// reachable pair where `a` accepts but `b` does not is a counterexample.
pub fn language_subset(a: &Regex, b: &Regex) -> bool {
    let a0 = aci_normalize(a);
    let b0 = aci_normalize(b);
    let mut seen: FxHashSet<(String, String)> = FxHashSet::default();
    let mut stack = vec![(a0, b0)];
    while let Some((x, y)) = stack.pop() {
        if x.nullable() && !y.nullable() {
            return false;
        }
        if x.is_empty_language() {
            continue; // nothing left to check on this branch
        }
        let key = (x.canonical_key(), y.canonical_key());
        if !seen.insert(key) {
            continue;
        }
        for sym in x.labels() {
            let dx = aci_normalize(&derivative(&x, sym));
            let dy = aci_normalize(&derivative(&y, sym));
            stack.push((dx, dy));
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eq(a: &str, b: &str) -> bool {
        language_equivalent(&Regex::parse(a).unwrap(), &Regex::parse(b).unwrap())
    }

    fn subset(a: &str, b: &str) -> bool {
        language_subset(&Regex::parse(a).unwrap(), &Regex::parse(b).unwrap())
    }

    #[test]
    fn reflexivity_and_trivial_differences() {
        assert!(eq("a", "a"));
        assert!(!eq("a", "b"));
        assert!(!eq("a", "a.a"));
        assert!(!eq("a", "a?"));
    }

    #[test]
    fn classic_identities() {
        // (a|b)* = (a*.b*)*
        assert!(eq("(a|b)*", "(a*.b*)*"));
        // a.(b.a)* = (a.b)*.a
        assert!(eq("a.(b.a)*", "(a.b)*.a"));
        // a+ = a.a*
        assert!(eq("a+", "a.a*"));
        // a* = ε|a+
        assert!(eq("a*", "()|a+"));
        // (a|b).c = a.c|b.c (the DNF distribution law)
        assert!(eq("(a|b).c", "a.c|b.c"));
        // r?? = r?
        assert!(eq("a??", "a?"));
    }

    #[test]
    fn near_misses_are_distinguished() {
        assert!(!eq("(a.b)+", "a+.b+"));
        assert!(!eq("(a|b)+", "a+|b+"));
        assert!(!eq("a.(b.c)+", "(a.b.c)+"));
        assert!(!eq("(a.b)*", "(b.a)*"));
    }

    #[test]
    fn empty_and_epsilon() {
        assert!(eq("∅", "∅"));
        assert!(eq("()", "()"));
        assert!(!eq("∅", "()"));
        assert!(eq("∅|a", "a"));
        assert!(eq("().a", "a"));
        // ∅* = ε
        assert!(language_equivalent(
            &Regex::star(Regex::Empty),
            &Regex::Epsilon
        ));
    }

    #[test]
    fn subset_relations() {
        assert!(subset("a", "a|b"));
        assert!(!subset("a|b", "a"));
        assert!(subset("a+", "a*"));
        assert!(!subset("a*", "a+"));
        assert!(subset("a.b", "(a|b)+"));
        assert!(subset("∅", "a"));
        assert!(subset("(a.b)+", "(a.b)*"));
        // Equivalence = mutual subset.
        assert!(subset("(a|b)*", "(a*.b*)*") && subset("(a*.b*)*", "(a|b)*"));
    }

    #[test]
    fn dnf_is_exactly_equivalent() {
        use rpq_regex::to_dnf;
        for src in [
            "a.(b|c).d?",
            "(a|b).(c|d)+",
            "d.(b.c)+.c",
            "(a.b)*.b+.(a.b+.c)+",
            "a?.b?.c?",
            "(a|b.c)*.d",
        ] {
            let q = Regex::parse(src).unwrap();
            let clauses = to_dnf(&q).unwrap();
            let rebuilt = Regex::alt(clauses.iter().map(|c| c.to_regex()).collect());
            assert!(
                language_equivalent(&q, &rebuilt),
                "DNF changed the language of {src}"
            );
        }
    }

    #[test]
    fn smart_constructor_rewrites_are_sound() {
        // Each constructor rewrite claims a language identity; verify the
        // underlying identities with raw (un-normalized) variants.
        let a = || Regex::Label("a".into());
        let raw_plus_of_star = Regex::Plus(Box::new(Regex::Star(Box::new(a()))));
        assert!(language_equivalent(&raw_plus_of_star, &Regex::star(a())));
        let raw_star_of_plus = Regex::Star(Box::new(Regex::Plus(Box::new(a()))));
        assert!(language_equivalent(&raw_star_of_plus, &Regex::star(a())));
        let raw_opt_of_plus = Regex::Optional(Box::new(Regex::Plus(Box::new(a()))));
        assert!(language_equivalent(&raw_opt_of_plus, &Regex::star(a())));
        let raw_plus_of_opt = Regex::Plus(Box::new(Regex::Optional(Box::new(a()))));
        assert!(language_equivalent(&raw_plus_of_opt, &Regex::star(a())));
    }
}
