//! Brzozowski-derivative matcher — the independent oracle backend.
//!
//! The derivative of a language `L` with respect to symbol `a` is
//! `a⁻¹L = {w | aw ∈ L}`. Matching a word means taking successive
//! derivatives and checking nullability at the end. This backend shares no
//! code with the NFA/DFA constructions, so agreement between the two is a
//! strong correctness signal — the property tests in `tests/` exploit that.
//!
//! States (derived expressions) are memoized modulo an ACI normalization of
//! alternation (flatten + sort + dedup), which keeps the state space finite.

use rpq_regex::Regex;
use rustc_hash::FxHashMap;

/// A lazily-expanded deterministic matcher based on regex derivatives.
#[derive(Debug)]
pub struct DerivativeMatcher {
    /// Canonicalized state expressions.
    states: Vec<Regex>,
    /// Key → state id.
    index: FxHashMap<String, u32>,
    /// Memoized transitions `(state, label) → state`.
    transitions: FxHashMap<(u32, String), u32>,
}

impl DerivativeMatcher {
    /// Creates a matcher with `r` as the initial state.
    pub fn new(r: &Regex) -> Self {
        let initial = aci_normalize(r);
        let mut index = FxHashMap::default();
        index.insert(initial.canonical_key(), 0);
        Self {
            states: vec![initial],
            index,
            transitions: FxHashMap::default(),
        }
    }

    /// The number of distinct derivative states discovered so far.
    pub fn discovered_states(&self) -> usize {
        self.states.len()
    }

    /// Returns the state reached from `state` on `label`, expanding lazily.
    pub fn step(&mut self, state: u32, label: &str) -> u32 {
        if let Some(&t) = self.transitions.get(&(state, label.to_owned())) {
            return t;
        }
        let d = aci_normalize(&derivative(&self.states[state as usize], label));
        let key = d.canonical_key();
        let target = match self.index.get(&key) {
            Some(&t) => t,
            None => {
                let t = self.states.len() as u32;
                self.states.push(d);
                self.index.insert(key, t);
                t
            }
        };
        self.transitions.insert((state, label.to_owned()), target);
        target
    }

    /// Whether `state` is accepting (its expression is nullable).
    pub fn is_accepting(&self, state: u32) -> bool {
        self.states[state as usize].nullable()
    }

    /// Whether `state` is the sink rejecting state (`∅`).
    pub fn is_dead(&self, state: u32) -> bool {
        self.states[state as usize].is_empty_language()
    }

    /// Matches a word given as label names.
    pub fn matches(&mut self, labels: &[&str]) -> bool {
        let mut state = 0u32;
        for l in labels {
            state = self.step(state, l);
            if self.is_dead(state) {
                return false;
            }
        }
        self.is_accepting(state)
    }
}

/// The Brzozowski derivative `a⁻¹ L(r)`.
pub fn derivative(r: &Regex, label: &str) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon => Regex::Empty,
        Regex::Label(l) => {
            if l == label {
                Regex::Epsilon
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(parts) => {
            // D_a(r1·rest) = D_a(r1)·rest  |  [nullable(r1)] D_a(rest)
            let (head, rest) = parts.split_first().expect("concat nonempty");
            let rest_re = Regex::concat(rest.to_vec());
            let left = Regex::concat(vec![derivative(head, label), rest_re.clone()]);
            if head.nullable() {
                Regex::alt(vec![left, derivative(&rest_re, label)])
            } else {
                left
            }
        }
        Regex::Alt(parts) => Regex::alt(parts.iter().map(|p| derivative(p, label)).collect()),
        Regex::Star(inner) => Regex::concat(vec![
            derivative(inner, label),
            Regex::star((**inner).clone()),
        ]),
        Regex::Plus(inner) => Regex::concat(vec![
            derivative(inner, label),
            Regex::star((**inner).clone()),
        ]),
        Regex::Optional(inner) => derivative(inner, label),
    }
}

/// Normalizes alternation modulo associativity, commutativity and
/// idempotence by recursively sorting `Alt` children on their canonical key.
pub fn aci_normalize(r: &Regex) -> Regex {
    match r {
        Regex::Empty | Regex::Epsilon | Regex::Label(_) => r.clone(),
        Regex::Concat(parts) => Regex::concat(parts.iter().map(aci_normalize).collect()),
        Regex::Alt(parts) => {
            let mut children: Vec<Regex> = parts.iter().map(aci_normalize).collect();
            children.sort_by_cached_key(|c| c.canonical_key());
            Regex::alt(children)
        }
        Regex::Plus(inner) => Regex::plus(aci_normalize(inner)),
        Regex::Star(inner) => Regex::star(aci_normalize(inner)),
        Regex::Optional(inner) => Regex::optional(aci_normalize(inner)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(src: &str, word: &[&str]) -> bool {
        DerivativeMatcher::new(&Regex::parse(src).unwrap()).matches(word)
    }

    #[test]
    fn label_derivative() {
        let a = Regex::label("a");
        assert_eq!(derivative(&a, "a"), Regex::Epsilon);
        assert_eq!(derivative(&a, "b"), Regex::Empty);
    }

    #[test]
    fn concat_derivative_with_nullable_head() {
        // D_a(a*·b) = a*·b | D_a(b) = a*·b  (since D_a(b) = ∅)
        let r = Regex::parse("a*.b").unwrap();
        let d = derivative(&r, "a");
        assert_eq!(d, Regex::parse("a*.b").unwrap());
        let d = derivative(&r, "b");
        assert_eq!(d, Regex::Epsilon);
    }

    #[test]
    fn plus_derivative_unrolls_to_star() {
        let r = Regex::parse("(b.c)+").unwrap();
        let d = derivative(&r, "b");
        // D_b((bc)+) = c·(bc)*
        assert_eq!(d, Regex::parse("c.(b.c)*").unwrap());
    }

    #[test]
    fn basic_matching() {
        assert!(matches("a", &["a"]));
        assert!(!matches("a", &["b"]));
        assert!(!matches("a", &[]));
        assert!(matches("a.b.c", &["a", "b", "c"]));
        assert!(matches("a|b", &["b"]));
        assert!(matches("(b.c)+", &["b", "c", "b", "c"]));
        assert!(!matches("(b.c)+", &[]));
        assert!(matches("(b.c)*", &[]));
        assert!(matches("d.(b.c)+.c", &["d", "b", "c", "b", "c", "c"]));
        assert!(!matches("d.(b.c)+.c", &["d", "b", "c"]));
    }

    #[test]
    fn dead_state_detection() {
        let mut m = DerivativeMatcher::new(&Regex::parse("a.b").unwrap());
        let s1 = m.step(0, "z");
        assert!(m.is_dead(s1));
        assert!(!m.matches(&["z", "a", "b"]));
    }

    #[test]
    fn state_space_stays_finite_on_repetition() {
        let mut m = DerivativeMatcher::new(&Regex::parse("(a|b)*.(a.a|b.b)+").unwrap());
        // Feed a long word; the memo table must saturate, not grow linearly.
        let word: Vec<&str> = std::iter::repeat_n(["a", "b"], 200).flatten().collect();
        let _ = m.matches(&word);
        assert!(
            m.discovered_states() < 64,
            "derivative states exploded: {}",
            m.discovered_states()
        );
    }

    #[test]
    fn aci_normalization_merges_permuted_alts() {
        let r1 = aci_normalize(&Regex::parse("a|b|c").unwrap());
        let r2 = aci_normalize(&Regex::parse("c|a|b").unwrap());
        assert_eq!(r1, r2);
        let nested1 = aci_normalize(&Regex::parse("(a|b).(c|d)").unwrap());
        let nested2 = aci_normalize(&Regex::parse("(b|a).(d|c)").unwrap());
        assert_eq!(nested1, nested2);
    }

    #[test]
    fn agrees_with_glushkov() {
        use crate::glushkov::build_glushkov;
        let queries = [
            "a",
            "a.b",
            "a|b.c",
            "(b.c)+",
            "(b.c)*",
            "a?.b",
            "d.(b.c)+.c",
            "(a.b+.c)+",
        ];
        let words: Vec<Vec<&str>> = vec![
            vec![],
            vec!["a"],
            vec!["b"],
            vec!["a", "b"],
            vec!["b", "c"],
            vec!["d", "b", "c", "c"],
            vec!["a", "b", "b", "c"],
            vec!["b", "c", "b", "c"],
        ];
        for q in queries {
            let r = Regex::parse(q).unwrap();
            let nfa = build_glushkov(&r);
            let mut m = DerivativeMatcher::new(&r);
            for w in &words {
                assert_eq!(nfa.matches(w), m.matches(w), "query {q} word {w:?}");
            }
        }
    }
}
