//! Subset-construction DFA.
//!
//! Determinization of an [`Nfa`] with an explicit state budget (the subset
//! construction is exponential in the worst case). The evaluator can run
//! the product traversal over a DFA instead of an NFA, which trades
//! construction cost for a single current-state per traversal branch; the
//! `automata_ablation` bench measures that trade-off.

use crate::nfa::Nfa;
use rustc_hash::FxHashMap;

/// Default maximum number of DFA states before construction bails.
pub const DEFAULT_DFA_STATE_LIMIT: usize = 4096;

/// A deterministic finite automaton over the same local alphabet as its NFA.
#[derive(Clone, Debug)]
pub struct Dfa {
    alphabet: Vec<String>,
    /// `transition[state * alphabet_len + symbol]` → target, or `DEAD`.
    transition: Vec<u32>,
    accepting: Vec<bool>,
}

/// Sentinel for "no transition".
pub const DEAD: u32 = u32::MAX;

impl Dfa {
    /// Determinizes `nfa` with the default state budget.
    pub fn from_nfa(nfa: &Nfa) -> Option<Dfa> {
        Self::from_nfa_with_limit(nfa, DEFAULT_DFA_STATE_LIMIT)
    }

    /// Determinizes `nfa`; returns `None` if more than `limit` states arise.
    pub fn from_nfa_with_limit(nfa: &Nfa, limit: usize) -> Option<Dfa> {
        let k = nfa.alphabet().len();
        let mut subset_index: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        let mut subsets: Vec<Vec<u32>> = Vec::new();
        let mut transition: Vec<u32> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();

        let initial = vec![0u32];
        subset_index.insert(initial.clone(), 0);
        subsets.push(initial);
        let mut work = 0usize;

        while work < subsets.len() {
            if subsets.len() > limit {
                return None;
            }
            let subset = subsets[work].clone();
            accepting.push(subset.iter().any(|&s| nfa.is_accepting(s)));
            let row_base = transition.len();
            transition.resize(row_base + k, DEAD);
            for sym in 0..k as u32 {
                let mut next: Vec<u32> = Vec::new();
                for &s in &subset {
                    next.extend(nfa.targets(s, sym));
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    continue;
                }
                let id = match subset_index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = subsets.len() as u32;
                        subset_index.insert(next.clone(), id);
                        subsets.push(next);
                        id
                    }
                };
                transition[row_base + sym as usize] = id;
            }
            work += 1;
        }

        Some(Dfa {
            alphabet: nfa.alphabet().to_vec(),
            transition,
            accepting,
        })
    }

    /// Assembles a DFA from raw tables (used by minimization).
    pub(crate) fn from_raw_parts(
        alphabet: Vec<String>,
        transition: Vec<u32>,
        accepting: Vec<bool>,
    ) -> Dfa {
        debug_assert_eq!(transition.len(), accepting.len() * alphabet.len());
        Dfa {
            alphabet,
            transition,
            accepting,
        }
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// The local alphabet.
    pub fn alphabet(&self) -> &[String] {
        &self.alphabet
    }

    /// Transition function; `DEAD` means no transition.
    #[inline]
    pub fn next(&self, state: u32, symbol: u32) -> u32 {
        self.transition[state as usize * self.alphabet.len() + symbol as usize]
    }

    /// Whether `state` accepts.
    #[inline]
    pub fn is_accepting(&self, state: u32) -> bool {
        self.accepting[state as usize]
    }

    /// Runs the DFA over a sequence of local symbols.
    pub fn matches_symbols(&self, symbols: &[u32]) -> bool {
        let mut state = 0u32;
        for &sym in symbols {
            state = self.next(state, sym);
            if state == DEAD {
                return false;
            }
        }
        self.is_accepting(state)
    }

    /// Runs the DFA over label names; unknown labels reject.
    pub fn matches(&self, labels: &[&str]) -> bool {
        let mut symbols = Vec::with_capacity(labels.len());
        for l in labels {
            match self.alphabet.iter().position(|a| a == l) {
                Some(s) => symbols.push(s as u32),
                None => return false,
            }
        }
        self.matches_symbols(&symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glushkov::build_glushkov;
    use rpq_regex::Regex;

    fn dfa(src: &str) -> Dfa {
        Dfa::from_nfa(&build_glushkov(&Regex::parse(src).unwrap())).unwrap()
    }

    #[test]
    fn simple_queries() {
        let d = dfa("a.b");
        assert!(d.matches(&["a", "b"]));
        assert!(!d.matches(&["a"]));
        assert!(!d.matches(&["a", "b", "b"]));
        assert!(!d.matches(&["z"]));
    }

    #[test]
    fn closure_queries() {
        let d = dfa("d.(b.c)+.c");
        assert!(d.matches(&["d", "b", "c", "c"]));
        assert!(d.matches(&["d", "b", "c", "b", "c", "c"]));
        assert!(!d.matches(&["d", "b", "c"]));
    }

    #[test]
    fn agrees_with_nfa() {
        for q in [
            "a",
            "a|b",
            "(a|b).c",
            "(b.c)+",
            "a*.b*",
            "(a.b+.c)+",
            "a?.b",
        ] {
            let nfa = build_glushkov(&Regex::parse(q).unwrap());
            let d = Dfa::from_nfa(&nfa).unwrap();
            let words: Vec<Vec<&str>> = vec![
                vec![],
                vec!["a"],
                vec!["b"],
                vec!["a", "b"],
                vec!["b", "c"],
                vec!["a", "b", "c"],
                vec!["a", "b", "b", "c"],
                vec!["b", "c", "b", "c"],
            ];
            for w in &words {
                assert_eq!(nfa.matches(w), d.matches(w), "query {q} word {w:?}");
            }
        }
    }

    #[test]
    fn dead_state_semantics() {
        let d = dfa("a");
        let a = 0u32;
        let s1 = d.next(0, a);
        assert_ne!(s1, DEAD);
        assert_eq!(d.next(s1, a), DEAD);
    }

    #[test]
    fn state_limit_respected() {
        let nfa = build_glushkov(&Regex::parse("(a|b).(a|b).(a|b)").unwrap());
        assert!(Dfa::from_nfa_with_limit(&nfa, 1).is_none());
        assert!(Dfa::from_nfa_with_limit(&nfa, 64).is_some());
    }

    #[test]
    fn deterministic_state_count_is_reasonable() {
        let d = dfa("(b.c)+");
        // Subset construction of the 3-state Glushkov NFA stays tiny.
        assert!(d.state_count() <= 4);
    }
}
