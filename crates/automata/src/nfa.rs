//! The shared ε-free NFA representation.
//!
//! States are dense `u32` ids with state 0 as the initial state. Symbols are
//! a compact local alphabet (`0..k`) of the label names that actually occur
//! in the expression — the evaluator maps graph [`rpq_graph::LabelId`]s onto
//! this local alphabet once per query, so per-edge lookups are plain vector
//! indexing.

use rpq_graph::Csr;

/// An automaton state id. State 0 is always the initial state.
pub type StateId = u32;

/// An ε-free nondeterministic finite automaton over a compact local alphabet.
#[derive(Clone, Debug)]
pub struct Nfa {
    /// Local symbol index → label name.
    alphabet: Vec<String>,
    /// Per-state transition lists, sorted by `(symbol, target)`.
    transitions: Csr<(u32, StateId)>,
    /// Accepting-state flags.
    accepting: Vec<bool>,
}

impl Nfa {
    /// Builds an NFA from parts. Transition rows are sorted on entry.
    pub fn from_parts(
        alphabet: Vec<String>,
        mut transition_rows: Vec<Vec<(u32, StateId)>>,
        accepting: Vec<bool>,
    ) -> Self {
        assert_eq!(
            transition_rows.len(),
            accepting.len(),
            "state count mismatch"
        );
        assert!(
            !accepting.is_empty(),
            "an NFA needs at least the initial state"
        );
        for row in &mut transition_rows {
            row.sort_unstable();
            row.dedup();
        }
        Self {
            alphabet,
            transitions: Csr::from_rows(transition_rows),
            accepting,
        }
    }

    /// Number of states.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.accepting.len()
    }

    /// Total number of transitions.
    #[inline]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The local alphabet (symbol index → label name).
    #[inline]
    pub fn alphabet(&self) -> &[String] {
        &self.alphabet
    }

    /// Finds the local symbol for a label name.
    pub fn symbol_of(&self, label: &str) -> Option<u32> {
        self.alphabet
            .iter()
            .position(|l| l == label)
            .map(|i| i as u32)
    }

    /// All transitions out of `state`, sorted by `(symbol, target)`.
    #[inline]
    pub fn transitions_from(&self, state: StateId) -> &[(u32, StateId)] {
        self.transitions.row(state as usize)
    }

    /// Targets reachable from `state` on `symbol`.
    pub fn targets(&self, state: StateId, symbol: u32) -> impl Iterator<Item = StateId> + '_ {
        let row = self.transitions_from(state);
        let lo = row.partition_point(move |&(s, _)| s < symbol);
        row[lo..]
            .iter()
            .take_while(move |&&(s, _)| s == symbol)
            .map(|&(_, t)| t)
    }

    /// Whether `state` accepts.
    #[inline]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state as usize]
    }

    /// Whether the automaton accepts the empty word (the initial state
    /// accepts) — mirrors `Regex::nullable`.
    #[inline]
    pub fn accepts_empty(&self) -> bool {
        self.accepting[0]
    }

    /// The symbols that can begin a match: symbols on transitions out of the
    /// initial state. Used for first-label source pruning in the evaluator.
    pub fn first_symbols(&self) -> Vec<u32> {
        let mut syms: Vec<u32> = self.transitions_from(0).iter().map(|&(s, _)| s).collect();
        syms.dedup();
        syms
    }

    /// Builds the reversal: an ε-free NFA accepting `reverse(L)`.
    ///
    /// Old state `s` becomes `s + 1`; the fresh state 0 is the new initial
    /// state, wired to the reversed transitions into old accepting states.
    /// The new accepting set is `{old initial}` (state 1), plus state 0
    /// when the original accepts ε. Backward RPQ evaluation ("which
    /// sources reach this target?") runs this automaton over reversed
    /// adjacency.
    pub fn reverse(&self) -> Nfa {
        let n = self.state_count();
        let mut rows: Vec<Vec<(u32, StateId)>> = vec![Vec::new(); n + 1];
        for s in 0..n as u32 {
            for &(sym, t) in self.transitions_from(s) {
                rows[t as usize + 1].push((sym, s + 1));
                if self.is_accepting(t) {
                    rows[0].push((sym, s + 1));
                }
            }
        }
        let mut accepting = vec![false; n + 1];
        accepting[1] = true; // the old initial state
        accepting[0] = self.accepts_empty();
        Nfa::from_parts(self.alphabet.clone(), rows, accepting)
    }

    /// Runs the NFA over a sequence of local symbols.
    pub fn matches_symbols(&self, symbols: &[u32]) -> bool {
        let mut current = vec![false; self.state_count()];
        current[0] = true;
        let mut next = vec![false; self.state_count()];
        for &sym in symbols {
            next.fill(false);
            let mut any = false;
            for (state, active) in current.iter().enumerate() {
                if !active {
                    continue;
                }
                for t in self.targets(state as StateId, sym) {
                    next[t as usize] = true;
                    any = true;
                }
            }
            if !any {
                return false;
            }
            std::mem::swap(&mut current, &mut next);
        }
        current
            .iter()
            .enumerate()
            .any(|(s, &active)| active && self.accepting[s])
    }

    /// Runs the NFA over a sequence of label names; labels outside the
    /// alphabet reject immediately.
    pub fn matches(&self, labels: &[&str]) -> bool {
        let mut symbols = Vec::with_capacity(labels.len());
        for l in labels {
            match self.symbol_of(l) {
                Some(s) => symbols.push(s),
                None => return false,
            }
        }
        self.matches_symbols(&symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built NFA for `a·b+`: 0 -a-> 1, 1 -b-> 2, 2 -b-> 2; accept {2}.
    fn ab_plus() -> Nfa {
        Nfa::from_parts(
            vec!["a".into(), "b".into()],
            vec![vec![(0, 1)], vec![(1, 2)], vec![(1, 2)]],
            vec![false, false, true],
        )
    }

    #[test]
    fn counts() {
        let n = ab_plus();
        assert_eq!(n.state_count(), 3);
        assert_eq!(n.transition_count(), 3);
        assert_eq!(n.alphabet(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn symbol_lookup() {
        let n = ab_plus();
        assert_eq!(n.symbol_of("a"), Some(0));
        assert_eq!(n.symbol_of("b"), Some(1));
        assert_eq!(n.symbol_of("z"), None);
    }

    #[test]
    fn matching() {
        let n = ab_plus();
        assert!(n.matches(&["a", "b"]));
        assert!(n.matches(&["a", "b", "b", "b"]));
        assert!(!n.matches(&["a"]));
        assert!(!n.matches(&["b"]));
        assert!(!n.matches(&[]));
        assert!(!n.matches(&["a", "b", "a"]));
        assert!(!n.matches(&["a", "z"]));
    }

    #[test]
    fn first_symbols_from_initial() {
        let n = ab_plus();
        assert_eq!(n.first_symbols(), vec![0]);
    }

    #[test]
    fn accepts_empty_flag() {
        let n = ab_plus();
        assert!(!n.accepts_empty());
        let nullable = Nfa::from_parts(
            vec!["a".into()],
            vec![vec![(0, 1)], vec![]],
            vec![true, true],
        );
        assert!(nullable.accepts_empty());
        assert!(nullable.matches(&[]));
    }

    #[test]
    fn targets_filters_by_symbol() {
        let n = Nfa::from_parts(
            vec!["a".into(), "b".into()],
            vec![vec![(0, 1), (0, 2), (1, 2)], vec![], vec![]],
            vec![false, true, true],
        );
        let on_a: Vec<u32> = n.targets(0, 0).collect();
        assert_eq!(on_a, vec![1, 2]);
        let on_b: Vec<u32> = n.targets(0, 1).collect();
        assert_eq!(on_b, vec![2]);
        assert_eq!(n.targets(1, 0).count(), 0);
    }

    #[test]
    fn duplicate_transitions_are_removed() {
        let n = Nfa::from_parts(
            vec!["a".into()],
            vec![vec![(0, 1), (0, 1)], vec![]],
            vec![false, true],
        );
        assert_eq!(n.transition_count(), 1);
    }

    #[test]
    #[should_panic(expected = "state count mismatch")]
    fn mismatched_parts_panic() {
        let _ = Nfa::from_parts(vec![], vec![vec![]], vec![true, false]);
    }

    #[test]
    fn reverse_accepts_reversed_words() {
        let n = ab_plus(); // a·b+
        let r = n.reverse();
        // reverse(a·b+) = b+·a
        assert!(r.matches(&["b", "a"]));
        assert!(r.matches(&["b", "b", "b", "a"]));
        assert!(!r.matches(&["a", "b"]));
        assert!(!r.matches(&["b"]));
        assert!(!r.matches(&[]));
    }

    #[test]
    fn reverse_preserves_nullability() {
        let nullable = Nfa::from_parts(
            vec!["a".into()],
            vec![vec![(0, 1)], vec![]],
            vec![true, true],
        );
        let r = nullable.reverse();
        assert!(r.accepts_empty());
        assert!(r.matches(&[]));
        assert!(r.matches(&["a"]));
    }

    #[test]
    fn double_reverse_preserves_language() {
        let n = ab_plus();
        let rr = n.reverse().reverse();
        for w in [
            vec![],
            vec!["a"],
            vec!["a", "b"],
            vec!["a", "b", "b"],
            vec!["b", "a"],
        ] {
            assert_eq!(n.matches(&w), rr.matches(&w), "word {w:?}");
        }
    }
}
