#![warn(missing_docs)]
//! Finite-automata backends for RPQ pattern matching.
//!
//! RPQ evaluation combines graph traversal with pattern matching, and
//! "finite automata are usually used for pattern matching" (Section II-B,
//! refs \[1\], \[4\], \[5\], \[10\], \[11\]). This crate implements four independent
//! backends over the shared ε-free [`Nfa`] representation:
//!
//! * [`glushkov::build_glushkov`] — the position automaton; ε-free by
//!   construction, one state per label occurrence. This is the default
//!   backend of the evaluator.
//! * [`thompson`] — the classical Thompson construction with ε-transitions,
//!   plus ε-elimination. Exists to cross-validate Glushkov and for the
//!   automata ablation bench.
//! * [`dfa`] — subset-construction DFA with a state budget.
//! * [`derivative`] — a lazy Brzozowski-derivative matcher, used as an
//!   *independent oracle* in tests (it shares no code with the NFA path).
//!
//! [`equivalence`] adds an exact language-equivalence decision procedure
//! on top of the derivative backend (bisimulation), used by tests to verify
//! semantic-preservation claims without sampling.
//!
//! All backends accept any [`rpq_regex::Regex`] including nested closures.
//!
//! ```
//! use rpq_automata::{build_glushkov, language_equivalent};
//! use rpq_regex::Regex;
//!
//! let q = Regex::parse("d.(b.c)+.c").unwrap();
//! let nfa = build_glushkov(&q);
//! assert_eq!(nfa.state_count(), 5); // the q0..q4 NFA of Fig. 3
//! assert!(nfa.matches(&["d", "b", "c", "c"]));
//! assert!(language_equivalent(
//!     &Regex::parse("a+").unwrap(),
//!     &Regex::parse("a.a*").unwrap(),
//! ));
//! ```

pub mod derivative;
pub mod dfa;
pub mod equivalence;
pub mod glushkov;
pub mod minimize;
pub mod nfa;
pub mod thompson;

pub use derivative::DerivativeMatcher;
pub use dfa::Dfa;
pub use equivalence::{language_equivalent, language_subset};
pub use glushkov::build_glushkov;
pub use nfa::{Nfa, StateId};
pub use thompson::build_thompson;
