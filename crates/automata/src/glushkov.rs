//! Glushkov (position) automaton construction.
//!
//! The Glushkov automaton has one state per label *occurrence* (position)
//! plus an initial state, and is ε-free by construction — exactly the shape
//! the product-graph traversal wants. The construction computes the classic
//! `nullable` / `first` / `last` / `follow` sets in one AST pass.

use crate::nfa::Nfa;
use rpq_regex::Regex;
use rustc_hash::FxHashMap;

/// Builds the Glushkov position automaton for `r`.
///
/// State 0 is initial; state `p` (1-based) corresponds to the `p`-th label
/// occurrence in left-to-right order. Accepting states are the `last` set,
/// plus state 0 when `r` is nullable.
pub fn build_glushkov(r: &Regex) -> Nfa {
    let mut b = Builder::default();
    let info = b.walk(r);

    let state_count = b.position_symbol.len() + 1;
    let mut rows: Vec<Vec<(u32, u32)>> = vec![Vec::new(); state_count];
    for &p in &info.first {
        rows[0].push((b.position_symbol[p as usize - 1], p));
    }
    for (p, follows) in b.follow.iter().enumerate() {
        for &q in follows {
            rows[p + 1].push((b.position_symbol[q as usize - 1], q));
        }
    }

    let mut accepting = vec![false; state_count];
    accepting[0] = info.nullable;
    for &p in &info.last {
        accepting[p as usize] = true;
    }

    Nfa::from_parts(b.alphabet, rows, accepting)
}

/// `nullable` / `first` / `last` triple for a sub-expression.
struct Info {
    nullable: bool,
    first: Vec<u32>,
    last: Vec<u32>,
}

impl Info {
    fn empty() -> Self {
        Info {
            nullable: false,
            first: Vec::new(),
            last: Vec::new(),
        }
    }
}

#[derive(Default)]
struct Builder {
    alphabet: Vec<String>,
    symbol_index: FxHashMap<String, u32>,
    /// 0-based position → local symbol.
    position_symbol: Vec<u32>,
    /// 0-based position → set of follow positions (1-based ids).
    follow: Vec<Vec<u32>>,
}

impl Builder {
    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&s) = self.symbol_index.get(label) {
            return s;
        }
        let s = self.alphabet.len() as u32;
        self.alphabet.push(label.to_owned());
        self.symbol_index.insert(label.to_owned(), s);
        s
    }

    fn new_position(&mut self, symbol: u32) -> u32 {
        self.position_symbol.push(symbol);
        self.follow.push(Vec::new());
        self.position_symbol.len() as u32 // 1-based
    }

    fn add_follow(&mut self, from: &[u32], to: &[u32]) {
        for &p in from {
            let row = &mut self.follow[p as usize - 1];
            for &q in to {
                if !row.contains(&q) {
                    row.push(q);
                }
            }
        }
    }

    fn walk(&mut self, r: &Regex) -> Info {
        match r {
            Regex::Empty => Info::empty(),
            Regex::Epsilon => Info {
                nullable: true,
                first: Vec::new(),
                last: Vec::new(),
            },
            Regex::Label(l) => {
                let sym = self.intern(l);
                let p = self.new_position(sym);
                Info {
                    nullable: false,
                    first: vec![p],
                    last: vec![p],
                }
            }
            Regex::Concat(parts) => {
                let mut acc = Info {
                    nullable: true,
                    first: Vec::new(),
                    last: Vec::new(),
                };
                for part in parts {
                    let info = self.walk(part);
                    self.add_follow(&acc.last, &info.first);
                    if acc.nullable {
                        acc.first.extend_from_slice(&info.first);
                    }
                    if info.nullable {
                        acc.last.extend_from_slice(&info.last);
                    } else {
                        acc.last = info.last;
                    }
                    acc.nullable &= info.nullable;
                }
                acc
            }
            Regex::Alt(parts) => {
                let mut acc = Info::empty();
                for part in parts {
                    let info = self.walk(part);
                    acc.nullable |= info.nullable;
                    acc.first.extend(info.first);
                    acc.last.extend(info.last);
                }
                acc
            }
            Regex::Plus(inner) => {
                let info = self.walk(inner);
                self.add_follow(&info.last, &info.first);
                info
            }
            Regex::Star(inner) => {
                let info = self.walk(inner);
                self.add_follow(&info.last, &info.first);
                Info {
                    nullable: true,
                    ..info
                }
            }
            Regex::Optional(inner) => {
                let info = self.walk(inner);
                Info {
                    nullable: true,
                    ..info
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfa(src: &str) -> Nfa {
        build_glushkov(&Regex::parse(src).unwrap())
    }

    #[test]
    fn single_label() {
        let n = nfa("a");
        assert_eq!(n.state_count(), 2);
        assert!(n.matches(&["a"]));
        assert!(!n.matches(&[]));
        assert!(!n.matches(&["a", "a"]));
    }

    #[test]
    fn concat() {
        let n = nfa("a.b.c");
        assert_eq!(n.state_count(), 4);
        assert!(n.matches(&["a", "b", "c"]));
        assert!(!n.matches(&["a", "b"]));
        assert!(!n.matches(&["a", "c", "b"]));
    }

    #[test]
    fn alternation() {
        let n = nfa("a|b.c");
        assert!(n.matches(&["a"]));
        assert!(n.matches(&["b", "c"]));
        assert!(!n.matches(&["b"]));
        assert!(!n.matches(&["a", "b", "c"]));
    }

    #[test]
    fn kleene_plus() {
        let n = nfa("(b.c)+");
        assert!(!n.matches(&[]));
        assert!(n.matches(&["b", "c"]));
        assert!(n.matches(&["b", "c", "b", "c"]));
        assert!(!n.matches(&["b", "c", "b"]));
        assert!(!n.accepts_empty());
    }

    #[test]
    fn kleene_star() {
        let n = nfa("(b.c)*");
        assert!(n.matches(&[]));
        assert!(n.accepts_empty());
        assert!(n.matches(&["b", "c", "b", "c"]));
        assert!(!n.matches(&["c"]));
    }

    #[test]
    fn optional() {
        let n = nfa("a.b?.c");
        assert!(n.matches(&["a", "c"]));
        assert!(n.matches(&["a", "b", "c"]));
        assert!(!n.matches(&["a", "b", "b", "c"]));
    }

    #[test]
    fn paper_query_language() {
        // d·(b·c)+·c accepts dbcc, dbcbcc, ... (Example 1).
        let n = nfa("d.(b.c)+.c");
        assert!(n.matches(&["d", "b", "c", "c"]));
        assert!(n.matches(&["d", "b", "c", "b", "c", "c"]));
        assert!(!n.matches(&["d", "c"]));
        assert!(!n.matches(&["d", "b", "c"]));
        assert!(!n.matches(&["b", "c", "c"]));
        // The Glushkov automaton for this query has 5 states — exactly the
        // q0..q4 NFA drawn in Fig. 3.
        assert_eq!(n.state_count(), 5);
    }

    #[test]
    fn nested_closures() {
        let n = nfa("(a.b+.c)+");
        assert!(n.matches(&["a", "b", "c"]));
        assert!(n.matches(&["a", "b", "b", "c"]));
        assert!(n.matches(&["a", "b", "c", "a", "b", "b", "c"]));
        assert!(!n.matches(&["a", "c"]));
        assert!(!n.matches(&["a", "b"]));
    }

    #[test]
    fn nullable_concat_of_stars() {
        let n = nfa("a*.b*");
        assert!(n.matches(&[]));
        assert!(n.matches(&["a"]));
        assert!(n.matches(&["b"]));
        assert!(n.matches(&["a", "a", "b"]));
        assert!(!n.matches(&["b", "a"]));
    }

    #[test]
    fn empty_language() {
        let n = build_glushkov(&Regex::Empty);
        assert_eq!(n.state_count(), 1);
        assert!(!n.matches(&[]));
        assert!(!n.accepts_empty());
        assert!(n.first_symbols().is_empty());
    }

    #[test]
    fn epsilon_language() {
        let n = build_glushkov(&Regex::Epsilon);
        assert_eq!(n.state_count(), 1);
        assert!(n.matches(&[]));
        assert!(!n.matches(&["a"]));
    }

    #[test]
    fn state_count_is_positions_plus_one() {
        // Glushkov has exactly one state per label occurrence + initial.
        assert_eq!(nfa("a.a.a").state_count(), 4);
        assert_eq!(nfa("(a|b)+").state_count(), 3);
        assert_eq!(nfa("(a.b)*.b+.(a.b+.c)+").state_count(), 7);
    }

    #[test]
    fn repeated_label_shares_symbol() {
        let n = nfa("a.a");
        assert_eq!(n.alphabet().len(), 1);
        assert_eq!(n.state_count(), 3);
    }

    #[test]
    fn star_of_alt() {
        let n = nfa("(a|b)*");
        assert!(n.matches(&[]));
        assert!(n.matches(&["a", "b", "a", "a"]));
        assert!(!n.matches(&["a", "z"]));
    }
}
