//! Closure-free clause evaluation by label-edge joins.
//!
//! A DNF clause without Kleene closures is a plain label sequence
//! `l₁·l₂·…·lₖ`; its result is the relational composition of the base edge
//! relations (Lemma 4 applied k−1 times):
//! `(l₁·…·lₖ)_G = l₁_G ⋈ l₂_G ⋈ … ⋈ lₖ_G`.
//!
//! Two entry points:
//!
//! * [`eval_label_sequence`] — the full relation, evaluated left-to-right
//!   with hash-group joins (used by `EvalRPQwithoutKC`, Algorithm 1 line 6);
//! * [`eval_label_sequence_from`] — `EvalRestrictedRPQ(Post, v)` of
//!   Algorithm 2 line 14: frontier expansion from a single start vertex.

use rpq_graph::{LabelId, LabeledMultigraph, PairSet, VertexId};

/// Evaluates a label sequence over the whole graph.
///
/// An empty sequence is `ε` and yields the identity relation.
pub fn eval_label_sequence(graph: &LabeledMultigraph, labels: &[LabelId]) -> PairSet {
    let Some((&first, rest)) = labels.split_first() else {
        return PairSet::identity(graph.vertex_count());
    };
    // Start from the base relation of the first label...
    let mut pairs: Vec<(VertexId, VertexId)> = graph.edges_with_label(first).to_vec();
    // ...and extend the frontier one label at a time.
    for &label in rest {
        let mut next: Vec<(VertexId, VertexId)> = Vec::with_capacity(pairs.len());
        for (start, mid) in pairs {
            for &(_, end) in graph.out_with_label(mid, label) {
                next.push((start, end));
            }
        }
        next.sort_unstable();
        next.dedup();
        pairs = next;
        if pairs.is_empty() {
            break;
        }
    }
    PairSet::from_pairs(pairs)
}

/// Evaluates a label sequence from one start vertex, returning the sorted
/// distinct end vertices (`EvalRestrictedRPQ`).
///
/// An empty sequence yields `[source]`.
pub fn eval_label_sequence_from(
    graph: &LabeledMultigraph,
    labels: &[LabelId],
    source: VertexId,
) -> Vec<VertexId> {
    let mut frontier = vec![source];
    for &label in labels {
        let mut next: Vec<VertexId> = Vec::new();
        for v in frontier {
            next.extend(graph.out_with_label(v, label).iter().map(|&(_, d)| d));
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

/// Resolves label names against the graph alphabet and evaluates the
/// sequence. A name missing from the alphabet makes the result empty
/// (unless the sequence is empty, which is `ε`).
pub fn eval_label_names(graph: &LabeledMultigraph, names: &[String]) -> PairSet {
    let mut ids = Vec::with_capacity(names.len());
    for name in names {
        match graph.labels().get(name) {
            Some(id) => ids.push(id),
            None => return PairSet::new(),
        }
    }
    eval_label_sequence(graph, &ids)
}

/// Resolves names and runs [`eval_label_sequence_from`]; unknown names give
/// an empty frontier.
pub fn eval_label_names_from(
    graph: &LabeledMultigraph,
    names: &[String],
    source: VertexId,
) -> Vec<VertexId> {
    let mut ids = Vec::with_capacity(names.len());
    for name in names {
        match graph.labels().get(name) {
            Some(id) => ids.push(id),
            None => return Vec::new(),
        }
    }
    eval_label_sequence_from(graph, &ids, source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::fixtures::{diamond, paper_graph};

    fn ids(g: &LabeledMultigraph, names: &[&str]) -> Vec<LabelId> {
        names.iter().map(|n| g.labels().get(n).unwrap()).collect()
    }

    fn pairs(ps: &PairSet) -> Vec<(u32, u32)> {
        ps.iter().map(|(a, b)| (a.raw(), b.raw())).collect()
    }

    #[test]
    fn single_label_is_base_relation() {
        let g = paper_graph();
        let r = eval_label_sequence(&g, &ids(&g, &["b"]));
        let b = g.labels().get("b").unwrap();
        assert_eq!(r.len(), g.label_edge_count(b));
    }

    #[test]
    fn example3_bc_join() {
        let g = paper_graph();
        let r = eval_label_sequence(&g, &ids(&g, &["b", "c"]));
        assert_eq!(pairs(&r), vec![(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)]);
    }

    #[test]
    fn empty_sequence_is_identity() {
        let g = diamond();
        assert_eq!(eval_label_sequence(&g, &[]), PairSet::identity(5));
    }

    #[test]
    fn three_hop_join() {
        let g = diamond();
        let r = eval_label_sequence(&g, &ids(&g, &["a", "b", "c"]));
        assert_eq!(pairs(&r), vec![(0, 4)]);
    }

    #[test]
    fn dead_join_short_circuits() {
        let g = diamond();
        let r = eval_label_sequence(&g, &ids(&g, &["c", "a"]));
        assert!(r.is_empty());
    }

    #[test]
    fn from_source_expansion() {
        let g = paper_graph();
        let seq = ids(&g, &["b", "c"]);
        let ends: Vec<u32> = eval_label_sequence_from(&g, &seq, VertexId(2))
            .iter()
            .map(|v| v.raw())
            .collect();
        assert_eq!(ends, vec![4, 6]);
        let ends = eval_label_sequence_from(&g, &seq, VertexId(0));
        assert!(ends.is_empty());
    }

    #[test]
    fn from_source_empty_sequence() {
        let g = paper_graph();
        assert_eq!(
            eval_label_sequence_from(&g, &[], VertexId(3)),
            vec![VertexId(3)]
        );
    }

    #[test]
    fn names_resolution() {
        let g = paper_graph();
        let r = eval_label_names(&g, &["b".into(), "c".into()]);
        assert_eq!(r.len(), 5);
        // Unknown label name → empty relation.
        assert!(eval_label_names(&g, &["nope".into()]).is_empty());
        assert!(eval_label_names(&g, &["b".into(), "nope".into()]).is_empty());
        // Empty name list is ε.
        assert_eq!(eval_label_names(&g, &[]), PairSet::identity(10));
        assert!(eval_label_names_from(&g, &["nope".into()], VertexId(2)).is_empty());
    }

    #[test]
    fn agrees_with_product_evaluator() {
        use crate::product::evaluate;
        use rpq_regex::Regex;
        let g = paper_graph();
        for q in ["b", "b.c", "c.b", "b.c.c", "d.b", "a.c"] {
            let names: Vec<String> = q.split('.').map(String::from).collect();
            let by_join = eval_label_names(&g, &names);
            let by_bfs = evaluate(&g, &Regex::parse(q).unwrap());
            assert_eq!(by_join, by_bfs, "query {q}");
        }
    }

    #[test]
    fn duplicate_intermediate_paths_collapse() {
        // diamond: 0 -a-> {1,2} -b-> 3; two paths produce one pair.
        let g = diamond();
        let r = eval_label_sequence(&g, &ids(&g, &["a", "b"]));
        assert_eq!(pairs(&r), vec![(0, 3)]);
    }
}
