//! Automaton-based RPQ evaluation over the product graph.
//!
//! The method of Yakovets et al. \[5\] as described in Section II-B and
//! Example 2: for each candidate start vertex, BFS over `(vertex, state)`
//! pairs of the product of the graph with the query NFA. A pair
//! `(start, v)` is emitted whenever an accepting state is reached at `v`.
//! A branch terminates when its `(vertex, state)` pair has already been
//! visited from the same start — the duplicate-avoidance rule the paper
//! illustrates with `p(v7, d, v4, b, v1, c, v2, b, v5, c, v4, b, v1)`.
//!
//! Start vertices are pruned to those with at least one out-edge whose
//! label can begin a match (`first(R)`); for nullable queries the identity
//! relation over *all* vertices is unioned in, per Definition 2 (the
//! zero-length path satisfies a nullable query at every vertex).

use rpq_automata::{build_glushkov, Nfa};
use rpq_graph::{EpochVisited, LabeledMultigraph, PairSet, VertexId};
use rpq_regex::Regex;
use std::cell::OnceCell;

/// A reusable evaluator binding a query automaton to a graph's alphabet.
///
/// Construction resolves the regex alphabet against the graph's label
/// dictionary once; evaluation then runs one product BFS per start vertex
/// with O(1)-clear scratch buffers shared across sources.
pub struct ProductEvaluator<'g> {
    graph: &'g LabeledMultigraph,
    nfa: Nfa,
    /// graph label id → local NFA symbol (u32::MAX = not in query alphabet).
    sym_of_label: Vec<u32>,
    nullable: bool,
    /// The identity relation over `V`, built on first nullable use and
    /// reused across evaluations (it is `O(|V|)` to build and nullable
    /// queries union it in on *every* full evaluation).
    identity: OnceCell<PairSet>,
}

const NO_SYM: u32 = u32::MAX;

impl<'g> ProductEvaluator<'g> {
    /// Compiles `query` against `graph`.
    pub fn new(graph: &'g LabeledMultigraph, query: &Regex) -> Self {
        let nfa = build_glushkov(query);
        let mut sym_of_label = vec![NO_SYM; graph.label_count()];
        for (sym, name) in nfa.alphabet().iter().enumerate() {
            if let Some(lid) = graph.labels().get(name) {
                sym_of_label[lid.index()] = sym as u32;
            }
        }
        let nullable = nfa.accepts_empty();
        Self {
            graph,
            nfa,
            sym_of_label,
            nullable,
            identity: OnceCell::new(),
        }
    }

    /// The cached identity relation `ε_G` over the graph's vertex set.
    fn identity(&self) -> &PairSet {
        self.identity
            .get_or_init(|| PairSet::identity(self.graph.vertex_count()))
    }

    /// The compiled automaton.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Candidate start vertices: vertices with an out-edge whose label can
    /// begin a match. Sorted ascending.
    pub fn candidate_sources(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = Vec::new();
        for sym in self.nfa.first_symbols() {
            // Map local symbol back to a graph label, if it exists there.
            let name = &self.nfa.alphabet()[sym as usize];
            if let Some(lid) = self.graph.labels().get(name) {
                out.extend(self.graph.sources_with_label(lid));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Evaluates the full query result `R_G` (Definition 2).
    pub fn evaluate(&self) -> PairSet {
        let sources = self.candidate_sources();
        let mut result = self.evaluate_from_sources(&sources);
        if self.nullable {
            result.union_in_place(self.identity());
        }
        result
    }

    /// Evaluates restricted to the given start vertices. The identity pairs
    /// of nullable queries are included for exactly the given sources.
    pub fn evaluate_from(&self, sources: &[VertexId]) -> PairSet {
        let mut result = self.evaluate_from_sources(sources);
        if self.nullable {
            let id: PairSet = sources.iter().map(|&v| (v, v)).collect();
            result.union_in_place(&id);
        }
        result
    }

    /// End vertices of matching paths from a single start vertex, ascending.
    /// (Zero-length matches for nullable queries are included.)
    pub fn ends_from(&self, source: VertexId) -> Vec<VertexId> {
        let q = self.nfa.state_count();
        let mut visited = EpochVisited::new(self.graph.vertex_count() * q);
        let mut queue: Vec<(VertexId, u32)> = Vec::new();
        let mut ends = self.bfs_one(source, &mut visited, &mut queue);
        if self.nullable && !ends.contains(&source) {
            ends.push(source);
            ends.sort_unstable();
        }
        ends
    }

    /// Evaluates the query restricted to matching paths of length at most
    /// `max_len` edges.
    ///
    /// Production property-path engines commonly cap traversal depth;
    /// BFS order makes the cap exact — every `(vertex, state)` pair is
    /// first reached at its minimal depth, so pruning deeper expansions
    /// cannot lose a within-budget match. Nullable queries contribute the
    /// identity relation (length 0) as usual.
    pub fn evaluate_bounded(&self, max_len: usize) -> PairSet {
        let q = self.nfa.state_count() as u32;
        let mut visited = EpochVisited::new(self.graph.vertex_count() * q as usize);
        let mut queue: Vec<(VertexId, u32, u32)> = Vec::new();
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        for src in self.candidate_sources() {
            visited.clear();
            queue.clear();
            visited.insert(src.raw() * q);
            queue.push((src, 0, 0));
            let mut head = 0;
            while head < queue.len() {
                let (v, state, depth) = queue[head];
                head += 1;
                if depth as usize >= max_len {
                    continue;
                }
                for &(label, dst) in self.graph.out_edges(v) {
                    let sym = self.sym_of_label[label.index()];
                    if sym == NO_SYM {
                        continue;
                    }
                    for target in self.nfa.targets(state, sym) {
                        if visited.insert(dst.raw() * q + target) {
                            if self.nfa.is_accepting(target) {
                                pairs.push((src, dst));
                            }
                            queue.push((dst, target, depth + 1));
                        }
                    }
                }
            }
        }
        let mut result = PairSet::from_pairs(pairs);
        if self.nullable {
            result.union_in_place(self.identity());
        }
        result
    }

    /// Start vertices of matching paths **into** a single target vertex,
    /// ascending — backward evaluation via the reversed automaton over
    /// reversed adjacency. Zero-length matches for nullable queries are
    /// included (`target` itself).
    ///
    /// This answers the selective query "who can reach `target` through
    /// `R`?" without evaluating the full relation.
    pub fn starts_to(&self, target: VertexId) -> Vec<VertexId> {
        let rev = self.nfa.reverse();
        let q = rev.state_count() as u32;
        let mut visited = EpochVisited::new(self.graph.vertex_count() * q as usize);
        let mut queue: Vec<(VertexId, u32)> = Vec::new();
        let mut starts: Vec<VertexId> = Vec::new();
        visited.insert(target.raw() * q);
        queue.push((target, 0));
        let mut head = 0;
        while head < queue.len() {
            let (v, state) = queue[head];
            head += 1;
            // Reversed traversal: walk in-edges of the graph.
            for &(label, src) in self.graph.in_edges(v) {
                let sym = self.sym_of_label[label.index()];
                if sym == NO_SYM {
                    continue;
                }
                for next in rev.targets(state, sym) {
                    if visited.insert(src.raw() * q + next) {
                        if rev.is_accepting(next) {
                            starts.push(src);
                        }
                        queue.push((src, next));
                    }
                }
            }
        }
        if self.nullable && !starts.contains(&target) {
            starts.push(target);
        }
        starts.sort_unstable();
        starts.dedup();
        starts
    }

    fn evaluate_from_sources(&self, sources: &[VertexId]) -> PairSet {
        let q = self.nfa.state_count();
        let mut visited = EpochVisited::new(self.graph.vertex_count() * q);
        let mut queue: Vec<(VertexId, u32)> = Vec::new();
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
        for &src in sources {
            for end in self.bfs_one(src, &mut visited, &mut queue) {
                pairs.push((src, end));
            }
        }
        PairSet::from_pairs(pairs)
    }

    /// One product BFS from `source`; returns sorted end vertices reached in
    /// an accepting state via a path of length ≥ 1.
    fn bfs_one(
        &self,
        source: VertexId,
        visited: &mut EpochVisited,
        queue: &mut Vec<(VertexId, u32)>,
    ) -> Vec<VertexId> {
        let q = self.nfa.state_count() as u32;
        visited.clear();
        queue.clear();
        let mut ends: Vec<VertexId> = Vec::new();
        // Emitted-end dedup piggybacks on the (vertex, state) space: an end
        // vertex is recorded at most once per accepting state; the final
        // sort+dedup collapses the rest.
        visited.insert(source.raw() * q); // (source, initial)
        queue.push((source, 0));
        let mut head = 0;
        while head < queue.len() {
            let (v, state) = queue[head];
            head += 1;
            for &(label, dst) in self.graph.out_edges(v) {
                let sym = self.sym_of_label[label.index()];
                if sym == NO_SYM {
                    continue;
                }
                for target in self.nfa.targets(state, sym) {
                    if visited.insert(dst.raw() * q + target) {
                        if self.nfa.is_accepting(target) {
                            ends.push(dst);
                        }
                        queue.push((dst, target));
                    }
                }
            }
        }
        ends.sort_unstable();
        ends.dedup();
        ends
    }
}

/// Convenience one-shot evaluation of `query` on `graph`.
pub fn evaluate(graph: &LabeledMultigraph, query: &Regex) -> PairSet {
    ProductEvaluator::new(graph, query).evaluate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::fixtures::{diamond, paper_graph, triangle};

    fn eval(g: &LabeledMultigraph, q: &str) -> PairSet {
        evaluate(g, &Regex::parse(q).unwrap())
    }

    fn pairs(ps: &PairSet) -> Vec<(u32, u32)> {
        ps.iter().map(|(a, b)| (a.raw(), b.raw())).collect()
    }

    #[test]
    fn example1_paper_query() {
        // (d·(b·c)+·c)_G = {(v7,v5), (v7,v3)}.
        let g = paper_graph();
        let r = eval(&g, "d.(b.c)+.c");
        assert_eq!(pairs(&r), vec![(7, 3), (7, 5)]);
    }

    #[test]
    fn example3_bc_pairs() {
        let g = paper_graph();
        let r = eval(&g, "b.c");
        assert_eq!(pairs(&r), vec![(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)]);
    }

    #[test]
    fn example4_bc_plus_equals_tc() {
        // (b·c)+_G from Example 4.
        let g = paper_graph();
        let r = eval(&g, "(b.c)+");
        assert_eq!(
            pairs(&r),
            vec![
                (2, 2),
                (2, 4),
                (2, 6),
                (3, 3),
                (3, 5),
                (4, 2),
                (4, 4),
                (4, 6),
                (5, 3),
                (5, 5)
            ]
        );
    }

    #[test]
    fn single_label_is_edge_relation() {
        let g = paper_graph();
        let d = g.labels().get("d").unwrap();
        let r = eval(&g, "d");
        let expect: Vec<(u32, u32)> = g
            .edges_with_label(d)
            .iter()
            .map(|&(s, t)| (s.raw(), t.raw()))
            .collect();
        assert_eq!(pairs(&r), expect);
    }

    #[test]
    fn star_adds_identity_over_all_vertices() {
        let g = paper_graph();
        let plus = eval(&g, "(b.c)+");
        let star = eval(&g, "(b.c)*");
        let id = PairSet::identity(g.vertex_count());
        assert_eq!(star, plus.union(&id));
        // Isolated-from-bc vertices like v0, v8, v9 still have (v,v).
        assert!(star.contains(VertexId(0), VertexId(0)));
        assert!(star.contains(VertexId(9), VertexId(9)));
    }

    #[test]
    fn triangle_a_plus_is_complete() {
        let g = triangle();
        let r = eval(&g, "a+");
        assert_eq!(r.len(), 9);
        for i in 0..3u32 {
            for j in 0..3u32 {
                assert!(r.contains(VertexId(i), VertexId(j)));
            }
        }
    }

    #[test]
    fn diamond_concat() {
        let g = diamond();
        let r = eval(&g, "a.b.c");
        assert_eq!(pairs(&r), vec![(0, 4)]);
    }

    #[test]
    fn alternation_unions_branches() {
        let g = diamond();
        let r = eval(&g, "a|b");
        assert_eq!(pairs(&r), vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn unknown_label_yields_empty() {
        let g = triangle();
        assert!(eval(&g, "zz").is_empty());
        assert!(eval(&g, "a.zz").is_empty());
        // Nullable query over unknown labels still yields identity.
        let r = eval(&g, "zz*");
        assert_eq!(r, PairSet::identity(3));
    }

    #[test]
    fn epsilon_query_is_identity() {
        let g = diamond();
        assert_eq!(eval(&g, "()"), PairSet::identity(5));
    }

    #[test]
    fn optional_query() {
        let g = diamond();
        let r = eval(&g, "a?");
        let expect = eval(&g, "a").union(&PairSet::identity(5));
        assert_eq!(r, expect);
    }

    #[test]
    fn candidate_sources_prune_by_first_label() {
        let g = paper_graph();
        let ev = ProductEvaluator::new(&g, &Regex::parse("d.(b.c)+.c").unwrap());
        // Only v7 has a d-labeled out-edge.
        assert_eq!(ev.candidate_sources(), vec![VertexId(7)]);
    }

    #[test]
    fn evaluate_from_restricts_sources() {
        let g = paper_graph();
        let ev = ProductEvaluator::new(&g, &Regex::parse("(b.c)+").unwrap());
        let r = ev.evaluate_from(&[VertexId(4)]);
        assert_eq!(pairs(&r), vec![(4, 2), (4, 4), (4, 6)]);
    }

    #[test]
    fn evaluate_from_nullable_adds_identity_for_sources_only() {
        let g = paper_graph();
        let ev = ProductEvaluator::new(&g, &Regex::parse("(b.c)*").unwrap());
        let r = ev.evaluate_from(&[VertexId(9)]);
        assert_eq!(pairs(&r), vec![(9, 9)]);
    }

    #[test]
    fn ends_from_single_source() {
        let g = paper_graph();
        let ev = ProductEvaluator::new(&g, &Regex::parse("(b.c)+").unwrap());
        let ends: Vec<u32> = ev.ends_from(VertexId(2)).iter().map(|v| v.raw()).collect();
        assert_eq!(ends, vec![2, 4, 6]);
        let ev = ProductEvaluator::new(&g, &Regex::parse("(b.c)*").unwrap());
        let ends: Vec<u32> = ev.ends_from(VertexId(9)).iter().map(|v| v.raw()).collect();
        assert_eq!(ends, vec![9]);
    }

    #[test]
    fn bounded_evaluation_respects_length_cap() {
        let g = paper_graph();
        let ev = ProductEvaluator::new(&g, &Regex::parse("d.(b.c)+.c").unwrap());
        // (7,5) needs 4 edges; (7,3) needs 6.
        assert!(ev.evaluate_bounded(3).is_empty());
        let at4 = ev.evaluate_bounded(4);
        assert_eq!(pairs(&at4), vec![(7, 5)]);
        let at6 = ev.evaluate_bounded(6);
        assert_eq!(pairs(&at6), vec![(7, 3), (7, 5)]);
        // A generous cap converges to the unbounded result.
        assert_eq!(ev.evaluate_bounded(1000), ev.evaluate());
    }

    #[test]
    fn bounded_evaluation_monotone_in_cap() {
        let g = paper_graph();
        let ev = ProductEvaluator::new(&g, &Regex::parse("(b.c)+").unwrap());
        let mut prev = PairSet::new();
        for cap in 0..8 {
            let cur = ev.evaluate_bounded(cap);
            assert!(prev.difference(&cur).is_empty(), "cap {cap} lost pairs");
            prev = cur;
        }
        assert_eq!(prev, ev.evaluate());
    }

    #[test]
    fn bounded_nullable_includes_identity_at_zero() {
        let g = paper_graph();
        let ev = ProductEvaluator::new(&g, &Regex::parse("(b.c)*").unwrap());
        let r = ev.evaluate_bounded(0);
        assert_eq!(r, PairSet::identity(10));
    }

    #[test]
    fn starts_to_matches_forward_evaluation() {
        let g = paper_graph();
        for q in ["(b.c)+", "d.(b.c)+.c", "b.c", "(b.c)*", "a|e"] {
            let ev = ProductEvaluator::new(&g, &Regex::parse(q).unwrap());
            let full = ev.evaluate();
            for target in g.vertices() {
                let expect: Vec<VertexId> = full
                    .iter()
                    .filter(|&(_, e)| e == target)
                    .map(|(s, _)| s)
                    .collect();
                assert_eq!(ev.starts_to(target), expect, "query {q}, target {target}");
            }
        }
    }

    #[test]
    fn starts_to_nullable_includes_target() {
        let g = paper_graph();
        let ev = ProductEvaluator::new(&g, &Regex::parse("(b.c)*").unwrap());
        let starts = ev.starts_to(VertexId(9));
        assert_eq!(starts, vec![VertexId(9)]);
    }

    #[test]
    fn nullable_identity_is_cached_across_evaluations() {
        // Regression: every nullable evaluation used to rebuild the O(|V|)
        // identity relation; it is now built once per evaluator and reused.
        let g = paper_graph();
        let ev = ProductEvaluator::new(&g, &Regex::parse("(b.c)*").unwrap());
        let first = ev.evaluate();
        assert!(ev.identity.get().is_some(), "identity not materialized");
        let second = ev.evaluate();
        assert_eq!(first, second);
        assert_eq!(ev.evaluate_bounded(0), PairSet::identity(10));
        // Non-nullable queries never pay for it.
        let plus = ProductEvaluator::new(&g, &Regex::parse("(b.c)+").unwrap());
        plus.evaluate();
        assert!(plus.identity.get().is_none());
    }

    #[test]
    fn cycle_traversal_terminates() {
        // A pure cycle with a query whose NFA loops: termination relies on
        // the (vertex, state) visited rule.
        let g = triangle();
        let r = eval(&g, "(a.a)+");
        // Paths of even length: from each vertex, a^2k reaches all vertices
        // (cycle of length 3, gcd(2,3)=1 ⇒ every vertex reachable).
        assert_eq!(r.len(), 9);
    }

    #[test]
    fn empty_language_query() {
        let g = triangle();
        let r = evaluate(&g, &Regex::Empty);
        assert!(r.is_empty());
    }

    #[test]
    fn multigraph_parallel_labels() {
        // v5 -b-> v6 and v5 -c-> v6 in the paper graph: both must be usable.
        let g = paper_graph();
        assert!(eval(&g, "b").contains(VertexId(5), VertexId(6)));
        assert!(eval(&g, "c").contains(VertexId(5), VertexId(6)));
    }
}
