#![warn(missing_docs)]
//! Single-RPQ evaluation.
//!
//! This crate implements the evaluation methods of Section II-B:
//!
//! * [`product::ProductEvaluator`] — the automaton-based method of Yakovets
//!   et al. \[5\]: traverse the graph from each candidate start vertex while
//!   stepping a finite automaton, terminating a branch when the
//!   `(vertex, state)` pair was already visited from the same source
//!   (Example 2's duplicate-avoidance rule). This is the engine behind the
//!   **NoSharing** baseline and behind `EvalRPQwithoutKC`.
//! * [`label_seq`] — closure-free clause evaluation by label-edge joins,
//!   including `EvalRestrictedRPQ(Post, v)` (Algorithm 2 line 14).
//! * [`planner`] — a rare-label-first join ordering for label sequences in
//!   the spirit of Koschmieder & Leser \[10\] (an optimization the paper cites
//!   as related work; exposed for the planner ablation bench).
//! * [`algebraic`] — an independent relational-algebra evaluator (structural
//!   recursion with semi-naive closure fixpoints). It shares no code with
//!   the automaton path and serves as the *oracle* for every randomized
//!   equivalence test in the workspace.
//! * [`witness`] — shortest witness-path reconstruction for a result pair,
//!   for applications that need the matching path itself.
//!
//! ```
//! use rpq_eval::ProductEvaluator;
//! use rpq_graph::fixtures::paper_graph;
//! use rpq_graph::VertexId;
//! use rpq_regex::Regex;
//!
//! let g = paper_graph();
//! let ev = ProductEvaluator::new(&g, &Regex::parse("d.(b.c)+.c").unwrap());
//! let result = ev.evaluate(); // Example 1: {(v7,v5), (v7,v3)}
//! assert_eq!(result.len(), 2);
//! assert_eq!(ev.starts_to(VertexId(5)), vec![VertexId(7)]);
//! ```

pub mod algebraic;
pub mod label_seq;
pub mod planner;
pub mod product;
pub mod witness;

pub use algebraic::evaluate_algebraic;
pub use label_seq::{eval_label_names, eval_label_sequence, eval_label_sequence_from};
pub use planner::eval_label_sequence_planned;
pub use product::ProductEvaluator;
pub use witness::{find_witness, format_witness, WitnessStep};
