//! Witness-path extraction.
//!
//! RPQ results are vertex *pairs* (Definition 2), but the applications the
//! paper motivates — signal-path detection in protein networks, friend
//! recommendation — usually want to see an actual path. This module runs
//! the product-graph BFS with parent pointers and reconstructs a
//! **shortest** path whose label sequence matches the query.

use rpq_automata::build_glushkov;
use rpq_graph::{LabelId, LabeledMultigraph, VertexId};
use rpq_regex::Regex;
use rustc_hash::FxHashMap;

/// One edge of a witness path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WitnessStep {
    /// Source endpoint.
    pub from: VertexId,
    /// The edge label.
    pub label: LabelId,
    /// Target endpoint.
    pub to: VertexId,
}

/// Finds a shortest path from `src` to `dst` whose label sequence matches
/// `query`, or `None` if `(src, dst)` is not in the query result.
///
/// A zero-length witness (empty step list) is returned when `src == dst`
/// and the query is nullable.
pub fn find_witness(
    graph: &LabeledMultigraph,
    query: &Regex,
    src: VertexId,
    dst: VertexId,
) -> Option<Vec<WitnessStep>> {
    if src.index() >= graph.vertex_count() || dst.index() >= graph.vertex_count() {
        return None;
    }
    let nfa = build_glushkov(query);
    if src == dst && nfa.accepts_empty() {
        return Some(Vec::new());
    }
    // graph label id -> local NFA symbol.
    let mut sym_of_label = vec![u32::MAX; graph.label_count()];
    for (sym, name) in nfa.alphabet().iter().enumerate() {
        if let Some(lid) = graph.labels().get(name) {
            sym_of_label[lid.index()] = sym as u32;
        }
    }

    // BFS over (vertex, state) with parent pointers.
    let mut parent: FxHashMap<(u32, u32), (u32, u32, LabelId)> = FxHashMap::default();
    let mut queue: Vec<(VertexId, u32)> = vec![(src, 0)];
    parent.insert((src.raw(), 0), (u32::MAX, u32::MAX, LabelId(0)));
    let mut head = 0;
    while head < queue.len() {
        let (v, state) = queue[head];
        head += 1;
        for &(label, next) in graph.out_edges(v) {
            let sym = sym_of_label[label.index()];
            if sym == u32::MAX {
                continue;
            }
            for target in nfa.targets(state, sym) {
                let key = (next.raw(), target);
                if parent.contains_key(&key) {
                    continue;
                }
                parent.insert(key, (v.raw(), state, label));
                if next == dst && nfa.is_accepting(target) {
                    return Some(reconstruct(&parent, next.raw(), target));
                }
                queue.push((next, target));
            }
        }
    }
    None
}

fn reconstruct(
    parent: &FxHashMap<(u32, u32), (u32, u32, LabelId)>,
    mut v: u32,
    mut state: u32,
) -> Vec<WitnessStep> {
    let mut steps = Vec::new();
    loop {
        let &(pv, pstate, label) = parent.get(&(v, state)).expect("reached state has a parent");
        if pv == u32::MAX {
            break;
        }
        steps.push(WitnessStep {
            from: VertexId(pv),
            label,
            to: VertexId(v),
        });
        v = pv;
        state = pstate;
    }
    steps.reverse();
    steps
}

/// Renders a witness as the paper's path notation
/// `p(v_s, l_1, v_1, …, l_n, v_d)`.
pub fn format_witness(graph: &LabeledMultigraph, steps: &[WitnessStep]) -> String {
    match steps.first() {
        None => "p()".to_string(),
        Some(first) => {
            let mut out = format!("p({}", first.from);
            for s in steps {
                out.push_str(&format!(", {}, {}", graph.labels().name(s.label), s.to));
            }
            out.push(')');
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::evaluate;
    use rpq_graph::fixtures::paper_graph;

    fn labels_of(g: &LabeledMultigraph, steps: &[WitnessStep]) -> Vec<String> {
        steps
            .iter()
            .map(|s| g.labels().name(s.label).to_owned())
            .collect()
    }

    #[test]
    fn witness_for_example1_pair() {
        // Fig. 2's shortest witness for (v7, v5): p(v7,d,v4,b,v1,c,v2,c,v5).
        let g = paper_graph();
        let q = Regex::parse("d.(b.c)+.c").unwrap();
        let w = find_witness(&g, &q, VertexId(7), VertexId(5)).unwrap();
        assert_eq!(labels_of(&g, &w), vec!["d", "b", "c", "c"]);
        assert_eq!(w[0].from, VertexId(7));
        assert_eq!(w.last().unwrap().to, VertexId(5));
        // Steps chain correctly.
        for pair in w.windows(2) {
            assert_eq!(pair[0].to, pair[1].from);
        }
        assert_eq!(format_witness(&g, &w), "p(v7, d, v4, b, v1, c, v2, c, v5)");
    }

    #[test]
    fn witness_longer_path() {
        // (v7, v3) needs the 6-edge path p(v7,d,v4,b,v1,c,v2,b,v5,c,v6,c,v3).
        let g = paper_graph();
        let q = Regex::parse("d.(b.c)+.c").unwrap();
        let w = find_witness(&g, &q, VertexId(7), VertexId(3)).unwrap();
        assert_eq!(labels_of(&g, &w), vec!["d", "b", "c", "b", "c", "c"]);
    }

    #[test]
    fn no_witness_for_non_result_pair() {
        let g = paper_graph();
        let q = Regex::parse("d.(b.c)+.c").unwrap();
        assert!(find_witness(&g, &q, VertexId(7), VertexId(4)).is_none());
        assert!(find_witness(&g, &q, VertexId(0), VertexId(5)).is_none());
    }

    #[test]
    fn zero_length_witness_for_nullable_query() {
        let g = paper_graph();
        let q = Regex::parse("(b.c)*").unwrap();
        let w = find_witness(&g, &q, VertexId(9), VertexId(9)).unwrap();
        assert!(w.is_empty());
        assert_eq!(format_witness(&g, &w), "p()");
        // Non-nullable query has no zero-length witness.
        let q = Regex::parse("(b.c)+").unwrap();
        assert!(find_witness(&g, &q, VertexId(9), VertexId(9)).is_none());
    }

    #[test]
    fn witness_exists_iff_pair_in_result() {
        let g = paper_graph();
        for src in ["(b.c)+", "b.c", "d.(b.c)*.c", "a|e.f"] {
            let q = Regex::parse(src).unwrap();
            let result = evaluate(&g, &q);
            for s in 0..g.vertex_count() as u32 {
                for d in 0..g.vertex_count() as u32 {
                    let pair_in = result.contains(VertexId(s), VertexId(d));
                    let witness = find_witness(&g, &q, VertexId(s), VertexId(d));
                    assert_eq!(
                        pair_in,
                        witness.is_some(),
                        "query {src}: ({s},{d}) result={pair_in} witness={witness:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn witness_labels_match_query() {
        use rpq_automata::DerivativeMatcher;
        let g = paper_graph();
        for src in ["(b.c)+", "d.(b.c)+.c", "b.c.c", "(b|c)+"] {
            let q = Regex::parse(src).unwrap();
            let result = evaluate(&g, &q);
            for (s, d) in result.iter() {
                let w = find_witness(&g, &q, s, d).unwrap();
                let labels = labels_of(&g, &w);
                let word: Vec<&str> = labels.iter().map(String::as_str).collect();
                assert!(
                    DerivativeMatcher::new(&q).matches(&word),
                    "witness {word:?} does not match {src}"
                );
            }
        }
    }

    #[test]
    fn out_of_range_vertices() {
        let g = paper_graph();
        let q = Regex::parse("a").unwrap();
        assert!(find_witness(&g, &q, VertexId(99), VertexId(0)).is_none());
        assert!(find_witness(&g, &q, VertexId(0), VertexId(99)).is_none());
    }

    #[test]
    fn witness_is_shortest() {
        // From v2, (b·c)+ reaches v2 itself; shortest loop is 4 edges
        // (v2 b v5 c v4 b v1 c v2).
        let g = paper_graph();
        let q = Regex::parse("(b.c)+").unwrap();
        let w = find_witness(&g, &q, VertexId(2), VertexId(2)).unwrap();
        assert_eq!(w.len(), 4);
    }
}
