//! Independent relational-algebra evaluator (the oracle).
//!
//! Evaluates an RPQ by structural recursion over the expression, entirely in
//! terms of [`PairSet`] algebra:
//!
//! * `∅ → {}`, `ε → identity`, `l → l_G` (the base edge relation),
//! * `r·s → r_G ⋈ s_G` (Lemma 4), `r|s → r_G ∪ s_G`,
//! * `r+ →` semi-naive least fixpoint of `X = r_G ∪ (X ⋈ r_G)`,
//! * `r* → r+_G ∪ identity`, `r? → r_G ∪ identity`.
//!
//! This is polynomial, obviously correct, and shares **no** code with the
//! automaton/product-BFS pipeline — which is exactly what makes it a useful
//! oracle for randomized differential testing. It is also a legitimate
//! (if unoptimized) evaluation backend in its own right; `FullSharing`'s
//! shared `R⁺_G` equals `plus_closure(R_G)` by Lemma 1.

use rpq_graph::{LabeledMultigraph, PairSet};
use rpq_regex::Regex;

/// Evaluates `query` on `graph` by pair-set algebra.
pub fn evaluate_algebraic(graph: &LabeledMultigraph, query: &Regex) -> PairSet {
    match query {
        Regex::Empty => PairSet::new(),
        Regex::Epsilon => PairSet::identity(graph.vertex_count()),
        Regex::Label(name) => match graph.labels().get(name) {
            Some(id) => PairSet::from_sorted_unique(graph.edges_with_label(id).to_vec()),
            None => PairSet::new(),
        },
        Regex::Concat(parts) => {
            let mut acc = evaluate_algebraic(graph, &parts[0]);
            for p in &parts[1..] {
                if acc.is_empty() {
                    return PairSet::new();
                }
                acc = acc.compose(&evaluate_algebraic(graph, p));
            }
            acc
        }
        Regex::Alt(parts) => {
            let mut acc = PairSet::new();
            for p in parts {
                acc.union_in_place(&evaluate_algebraic(graph, p));
            }
            acc
        }
        Regex::Plus(inner) => plus_closure(&evaluate_algebraic(graph, inner)),
        Regex::Star(inner) => {
            let plus = plus_closure(&evaluate_algebraic(graph, inner));
            plus.union(&PairSet::identity(graph.vertex_count()))
        }
        Regex::Optional(inner) => {
            let base = evaluate_algebraic(graph, inner);
            base.union(&PairSet::identity(graph.vertex_count()))
        }
    }
}

/// Transitive closure of a pair relation by semi-naive iteration:
/// repeatedly join the newest delta against the base relation until no new
/// pairs appear. This is Lemma 1's `TC(G_R)` computed directly on `R_G`.
pub fn plus_closure(base: &PairSet) -> PairSet {
    let mut result = base.clone();
    let mut delta = base.clone();
    while !delta.is_empty() {
        let grown = delta.compose(base);
        let fresh = grown.difference(&result);
        if fresh.is_empty() {
            break;
        }
        result.union_in_place(&fresh);
        delta = fresh;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::fixtures::{diamond, paper_graph, triangle};
    use rpq_graph::VertexId;

    fn eval(g: &LabeledMultigraph, q: &str) -> PairSet {
        evaluate_algebraic(g, &Regex::parse(q).unwrap())
    }

    fn pairs(ps: &PairSet) -> Vec<(u32, u32)> {
        ps.iter().map(|(a, b)| (a.raw(), b.raw())).collect()
    }

    #[test]
    fn example1_oracle() {
        let g = paper_graph();
        assert_eq!(pairs(&eval(&g, "d.(b.c)+.c")), vec![(7, 3), (7, 5)]);
    }

    #[test]
    fn example4_bc_plus() {
        let g = paper_graph();
        assert_eq!(
            pairs(&eval(&g, "(b.c)+")),
            vec![
                (2, 2),
                (2, 4),
                (2, 6),
                (3, 3),
                (3, 5),
                (4, 2),
                (4, 4),
                (4, 6),
                (5, 3),
                (5, 5)
            ]
        );
    }

    #[test]
    fn plus_closure_on_cycle() {
        let base: PairSet = [(0u32, 1u32), (1, 2), (2, 0)].into_iter().collect();
        let tc = plus_closure(&base);
        assert_eq!(tc.len(), 9);
    }

    #[test]
    fn plus_closure_on_chain() {
        let base: PairSet = [(0u32, 1u32), (1, 2), (2, 3)].into_iter().collect();
        let tc = plus_closure(&base);
        assert_eq!(
            pairs(&tc),
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        );
    }

    #[test]
    fn plus_closure_empty_and_self_loop() {
        assert!(plus_closure(&PairSet::new()).is_empty());
        let base: PairSet = [(5u32, 5u32)].into_iter().collect();
        assert_eq!(pairs(&plus_closure(&base)), vec![(5, 5)]);
    }

    #[test]
    fn plus_closure_idempotent() {
        let base: PairSet = [(0u32, 1u32), (1, 0), (1, 2)].into_iter().collect();
        let tc = plus_closure(&base);
        assert_eq!(plus_closure(&tc), tc);
    }

    #[test]
    fn agrees_with_product_evaluator_on_fixtures() {
        use crate::product::evaluate as product_eval;
        let graphs = [paper_graph(), triangle(), diamond()];
        let queries = [
            "a",
            "b.c",
            "(b.c)+",
            "(b.c)*",
            "d.(b.c)+.c",
            "a|b",
            "(a|b).c",
            "a?",
            "a+",
            "(a.a)+",
            "a.b?.c",
            "c.(b|c)*",
            "(b.c)+.c",
            "b*.c*",
        ];
        for (gi, g) in graphs.iter().enumerate() {
            for q in queries {
                let r = Regex::parse(q).unwrap();
                assert_eq!(
                    evaluate_algebraic(g, &r),
                    product_eval(g, &r),
                    "graph {gi}, query {q}"
                );
            }
        }
    }

    #[test]
    fn epsilon_and_empty() {
        let g = triangle();
        assert_eq!(eval(&g, "()"), PairSet::identity(3));
        assert!(evaluate_algebraic(&g, &Regex::Empty).is_empty());
    }

    #[test]
    fn star_includes_isolated_vertices() {
        let g = paper_graph();
        let r = eval(&g, "(b.c)*");
        assert!(r.contains(VertexId(8), VertexId(8)));
    }
}
