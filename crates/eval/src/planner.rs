//! Rare-label-first join planning for label sequences.
//!
//! Koschmieder & Leser \[10\] observed that starting a multi-hop traversal
//! from the label with the fewest edges and growing outward dramatically
//! shrinks intermediate results. This module brings that idea to the
//! closure-free clause evaluator: pick the pivot position with the smallest
//! base relation, then extend left (via reverse adjacency) and right (via
//! forward adjacency).
//!
//! The result is always identical to the left-to-right
//! [`crate::label_seq::eval_label_sequence`]; only the intermediate sizes
//! differ. The `planner_ablation` bench quantifies the gap.

use rpq_graph::{LabelId, LabeledMultigraph, PairSet, VertexId};

/// Evaluates a label sequence with rare-label-first ordering.
pub fn eval_label_sequence_planned(graph: &LabeledMultigraph, labels: &[LabelId]) -> PairSet {
    if labels.is_empty() {
        return PairSet::identity(graph.vertex_count());
    }
    // Pivot: the position whose label has the fewest edges.
    let pivot = (0..labels.len())
        .min_by_key(|&i| graph.label_edge_count(labels[i]))
        .expect("nonempty sequence");

    let mut pairs: Vec<(VertexId, VertexId)> = graph.edges_with_label(labels[pivot]).to_vec();

    // Grow to the right with forward adjacency.
    for &label in &labels[pivot + 1..] {
        let mut next = Vec::with_capacity(pairs.len());
        for (start, mid) in pairs {
            for &(_, end) in graph.out_with_label(mid, label) {
                next.push((start, end));
            }
        }
        next.sort_unstable();
        next.dedup();
        pairs = next;
        if pairs.is_empty() {
            return PairSet::new();
        }
    }

    // Grow to the left with reverse adjacency.
    for &label in labels[..pivot].iter().rev() {
        let mut next = Vec::with_capacity(pairs.len());
        for (mid, end) in pairs {
            for &(_, start) in graph.in_with_label(mid, label) {
                next.push((start, end));
            }
        }
        next.sort_unstable();
        next.dedup();
        pairs = next;
        if pairs.is_empty() {
            return PairSet::new();
        }
    }

    PairSet::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label_seq::eval_label_sequence;
    use rpq_graph::fixtures::{diamond, paper_graph};
    use rpq_graph::GraphBuilder;

    fn ids(g: &LabeledMultigraph, names: &[&str]) -> Vec<LabelId> {
        names.iter().map(|n| g.labels().get(n).unwrap()).collect()
    }

    #[test]
    fn agrees_with_left_to_right() {
        let g = paper_graph();
        for seq in [
            vec!["b"],
            vec!["b", "c"],
            vec!["c", "b"],
            vec!["d", "b"],
            vec!["b", "c", "c"],
            vec!["c", "b", "c"],
            vec!["a", "e", "f"],
        ] {
            let labels = ids(&g, &seq);
            assert_eq!(
                eval_label_sequence_planned(&g, &labels),
                eval_label_sequence(&g, &labels),
                "sequence {seq:?}"
            );
        }
    }

    #[test]
    fn empty_sequence_is_identity() {
        let g = diamond();
        assert_eq!(eval_label_sequence_planned(&g, &[]), PairSet::identity(5));
    }

    #[test]
    fn pivot_prefers_rare_label() {
        // Graph where label "rare" has 1 edge and "common" has many; the
        // planned join must still be correct when the pivot sits in the
        // middle of the sequence.
        let mut b = GraphBuilder::new();
        for i in 0..10u32 {
            b.add_edge(i, "common", i + 1);
        }
        b.add_edge(5, "rare", 100);
        b.add_edge(100, "common", 101);
        let g = b.build();
        let seq = ids(&g, &["common", "rare", "common"]);
        let planned = eval_label_sequence_planned(&g, &seq);
        let naive = eval_label_sequence(&g, &seq);
        assert_eq!(planned, naive);
        assert_eq!(planned.len(), 1); // (4, 101)
        assert!(planned.contains(VertexId(4), VertexId(101)));
    }

    #[test]
    fn dead_pivot_short_circuits() {
        let g = diamond();
        let seq = ids(&g, &["c", "a"]); // no c→a paths
        assert!(eval_label_sequence_planned(&g, &seq).is_empty());
    }
}
