//! Serving sessions: MVCC epoch views published by swap, plus
//! per-connection overlay state.
//!
//! The serving state is split in three, and the split is the whole point:
//!
//! * [`EngineState`] — the **writer** half: one long-lived [`Engine`]
//!   (owning its graph, epoch-aware cache attached) plus the loaded-graph
//!   name, behind a `RwLock` that only **mutating** commands (`load`,
//!   `save`, `gen`, `delta`, `prepare`, `reset`) ever take. Writers
//!   serialize against each other; they never block a reader.
//! * [`PublishedView`] — the **reader** half: an immutable
//!   [`EpochView`] (frozen copy-on-write graph snapshot + shared cache
//!   handles) published after every mutation. Read-only commands
//!   (`query`, `check`, `ends`, `info`, `metrics`, `cache`, `epoch`,
//!   `export`) grab the current view with one `Arc` clone from the swap
//!   slot — the state lock is **never** acquired on the read path — and
//!   evaluate against that pinned epoch no matter how many writers
//!   publish meanwhile. A short ring of recent views
//!   ([`ServerState::retained_views`], default [`RETAINED_VIEWS`]) backs
//!   `query … at <epoch>` time travel; asking for an evicted epoch is a
//!   clean `ERR`.
//! * [`ConnectionOverlay`] — the **per-connection** half: `strategy`,
//!   `threads`, `limit` and `binary` are connection-local. They resolve
//!   against the base configuration at dispatch
//!   ([`ConnectionOverlay::resolve`]) and are applied through
//!   [`EpochView::evaluate_with`], so one client switching to
//!   `FullSharing` or `binary on` never changes what any other client
//!   sees.
//!
//! The publish protocol: a writer mutates the engine under the write
//! lock, pins a fresh [`EpochView`] (`Engine::pin` — O(dirty rows), the
//! untouched adjacency rows are `Arc`-shared with every older view), and
//! swaps it into the slot. Readers holding older views keep them alive
//! through their `Arc`s and observe bitwise-identical results before,
//! during and after the publication. Graph *replacement* (`load`, `gen`)
//! clears the ring first — epochs of different graphs are not comparable.
//!
//! [`Session::execute`] is the single entry point both front-ends call —
//! the REPL feeds it stdin lines, the TCP server feeds it socket lines —
//! so behaviour (and therefore scripts) are identical across transports.

use crate::command::{parse_command, Command, DeltaOp, HELP};
use crate::wire::{encode_pair_set, BinaryResult};
use rpq_core::{Engine, EngineConfig, EpochView, Strategy};
use rpq_graph::{GraphBuilder, GraphDelta, VersionedGraph};
use std::collections::VecDeque;
use std::io::Write as IoWrite;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// How many recent epoch views the server retains for `… at <epoch>`
/// time travel (including the current one).
pub const RETAINED_VIEWS: usize = 8;

/// Default cap on simultaneous TCP connections (`rpq serve --max-conns`).
pub const DEFAULT_MAX_CONNS: usize = 256;

/// Result of executing one command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Payload lines (never starting with `OK`/`ERR` — the framing
    /// invariant of the line protocol).
    pub lines: Vec<String>,
    /// A binary result frame (`RESULT-BIN`), present instead of pair
    /// payload lines when the connection opted in with `binary on`.
    pub binary: Option<BinaryResult>,
    /// Final status line, without its `OK `/`ERR ` prefix.
    pub status: Status,
    /// Whether the session asked to end (`quit`).
    pub quit: bool,
}

/// Success or failure of one command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// The command succeeded; the string is a one-line summary.
    Ok(String),
    /// The command failed; nothing changed beyond what the message says.
    Err(String),
}

impl Response {
    fn ok(summary: impl Into<String>) -> Response {
        Response {
            lines: Vec::new(),
            binary: None,
            status: Status::Ok(summary.into()),
            quit: false,
        }
    }

    fn err(message: impl Into<String>) -> Response {
        Response {
            lines: Vec::new(),
            binary: None,
            status: Status::Err(message.into()),
            quit: false,
        }
    }

    fn with_lines(mut self, lines: Vec<String>) -> Response {
        self.lines = lines;
        self
    }

    fn with_binary(mut self, binary: BinaryResult) -> Response {
        self.binary = Some(binary);
        self
    }

    /// Writes the response in wire format: payload lines, then the binary
    /// frame (header line + raw blob) if present, then one `OK ...` /
    /// `ERR ...` status line. One response is at most three `write_all`
    /// calls on the caller's sink — and each connection's sink is written
    /// by exactly one thread, so responses can never interleave. The
    /// multi-megabyte blob is written directly from the `BinaryResult`,
    /// never staged through a second buffer.
    pub fn write_to<W: IoWrite>(&self, w: &mut W) -> std::io::Result<()> {
        let mut head: Vec<u8> = Vec::new();
        for line in &self.lines {
            debug_assert!(
                !line.starts_with("OK") && !line.starts_with("ERR"),
                "payload line breaks the framing invariant: {line}"
            );
            head.extend_from_slice(line.as_bytes());
            head.push(b'\n');
        }
        if let Some(binary) = &self.binary {
            head.extend_from_slice(binary.header_line().as_bytes());
            head.push(b'\n');
        }
        if !head.is_empty() {
            w.write_all(&head)?;
        }
        if let Some(binary) = &self.binary {
            // No newline after the blob: the reader consumes exactly
            // `byte_len` bytes and the status line follows directly.
            w.write_all(&binary.bytes)?;
        }
        let mut tail: Vec<u8> = Vec::new();
        match &self.status {
            Status::Ok(s) => {
                tail.extend_from_slice(b"OK ");
                tail.extend_from_slice(s.as_bytes());
            }
            Status::Err(s) => {
                tail.extend_from_slice(b"ERR ");
                tail.extend_from_slice(s.as_bytes());
            }
        }
        tail.push(b'\n');
        w.write_all(&tail)
    }

    /// Renders the wire format as a `String` (lossily for binary frames —
    /// transports use [`Response::write_to`]; this is for tests, logs and
    /// the text-only startup path).
    pub fn render(&self) -> String {
        let mut out = Vec::new();
        self.write_to(&mut out).expect("Vec sink cannot fail");
        String::from_utf8_lossy(&out).into_owned()
    }
}

/// The writer half of the serving state: the engine plus the name of the
/// loaded graph, behind the write-path lock inside [`ServerState`].
pub struct EngineState {
    engine: Engine<'static>,
    /// Name of the loaded graph (path, generator tag, or "empty").
    source: String,
}

impl EngineState {
    /// The engine, for inspection.
    pub fn engine(&self) -> &Engine<'static> {
        &self.engine
    }

    /// The loaded graph's name (path, generator tag, or "empty").
    pub fn source(&self) -> &str {
        &self.source
    }
}

/// One published epoch: an immutable [`EpochView`] plus the graph name it
/// was published under. Readers clone the `Arc` out of the swap slot and
/// never look at the engine again.
pub struct PublishedView {
    view: EpochView,
    source: String,
}

impl PublishedView {
    /// The pinned epoch view.
    pub fn view(&self) -> &EpochView {
        &self.view
    }

    /// The graph name at publish time.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The epoch this view is pinned to.
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }
}

/// The shared serving state: the write-locked [`EngineState`], the
/// published-view swap slot and retention ring, connection accounting and
/// publish-latency counters. One of these per server, shared as
/// [`SharedEngine`].
pub struct ServerState {
    state: RwLock<EngineState>,
    /// The swap slot. Readers hold this lock only for the nanoseconds of
    /// one `Arc` clone — never across an evaluation — so a writer's swap
    /// is never blocked behind a slow query and vice versa. (This is the
    /// std-only spelling of an atomic `Arc` swap.)
    published: RwLock<Arc<PublishedView>>,
    /// Most recent views, oldest first, current last; bounded to
    /// [`RETAINED_VIEWS`]. Cleared on graph replacement.
    ring: Mutex<VecDeque<Arc<PublishedView>>>,
    live_conns: AtomicUsize,
    max_conns: AtomicUsize,
    publishes: AtomicU64,
    publish_nanos_total: AtomicU64,
    publish_nanos_last: AtomicU64,
}

/// Shared serving state: one [`ServerState`] for any number of
/// sessions/connections.
pub type SharedEngine = Arc<ServerState>;

impl ServerState {
    fn new(state: EngineState) -> ServerState {
        let initial = Arc::new(PublishedView {
            view: state.engine.pin(),
            source: state.source.clone(),
        });
        ServerState {
            state: RwLock::new(state),
            published: RwLock::new(Arc::clone(&initial)),
            ring: Mutex::new(VecDeque::from([initial])),
            live_conns: AtomicUsize::new(0),
            max_conns: AtomicUsize::new(DEFAULT_MAX_CONNS),
            publishes: AtomicU64::new(0),
            publish_nanos_total: AtomicU64::new(0),
            publish_nanos_last: AtomicU64::new(0),
        }
    }

    /// The currently published view — one `Arc` clone, no state lock.
    pub fn current(&self) -> Arc<PublishedView> {
        Arc::clone(
            &self
                .published
                .read()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// The retained view pinned to `epoch`, or an error naming the
    /// retained range if that epoch has been evicted (or never existed).
    pub fn view_at(&self, epoch: u64) -> Result<Arc<PublishedView>, String> {
        let ring = self.ring();
        if let Some(v) = ring.iter().rev().find(|v| v.epoch() == epoch) {
            return Ok(Arc::clone(v));
        }
        let (lo, hi, n) = span(&ring);
        Err(format!(
            "epoch {epoch} not retained (retaining {n} views, epochs {lo}..{hi})"
        ))
    }

    /// `(oldest, newest, count)` of the retained epochs.
    pub fn retained_span(&self) -> (u64, u64, usize) {
        span(&self.ring())
    }

    /// Number of views currently retained for time travel.
    pub fn retained_views(&self) -> usize {
        self.ring().len()
    }

    /// Pins the engine's current state and publishes it: swaps the slot,
    /// appends to the retention ring (evicting past [`RETAINED_VIEWS`]),
    /// and records the publish latency. `reset_ring` drops all older
    /// views first — used when the graph itself was replaced, so time
    /// travel can never cross a graph swap. The caller holds the state
    /// write lock, which is what serializes publishes.
    fn publish_locked(&self, state: &EngineState, reset_ring: bool) {
        let t = Instant::now();
        let view = Arc::new(PublishedView {
            view: state.engine.pin(),
            source: state.source.clone(),
        });
        *self
            .published
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Arc::clone(&view);
        let mut ring = self.ring();
        if reset_ring {
            ring.clear();
        }
        ring.push_back(view);
        while ring.len() > RETAINED_VIEWS {
            ring.pop_front();
        }
        drop(ring);
        let nanos = t.elapsed().as_nanos() as u64;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.publish_nanos_total.fetch_add(nanos, Ordering::Relaxed);
        self.publish_nanos_last.store(nanos, Ordering::Relaxed);
    }

    fn ring(&self) -> std::sync::MutexGuard<'_, VecDeque<Arc<PublishedView>>> {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Sets the simultaneous-connection cap (the `--max-conns` flag).
    pub fn set_max_conns(&self, n: usize) {
        self.max_conns.store(n, Ordering::Relaxed);
    }

    /// The simultaneous-connection cap.
    pub fn max_conns(&self) -> usize {
        self.max_conns.load(Ordering::Relaxed)
    }

    /// Connections currently being served.
    pub fn live_conns(&self) -> usize {
        self.live_conns.load(Ordering::Relaxed)
    }

    /// Claims a connection slot; `false` when the cap is reached. Pair
    /// with [`ServerState::conn_closed`] (the TCP layer wraps the pair in
    /// an RAII guard).
    pub fn try_open_conn(&self) -> bool {
        let max = self.max_conns();
        self.live_conns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < max).then_some(n + 1)
            })
            .is_ok()
    }

    /// Releases a connection slot claimed by [`ServerState::try_open_conn`].
    pub fn conn_closed(&self) {
        self.live_conns.fetch_sub(1, Ordering::Relaxed);
    }

    /// Publishes since startup (or the last `reset metrics`).
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Latency of the most recent publish (pin + swap + ring update).
    pub fn publish_last(&self) -> Duration {
        Duration::from_nanos(self.publish_nanos_last.load(Ordering::Relaxed))
    }

    /// Mean publish latency since the last counter reset.
    pub fn publish_mean(&self) -> Duration {
        let n = self.publishes();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.publish_nanos_total.load(Ordering::Relaxed) / n)
    }

    /// Clears the publish-latency counters (part of `reset metrics`).
    pub fn reset_publish_stats(&self) {
        self.publishes.store(0, Ordering::Relaxed);
        self.publish_nanos_total.store(0, Ordering::Relaxed);
        self.publish_nanos_last.store(0, Ordering::Relaxed);
    }
}

fn span(ring: &VecDeque<Arc<PublishedView>>) -> (u64, u64, usize) {
    let lo = ring.front().map_or(0, |v| v.epoch());
    let hi = ring.back().map_or(0, |v| v.epoch());
    (lo, hi, ring.len())
}

/// Per-connection overlay: evaluation knobs that belong to one client,
/// resolved against the engine's base configuration at dispatch time and
/// never written into shared state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionOverlay {
    /// Strategy override (`strategy rtc|full|none`), if set.
    pub strategy: Option<Strategy>,
    /// Worker-thread override (`threads N`), if set.
    pub threads: Option<usize>,
    /// Result pairs printed per query in text mode (0 = count only).
    pub limit: usize,
    /// Whether `query` results are sent as `RESULT-BIN` frames.
    pub binary: bool,
}

impl Default for ConnectionOverlay {
    fn default() -> Self {
        ConnectionOverlay {
            strategy: None,
            threads: None,
            limit: 10,
            binary: false,
        }
    }
}

impl ConnectionOverlay {
    /// The effective configuration for this connection: the engine's base
    /// configuration with this connection's overrides applied.
    pub fn resolve(&self, base: &EngineConfig) -> EngineConfig {
        let mut config = *base;
        if let Some(s) = self.strategy {
            config.strategy = s;
        }
        if let Some(t) = self.threads {
            config.threads = t;
        }
        config
    }
}

/// A serving session: one connection's handle onto the shared state.
///
/// Cloning the [`SharedEngine`] handle ([`Session::shared`]) and
/// [`Session::attach`]ing gives each TCP connection its own session — own
/// overlay, same engine — which is how the server keeps `strategy`,
/// `threads`, `limit` and `binary` per-connection while every `query`
/// still lands in one shared epoch-aware cache.
pub struct Session {
    shared: SharedEngine,
    overlay: ConnectionOverlay,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

/// A read guard over the writer-half state, dereferencing to the engine —
/// what [`Session::engine`] hands to inspection code and tests. Not used
/// on the query hot path, which serves from the published view instead.
pub struct EngineGuard<'a>(RwLockReadGuard<'a, EngineState>);

impl std::ops::Deref for EngineGuard<'_> {
    type Target = Engine<'static>;
    fn deref(&self) -> &Engine<'static> {
        &self.0.engine
    }
}

impl Session {
    /// A session over an empty graph with the default configuration.
    pub fn new() -> Session {
        Session::with_config(EngineConfig::default())
    }

    /// A session over an empty graph with an explicit base configuration
    /// (the `--strategy`/`--threads` startup flags land here, so every
    /// later connection inherits them as the base the overlay resolves
    /// against).
    pub fn with_config(config: EngineConfig) -> Session {
        Session::from_engine(
            Engine::with_config_versioned(VersionedGraph::new(GraphBuilder::new().build()), config),
            "empty".to_string(),
        )
    }

    /// A session over an existing engine (used by `--load` startup and by
    /// tests). Publishes the engine's current state as epoch view zero.
    pub fn from_engine(engine: Engine<'static>, source: String) -> Session {
        Session {
            shared: Arc::new(ServerState::new(EngineState { engine, source })),
            overlay: ConnectionOverlay::default(),
        }
    }

    /// A new session — fresh overlay — onto existing shared state: one of
    /// these per TCP connection.
    pub fn attach(shared: SharedEngine) -> Session {
        Session {
            shared,
            overlay: ConnectionOverlay::default(),
        }
    }

    /// The shared-state handle, for attaching further sessions.
    pub fn shared(&self) -> SharedEngine {
        Arc::clone(&self.shared)
    }

    /// This connection's overlay, for inspection.
    pub fn overlay(&self) -> &ConnectionOverlay {
        &self.overlay
    }

    /// Read access to the engine (a read-lock guard on the writer half —
    /// inspection only; the serving read path uses the published view).
    pub fn engine(&self) -> EngineGuard<'_> {
        EngineGuard(self.read())
    }

    /// Takes the writer-half read lock, clearing poisoning: a panic
    /// inside another command leaves the engine consistent at command
    /// granularity (the panicked command's response was simply never
    /// sent), so serving continues.
    fn read(&self) -> RwLockReadGuard<'_, EngineState> {
        self.shared
            .state
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes the writer-half write lock, clearing poisoning (see
    /// [`Session::read`]).
    fn write(&self) -> RwLockWriteGuard<'_, EngineState> {
        self.shared
            .state
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Resolves which published view a read command addresses: the
    /// current one, or — for `… at <epoch>` — a retained older one.
    fn view_for(&self, at: Option<u64>) -> Result<Arc<PublishedView>, String> {
        match at {
            None => Ok(self.shared.current()),
            Some(epoch) => self.shared.view_at(epoch),
        }
    }

    /// Parses and executes one request line.
    pub fn execute(&mut self, line: &str) -> Option<Response> {
        match parse_command(line) {
            Ok(None) => None,
            Ok(Some(cmd)) => Some(self.run(cmd)),
            Err(e) => Some(Response::err(e)),
        }
    }

    fn run(&mut self, cmd: Command) -> Response {
        match cmd {
            // ── lock-free: help, connection end, overlay updates ──────
            Command::Help => Response::ok(format!("{} commands", HELP.len()))
                .with_lines(HELP.iter().map(|s| s.to_string()).collect()),
            Command::Quit => {
                let mut r = Response::ok("bye");
                r.quit = true;
                r
            }
            Command::SetStrategy(s) => {
                self.overlay.strategy = Some(s);
                Response::ok(format!("strategy {s} (this connection)"))
            }
            Command::SetThreads(n) => {
                self.overlay.threads = Some(n);
                Response::ok(format!("threads {n} (this connection)"))
            }
            Command::SetLimit(n) => {
                self.overlay.limit = n;
                Response::ok(format!("limit {n}"))
            }
            Command::SetBinary(on) => {
                self.overlay.binary = on;
                Response::ok(format!("binary {}", if on { "on" } else { "off" }))
            }

            // ── read path: served from the published view, no state
            //    lock ever taken ────────────────────────────────────────
            Command::Info => self.info(),
            Command::Epoch => Response::ok(format!("epoch {}", self.shared.current().epoch())),
            Command::Query { query, at } => self.query(&query, at),
            Command::Check {
                src,
                dst,
                query,
                at,
            } => self.check(src, dst, &query, at),
            Command::Ends { src, query, at } => self.ends(src, &query, at),
            Command::Metrics => self.metrics(),
            Command::Cache => self.cache(),
            Command::Export(path) => self.export(&path),

            // ── write path: exclusive under the write lock, each
            //    mutation publishing a fresh epoch view ─────────────────
            Command::Load(path) => self.load(&path),
            Command::Save(path) => self.save(&path),
            Command::GenPaper => {
                let mut state = self.write();
                replace_graph(
                    &mut state,
                    VersionedGraph::new(rpq_graph::fixtures::paper_graph()),
                    "paper".to_string(),
                );
                self.shared.publish_locked(&state, true);
                info_summary(&state, "loaded paper graph")
            }
            Command::GenRmat { n, scale, seed } => {
                // Generate outside the lock (no shared state involved), so
                // writers queue behind the build no longer than they must —
                // readers are never blocked either way.
                let g = rpq_datasets::rmat::rmat_n_scaled(n, scale, seed);
                let mut state = self.write();
                replace_graph(
                    &mut state,
                    VersionedGraph::new(g),
                    format!("rmat_{n}@2^{scale}#{seed}"),
                );
                self.shared.publish_locked(&state, true);
                info_summary(&state, "generated RMAT graph")
            }
            Command::Prepare(text) => self.prepare(&text),
            Command::Delta(ops) => self.delta(&ops),
            Command::Reset { cache_too } => {
                let state = self.write();
                if cache_too {
                    state.engine.clear_cache();
                    Response::ok("cache cleared (structures and results dropped, counters reset)")
                } else {
                    state.engine.reset_metrics();
                    self.shared.reset_publish_stats();
                    Response::ok("metrics reset (cached structures kept)")
                }
            }
        }
    }

    fn info(&self) -> Response {
        let published = self.shared.current();
        let view = published.view();
        let g = view.graph();
        let config = self.overlay.resolve(view.config());
        let (lo, hi, views) = self.shared.retained_span();
        let c = view.cache();
        Response::ok(format!(
            "graph '{}': {} vertices, {} edges, {} labels, epoch {}, strategy {}, threads {}, limit {}, binary {}, views {views} (epochs {lo}..{hi}), conns {}/{}, structural {} B, budget {}, occupancy {} B",
            published.source(),
            g.vertex_count(),
            g.edge_count(),
            g.label_count(),
            view.epoch(),
            config.strategy,
            config.threads,
            self.overlay.limit,
            if self.overlay.binary { "on" } else { "off" },
            self.shared.live_conns(),
            self.shared.max_conns(),
            c.rtc_heap_bytes() + c.full_heap_bytes(),
            c.budget(),
            c.occupancy_bytes(),
        ))
    }

    fn load(&self, path: &str) -> Response {
        let p = Path::new(path);
        // Sniff for an *engine* snapshot first (graph + warm cache); fall
        // back to the graph-level auto-detection (snapshot or edge list).
        // The magic rules themselves live with their formats
        // (`matches_magic`), not here.
        let head = match std::fs::File::open(p) {
            Ok(mut f) => {
                use std::io::Read;
                let mut head = [0u8; 8];
                let n = f.read(&mut head).unwrap_or(0);
                head[..n].to_vec()
            }
            Err(e) => return Response::err(format!("cannot open '{path}': {e}")),
        };
        if rpq_core::snapshot::matches_magic(&head) {
            let mut state = self.write();
            let config = *state.engine.config();
            match rpq_core::snapshot::load_snapshot(p, config) {
                Ok(engine) => {
                    let warm = engine.cache().rtc_count() + engine.cache().full_count();
                    let epoch = engine.epoch();
                    state.engine = engine;
                    state.source = path.to_string();
                    self.shared.publish_locked(&state, true);
                    let g = state.engine.graph();
                    Response::ok(format!(
                        "warm restart: {} vertices, {} edges, epoch {epoch}, {warm} cached structures",
                        g.vertex_count(),
                        g.edge_count(),
                    ))
                }
                Err(e) => Response::err(format!("cannot load engine snapshot '{path}': {e}")),
            }
        } else {
            match rpq_datasets::io::load_versioned(p) {
                Ok(vg) => {
                    let mut state = self.write();
                    replace_graph(&mut state, vg, path.to_string());
                    self.shared.publish_locked(&state, true);
                    info_summary(&state, &format!("loaded '{path}'"))
                }
                Err(e) => Response::err(format!("cannot load '{path}': {e}")),
            }
        }
    }

    fn save(&self, path: &str) -> Response {
        let state = self.write();
        match rpq_core::snapshot::save_snapshot(&state.engine, Path::new(path)) {
            Ok(()) => {
                // Report what was actually persisted: only *fresh*
                // entries survive a save (stale ones are dropped).
                let cache = state.engine.cache();
                let fresh = cache.fresh_rtc_entries().len() + cache.fresh_full_entries().len();
                let stale = cache.rtc_count() + cache.full_count() - fresh;
                let dropped = if stale > 0 {
                    format!(" ({stale} stale dropped)")
                } else {
                    String::new()
                };
                Response::ok(format!(
                    "snapshot '{path}': epoch {}, {fresh} cached structures{dropped}",
                    state.engine.epoch(),
                ))
            }
            Err(e) => Response::err(format!("cannot save '{path}': {e}")),
        }
    }

    fn export(&self, path: &str) -> Response {
        let published = self.shared.current();
        let g = published.view().graph();
        match rpq_datasets::io::save_graph(g, Path::new(path)) {
            Ok(()) => Response::ok(format!("edge list '{path}': {} edges", g.edge_count())),
            Err(e) => Response::err(format!("cannot export '{path}': {e}")),
        }
    }

    /// Appends the time-travel marker to a status summary, after any
    /// `... in <time>` suffix so the equivalence tests' timing masking
    /// stays oblivious to it.
    fn at_suffix(at: Option<u64>) -> String {
        at.map(|e| format!(" (at epoch {e})")).unwrap_or_default()
    }

    fn query(&self, text: &str, at: Option<u64>) -> Response {
        let q = match rpq_regex::Regex::parse(text) {
            Ok(q) => q,
            Err(e) => return Response::err(format!("query failed: {e}")),
        };
        let published = match self.view_for(at) {
            Ok(v) => v,
            Err(e) => return Response::err(e),
        };
        let view = published.view();
        let config = self.overlay.resolve(view.config());
        let t = Instant::now();
        match view.evaluate_with(&q, config) {
            Ok(result) => {
                let elapsed = t.elapsed();
                let status = format!(
                    "{} pairs in {elapsed:.2?}{}",
                    result.len(),
                    Self::at_suffix(at)
                );
                if self.overlay.binary {
                    // Binary mode ships the *complete* result set — the
                    // frame exists for exactly the responses too large to
                    // print — so `limit` only governs text mode.
                    return Response::ok(status).with_binary(encode_pair_set(&result));
                }
                let shown = result.len().min(self.overlay.limit);
                let mut lines: Vec<String> = result
                    .iter()
                    .take(shown)
                    .map(|(s, d)| format!("  v{} -> v{}", s.raw(), d.raw()))
                    .collect();
                if self.overlay.limit > 0 && result.len() > shown {
                    lines.push(format!(
                        "  ... {} more (raise with 'limit N')",
                        result.len() - shown
                    ));
                }
                Response::ok(status).with_lines(lines)
            }
            Err(e) => Response::err(format!("query failed: {e}")),
        }
    }

    fn check(&self, src: u32, dst: u32, text: &str, at: Option<u64>) -> Response {
        match rpq_regex::Regex::parse(text) {
            Ok(q) => {
                let published = match self.view_for(at) {
                    Ok(v) => v,
                    Err(e) => return Response::err(e),
                };
                let found =
                    published
                        .view()
                        .check(&q, rpq_graph::VertexId(src), rpq_graph::VertexId(dst));
                Response::ok(format!(
                    "{} path v{src} -> v{dst} for {q}{}",
                    if found { "found" } else { "no" },
                    Self::at_suffix(at)
                ))
            }
            Err(e) => Response::err(format!("bad RPQ: {e}")),
        }
    }

    fn ends(&self, src: u32, text: &str, at: Option<u64>) -> Response {
        match rpq_regex::Regex::parse(text) {
            Ok(q) => {
                let published = match self.view_for(at) {
                    Ok(v) => v,
                    Err(e) => return Response::err(e),
                };
                let ends = published.view().ends_from(&q, rpq_graph::VertexId(src));
                // `limit 0` means count-only, same as `query`.
                let shown = ends.len().min(self.overlay.limit);
                let line = ends
                    .iter()
                    .take(shown)
                    .map(|v| format!("v{}", v.raw()))
                    .collect::<Vec<_>>()
                    .join(" ");
                let mut lines = Vec::new();
                if shown > 0 {
                    let more = if ends.len() > shown {
                        format!(" ... {} more (raise with 'limit N')", ends.len() - shown)
                    } else {
                        String::new()
                    };
                    lines.push(format!("  {line}{more}"));
                }
                Response::ok(format!(
                    "{} end vertices from v{src}{}",
                    ends.len(),
                    Self::at_suffix(at)
                ))
                .with_lines(lines)
            }
            Err(e) => Response::err(format!("bad RPQ: {e}")),
        }
    }

    fn prepare(&self, text: &str) -> Response {
        match rpq_regex::Regex::parse(text) {
            Ok(q) => {
                // Deliberately on the write path: the cache interior would
                // tolerate a concurrent warm-up, but `prepare` exists to
                // front-load shared work at a predictable moment, and
                // letting it race ongoing queries makes its
                // computed/reused report nondeterministic. No republish:
                // the published view shares the structural cache `Arc`, so
                // warmed structures are visible to it the moment the lock
                // drops.
                let state = self.write();
                let config = self.overlay.resolve(state.engine.config());
                match state.engine.prepare_with(std::slice::from_ref(&q), config) {
                    Ok(report) => Response::ok(format!(
                        "prepared: {} bodies computed, {} reused, {} shared pairs",
                        report.bodies_computed, report.bodies_reused, report.shared_pairs
                    )),
                    Err(e) => Response::err(format!("prepare failed: {e}")),
                }
            }
            Err(e) => Response::err(format!("bad RPQ: {e}")),
        }
    }

    fn delta(&self, ops: &[DeltaOp]) -> Response {
        let mut delta = GraphDelta::new();
        for op in ops {
            match op {
                DeltaOp::Insert(s, l, d) => {
                    delta.insert(*s, l, *d);
                }
                DeltaOp::Delete(s, l, d) => {
                    delta.delete(*s, l, *d);
                }
                DeltaOp::Grow(n) => {
                    delta.ensure_vertices(*n);
                }
            }
        }
        let mut state = self.write();
        let summary = state.engine.apply_delta(&delta);
        // Publish epoch N+1 while still holding the write lock: readers
        // keep serving epoch N from the old view until the swap, then
        // pick up N+1 — there is no moment where queries block.
        self.shared.publish_locked(&state, false);
        Response::ok(format!(
            "epoch {}: +{} -{} edges, {} new labels, {} new vertices",
            summary.epoch,
            summary.edges_inserted,
            summary.edges_deleted,
            summary.new_labels,
            summary.new_vertices,
        ))
    }

    fn metrics(&self) -> Response {
        let published = self.shared.current();
        let view = published.view();
        let b = view.breakdown();
        let s = view.elimination_stats();
        let m = view.maintenance_metrics();
        let r = view.results();
        let (lo, hi, views) = self.shared.retained_span();
        let lines = vec![
            format!(
                "  breakdown: shared_data={:.2?} pre_join={:.2?} remainder={:.2?} total={:.2?}",
                b.shared_data,
                b.pre_join,
                b.remainder(),
                b.total
            ),
            format!(
                "  elimination: useless1={} redundant1={} redundant2={} useless2_inserts={} full_dup_hits={}",
                s.useless1_skipped,
                s.redundant1_skipped,
                s.redundant2_skipped,
                s.useless2_unchecked_inserts,
                s.full_duplicate_hits
            ),
            format!(
                "  maintenance: deltas={} unchanged={} incremental={} rebuild={} inc_time={:.2?} rebuild_time={:.2?}",
                m.deltas_applied,
                m.unchanged_refreshes,
                m.incremental_refreshes,
                m.rebuild_refreshes,
                m.incremental_time,
                m.rebuild_time
            ),
            format!(
                "  results: {} view hits, {} result misses, {} memoized (cap {})",
                r.view_hits(),
                r.misses(),
                r.len(),
                r.capacity()
            ),
            format!(
                "  serving: {} publishes (last {:.2?}, mean {:.2?}), {views} views retained (epochs {lo}..{hi}), conns {}/{}",
                self.shared.publishes(),
                self.shared.publish_last(),
                self.shared.publish_mean(),
                self.shared.live_conns(),
                self.shared.max_conns(),
            ),
            {
                let c = view.cache();
                format!(
                    "  memory: structural={} B (rtc={} B, {} dense rows; full={} B, {} dense rows)",
                    c.rtc_heap_bytes() + c.full_heap_bytes(),
                    c.rtc_heap_bytes(),
                    c.rtc_dense_rows(),
                    c.full_heap_bytes(),
                    c.full_dense_rows(),
                )
            },
            {
                let c = view.cache();
                let ev = c.eviction_counters();
                format!(
                    "  budget: {} occupancy={} B/{} entries evictions={} (bytes={} entries={} ttl={} stale={}) rebuilds_after_evict={}",
                    c.budget(),
                    c.occupancy_bytes(),
                    c.occupancy_entries(),
                    ev.total(),
                    ev.by_bytes,
                    ev.by_entries,
                    ev.by_ttl,
                    ev.by_stale,
                    ev.rebuilds_after_evict,
                )
            },
        ];
        Response::ok("metrics".to_string()).with_lines(lines)
    }

    fn cache(&self) -> Response {
        let published = self.shared.current();
        let view = published.view();
        let c = view.cache();
        let r = view.results();
        let lines = vec![
            format!(
                "  entries: {} rtc ({} pairs, {} sccs), {} full ({} pairs)",
                c.rtc_count(),
                c.rtc_shared_pairs(),
                c.rtc_total_sccs(),
                c.full_count(),
                c.full_shared_pairs()
            ),
            format!(
                "  memory: {} B structural heap ({} dense rows)",
                c.rtc_heap_bytes() + c.full_heap_bytes(),
                c.rtc_dense_rows() + c.full_dense_rows(),
            ),
            format!(
                "  lookups: {} hits, {} misses, {} stale hits (epoch {})",
                c.hits(),
                c.misses(),
                c.stale_hits(),
                c.epoch()
            ),
            format!(
                "  budget: {} (occupancy {} B, {} entries, {} B pinned)",
                c.budget(),
                c.occupancy_bytes(),
                c.occupancy_entries(),
                c.pinned_occupancy_bytes(),
            ),
            {
                let ev = c.eviction_counters();
                format!(
                    "  evictions: {} total (bytes={} entries={} ttl={} stale={}), {} rebuilds after evict",
                    ev.total(),
                    ev.by_bytes,
                    ev.by_entries,
                    ev.by_ttl,
                    ev.by_stale,
                    ev.rebuilds_after_evict,
                )
            },
            format!(
                "  results: {} memoized, {} view hits, {} result misses (cap {}), {} evicted",
                r.len(),
                r.view_hits(),
                r.misses(),
                r.capacity(),
                r.evictions(),
            ),
        ];
        let strategy = self.overlay.resolve(view.config()).strategy;
        Response::ok(format!(
            "{} shared pairs held",
            view.shared_data_pairs_with(strategy)
        ))
        .with_lines(lines)
    }
}

/// Replaces the engine's graph, keeping the base configuration (strategy,
/// threads, clause limit) but dropping cached structures — they describe
/// the old graph. Caller holds the write lock and publishes afterwards
/// (with a ring reset — epochs of different graphs are not comparable).
fn replace_graph(state: &mut EngineState, graph: VersionedGraph, source: String) {
    let config = *state.engine.config();
    state.engine = Engine::with_config_versioned(graph, config);
    state.source = source;
}

fn info_summary(state: &EngineState, what: &str) -> Response {
    let g = state.engine.graph();
    Response::ok(format!(
        "{what}: {} vertices, {} edges, {} labels",
        g.vertex_count(),
        g.edge_count(),
        g.label_count(),
    ))
}

/// The strategy flag value accepted by the `rpq` binary (`--strategy`).
pub fn parse_strategy_flag(v: &str) -> Option<Strategy> {
    match v {
        "rtc" => Some(Strategy::RtcSharing),
        "full" => Some(Strategy::FullSharing),
        "none" | "no" => Some(Strategy::NoSharing),
        _ => None,
    }
}

/// Builds the startup engine config from the binary's flags. A
/// `--cache-budget` flag overrides the `RPQ_CACHE_BUDGET` environment
/// default already folded into [`EngineConfig::default`].
pub fn startup_config(
    strategy: Option<Strategy>,
    threads: Option<usize>,
    cache_budget: Option<rpq_core::CacheBudget>,
) -> EngineConfig {
    let mut config = EngineConfig::default();
    if let Some(s) = strategy {
        config.strategy = s;
    }
    if let Some(t) = threads {
        config.threads = t;
    }
    if let Some(b) = cache_budget {
        config.cache_budget = b;
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_summary(r: Option<Response>) -> String {
        match r.expect("command produced a response").status {
            Status::Ok(s) => s,
            Status::Err(e) => panic!("expected OK, got ERR {e}"),
        }
    }

    fn err_message(r: Option<Response>) -> String {
        match r.expect("command produced a response").status {
            Status::Err(e) => e,
            Status::Ok(s) => panic!("expected ERR, got OK {s}"),
        }
    }

    #[test]
    fn paper_graph_query_flow() {
        let mut s = Session::new();
        ok_summary(s.execute("gen paper"));
        let r = s.execute("query d.(b.c)+.c").unwrap();
        assert_eq!(r.lines, vec!["  v7 -> v3", "  v7 -> v5"]);
        assert!(matches!(r.status, Status::Ok(ref m) if m.starts_with("2 pairs")));
        // Second evaluation is a result-cache view hit.
        ok_summary(s.execute("query d.(b.c)+.c"));
        assert!(s.engine().results().view_hits() >= 1);
    }

    /// ISSUE 7 satellite: `info`, `metrics` and `cache` surface the heap
    /// bytes held by the hybrid structural tables.
    #[test]
    fn memory_metrics_expose_structural_heap_bytes() {
        let mut s = Session::new();
        ok_summary(s.execute("gen paper"));
        ok_summary(s.execute("query d.(b.c)+.c"));
        assert!(s.engine().structural_heap_bytes() > 0);
        let info = ok_summary(s.execute("info"));
        assert!(info.contains("structural"), "{info}");
        let m = s.execute("metrics").unwrap();
        assert!(
            m.lines
                .iter()
                .any(|l| l.contains("memory: structural=") && !l.contains("structural=0 B")),
            "{:?}",
            m.lines
        );
        let c = s.execute("cache").unwrap();
        assert!(
            c.lines.iter().any(|l| l.contains("B structural heap")),
            "{:?}",
            c.lines
        );
    }

    #[test]
    fn limit_caps_printed_pairs() {
        let mut s = Session::new();
        s.execute("gen paper");
        ok_summary(s.execute("limit 1"));
        let r = s.execute("query d.(b.c)+.c").unwrap();
        assert_eq!(r.lines.len(), 2); // one pair + the "... more" line
        assert!(r.lines[1].contains("1 more"));
    }

    #[test]
    fn limit_zero_is_count_only_for_query_and_ends() {
        let mut s = Session::new();
        s.execute("gen paper");
        ok_summary(s.execute("limit 0"));
        let r = s.execute("query d.(b.c)+.c").unwrap();
        assert!(r.lines.is_empty(), "{:?}", r.lines);
        assert!(matches!(r.status, Status::Ok(ref m) if m.starts_with("2 pairs")));
        let r = s.execute("ends 7 d.(b.c)+.c").unwrap();
        assert!(r.lines.is_empty(), "{:?}", r.lines);
        assert!(matches!(r.status, Status::Ok(ref m) if m.starts_with("2 end vertices")));
    }

    #[test]
    fn delta_then_query_sees_the_mutation() {
        let mut s = Session::new();
        s.execute("gen paper");
        ok_summary(s.execute("query (b.c)+"));
        let summary = ok_summary(s.execute("delta ins 6 b 8 ins 8 c 6"));
        assert!(summary.starts_with("epoch 1: +2 -0"), "{summary}");
        let r = s.execute("query (b.c)+").unwrap();
        assert!(matches!(r.status, Status::Ok(ref m) if !m.starts_with("10 pairs")));
        assert!(s.engine().cache().stale_hits() >= 1);
    }

    #[test]
    fn query_at_pins_an_older_epoch() {
        let mut s = Session::new();
        s.execute("gen paper");
        let before = s.execute("query (b.c)+").unwrap();
        s.execute("delta ins 6 b 8 ins 8 c 6");
        let after = s.execute("query (b.c)+").unwrap();
        assert_ne!(before.lines, after.lines, "delta must move the result");
        // Time travel back to epoch 0 reproduces the old result exactly.
        let pinned = s.execute("query (b.c)+ at 0").unwrap();
        assert_eq!(pinned.lines, before.lines);
        assert!(
            matches!(pinned.status, Status::Ok(ref m) if m.ends_with("(at epoch 0)")),
            "{:?}",
            pinned.status
        );
        // The current epoch is addressable too, and agrees with the live
        // answer.
        let at_live = s.execute("query (b.c)+ at 1").unwrap();
        assert_eq!(at_live.lines, after.lines);
        // check/ends accept the suffix as well.
        assert!(ok_summary(s.execute("check 6 6 (b.c)+ at 1")).starts_with("found path"));
        assert!(ok_summary(s.execute("check 6 6 (b.c)+ at 0")).starts_with("no path"));
        let r = s.execute("ends 5 (b.c)+ at 0").unwrap();
        assert!(matches!(r.status, Status::Ok(ref m) if m.contains("(at epoch 0)")));
    }

    #[test]
    fn evicted_and_unknown_epochs_are_clean_errors() {
        let mut s = Session::new();
        s.execute("gen paper");
        let e = err_message(s.execute("query (b.c)+ at 99"));
        assert!(e.contains("epoch 99 not retained"), "{e}");
        assert!(e.contains("epochs 0..0"), "{e}");
        // Push epoch 0 out of the ring with RETAINED_VIEWS fresh epochs.
        for i in 0..RETAINED_VIEWS {
            ok_summary(s.execute(&format!("delta ins 0 zz {}", i + 1)));
        }
        assert_eq!(s.shared().retained_views(), RETAINED_VIEWS);
        let e = err_message(s.execute("query (b.c)+ at 0"));
        assert!(e.contains("epoch 0 not retained"), "{e}");
        assert!(e.contains(&format!("epochs 1..{}", RETAINED_VIEWS)), "{e}");
    }

    #[test]
    fn graph_replacement_clears_the_retention_ring() {
        let mut s = Session::new();
        s.execute("gen paper");
        s.execute("delta ins 0 zz 1");
        assert_eq!(s.shared().retained_views(), 2);
        // `gen` replaces the graph: old epochs are meaningless now.
        s.execute("gen paper");
        assert_eq!(s.shared().retained_views(), 1);
        let e = err_message(s.execute("query (b.c)+ at 1"));
        assert!(e.contains("not retained"), "{e}");
    }

    #[test]
    fn reads_never_touch_the_state_lock() {
        let mut s = Session::new();
        s.execute("gen paper");
        // Hold the writer-half lock exclusively; every read command must
        // still answer (from the published view).
        let shared = s.shared();
        let _write_guard = shared.state.write().unwrap_or_else(PoisonError::into_inner);
        ok_summary(s.execute("query d.(b.c)+.c"));
        ok_summary(s.execute("epoch"));
        ok_summary(s.execute("info"));
        ok_summary(s.execute("metrics"));
        ok_summary(s.execute("cache"));
        ok_summary(s.execute("check 7 5 d.(b.c)+.c"));
        ok_summary(s.execute("ends 7 d.(b.c)+.c"));
    }

    #[test]
    fn publish_metrics_and_reset() {
        let mut s = Session::new();
        s.execute("gen paper");
        s.execute("delta ins 0 zz 1");
        let shared = s.shared();
        assert!(shared.publishes() >= 2); // gen + delta
        let r = s.execute("metrics").unwrap();
        assert!(
            r.lines.iter().any(|l| l.contains("publishes")),
            "{:?}",
            r.lines
        );
        assert!(
            r.lines.iter().any(|l| l.contains("view hits")),
            "{:?}",
            r.lines
        );
        // `reset metrics` clears publish stats and result-cache counters
        // together with the engine counters.
        s.execute("query (b.c)+");
        s.execute("query (b.c)+");
        assert!(shared.current().view().results().view_hits() >= 1);
        ok_summary(s.execute("reset metrics"));
        assert_eq!(shared.publishes(), 0);
        assert_eq!(shared.current().view().results().view_hits(), 0);
        // The memoized results themselves survive a metrics reset…
        assert!(!shared.current().view().results().is_empty());
        // …and are dropped by `reset cache`.
        ok_summary(s.execute("reset cache"));
        assert!(shared.current().view().results().is_empty());
    }

    #[test]
    fn strategy_switch_keeps_serving() {
        let mut s = Session::new();
        s.execute("gen paper");
        let rtc = s.execute("query d.(b.c)+.c").unwrap();
        ok_summary(s.execute("strategy full"));
        let full = s.execute("query d.(b.c)+.c").unwrap();
        ok_summary(s.execute("strategy none"));
        let none = s.execute("query d.(b.c)+.c").unwrap();
        assert_eq!(rtc.lines, full.lines);
        assert_eq!(rtc.lines, none.lines);
    }

    #[test]
    fn strategy_and_threads_are_overlay_not_engine_state() {
        let mut a = Session::new();
        a.execute("gen paper");
        let mut b = Session::attach(a.shared());
        // a switches strategy and threads; the engine base config — and
        // therefore b's resolved view — must not move.
        ok_summary(a.execute("strategy full"));
        ok_summary(a.execute("threads 4"));
        assert_eq!(a.engine().config().strategy, Strategy::RtcSharing);
        assert_eq!(a.engine().config().threads, 1);
        let a_info = ok_summary(a.execute("info"));
        assert!(
            a_info.contains("strategy FullSharing, threads 4"),
            "{a_info}"
        );
        let b_info = ok_summary(b.execute("info"));
        assert!(
            b_info.contains("strategy RTCSharing, threads 1"),
            "{b_info}"
        );
        // Both still agree on results, of course.
        let ra = a.execute("query d.(b.c)+.c").unwrap();
        let rb = b.execute("query d.(b.c)+.c").unwrap();
        assert_eq!(ra.lines, rb.lines);
    }

    #[test]
    fn binary_mode_frames_the_result() {
        let mut s = Session::new();
        s.execute("gen paper");
        ok_summary(s.execute("binary on"));
        let r = s.execute("query d.(b.c)+.c").unwrap();
        assert!(r.lines.is_empty(), "binary responses carry no text payload");
        let bin = r.binary.expect("binary frame present");
        assert_eq!(bin.pairs, 2);
        let pairs = crate::wire::decode_pairs(&bin.bytes, bin.pairs).unwrap();
        assert_eq!(pairs, vec![(7, 3), (7, 5)]);
        // Off again: text payload returns.
        ok_summary(s.execute("binary off"));
        let r = s.execute("query d.(b.c)+.c").unwrap();
        assert!(r.binary.is_none());
        assert_eq!(r.lines.len(), 2);
    }

    #[test]
    fn check_and_ends() {
        let mut s = Session::new();
        s.execute("gen paper");
        assert!(ok_summary(s.execute("check 7 5 d.(b.c)+.c")).starts_with("found path"));
        assert!(ok_summary(s.execute("check 7 4 d.(b.c)+.c")).starts_with("no path"));
        let r = s.execute("ends 7 d.(b.c)+.c").unwrap();
        assert_eq!(r.lines, vec!["  v3 v5"]);
    }

    #[test]
    fn save_load_roundtrip_is_warm() {
        let dir = std::env::temp_dir().join("rpq_session_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.snap");
        let path_str = path.to_str().unwrap();

        let mut s = Session::new();
        s.execute("gen paper");
        s.execute("query d.(b.c)+.c");
        let summary = ok_summary(s.execute(&format!("save {path_str}")));
        assert!(summary.contains("1 cached structures"), "{summary}");

        let mut fresh = Session::new();
        let summary = ok_summary(fresh.execute(&format!("load {path_str}")));
        assert!(summary.starts_with("warm restart"), "{summary}");
        fresh.execute("query d.(b.c)+.c");
        assert_eq!(fresh.engine().cache().misses(), 0);
        assert!(fresh.engine().cache().hits() >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_do_not_kill_the_session() {
        let mut s = Session::new();
        s.execute("gen paper");
        assert!(matches!(
            s.execute("query (((").unwrap().status,
            Status::Err(_)
        ));
        assert!(matches!(
            s.execute("load /no/such/file").unwrap().status,
            Status::Err(_)
        ));
        assert!(matches!(
            s.execute("bogus command").unwrap().status,
            Status::Err(_)
        ));
        // Still serving.
        ok_summary(s.execute("query d.(b.c)+.c"));
    }

    #[test]
    fn quit_sets_the_flag() {
        let mut s = Session::new();
        let r = s.execute("quit").unwrap();
        assert!(r.quit);
        assert!(matches!(r.status, Status::Ok(ref m) if m == "bye"));
    }

    #[test]
    fn render_framing() {
        let mut s = Session::new();
        s.execute("gen paper");
        let rendered = s.execute("query d.(b.c)+.c").unwrap().render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].starts_with("OK "));
        let rendered = s.execute("nope").unwrap().render();
        assert!(rendered.starts_with("ERR "));
    }

    #[test]
    fn connection_accounting() {
        let s = Session::new();
        let shared = s.shared();
        assert_eq!(shared.max_conns(), DEFAULT_MAX_CONNS);
        shared.set_max_conns(2);
        assert!(shared.try_open_conn());
        assert!(shared.try_open_conn());
        assert!(!shared.try_open_conn(), "cap reached");
        assert_eq!(shared.live_conns(), 2);
        shared.conn_closed();
        assert!(shared.try_open_conn(), "slot freed");
        shared.conn_closed();
        shared.conn_closed();
        assert_eq!(shared.live_conns(), 0);
    }
}
