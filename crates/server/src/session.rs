//! A serving session: one long-lived [`Engine`] driven by command lines.
//!
//! [`Session::execute`] is the single entry point both front-ends call —
//! the REPL feeds it stdin lines, the TCP server feeds it socket lines —
//! so behaviour (and therefore scripts) are identical across transports.
//! The engine **owns** its graph ([`Engine::new_dynamic`]), so `delta`
//! commands mutate in place and every query after the first shares the
//! epoch-aware cache the paper's Experiment 2 is about.

use crate::command::{parse_command, Command, DeltaOp, HELP};
use rpq_core::{Engine, EngineConfig, Strategy};
use rpq_graph::{GraphBuilder, GraphDelta, VersionedGraph};
use std::path::Path;
use std::time::Instant;

/// Result of executing one command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Payload lines (never starting with `OK`/`ERR` — the framing
    /// invariant of the line protocol).
    pub lines: Vec<String>,
    /// Final status line, without its `OK `/`ERR ` prefix.
    pub status: Status,
    /// Whether the session asked to end (`quit`).
    pub quit: bool,
}

/// Success or failure of one command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Status {
    /// The command succeeded; the string is a one-line summary.
    Ok(String),
    /// The command failed; nothing changed beyond what the message says.
    Err(String),
}

impl Response {
    fn ok(summary: impl Into<String>) -> Response {
        Response {
            lines: Vec::new(),
            status: Status::Ok(summary.into()),
            quit: false,
        }
    }

    fn err(message: impl Into<String>) -> Response {
        Response {
            lines: Vec::new(),
            status: Status::Err(message.into()),
            quit: false,
        }
    }

    fn with_lines(mut self, lines: Vec<String>) -> Response {
        self.lines = lines;
        self
    }

    /// Renders the response in wire format: payload lines, then one
    /// `OK ...` / `ERR ...` status line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            debug_assert!(
                !line.starts_with("OK") && !line.starts_with("ERR"),
                "payload line breaks the framing invariant: {line}"
            );
            out.push_str(line);
            out.push('\n');
        }
        match &self.status {
            Status::Ok(s) => {
                out.push_str("OK ");
                out.push_str(s);
            }
            Status::Err(s) => {
                out.push_str("ERR ");
                out.push_str(s);
            }
        }
        out.push('\n');
        out
    }
}

/// A long-lived serving session over an owning engine.
pub struct Session {
    engine: Engine<'static>,
    /// Result pairs printed per query (0 = print none, count only).
    limit: usize,
    /// Name of the loaded graph (path, generator tag, or "empty").
    source: String,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// A session over an empty graph with the default configuration.
    pub fn new() -> Session {
        Session::from_engine(
            Engine::new_dynamic(GraphBuilder::new().build()),
            "empty".to_string(),
        )
    }

    /// A session over an existing engine (used by `--load` startup and by
    /// tests).
    pub fn from_engine(engine: Engine<'static>, source: String) -> Session {
        Session {
            engine,
            limit: 10,
            source,
        }
    }

    /// The engine, for inspection.
    pub fn engine(&self) -> &Engine<'static> {
        &self.engine
    }

    /// Parses and executes one request line.
    pub fn execute(&mut self, line: &str) -> Option<Response> {
        match parse_command(line) {
            Ok(None) => None,
            Ok(Some(cmd)) => Some(self.run(cmd)),
            Err(e) => Some(Response::err(e)),
        }
    }

    fn run(&mut self, cmd: Command) -> Response {
        match cmd {
            Command::Help => Response::ok(format!("{} commands", HELP.len()))
                .with_lines(HELP.iter().map(|s| s.to_string()).collect()),
            Command::Info => self.info(),
            Command::Epoch => Response::ok(format!("epoch {}", self.engine.epoch())),
            Command::Load(path) => self.load(&path),
            Command::Save(path) => self.save(&path),
            Command::Export(path) => self.export(&path),
            Command::GenPaper => {
                self.replace_graph(
                    VersionedGraph::new(rpq_graph::fixtures::paper_graph()),
                    "paper".to_string(),
                );
                self.info_summary("loaded paper graph")
            }
            Command::GenRmat { n, scale, seed } => {
                let g = rpq_datasets::rmat::rmat_n_scaled(n, scale, seed);
                self.replace_graph(VersionedGraph::new(g), format!("rmat_{n}@2^{scale}#{seed}"));
                self.info_summary("generated RMAT graph")
            }
            Command::Query(text) => self.query(&text),
            Command::Check { src, dst, query } => self.check(src, dst, &query),
            Command::Ends { src, query } => self.ends(src, &query),
            Command::Prepare(text) => self.prepare(&text),
            Command::Delta(ops) => self.delta(&ops),
            Command::SetStrategy(s) => {
                self.engine.set_strategy(s);
                Response::ok(format!("strategy {s}"))
            }
            Command::SetThreads(n) => {
                self.engine.set_threads(n);
                Response::ok(format!("threads {n}"))
            }
            Command::SetLimit(n) => {
                self.limit = n;
                Response::ok(format!("limit {n}"))
            }
            Command::Metrics => self.metrics(),
            Command::Cache => self.cache(),
            Command::Reset { cache_too } => {
                if cache_too {
                    self.engine.clear_cache();
                    Response::ok("cache cleared (structures dropped, counters reset)")
                } else {
                    self.engine.reset_metrics();
                    Response::ok("metrics reset (cached structures kept)")
                }
            }
            Command::Quit => {
                let mut r = Response::ok("bye");
                r.quit = true;
                r
            }
        }
    }

    fn info(&self) -> Response {
        let g = self.engine.graph();
        let c = self.engine.config();
        Response::ok(format!(
            "graph '{}': {} vertices, {} edges, {} labels, epoch {}, strategy {}, threads {}",
            self.source,
            g.vertex_count(),
            g.edge_count(),
            g.label_count(),
            self.engine.epoch(),
            c.strategy,
            c.threads,
        ))
    }

    fn info_summary(&self, what: &str) -> Response {
        let g = self.engine.graph();
        Response::ok(format!(
            "{what}: {} vertices, {} edges, {} labels",
            g.vertex_count(),
            g.edge_count(),
            g.label_count(),
        ))
    }

    /// Replaces the engine's graph, keeping the session configuration
    /// (strategy, threads, clause limit) but dropping cached structures —
    /// they describe the old graph.
    fn replace_graph(&mut self, graph: VersionedGraph, source: String) {
        let config = *self.engine.config();
        self.engine = Engine::with_config_versioned(graph, config);
        self.source = source;
    }

    fn load(&mut self, path: &str) -> Response {
        let p = Path::new(path);
        // Sniff for an *engine* snapshot first (graph + warm cache); fall
        // back to the graph-level auto-detection (snapshot or edge list).
        // The magic rules themselves live with their formats
        // (`matches_magic`), not here.
        let head = match std::fs::File::open(p) {
            Ok(mut f) => {
                use std::io::Read;
                let mut head = [0u8; 8];
                let n = f.read(&mut head).unwrap_or(0);
                head[..n].to_vec()
            }
            Err(e) => return Response::err(format!("cannot open '{path}': {e}")),
        };
        if rpq_core::snapshot::matches_magic(&head) {
            let config = *self.engine.config();
            match rpq_core::snapshot::load_snapshot(p, config) {
                Ok(engine) => {
                    let warm = engine.cache().rtc_count() + engine.cache().full_count();
                    let epoch = engine.epoch();
                    self.engine = engine;
                    self.source = path.to_string();
                    let g = self.engine.graph();
                    Response::ok(format!(
                        "warm restart: {} vertices, {} edges, epoch {epoch}, {warm} cached structures",
                        g.vertex_count(),
                        g.edge_count(),
                    ))
                }
                Err(e) => Response::err(format!("cannot load engine snapshot '{path}': {e}")),
            }
        } else {
            match rpq_datasets::io::load_versioned(p) {
                Ok(vg) => {
                    self.replace_graph(vg, path.to_string());
                    self.info_summary(&format!("loaded '{path}'"))
                }
                Err(e) => Response::err(format!("cannot load '{path}': {e}")),
            }
        }
    }

    fn save(&mut self, path: &str) -> Response {
        match rpq_core::snapshot::save_snapshot(&self.engine, Path::new(path)) {
            Ok(()) => {
                // Report what was actually persisted: only *fresh*
                // entries survive a save (stale ones are dropped).
                let cache = self.engine.cache();
                let fresh = cache.fresh_rtc_entries().count() + cache.fresh_full_entries().count();
                let stale = cache.rtc_count() + cache.full_count() - fresh;
                let dropped = if stale > 0 {
                    format!(" ({stale} stale dropped)")
                } else {
                    String::new()
                };
                Response::ok(format!(
                    "snapshot '{path}': epoch {}, {fresh} cached structures{dropped}",
                    self.engine.epoch(),
                ))
            }
            Err(e) => Response::err(format!("cannot save '{path}': {e}")),
        }
    }

    fn export(&mut self, path: &str) -> Response {
        match rpq_datasets::io::save_graph(self.engine.graph(), Path::new(path)) {
            Ok(()) => Response::ok(format!(
                "edge list '{path}': {} edges",
                self.engine.graph().edge_count()
            )),
            Err(e) => Response::err(format!("cannot export '{path}': {e}")),
        }
    }

    fn query(&mut self, text: &str) -> Response {
        let t = Instant::now();
        match self.engine.evaluate_str(text) {
            Ok(result) => {
                let elapsed = t.elapsed();
                let shown = result.len().min(self.limit);
                let mut lines: Vec<String> = result
                    .iter()
                    .take(shown)
                    .map(|(s, d)| format!("  v{} -> v{}", s.raw(), d.raw()))
                    .collect();
                if self.limit > 0 && result.len() > shown {
                    lines.push(format!(
                        "  ... {} more (raise with 'limit N')",
                        result.len() - shown
                    ));
                }
                Response::ok(format!("{} pairs in {elapsed:.2?}", result.len())).with_lines(lines)
            }
            Err(e) => Response::err(format!("query failed: {e}")),
        }
    }

    fn check(&mut self, src: u32, dst: u32, text: &str) -> Response {
        match rpq_regex::Regex::parse(text) {
            Ok(q) => {
                let found =
                    self.engine
                        .check(&q, rpq_graph::VertexId(src), rpq_graph::VertexId(dst));
                Response::ok(format!(
                    "{} path v{src} -> v{dst} for {q}",
                    if found { "found" } else { "no" }
                ))
            }
            Err(e) => Response::err(format!("bad RPQ: {e}")),
        }
    }

    fn ends(&mut self, src: u32, text: &str) -> Response {
        match rpq_regex::Regex::parse(text) {
            Ok(q) => {
                let ends = self.engine.ends_from(&q, rpq_graph::VertexId(src));
                // `limit 0` means count-only, same as `query`.
                let shown = ends.len().min(self.limit);
                let line = ends
                    .iter()
                    .take(shown)
                    .map(|v| format!("v{}", v.raw()))
                    .collect::<Vec<_>>()
                    .join(" ");
                let mut lines = Vec::new();
                if shown > 0 {
                    let more = if ends.len() > shown {
                        format!(" ... {} more (raise with 'limit N')", ends.len() - shown)
                    } else {
                        String::new()
                    };
                    lines.push(format!("  {line}{more}"));
                }
                Response::ok(format!("{} end vertices from v{src}", ends.len())).with_lines(lines)
            }
            Err(e) => Response::err(format!("bad RPQ: {e}")),
        }
    }

    fn prepare(&mut self, text: &str) -> Response {
        match rpq_regex::Regex::parse(text) {
            Ok(q) => match self.engine.prepare(std::slice::from_ref(&q)) {
                Ok(report) => Response::ok(format!(
                    "prepared: {} bodies computed, {} reused, {} shared pairs",
                    report.bodies_computed, report.bodies_reused, report.shared_pairs
                )),
                Err(e) => Response::err(format!("prepare failed: {e}")),
            },
            Err(e) => Response::err(format!("bad RPQ: {e}")),
        }
    }

    fn delta(&mut self, ops: &[DeltaOp]) -> Response {
        let mut delta = GraphDelta::new();
        for op in ops {
            match op {
                DeltaOp::Insert(s, l, d) => {
                    delta.insert(*s, l, *d);
                }
                DeltaOp::Delete(s, l, d) => {
                    delta.delete(*s, l, *d);
                }
                DeltaOp::Grow(n) => {
                    delta.ensure_vertices(*n);
                }
            }
        }
        let summary = self.engine.apply_delta(&delta);
        Response::ok(format!(
            "epoch {}: +{} -{} edges, {} new labels, {} new vertices",
            summary.epoch,
            summary.edges_inserted,
            summary.edges_deleted,
            summary.new_labels,
            summary.new_vertices,
        ))
    }

    fn metrics(&self) -> Response {
        let b = self.engine.breakdown();
        let s = self.engine.elimination_stats();
        let m = self.engine.maintenance_metrics();
        let lines = vec![
            format!(
                "  breakdown: shared_data={:.2?} pre_join={:.2?} remainder={:.2?} total={:.2?}",
                b.shared_data,
                b.pre_join,
                b.remainder(),
                b.total
            ),
            format!(
                "  elimination: useless1={} redundant1={} redundant2={} useless2_inserts={} full_dup_hits={}",
                s.useless1_skipped,
                s.redundant1_skipped,
                s.redundant2_skipped,
                s.useless2_unchecked_inserts,
                s.full_duplicate_hits
            ),
            format!(
                "  maintenance: deltas={} unchanged={} incremental={} rebuild={} inc_time={:.2?} rebuild_time={:.2?}",
                m.deltas_applied,
                m.unchanged_refreshes,
                m.incremental_refreshes,
                m.rebuild_refreshes,
                m.incremental_time,
                m.rebuild_time
            ),
        ];
        Response::ok("metrics".to_string()).with_lines(lines)
    }

    fn cache(&self) -> Response {
        let c = self.engine.cache();
        let lines = vec![
            format!(
                "  entries: {} rtc ({} pairs, {} sccs), {} full ({} pairs)",
                c.rtc_count(),
                c.rtc_shared_pairs(),
                c.rtc_total_sccs(),
                c.full_count(),
                c.full_shared_pairs()
            ),
            format!(
                "  lookups: {} hits, {} misses, {} stale hits (epoch {})",
                c.hits(),
                c.misses(),
                c.stale_hits(),
                c.epoch()
            ),
        ];
        Response::ok(format!(
            "{} shared pairs held",
            self.engine.shared_data_pairs()
        ))
        .with_lines(lines)
    }
}

/// The strategy flag value accepted by the `rpq` binary (`--strategy`).
pub fn parse_strategy_flag(v: &str) -> Option<Strategy> {
    match v {
        "rtc" => Some(Strategy::RtcSharing),
        "full" => Some(Strategy::FullSharing),
        "none" | "no" => Some(Strategy::NoSharing),
        _ => None,
    }
}

/// Builds the startup engine config from the binary's flags.
pub fn startup_config(strategy: Option<Strategy>, threads: Option<usize>) -> EngineConfig {
    let mut config = EngineConfig::default();
    if let Some(s) = strategy {
        config.strategy = s;
    }
    if let Some(t) = threads {
        config.threads = t;
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_summary(r: Option<Response>) -> String {
        match r.expect("command produced a response").status {
            Status::Ok(s) => s,
            Status::Err(e) => panic!("expected OK, got ERR {e}"),
        }
    }

    #[test]
    fn paper_graph_query_flow() {
        let mut s = Session::new();
        ok_summary(s.execute("gen paper"));
        let r = s.execute("query d.(b.c)+.c").unwrap();
        assert_eq!(r.lines, vec!["  v7 -> v3", "  v7 -> v5"]);
        assert!(matches!(r.status, Status::Ok(ref m) if m.starts_with("2 pairs")));
        // Second evaluation shares the cached RTC.
        ok_summary(s.execute("query d.(b.c)+.c"));
        assert!(s.engine().cache().hits() >= 1);
    }

    #[test]
    fn limit_caps_printed_pairs() {
        let mut s = Session::new();
        s.execute("gen paper");
        ok_summary(s.execute("limit 1"));
        let r = s.execute("query d.(b.c)+.c").unwrap();
        assert_eq!(r.lines.len(), 2); // one pair + the "... more" line
        assert!(r.lines[1].contains("1 more"));
    }

    #[test]
    fn limit_zero_is_count_only_for_query_and_ends() {
        let mut s = Session::new();
        s.execute("gen paper");
        ok_summary(s.execute("limit 0"));
        let r = s.execute("query d.(b.c)+.c").unwrap();
        assert!(r.lines.is_empty(), "{:?}", r.lines);
        assert!(matches!(r.status, Status::Ok(ref m) if m.starts_with("2 pairs")));
        let r = s.execute("ends 7 d.(b.c)+.c").unwrap();
        assert!(r.lines.is_empty(), "{:?}", r.lines);
        assert!(matches!(r.status, Status::Ok(ref m) if m.starts_with("2 end vertices")));
    }

    #[test]
    fn delta_then_query_sees_the_mutation() {
        let mut s = Session::new();
        s.execute("gen paper");
        ok_summary(s.execute("query (b.c)+"));
        let summary = ok_summary(s.execute("delta ins 6 b 8 ins 8 c 6"));
        assert!(summary.starts_with("epoch 1: +2 -0"), "{summary}");
        let r = s.execute("query (b.c)+").unwrap();
        assert!(matches!(r.status, Status::Ok(ref m) if !m.starts_with("10 pairs")));
        assert!(s.engine().cache().stale_hits() >= 1);
    }

    #[test]
    fn strategy_switch_keeps_serving() {
        let mut s = Session::new();
        s.execute("gen paper");
        let rtc = s.execute("query d.(b.c)+.c").unwrap();
        ok_summary(s.execute("strategy full"));
        let full = s.execute("query d.(b.c)+.c").unwrap();
        ok_summary(s.execute("strategy none"));
        let none = s.execute("query d.(b.c)+.c").unwrap();
        assert_eq!(rtc.lines, full.lines);
        assert_eq!(rtc.lines, none.lines);
    }

    #[test]
    fn check_and_ends() {
        let mut s = Session::new();
        s.execute("gen paper");
        assert!(ok_summary(s.execute("check 7 5 d.(b.c)+.c")).starts_with("found path"));
        assert!(ok_summary(s.execute("check 7 4 d.(b.c)+.c")).starts_with("no path"));
        let r = s.execute("ends 7 d.(b.c)+.c").unwrap();
        assert_eq!(r.lines, vec!["  v3 v5"]);
    }

    #[test]
    fn save_load_roundtrip_is_warm() {
        let dir = std::env::temp_dir().join("rpq_session_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.snap");
        let path_str = path.to_str().unwrap();

        let mut s = Session::new();
        s.execute("gen paper");
        s.execute("query d.(b.c)+.c");
        let summary = ok_summary(s.execute(&format!("save {path_str}")));
        assert!(summary.contains("1 cached structures"), "{summary}");

        let mut fresh = Session::new();
        let summary = ok_summary(fresh.execute(&format!("load {path_str}")));
        assert!(summary.starts_with("warm restart"), "{summary}");
        fresh.execute("query d.(b.c)+.c");
        assert_eq!(fresh.engine().cache().misses(), 0);
        assert!(fresh.engine().cache().hits() >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn errors_do_not_kill_the_session() {
        let mut s = Session::new();
        s.execute("gen paper");
        assert!(matches!(
            s.execute("query (((").unwrap().status,
            Status::Err(_)
        ));
        assert!(matches!(
            s.execute("load /no/such/file").unwrap().status,
            Status::Err(_)
        ));
        assert!(matches!(
            s.execute("bogus command").unwrap().status,
            Status::Err(_)
        ));
        // Still serving.
        ok_summary(s.execute("query d.(b.c)+.c"));
    }

    #[test]
    fn quit_sets_the_flag() {
        let mut s = Session::new();
        let r = s.execute("quit").unwrap();
        assert!(r.quit);
        assert!(matches!(r.status, Status::Ok(ref m) if m == "bye"));
    }

    #[test]
    fn render_framing() {
        let mut s = Session::new();
        s.execute("gen paper");
        let rendered = s.execute("query d.(b.c)+.c").unwrap().render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].starts_with("OK "));
        let rendered = s.execute("nope").unwrap().render();
        assert!(rendered.starts_with("ERR "));
    }
}
