//! The `rpq` binary: REPL and TCP front-ends over one serving engine.
//!
//! ```text
//! rpq repl  [--load PATH] [--strategy rtc|full|none] [--threads N]
//!           [--cache-budget SPEC]
//! rpq serve --addr HOST:PORT [--max-conns N] [--load PATH]
//!           [--strategy rtc|full|none] [--threads N] [--cache-budget SPEC]
//! ```
//!
//! `repl` reads commands from stdin (interactive prompt on a TTY, silent
//! in pipes) and writes responses to stdout. `serve` speaks the same
//! command language as a line-delimited TCP protocol; all connections
//! share one engine and one epoch-aware cache, up to `--max-conns`
//! simultaneous clients (default 256; over-limit connections get one
//! `ERR busy` line). `--load` accepts an edge list, a graph snapshot, or
//! an engine snapshot (warm restart) — the format is auto-detected. See
//! `docs/QUERY_LANGUAGE.md` for the command reference.

use rpq_server::session::{parse_strategy_flag, startup_config, Session};
use std::process::ExitCode;

struct Options {
    mode: Mode,
    load: Option<String>,
    strategy: Option<rpq_core::Strategy>,
    threads: Option<usize>,
    cache_budget: Option<rpq_core::CacheBudget>,
    max_conns: usize,
}

enum Mode {
    Repl,
    Serve { addr: String },
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mode = match args.next().as_deref() {
        Some("repl") => Mode::Repl,
        Some("serve") => Mode::Serve {
            addr: String::new(),
        },
        Some("--help" | "-h") | None => return Err(String::new()),
        Some(other) => return Err(format!("unknown mode '{other}' (use repl or serve)")),
    };
    let mut opts = Options {
        mode,
        load: None,
        strategy: None,
        threads: None,
        cache_budget: None,
        max_conns: rpq_server::DEFAULT_MAX_CONNS,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--load" => opts.load = Some(args.next().ok_or("--load needs a PATH")?),
            "--strategy" => {
                let v = args.next().ok_or("--strategy needs rtc|full|none")?;
                opts.strategy =
                    Some(parse_strategy_flag(&v).ok_or(format!("unknown strategy '{v}'"))?);
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads =
                    Some(v.parse().map_err(|_| {
                        format!("--threads needs a non-negative integer, got '{v}'")
                    })?);
            }
            "--cache-budget" => {
                let v = args
                    .next()
                    .ok_or("--cache-budget needs a spec like 'bytes=64m,entries=512,ttl=8'")?;
                // Unlike the RPQ_CACHE_BUDGET env (which falls back to
                // unbounded on garbage), a typo on the command line is an
                // error the operator should see.
                opts.cache_budget = Some(rpq_core::CacheBudget::parse(&v).ok_or(format!(
                    "bad --cache-budget '{v}' (want 'bytes=SIZE,entries=N,ttl=N', a bare SIZE, or 'unbounded')"
                ))?);
            }
            "--addr" => {
                let v = args.next().ok_or("--addr needs HOST:PORT")?;
                match &mut opts.mode {
                    Mode::Serve { addr } => *addr = v,
                    Mode::Repl => return Err("--addr only applies to serve".into()),
                }
            }
            "--max-conns" => {
                if matches!(opts.mode, Mode::Repl) {
                    return Err("--max-conns only applies to serve".into());
                }
                let v = args.next().ok_or("--max-conns needs a value")?;
                opts.max_conns = v
                    .parse()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or(format!("--max-conns needs a positive integer, got '{v}'"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if let Mode::Serve { addr } = &opts.mode {
        if addr.is_empty() {
            return Err("serve needs --addr HOST:PORT".into());
        }
    }
    Ok(opts)
}

fn print_usage() {
    eprintln!("usage: rpq repl  [--load PATH] [--strategy rtc|full|none] [--threads N]");
    eprintln!("                 [--cache-budget SPEC]");
    eprintln!("       rpq serve --addr HOST:PORT [--max-conns N] [--load PATH]");
    eprintln!("                 [--strategy rtc|full|none] [--threads N] [--cache-budget SPEC]");
    eprintln!();
    eprintln!("--load accepts an edge list, a graph snapshot, or an engine snapshot");
    eprintln!("(warm restart) — the format is auto-detected. --max-conns caps");
    eprintln!("simultaneous TCP clients (default 256; extras get 'ERR busy').");
    eprintln!("--cache-budget bounds the shared cache: 'bytes=SIZE,entries=N,ttl=N'");
    eprintln!("(SIZE takes k/m/g suffixes; any part may be omitted; a bare SIZE");
    eprintln!("caps bytes; 'unbounded' disables). Overrides RPQ_CACHE_BUDGET.");
    eprintln!("Commands: see 'help' in the session or docs/QUERY_LANGUAGE.md.");
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}");
            }
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    // Startup flags set the engine's *base* configuration (not a
    // connection overlay): every connection inherits it, and an
    // engine-snapshot load picks it up too.
    let mut session = Session::with_config(startup_config(
        opts.strategy,
        opts.threads,
        opts.cache_budget,
    ));
    if let Some(path) = &opts.load {
        match session.execute(&format!("load {path}")) {
            Some(r) if matches!(r.status, rpq_server::Status::Ok(_)) => {
                eprint!("{}", r.render());
            }
            Some(r) => {
                eprint!("{}", r.render());
                return ExitCode::FAILURE;
            }
            None => unreachable!("load always responds"),
        }
    }

    match opts.mode {
        Mode::Repl => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            match rpq_server::run_repl(&mut session, stdin.lock(), stdout.lock()) {
                Ok(_) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Serve { addr } => {
            let listener = match std::net::TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("error: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!(
                "listening on {} (line protocol, max {} connections; try: echo 'info' | nc {addr})",
                listener
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or(addr.clone()),
                opts.max_conns,
            );
            let shared = rpq_server::shared(session);
            shared.set_max_conns(opts.max_conns);
            match rpq_server::serve(listener, shared) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: accept loop failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    }
}
