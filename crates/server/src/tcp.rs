//! The line-delimited TCP protocol: the REPL command language over a
//! socket, for scripted and multi-client use.
//!
//! ## Protocol
//!
//! * On connect the server sends one greeting line: `OK rtc-rpq ready`.
//! * Each request is **one line** in the [`crate::command`] language.
//! * Each response is zero or more payload lines followed by exactly one
//!   status line starting with `OK ` or `ERR ` — read lines until one of
//!   those prefixes and the response is complete (payload lines are
//!   guaranteed not to start with either prefix).
//! * `quit` answers `OK bye` and closes **the connection**; the server
//!   keeps listening.
//!
//! ## Sharing
//!
//! All connections serve one [`Session`] — one long-lived engine, one
//! epoch-aware `SharedCache` — behind a mutex: commands from concurrent
//! clients interleave at command granularity, and an RTC computed for one
//! client's query is a `Fresh` cache hit for every other client (the
//! cross-query sharing of the paper, stretched across connections).
//! Because the engine is shared, graph-level commands (`load`, `delta`,
//! `strategy`) affect every client; this is the intended semantics — the
//! server fronts *one* graph.

use crate::session::Session;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// The greeting sent to every new connection.
pub const GREETING: &str = "OK rtc-rpq ready";

/// Shared serving state: one session for all connections.
pub type SharedSession = Arc<Mutex<Session>>;

/// Wraps a session for sharing across connection threads.
pub fn shared(session: Session) -> SharedSession {
    Arc::new(Mutex::new(session))
}

/// Serves connections from `listener` forever, one thread per client.
/// Never returns under normal operation; returns the accept-loop error if
/// the listener dies.
pub fn serve(listener: TcpListener, session: SharedSession) -> std::io::Result<()> {
    loop {
        let (stream, _addr) = listener.accept()?;
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            // A dropped client mid-response is that client's problem only.
            let _ = handle_connection(stream, &session);
        });
    }
}

/// Drives one client connection to completion (EOF or `quit`). Returns
/// the number of commands executed on behalf of this client.
pub fn handle_connection(stream: TcpStream, session: &SharedSession) -> std::io::Result<u64> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    writeln!(writer, "{GREETING}")?;
    writer.flush()?;
    let mut executed = 0u64;
    for line in reader.lines() {
        let line = line?;
        // Parse outside the lock is impossible (responses need the
        // engine), but the lock is held per command, not per connection:
        // other clients proceed between this client's commands.
        //
        // Poisoning is deliberately cleared: a panic inside one command
        // would otherwise kill *every* future connection at this lock.
        // Session state is consistent at command granularity (the panicked
        // command's response was simply never sent), so serving continues.
        let response = {
            let mut s = session
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            s.execute(&line)
        };
        if let Some(response) = response {
            executed += 1;
            writer.write_all(response.render().as_bytes())?;
            writer.flush()?;
            if response.quit {
                break;
            }
        }
    }
    Ok(executed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    /// Binds an ephemeral-port server over a fresh session, returning the
    /// address to connect to.
    fn spawn_server() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let session = shared(Session::new());
        std::thread::spawn(move || serve(listener, session));
        addr
    }

    /// Sends one command line, reading payload lines until the status line.
    fn roundtrip(
        reader: &mut impl BufRead,
        writer: &mut impl Write,
        command: &str,
    ) -> (Vec<String>, String) {
        writeln!(writer, "{command}").unwrap();
        writer.flush().unwrap();
        read_response(reader)
    }

    fn read_response(reader: &mut impl BufRead) -> (Vec<String>, String) {
        let mut payload = Vec::new();
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
            let line = line.trim_end().to_string();
            if line.starts_with("OK ") || line.starts_with("ERR ") {
                return (payload, line);
            }
            payload.push(line);
        }
    }

    fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Greeting.
        let (_, status) = read_response(&mut reader);
        assert_eq!(status, GREETING);
        (reader, writer)
    }

    #[test]
    fn single_client_query_flow() {
        let addr = spawn_server();
        let (mut r, mut w) = connect(addr);
        let (_, status) = roundtrip(&mut r, &mut w, "gen paper");
        assert!(status.starts_with("OK loaded paper graph"), "{status}");
        let (payload, status) = roundtrip(&mut r, &mut w, "query d.(b.c)+.c");
        assert_eq!(payload, vec!["  v7 -> v3", "  v7 -> v5"]);
        assert!(status.starts_with("OK 2 pairs"), "{status}");
        let (_, status) = roundtrip(&mut r, &mut w, "bogus");
        assert!(status.starts_with("ERR unknown command"), "{status}");
        let (_, status) = roundtrip(&mut r, &mut w, "quit");
        assert_eq!(status, "OK bye");
    }

    #[test]
    fn two_clients_share_one_cache() {
        let addr = spawn_server();
        let (mut r1, mut w1) = connect(addr);
        roundtrip(&mut r1, &mut w1, "gen paper");
        roundtrip(&mut r1, &mut w1, "query d.(b.c)+.c"); // computes the (b.c) RTC

        // A second client sees the same graph and hits the shared cache.
        let (mut r2, mut w2) = connect(addr);
        let (_, status) = roundtrip(&mut r2, &mut w2, "query a.(b.c)+"); // same closure body
        assert!(status.starts_with("OK "), "{status}");
        let (payload, _) = roundtrip(&mut r2, &mut w2, "cache");
        let entries_line = &payload[0];
        assert!(entries_line.contains("1 rtc"), "{entries_line}");
        let lookups_line = &payload[1];
        // At least one hit came from client 2 reusing client 1's RTC.
        assert!(!lookups_line.contains("0 hits"), "{lookups_line}");

        // A delta from client 2 is visible to client 1 (shared epoch).
        roundtrip(&mut r2, &mut w2, "delta ins 6 b 8 ins 8 c 6");
        let (_, status) = roundtrip(&mut r1, &mut w1, "epoch");
        assert_eq!(status, "OK epoch 1");
    }

    #[test]
    fn quit_closes_only_that_connection() {
        let addr = spawn_server();
        let (mut r1, mut w1) = connect(addr);
        roundtrip(&mut r1, &mut w1, "gen paper");
        roundtrip(&mut r1, &mut w1, "quit");
        // The server still accepts and serves.
        let (mut r2, mut w2) = connect(addr);
        let (_, status) = roundtrip(&mut r2, &mut w2, "info");
        assert!(status.starts_with("OK graph 'paper'"), "{status}");
    }
}
