//! The line-delimited TCP protocol: the REPL command language over a
//! socket, for scripted and multi-client use.
//!
//! ## Protocol
//!
//! * On connect the server sends one greeting line: `OK rtc-rpq ready`.
//! * Each request is **one line** in the [`crate::command`] language.
//! * Each response is zero or more payload lines followed by exactly one
//!   status line starting with `OK ` or `ERR ` — read lines until one of
//!   those prefixes and the response is complete (payload lines are
//!   guaranteed not to start with either prefix). A connection that sent
//!   `binary on` additionally receives `query` results as one
//!   `RESULT-BIN <bytes> <pairs>` header line followed by exactly
//!   `<bytes>` raw bytes (see [`crate::wire`]), then the status line.
//! * `quit` answers `OK bye` and closes **the connection**; the server
//!   keeps listening.
//! * When the simultaneous-connection cap (`--max-conns`, default
//!   [`crate::session::DEFAULT_MAX_CONNS`]) is reached, a new connection
//!   receives exactly one `ERR busy …` line and is closed — no greeting,
//!   no session.
//!
//! ## Sharing and concurrency
//!
//! All connections serve one [`crate::session::ServerState`] — one
//! long-lived engine, one epoch-aware `SharedCache` — each connection
//! holding its own [`Session`] (per-connection overlay: `strategy`,
//! `threads`, `limit`, `binary`). Read-only commands never lock the
//! engine: they grab the currently published
//! [`crate::session::PublishedView`] (an immutable MVCC epoch view) with
//! one `Arc` clone and evaluate against that snapshot, so a slow `query`
//! on one connection never blocks anything on another — not even a
//! concurrent `delta`. Mutating commands (`delta`, `load`, `gen`, `save`,
//! `reset`, `prepare`) serialize among themselves on the writer-half
//! lock and publish a fresh view by swap; readers pick up the new epoch
//! on their next command. An RTC computed for one client's query is
//! immediately a `Fresh` cache hit for every other (the cross-query
//! sharing of the paper, stretched across connections), and a repeated
//! `query` at an unchanged epoch is answered from the per-epoch result
//! cache without evaluating at all. Because the engine is shared,
//! graph-level commands affect every client; this is the intended
//! semantics — the server fronts *one* graph. `query … at <epoch>`
//! addresses a retained older view (time travel).

use crate::session::{Session, SharedEngine};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// The greeting sent to every new connection.
pub const GREETING: &str = "OK rtc-rpq ready";

/// Shared serving state: one read-write-locked engine for all connections.
pub type SharedSession = SharedEngine;

/// Extracts the shared engine state from a startup session for sharing
/// across connection threads (each connection then attaches its own
/// [`Session`] with a fresh overlay).
pub fn shared(session: Session) -> SharedSession {
    session.shared()
}

/// Decrements the live-connection count when a connection thread ends,
/// however it ends (EOF, `quit`, I/O error, panic unwind).
struct ConnGuard {
    shared: SharedSession,
}

impl ConnGuard {
    fn try_acquire(shared: &SharedSession) -> Option<ConnGuard> {
        shared.try_open_conn().then(|| ConnGuard {
            shared: Arc::clone(shared),
        })
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.conn_closed();
    }
}

/// Serves connections from `listener` forever, one thread per client, up
/// to the shared state's connection cap
/// ([`crate::session::ServerState::set_max_conns`]; over-limit
/// connections get one `ERR busy …` line and are closed).
/// Never returns under normal operation; returns the accept-loop error if
/// the listener dies.
pub fn serve(listener: TcpListener, shared: SharedSession) -> std::io::Result<()> {
    loop {
        let (mut stream, _addr) = listener.accept()?;
        let Some(guard) = ConnGuard::try_acquire(&shared) else {
            // One line, no greeting: the client knows immediately that it
            // was the cap, not a protocol error. Best-effort — a client
            // that already hung up is its own problem.
            let _ = writeln!(
                stream,
                "ERR busy ({} connections, max {})",
                shared.live_conns(),
                shared.max_conns()
            );
            continue;
        };
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let _guard = guard;
            // A dropped client mid-response is that client's problem only.
            let _ = handle_connection(stream, &shared);
        });
    }
}

/// Drives one client connection to completion (EOF or `quit`). Returns
/// the number of commands executed on behalf of this client.
pub fn handle_connection(stream: TcpStream, shared: &SharedSession) -> std::io::Result<u64> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    // This connection's session: shared engine, private overlay. Locking
    // happens *inside* command dispatch — read commands take the shared
    // read lock (concurrent with other readers), mutating commands the
    // write lock — so no lock is ever held between commands, and a
    // panicked command's poisoning is cleared by the session's lock
    // helpers (state is consistent at command granularity).
    let mut session = Session::attach(Arc::clone(shared));
    writeln!(writer, "{GREETING}")?;
    writer.flush()?;
    let mut executed = 0u64;
    for line in reader.lines() {
        let line = line?;
        if let Some(response) = session.execute(&line) {
            executed += 1;
            // One write_all per response: bytes of two responses on one
            // connection can never interleave, and responses to *other*
            // connections ride their own sockets entirely.
            response.write_to(&mut writer)?;
            writer.flush()?;
            if response.quit {
                break;
            }
        }
    }
    Ok(executed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    /// Binds an ephemeral-port server over a fresh session, returning the
    /// address to connect to.
    fn spawn_server() -> std::net::SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shared = shared(Session::new());
        std::thread::spawn(move || serve(listener, shared));
        addr
    }

    /// Sends one command line, reading payload lines until the status line.
    fn roundtrip(
        reader: &mut impl BufRead,
        writer: &mut impl Write,
        command: &str,
    ) -> (Vec<String>, String) {
        writeln!(writer, "{command}").unwrap();
        writer.flush().unwrap();
        read_response(reader)
    }

    fn read_response(reader: &mut impl BufRead) -> (Vec<String>, String) {
        let mut payload = Vec::new();
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
            let line = line.trim_end().to_string();
            if line.starts_with("OK ") || line.starts_with("ERR ") {
                return (payload, line);
            }
            payload.push(line);
        }
    }

    fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Greeting.
        let (_, status) = read_response(&mut reader);
        assert_eq!(status, GREETING);
        (reader, writer)
    }

    #[test]
    fn single_client_query_flow() {
        let addr = spawn_server();
        let (mut r, mut w) = connect(addr);
        let (_, status) = roundtrip(&mut r, &mut w, "gen paper");
        assert!(status.starts_with("OK loaded paper graph"), "{status}");
        let (payload, status) = roundtrip(&mut r, &mut w, "query d.(b.c)+.c");
        assert_eq!(payload, vec!["  v7 -> v3", "  v7 -> v5"]);
        assert!(status.starts_with("OK 2 pairs"), "{status}");
        let (_, status) = roundtrip(&mut r, &mut w, "bogus");
        assert!(status.starts_with("ERR unknown command"), "{status}");
        let (_, status) = roundtrip(&mut r, &mut w, "quit");
        assert_eq!(status, "OK bye");
    }

    #[test]
    fn two_clients_share_one_cache() {
        let addr = spawn_server();
        let (mut r1, mut w1) = connect(addr);
        roundtrip(&mut r1, &mut w1, "gen paper");
        roundtrip(&mut r1, &mut w1, "query d.(b.c)+.c"); // computes the (b.c) RTC

        // A second client sees the same graph and hits the shared cache.
        let (mut r2, mut w2) = connect(addr);
        let (_, status) = roundtrip(&mut r2, &mut w2, "query a.(b.c)+"); // same closure body
        assert!(status.starts_with("OK "), "{status}");
        let (payload, _) = roundtrip(&mut r2, &mut w2, "cache");
        let entries_line = &payload[0];
        assert!(entries_line.contains("1 rtc"), "{entries_line}");
        let lookups_line = &payload[1];
        // At least one hit came from client 2 reusing client 1's RTC.
        assert!(!lookups_line.contains("0 hits"), "{lookups_line}");

        // A delta from client 2 is visible to client 1 (shared epoch).
        roundtrip(&mut r2, &mut w2, "delta ins 6 b 8 ins 8 c 6");
        let (_, status) = roundtrip(&mut r1, &mut w1, "epoch");
        assert_eq!(status, "OK epoch 1");
    }

    #[test]
    fn overlays_are_per_connection() {
        let addr = spawn_server();
        let (mut r1, mut w1) = connect(addr);
        roundtrip(&mut r1, &mut w1, "gen paper");
        roundtrip(&mut r1, &mut w1, "strategy full");
        roundtrip(&mut r1, &mut w1, "limit 1");

        let (mut r2, mut w2) = connect(addr);
        let (_, info2) = roundtrip(&mut r2, &mut w2, "info");
        // Client 1's overlay never leaks into client 2's view.
        assert!(info2.contains("strategy RTCSharing"), "{info2}");
        assert!(info2.contains("limit 10"), "{info2}");
        let (_, info1) = roundtrip(&mut r1, &mut w1, "info");
        assert!(info1.contains("strategy FullSharing"), "{info1}");
        assert!(info1.contains("limit 1"), "{info1}");
        // And client 1's limit caps only client 1's payload.
        let (p1, _) = roundtrip(&mut r1, &mut w1, "query d.(b.c)+.c");
        let (p2, _) = roundtrip(&mut r2, &mut w2, "query d.(b.c)+.c");
        assert_eq!(p1.len(), 2); // one pair + the "... more" line
        assert_eq!(p2.len(), 2); // both pairs, no elision
        assert!(p1[1].contains("1 more"), "{p1:?}");
    }

    #[test]
    fn over_limit_connections_get_err_busy() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shared = shared(Session::new());
        shared.set_max_conns(1);
        let serve_shared = Arc::clone(&shared);
        std::thread::spawn(move || serve(listener, serve_shared));

        let (mut r1, mut w1) = connect(addr);
        let (_, status) = roundtrip(&mut r1, &mut w1, "info");
        assert!(status.starts_with("OK "), "{status}");
        assert!(status.contains("conns 1/1"), "{status}");

        // Second connection: one ERR busy line, then EOF — no greeting.
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("ERR busy"), "{line}");
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "closed after ERR");

        // Quitting the first frees the slot.
        roundtrip(&mut r1, &mut w1, "quit");
        for _ in 0..50 {
            if shared.live_conns() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let (mut r3, mut w3) = connect(addr);
        let (_, status) = roundtrip(&mut r3, &mut w3, "info");
        assert!(status.starts_with("OK "), "{status}");
    }

    #[test]
    fn time_travel_over_the_wire() {
        let addr = spawn_server();
        let (mut r, mut w) = connect(addr);
        roundtrip(&mut r, &mut w, "gen paper");
        let (before, _) = roundtrip(&mut r, &mut w, "query (b.c)+");
        roundtrip(&mut r, &mut w, "delta ins 6 b 8 ins 8 c 6");
        let (after, _) = roundtrip(&mut r, &mut w, "query (b.c)+");
        assert_ne!(before, after);
        let (pinned, status) = roundtrip(&mut r, &mut w, "query (b.c)+ at 0");
        assert_eq!(pinned, before);
        assert!(status.ends_with("(at epoch 0)"), "{status}");
        let (_, status) = roundtrip(&mut r, &mut w, "query (b.c)+ at 42");
        assert!(status.starts_with("ERR epoch 42 not retained"), "{status}");
    }

    #[test]
    fn quit_closes_only_that_connection() {
        let addr = spawn_server();
        let (mut r1, mut w1) = connect(addr);
        roundtrip(&mut r1, &mut w1, "gen paper");
        roundtrip(&mut r1, &mut w1, "quit");
        // The server still accepts and serves.
        let (mut r2, mut w2) = connect(addr);
        let (_, status) = roundtrip(&mut r2, &mut w2, "info");
        assert!(status.starts_with("OK graph 'paper'"), "{status}");
    }
}
