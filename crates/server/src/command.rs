//! The serving command language: one line in, one [`Command`] out.
//!
//! Both front-ends — the interactive REPL and the line-delimited TCP
//! protocol — parse requests through this single grammar, so a script that
//! drives the REPL over a pipe works verbatim against a TCP socket. The
//! full reference with worked examples lives in `docs/QUERY_LANGUAGE.md`.
//!
//! A command line is whitespace-separated tokens; the first token selects
//! the command. Commands that take an RPQ take it as **the rest of the
//! line**, so query text may contain spaces and quoted labels
//! (`query d . (b.c)+ . c` is fine). Blank lines and `#` comments parse
//! to `None`.

use rpq_core::Strategy;

/// One mutation inside a [`Command::Delta`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// `ins SRC LABEL DST` — queue an edge insertion.
    Insert(u32, String, u32),
    /// `del SRC LABEL DST` — queue an edge deletion.
    Delete(u32, String, u32),
    /// `grow N` — ensure at least `N` vertices.
    Grow(usize),
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `help` — list commands.
    Help,
    /// `info` — graph and engine status.
    Info,
    /// `epoch` — the current graph epoch.
    Epoch,
    /// `load PATH` — load an edge list, graph snapshot or engine snapshot
    /// (format auto-detected).
    Load(String),
    /// `save PATH` — write an engine snapshot (graph + warm cache).
    Save(String),
    /// `export PATH` — write the graph as a plain-text edge list.
    Export(String),
    /// `gen paper` — load the paper's Fig. 1 example graph.
    GenPaper,
    /// `gen rmat N SCALE SEED` — generate an `RMAT_N` graph with
    /// `2^SCALE` vertices.
    GenRmat {
        /// Degree exponent `N` (per-label degree `2^(N-2)`).
        n: u32,
        /// Vertex-count exponent.
        scale: u32,
        /// Generator seed.
        seed: u64,
    },
    /// `query RPQ [at EPOCH]` — evaluate, sharing structures with prior
    /// queries; `at EPOCH` pins a retained older epoch (time travel).
    Query {
        /// The path query.
        query: String,
        /// Retained epoch to evaluate against, if time-travelling.
        at: Option<u64>,
    },
    /// `check SRC DST RPQ [at EPOCH]` — does an `RPQ`-path from SRC to
    /// DST exist?
    Check {
        /// Source vertex.
        src: u32,
        /// Target vertex.
        dst: u32,
        /// The path query.
        query: String,
        /// Retained epoch to evaluate against, if time-travelling.
        at: Option<u64>,
    },
    /// `ends SRC RPQ [at EPOCH]` — end vertices of `RPQ`-paths from SRC.
    Ends {
        /// Source vertex.
        src: u32,
        /// The path query.
        query: String,
        /// Retained epoch to evaluate against, if time-travelling.
        at: Option<u64>,
    },
    /// `prepare RPQ` — warm the shared cache for a query without
    /// materializing its result.
    Prepare(String),
    /// `delta OPS` — apply a mutation batch
    /// (`delta ins 0 a 1 del 2 b 3 grow 20`).
    Delta(Vec<DeltaOp>),
    /// `strategy rtc|full|none` — switch **this connection's** evaluation
    /// strategy (an overlay over the engine's base configuration).
    SetStrategy(Strategy),
    /// `threads N` — set **this connection's** worker threads
    /// (0 = all cores).
    SetThreads(usize),
    /// `limit N` — cap the result pairs printed per query (0 = none).
    SetLimit(usize),
    /// `binary on|off` — switch this connection's `query` responses
    /// between text payload lines and `RESULT-BIN` binary frames.
    SetBinary(bool),
    /// `metrics` — timing breakdown, elimination and maintenance counters.
    Metrics,
    /// `cache` — shared-structure cache breakdown.
    Cache,
    /// `reset metrics|cache` — clear counters / drop cached structures.
    Reset {
        /// `true` also drops the cached structures.
        cache_too: bool,
    },
    /// `quit` / `exit` — end the session.
    Quit,
}

/// Parses one request line. `Ok(None)` for blank lines and `#` comments.
pub fn parse_command(line: &str) -> Result<Option<Command>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut tokens = line.split_whitespace();
    let head = tokens.next().expect("non-empty line has a first token");
    let rest = line[head.len()..].trim();
    let cmd = match head {
        "help" | "?" => Command::Help,
        "info" => Command::Info,
        "epoch" => Command::Epoch,
        "load" => Command::Load(require_path(rest, "load")?),
        "save" => Command::Save(require_path(rest, "save")?),
        "export" => Command::Export(require_path(rest, "export")?),
        "gen" => parse_gen(&mut tokens)?,
        "query" | "q" => require_query(rest, head)?,
        "check" => {
            let src = parse_num(tokens.next(), "check needs SRC DST RPQ")?;
            let dst = parse_num(tokens.next(), "check needs SRC DST RPQ")?;
            let (query, at) = split_at_epoch(&strip_tokens(rest, 2));
            if query.is_empty() {
                return Err("check needs SRC DST RPQ".into());
            }
            Command::Check {
                src,
                dst,
                query,
                at,
            }
        }
        "ends" => {
            let src = parse_num(tokens.next(), "ends needs SRC RPQ")?;
            let (query, at) = split_at_epoch(&strip_tokens(rest, 1));
            if query.is_empty() {
                return Err("ends needs SRC RPQ".into());
            }
            Command::Ends { src, query, at }
        }
        "prepare" => {
            if rest.is_empty() {
                return Err("prepare needs an RPQ".into());
            }
            Command::Prepare(rest.to_string())
        }
        "delta" => Command::Delta(parse_delta(&mut tokens)?),
        "strategy" => match tokens.next() {
            Some("rtc") => Command::SetStrategy(Strategy::RtcSharing),
            Some("full") => Command::SetStrategy(Strategy::FullSharing),
            Some("none" | "no") => Command::SetStrategy(Strategy::NoSharing),
            other => {
                return Err(format!(
                    "strategy needs rtc|full|none, got '{}'",
                    other.unwrap_or("")
                ))
            }
        },
        "threads" => Command::SetThreads(parse_num::<usize>(tokens.next(), "threads needs N")?),
        "limit" => Command::SetLimit(parse_num::<usize>(tokens.next(), "limit needs N")?),
        "binary" => match tokens.next() {
            Some("on") => Command::SetBinary(true),
            Some("off") => Command::SetBinary(false),
            other => {
                return Err(format!(
                    "binary takes on|off, got '{}'",
                    other.unwrap_or("")
                ))
            }
        },
        "metrics" => Command::Metrics,
        "cache" => Command::Cache,
        "reset" => match tokens.next() {
            Some("metrics") | None => Command::Reset { cache_too: false },
            Some("cache") => Command::Reset { cache_too: true },
            Some(other) => return Err(format!("reset takes metrics|cache, got '{other}'")),
        },
        "quit" | "exit" => Command::Quit,
        other => return Err(format!("unknown command '{other}' (try 'help')")),
    };
    Ok(Some(cmd))
}

fn require_path(rest: &str, cmd: &str) -> Result<String, String> {
    if rest.is_empty() {
        Err(format!("{cmd} needs a PATH"))
    } else {
        Ok(rest.to_string())
    }
}

fn require_query(rest: &str, cmd: &str) -> Result<Command, String> {
    let (query, at) = split_at_epoch(rest);
    if query.is_empty() {
        Err(format!("{cmd} needs an RPQ"))
    } else {
        Ok(Command::Query { query, at })
    }
}

/// Splits a trailing `at <epoch>` time-travel suffix off an RPQ tail,
/// preserving the query text's internal spacing. Only the exact two-token
/// tail `at <number>` is reserved — `at` alone, or `at` anywhere else in
/// the query, still parses as an ordinary label; a query genuinely ending
/// in the label `at` followed by nothing numeric is untouched.
fn split_at_epoch(text: &str) -> (String, Option<u64>) {
    let keep = || (text.to_string(), None);
    let trimmed = text.trim_end();
    let Some(last_ws) = trimmed.rfind(char::is_whitespace) else {
        return keep();
    };
    let Ok(epoch) = trimmed[last_ws..].trim().parse::<u64>() else {
        return keep();
    };
    let head = trimmed[..last_ws].trim_end();
    match head.rfind(char::is_whitespace) {
        None if head == "at" => (String::new(), Some(epoch)),
        None => keep(),
        Some(prev_ws) if head[prev_ws..].trim() == "at" => {
            (head[..prev_ws].trim_end().to_string(), Some(epoch))
        }
        Some(_) => keep(),
    }
}

/// Drops the first `n` whitespace-separated tokens of `rest`, returning
/// the trimmed remainder (the RPQ tail of `check`/`ends`, which must keep
/// its internal spacing).
fn strip_tokens(rest: &str, n: usize) -> String {
    let mut s = rest;
    for _ in 0..n {
        s = s.trim_start();
        let end = s.find(char::is_whitespace).unwrap_or(s.len());
        s = &s[end..];
    }
    s.trim().to_string()
}

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, err: &str) -> Result<T, String> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| err.to_string())
}

fn parse_gen<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Result<Command, String> {
    match tokens.next() {
        Some("paper") => Ok(Command::GenPaper),
        Some("rmat") => {
            let n = parse_num(tokens.next(), "gen rmat needs N SCALE SEED")?;
            let scale = parse_num(tokens.next(), "gen rmat needs N SCALE SEED")?;
            let seed = parse_num(tokens.next(), "gen rmat needs N SCALE SEED")?;
            Ok(Command::GenRmat { n, scale, seed })
        }
        other => Err(format!(
            "gen takes paper | rmat N SCALE SEED, got '{}'",
            other.unwrap_or("")
        )),
    }
}

fn parse_delta<'a>(tokens: &mut impl Iterator<Item = &'a str>) -> Result<Vec<DeltaOp>, String> {
    let mut ops = Vec::new();
    while let Some(op) = tokens.next() {
        match op {
            "ins" | "del" => {
                let src = parse_num(tokens.next(), "delta ins/del needs SRC LABEL DST")?;
                let label = tokens
                    .next()
                    .ok_or("delta ins/del needs SRC LABEL DST")?
                    .to_string();
                let dst = parse_num(tokens.next(), "delta ins/del needs SRC LABEL DST")?;
                ops.push(if op == "ins" {
                    DeltaOp::Insert(src, label, dst)
                } else {
                    DeltaOp::Delete(src, label, dst)
                });
            }
            "grow" => ops.push(DeltaOp::Grow(parse_num(tokens.next(), "grow needs N")?)),
            other => return Err(format!("delta ops are ins|del|grow, got '{other}'")),
        }
    }
    if ops.is_empty() {
        return Err(
            "delta needs at least one op (ins SRC LABEL DST | del SRC LABEL DST | grow N)".into(),
        );
    }
    Ok(ops)
}

/// The `help` text, one line per command (shared by both front-ends).
pub const HELP: &[&str] = &[
    "  help                      list commands",
    "  info                      graph and engine status",
    "  epoch                     current graph epoch",
    "  load PATH                 load edge list / graph snapshot / engine snapshot",
    "  save PATH                 write engine snapshot (graph + warm cache)",
    "  export PATH               write plain-text edge list",
    "  gen paper                 load the paper's Fig. 1 graph",
    "  gen rmat N SCALE SEED     generate RMAT_N with 2^SCALE vertices",
    "  query RPQ [at E]          evaluate an RPQ (shares structures); at E = retained epoch",
    "  check SRC DST RPQ [at E]  does an RPQ-path SRC -> DST exist?",
    "  ends SRC RPQ [at E]       end vertices of RPQ-paths from SRC",
    "  prepare RPQ               warm the shared cache for an RPQ",
    "  delta OPS...              mutate: ins SRC LABEL DST | del SRC LABEL DST | grow N",
    "  strategy rtc|full|none    switch evaluation strategy",
    "  threads N                 worker threads (0 = all cores)",
    "  limit N                   result pairs printed per query (0 = none)",
    "  binary on|off             query results as RESULT-BIN frames (this connection)",
    "  metrics                   timing/elimination/maintenance counters",
    "  cache                     shared-structure cache breakdown",
    "  reset [metrics|cache]     clear counters / drop cached structures",
    "  quit                      end the session",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn one(line: &str) -> Command {
        parse_command(line).unwrap().unwrap()
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("   ").unwrap(), None);
        assert_eq!(parse_command("# a comment").unwrap(), None);
    }

    fn query(text: &str, at: Option<u64>) -> Command {
        Command::Query {
            query: text.into(),
            at,
        }
    }

    #[test]
    fn query_keeps_the_rest_of_the_line() {
        assert_eq!(one("query d.(b.c)+.c"), query("d.(b.c)+.c", None));
        assert_eq!(
            one("q d . ( b . c ) + . c"),
            query("d . ( b . c ) + . c", None)
        );
        assert_eq!(one("query 'has part'+"), query("'has part'+", None));
    }

    #[test]
    fn at_epoch_suffix_is_split_off() {
        assert_eq!(one("query d.(b.c)+.c at 3"), query("d.(b.c)+.c", Some(3)));
        assert_eq!(
            one("q d . ( b . c ) + at 0"),
            query("d . ( b . c ) +", Some(0))
        );
        // `at` stays an ordinary label everywhere except the reserved
        // two-token tail.
        assert_eq!(one("query at"), query("at", None));
        assert_eq!(one("query at.b"), query("at.b", None));
        assert_eq!(one("query a at b"), query("a at b", None));
        assert_eq!(one("query b.at at 7"), query("b.at", Some(7)));
        // A bare `at <epoch>` leaves no query text.
        assert!(parse_command("query at 3").is_err());
        assert_eq!(
            one("check 7 5 d.(b.c)+.c at 2"),
            Command::Check {
                src: 7,
                dst: 5,
                query: "d.(b.c)+.c".into(),
                at: Some(2)
            }
        );
        assert_eq!(
            one("ends 7 (b.c)+ at 1"),
            Command::Ends {
                src: 7,
                query: "(b.c)+".into(),
                at: Some(1)
            }
        );
    }

    #[test]
    fn check_and_ends_split_numbers_then_query() {
        assert_eq!(
            one("check 7 5 d.(b.c)+.c"),
            Command::Check {
                src: 7,
                dst: 5,
                query: "d.(b.c)+.c".into(),
                at: None
            }
        );
        assert_eq!(
            one("ends 7 d.(b.c)+.c"),
            Command::Ends {
                src: 7,
                query: "d.(b.c)+.c".into(),
                at: None
            }
        );
        assert!(parse_command("check 7 d").is_err());
        assert!(parse_command("ends x d").is_err());
    }

    #[test]
    fn delta_parses_op_groups() {
        assert_eq!(
            one("delta ins 0 a 1 del 2 b 3 grow 20"),
            Command::Delta(vec![
                DeltaOp::Insert(0, "a".into(), 1),
                DeltaOp::Delete(2, "b".into(), 3),
                DeltaOp::Grow(20),
            ])
        );
        assert!(parse_command("delta").is_err());
        assert!(parse_command("delta ins 0 a").is_err());
        assert!(parse_command("delta frobnicate").is_err());
    }

    #[test]
    fn strategy_and_knobs() {
        assert_eq!(
            one("strategy rtc"),
            Command::SetStrategy(Strategy::RtcSharing)
        );
        assert_eq!(
            one("strategy full"),
            Command::SetStrategy(Strategy::FullSharing)
        );
        assert_eq!(
            one("strategy none"),
            Command::SetStrategy(Strategy::NoSharing)
        );
        assert!(parse_command("strategy magic").is_err());
        assert_eq!(one("threads 4"), Command::SetThreads(4));
        assert_eq!(one("limit 100"), Command::SetLimit(100));
        assert_eq!(one("binary on"), Command::SetBinary(true));
        assert_eq!(one("binary off"), Command::SetBinary(false));
        assert!(parse_command("binary").is_err());
        assert!(parse_command("binary maybe").is_err());
    }

    #[test]
    fn gen_variants() {
        assert_eq!(one("gen paper"), Command::GenPaper);
        assert_eq!(
            one("gen rmat 3 8 42"),
            Command::GenRmat {
                n: 3,
                scale: 8,
                seed: 42
            }
        );
        assert!(parse_command("gen").is_err());
        assert!(parse_command("gen rmat 3").is_err());
    }

    #[test]
    fn reset_variants() {
        assert_eq!(one("reset"), Command::Reset { cache_too: false });
        assert_eq!(one("reset metrics"), Command::Reset { cache_too: false });
        assert_eq!(one("reset cache"), Command::Reset { cache_too: true });
        assert!(parse_command("reset everything").is_err());
    }

    #[test]
    fn paths_keep_spaces() {
        assert_eq!(
            one("load /tmp/my graph.el"),
            Command::Load("/tmp/my graph.el".into())
        );
    }

    #[test]
    fn unknown_commands_error() {
        assert!(parse_command("frobnicate").is_err());
        assert!(parse_command("query").is_err());
        assert!(parse_command("load").is_err());
    }

    #[test]
    fn help_lists_every_command_head() {
        for head in [
            "help", "info", "epoch", "load", "save", "export", "gen", "query", "check", "ends",
            "prepare", "delta", "strategy", "threads", "limit", "binary", "metrics", "cache",
            "reset", "quit",
        ] {
            assert!(
                HELP.iter().any(|l| l.trim_start().starts_with(head)),
                "help is missing '{head}'"
            );
        }
    }
}
