#![warn(missing_docs)]
//! Serving front-end for the RTC-RPQ engine.
//!
//! The paper's headline win — sharing one reduced transitive closure
//! across many RPQs — only pays off operationally when a *long-lived*
//! engine amortizes the RTC over a stream of queries. This crate turns
//! the workspace's library stack into that servable system:
//!
//! * [`command`] — the request language shared by every front-end: load
//!   and generate graphs, evaluate RPQ text through the
//!   `rpq_regex` parser → `rpq_automata`/`rpq_core` pipeline, apply
//!   `GraphDelta` mutations online, switch strategies, inspect metrics
//!   and cache state, and save/load snapshots.
//! * [`session`] — the serving state: a write-locked
//!   [`session::EngineState`] (the engine owning its graph, epoch-aware
//!   cache attached) that only mutating commands touch, an MVCC
//!   published-view slot ([`session::PublishedView`]) that read commands
//!   serve from without any engine lock, a short retention ring of
//!   recent epoch views backing `query … at <epoch>` time travel, and a
//!   per-connection [`session::ConnectionOverlay`]
//!   (`strategy`/`threads`/`limit`/`binary`); the single execution path
//!   behind both transports.
//! * [`repl`] — the interactive/pipeable CLI loop (`rpq repl`).
//! * [`tcp`] — the same commands as a line-delimited TCP protocol
//!   (`rpq serve`), every connection sharing one engine so client A's
//!   RTC is client B's cache hit; writers publish new epochs by swap, so
//!   reads never block, and a `--max-conns` cap turns away over-limit
//!   connections with one `ERR busy` line.
//! * [`wire`] — the opt-in `RESULT-BIN` binary result frame for large
//!   `query` responses.
//!
//! Warm restarts ride on the two snapshot layers underneath:
//! `rpq_graph::snapshot` persists the versioned graph (with epoch), and
//! `rpq_core::snapshot` adds the fresh shared-structure cache entries, so
//! `save` + restart + `load` answers the next query with a `Fresh` cache
//! hit — no Tarjan, no closure sweep.
//!
//! ```
//! use rpq_server::session::{Session, Status};
//!
//! let mut session = Session::new();
//! session.execute("gen paper");
//! let response = session.execute("query d.(b.c)+.c").unwrap();
//! assert!(matches!(response.status, Status::Ok(ref m) if m.starts_with("2 pairs")));
//! ```
//!
//! The command reference with worked examples is `docs/QUERY_LANGUAGE.md`;
//! the serving quickstart is the README's "Serving" section.

pub mod command;
pub mod repl;
pub mod session;
pub mod tcp;
pub mod wire;

pub use command::{parse_command, Command, DeltaOp};
pub use repl::run_repl;
pub use session::{
    ConnectionOverlay, EngineState, PublishedView, Response, ServerState, Session, SharedEngine,
    Status, DEFAULT_MAX_CONNS, RETAINED_VIEWS,
};
pub use tcp::{handle_connection, serve, shared, SharedSession};
pub use wire::BinaryResult;
