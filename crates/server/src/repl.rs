//! The interactive REPL: stdin lines in, wire-format responses out.
//!
//! The loop is transport-agnostic on purpose — it reads any `BufRead` and
//! writes any `Write` — so the integration tests drive it end to end over
//! an in-memory pipe, and `rpq repl < script.rpq` works for batch use.
//! Responses use the same `payload lines + OK/ERR status line` framing as
//! the TCP protocol ([`crate::tcp`]), so a script is portable between the
//! two front-ends.
//!
//! When stdout is a terminal, a `rpq> ` prompt is written to **stderr**
//! between commands; piped stdout therefore contains only responses.

use crate::session::Session;
use std::io::{BufRead, IsTerminal, Write};

/// Runs the command loop until EOF or `quit`, returning the number of
/// commands executed. Errors from the output sink end the loop (the
/// consumer is gone); session-level command errors are reported in-band
/// as `ERR` lines and do not end the loop.
pub fn run_repl<R: BufRead, W: Write>(
    session: &mut Session,
    input: R,
    mut output: W,
) -> std::io::Result<u64> {
    let interactive = std::io::stdout().is_terminal();
    let mut executed = 0u64;
    prompt(interactive);
    for line in input.lines() {
        let line = line?;
        if let Some(response) = session.execute(&line) {
            executed += 1;
            response.write_to(&mut output)?;
            output.flush()?;
            if response.quit {
                break;
            }
        }
        prompt(interactive);
    }
    Ok(executed)
}

fn prompt(interactive: bool) {
    if interactive {
        eprint!("rpq> ");
        let _ = std::io::stderr().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_loop_over_a_pipe() {
        let script = "\
gen paper
query d.(b.c)+.c
# a comment and a blank line are skipped

cache
quit
query never.reached
";
        let mut session = Session::new();
        let mut out = Vec::new();
        let executed = run_repl(&mut session, script.as_bytes(), &mut out).unwrap();
        assert_eq!(executed, 4); // gen, query, cache, quit — comment/blank skipped
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("v7 -> v5"));
        assert!(text.contains("OK bye"));
        assert!(!text.contains("never"));
    }

    #[test]
    fn eof_ends_the_loop_cleanly() {
        let mut session = Session::new();
        let mut out = Vec::new();
        let executed = run_repl(&mut session, &b"info\n"[..], &mut out).unwrap();
        assert_eq!(executed, 1);
        assert!(String::from_utf8(out)
            .unwrap()
            .starts_with("OK graph 'empty'"));
    }
}
