//! The `RESULT-BIN` binary result frame.
//!
//! Large `query` responses — hundreds of thousands of pairs — are wasteful
//! as line-encoded decimal text (`  v123456 -> v789012\n` is ~22 bytes per
//! pair, plus parsing). A connection that issues `binary on` receives each
//! query result as one **length-prefixed binary frame** instead:
//!
//! ```text
//! RESULT-BIN <byte_len> <pair_count>\n      ← one ASCII header line
//! <byte_len bytes of raw pair data>         ← no trailing newline
//! OK <pair_count> pairs in <time>\n         ← the usual status line
//! ```
//!
//! The pair data is `pair_count` records of 8 bytes each: source vertex id
//! then destination vertex id, both little-endian `u32`, in the result
//! set's canonical (sorted) order. `byte_len` is always `8 × pair_count` —
//! the redundancy lets a decoder reject a corrupted header before trusting
//! either number. A client reads the header line, then exactly `byte_len`
//! bytes, then resumes line-oriented reading for the status line; the blob
//! is never scanned for newlines, so the line protocol's framing invariant
//! (payload lines never start with `OK `/`ERR `) is untouched.
//!
//! Decoding is strict and total: a header that does not parse, a length
//! that is not a multiple of 8, a mismatched `byte_len`/`pair_count`, or a
//! truncated blob all yield `Err` — never a panic, never a silently short
//! result (property-tested in `tests/binary_frames.rs`).

use rpq_graph::PairSet;

/// The first token of a binary-frame header line.
pub const BIN_HEADER: &str = "RESULT-BIN";

/// Bytes per encoded pair: two little-endian `u32`s.
pub const BYTES_PER_PAIR: usize = 8;

/// An encoded binary result, carried by a
/// [`Response`](crate::session::Response) in place of text payload lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryResult {
    /// Number of pairs encoded in [`BinaryResult::bytes`].
    pub pairs: usize,
    /// The raw frame body: `pairs × 8` bytes.
    pub bytes: Vec<u8>,
}

impl BinaryResult {
    /// The header line announcing this frame (without trailing newline).
    pub fn header_line(&self) -> String {
        format!("{BIN_HEADER} {} {}", self.bytes.len(), self.pairs)
    }
}

/// Encodes raw `(src, dst)` pairs in order.
pub fn encode_pairs(pairs: &[(u32, u32)]) -> BinaryResult {
    let mut bytes = Vec::with_capacity(pairs.len() * BYTES_PER_PAIR);
    for &(s, d) in pairs {
        bytes.extend_from_slice(&s.to_le_bytes());
        bytes.extend_from_slice(&d.to_le_bytes());
    }
    BinaryResult {
        pairs: pairs.len(),
        bytes,
    }
}

/// Encodes a result [`PairSet`] (in its canonical iteration order).
pub fn encode_pair_set(result: &PairSet) -> BinaryResult {
    let mut bytes = Vec::with_capacity(result.len() * BYTES_PER_PAIR);
    for (s, d) in result.iter() {
        bytes.extend_from_slice(&s.raw().to_le_bytes());
        bytes.extend_from_slice(&d.raw().to_le_bytes());
    }
    BinaryResult {
        pairs: result.len(),
        bytes,
    }
}

/// Parses a `RESULT-BIN <byte_len> <pair_count>` header line, returning
/// `(byte_len, pair_count)`. Rejects anything whose two lengths disagree,
/// so a decoder can size its read before touching the blob.
pub fn parse_header(line: &str) -> Result<(usize, usize), String> {
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some(BIN_HEADER) {
        return Err(format!("not a {BIN_HEADER} header: '{line}'"));
    }
    let byte_len: usize = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("bad byte length in '{line}'"))?;
    let pairs: usize = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| format!("bad pair count in '{line}'"))?;
    if tokens.next().is_some() {
        return Err(format!("trailing tokens in '{line}'"));
    }
    if byte_len
        != pairs
            .checked_mul(BYTES_PER_PAIR)
            .ok_or("pair count overflow")?
    {
        return Err(format!(
            "inconsistent header: {byte_len} bytes for {pairs} pairs (expected {})",
            pairs.saturating_mul(BYTES_PER_PAIR)
        ));
    }
    Ok((byte_len, pairs))
}

/// Decodes a frame body previously announced as `pairs` pairs. The blob
/// must be exactly `pairs × 8` bytes — a truncated (or padded) frame is an
/// error, never a short result.
pub fn decode_pairs(bytes: &[u8], pairs: usize) -> Result<Vec<(u32, u32)>, String> {
    let expected = pairs
        .checked_mul(BYTES_PER_PAIR)
        .ok_or("pair count overflow")?;
    if bytes.len() != expected {
        return Err(format!(
            "truncated frame: got {} bytes, expected {expected} for {pairs} pairs",
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(pairs);
    for record in bytes.chunks_exact(BYTES_PER_PAIR) {
        let s = u32::from_le_bytes(record[..4].try_into().expect("4-byte chunk"));
        let d = u32::from_le_bytes(record[4..].try_into().expect("4-byte chunk"));
        out.push((s, d));
    }
    Ok(out)
}

/// Parses the text encoding of a query result — payload lines shaped
/// `  v7 -> v5` — back into pairs, skipping the `... N more` elision line.
/// The inverse of what `query` prints in text mode, used by tests to pin
/// text/binary agreement.
pub fn decode_text_pairs(lines: &[String]) -> Result<Vec<(u32, u32)>, String> {
    let mut out = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.starts_with("...") {
            continue;
        }
        let (src, dst) = line
            .split_once("->")
            .ok_or_else(|| format!("not a pair line: '{line}'"))?;
        let parse = |tok: &str| -> Result<u32, String> {
            tok.trim()
                .strip_prefix('v')
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("bad vertex in '{line}'"))
        };
        out.push((parse(src)?, parse(dst)?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small() {
        let pairs = [(0u32, 1u32), (7, 5), (u32::MAX, 0)];
        let frame = encode_pairs(&pairs);
        assert_eq!(frame.pairs, 3);
        assert_eq!(frame.bytes.len(), 24);
        let (len, n) = parse_header(&frame.header_line()).unwrap();
        assert_eq!((len, n), (24, 3));
        assert_eq!(decode_pairs(&frame.bytes, n).unwrap(), pairs);
    }

    #[test]
    fn empty_frame() {
        let frame = encode_pairs(&[]);
        assert_eq!(frame.header_line(), "RESULT-BIN 0 0");
        assert_eq!(decode_pairs(&frame.bytes, 0).unwrap(), vec![]);
    }

    #[test]
    fn header_rejects_garbage() {
        for bad in [
            "RESULT-BIN",
            "RESULT-BIN 8",
            "RESULT-BIN eight 1",
            "RESULT-BIN 8 one",
            "RESULT-BIN 9 1", // not 8 × pairs
            "RESULT-BIN 8 2", // disagreement
            "RESULT-BIN 8 1 x",
            "OK 2 pairs",
        ] {
            assert!(parse_header(bad).is_err(), "accepted '{bad}'");
        }
        assert!(parse_header("RESULT-BIN 16 2").is_ok());
    }

    #[test]
    fn truncated_bodies_are_rejected() {
        let frame = encode_pairs(&[(1, 2), (3, 4)]);
        for cut in 0..frame.bytes.len() {
            assert!(decode_pairs(&frame.bytes[..cut], frame.pairs).is_err());
        }
        let mut padded = frame.bytes.clone();
        padded.push(0);
        assert!(decode_pairs(&padded, frame.pairs).is_err());
    }

    #[test]
    fn text_decoding_matches() {
        let lines = vec![
            "  v7 -> v5".to_string(),
            "  v7 -> v3".to_string(),
            "  ... 4 more (raise with 'limit N')".to_string(),
        ];
        assert_eq!(decode_text_pairs(&lines).unwrap(), vec![(7, 5), (7, 3)]);
        assert!(decode_text_pairs(&["nonsense".to_string()]).is_err());
    }
}
