//! Property tests for the `RESULT-BIN` wire format (ISSUE 5).
//!
//! * encode → decode is a fixpoint for arbitrary pair sequences;
//! * truncated or padded frames are rejected with an error — never a
//!   panic, never a silently short result;
//! * fuzzed header lines never panic the parser;
//! * the text and binary encodings of the same query result decode to the
//!   identical pair set (driven through a real `Session`, both modes).

use proptest::prelude::*;
use rpq_server::wire::{decode_pairs, decode_text_pairs, encode_pairs, parse_header};
use rpq_server::{Session, Status};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_is_a_fixpoint(pairs in prop::collection::vec((0u32..2000, 0u32..2000), 0..300)) {
        let frame = encode_pairs(&pairs);
        prop_assert_eq!(frame.bytes.len(), pairs.len() * 8);
        let (byte_len, count) = parse_header(&frame.header_line()).unwrap();
        prop_assert_eq!(byte_len, frame.bytes.len());
        prop_assert_eq!(count, pairs.len());
        prop_assert_eq!(decode_pairs(&frame.bytes, count).unwrap(), pairs);
    }

    #[test]
    fn truncated_frames_error_never_panic(
        pairs in prop::collection::vec((0u32..500, 0u32..500), 1..80),
        cut in 0usize..1000,
    ) {
        let frame = encode_pairs(&pairs);
        let cut = cut % frame.bytes.len(); // strictly shorter than the body
        prop_assert!(decode_pairs(&frame.bytes[..cut], frame.pairs).is_err());
        // Padding is rejected too: a frame is exact, not "at least".
        let mut padded = frame.bytes.clone();
        padded.extend_from_slice(&[0; 3]);
        prop_assert!(decode_pairs(&padded, frame.pairs).is_err());
    }

    #[test]
    fn fuzzed_headers_never_panic(junk in prop::collection::vec(0u16..256, 0..40)) {
        let junk: Vec<u8> = junk.into_iter().map(|b| b as u8).collect();
        // Whatever bytes arrive where a header line was expected, the
        // parser answers Ok/Err — it must not panic.
        let line = String::from_utf8_lossy(&junk).into_owned();
        let _ = parse_header(&line);
        let _ = parse_header(&format!("RESULT-BIN {line}"));
    }

    #[test]
    fn text_and_binary_encodings_agree(query_idx in 0usize..5, extra_edges in 0u32..4) {
        const QUERIES: &[&str] = &["d.(b.c)+.c", "(b.c)+", "(a.b)*", "a.(b.c)+", "b.c"];
        let mut s = Session::new();
        s.execute("gen paper").unwrap();
        // Vary the graph a little so the agreement is not about one
        // hard-coded result.
        for k in 0..extra_edges {
            s.execute(&format!("delta ins {} b {} ins {} c {}", 6 + k, 8, 8, 6 + k))
                .unwrap();
        }
        let q = QUERIES[query_idx];

        // Text mode, limit high enough that nothing is elided.
        s.execute("limit 100000").unwrap();
        let text = s.execute(&format!("query {q}")).unwrap();
        prop_assert!(matches!(text.status, Status::Ok(_)));
        let from_text = decode_text_pairs(&text.lines).unwrap();

        // Binary mode: same query, same session, same epoch.
        s.execute("binary on").unwrap();
        let bin = s.execute(&format!("query {q}")).unwrap();
        prop_assert!(bin.lines.is_empty());
        let frame = bin.binary.expect("binary frame");
        let from_bin = decode_pairs(&frame.bytes, frame.pairs).unwrap();

        prop_assert_eq!(from_text, from_bin, "text and binary diverged on '{}'", q);
        s.execute("binary off").unwrap();
    }
}

/// A large result set round-trips exactly: ~2.5M pairs through the binary
/// frame (the workload the frame exists for), byte count checked.
#[test]
fn large_result_binary_roundtrip() {
    let mut s = Session::new();
    s.execute("gen rmat 3 10 42").unwrap();
    s.execute("binary on").unwrap();
    let r = s.execute("query l0+").unwrap();
    let Status::Ok(ref status) = r.status else {
        panic!("query failed: {:?}", r.status)
    };
    let frame = r.binary.expect("binary frame");
    assert!(
        frame.pairs > 100_000,
        "expected a large result, got {}",
        frame.pairs
    );
    assert_eq!(frame.bytes.len(), frame.pairs * 8);
    let decoded = decode_pairs(&frame.bytes, frame.pairs).unwrap();
    assert_eq!(decoded.len(), frame.pairs);
    assert!(
        status.starts_with(&format!("{} pairs", frame.pairs)),
        "{status}"
    );
    // Spot-check strict ordering (the PairSet canonical order survived).
    assert!(decoded.windows(2).all(|w| w[0] <= w[1]));
}
