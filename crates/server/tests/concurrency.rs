//! Concurrency e2e tests over real TCP connections (ISSUE 5).
//!
//! Two properties are pinned here:
//!
//! 1. **Equivalence**: ≥8 concurrent clients each driving a seeded,
//!    interleaved stream of `query`/`delta`/`strategy`/`limit`/`threads`/
//!    `binary` commands receive byte-for-byte the responses a
//!    single-threaded replay of their own command log produces (after
//!    masking epoch numbers and timings, which legitimately depend on
//!    global interleaving), and no response is ever torn across the frame
//!    boundary — the strict framing parser would reject any interleaved
//!    bytes.
//! 2. **Non-blocking reads**: a multi-second `query` on one connection
//!    does not serialize a fast `query`/`epoch` on another — the
//!    acceptance criterion for replacing the session-wide mutex with a
//!    read-write lock.
//!
//! The schedule is crafted so every response is a function of the
//! client's *own* log: mutations toggle per-client edges under a label
//! (`zz`) no query mentions, on vertices created up front, so query
//! results and delta summaries are interleaving-independent while the
//! graph genuinely churns under concurrent readers.
//!
//! CI additionally runs this file with `--test-threads=1` and
//! `RPQ_E2E_THREADS=2` (two engine worker threads) as a stress
//! configuration.

use rpq_server::wire;
use rpq_server::{Session, Status};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Engine worker threads for the base config (CI stress sets 2).
fn engine_threads() -> usize {
    std::env::var("RPQ_E2E_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn base_config() -> rpq_core::EngineConfig {
    rpq_core::EngineConfig {
        threads: engine_threads(),
        ..rpq_core::EngineConfig::default()
    }
}

/// Spawns a server whose engine was primed with `setup` commands.
fn spawn_server(setup: &[String]) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut session = Session::with_config(base_config());
    for cmd in setup {
        let r = session.execute(cmd).expect("setup command responds");
        assert!(
            matches!(r.status, Status::Ok(_)),
            "setup '{cmd}' failed: {:?}",
            r.status
        );
    }
    let shared = rpq_server::shared(session);
    std::thread::spawn(move || rpq_server::serve(listener, shared));
    addr
}

/// One parsed wire response: payload lines, optional binary frame, status.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WireResponse {
    lines: Vec<String>,
    binary: Option<(usize, Vec<u8>)>,
    status: String,
}

/// Reads one framed response from `reader` — payload lines until the
/// `OK `/`ERR ` status line, consuming a `RESULT-BIN` blob by exact byte
/// count when announced. Any violation of the framing rules panics the
/// test, which is precisely the "no torn responses" assertion.
fn read_response<R: BufRead>(reader: &mut R) -> WireResponse {
    let mut lines = Vec::new();
    let mut binary = None;
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        let line = line.trim_end().to_string();
        if line.starts_with("OK ") || line.starts_with("ERR ") {
            return WireResponse {
                lines,
                binary,
                status: line,
            };
        }
        if line.starts_with(wire::BIN_HEADER) {
            let (byte_len, pairs) =
                wire::parse_header(&line).unwrap_or_else(|e| panic!("bad frame header: {e}"));
            let mut blob = vec![0u8; byte_len];
            reader.read_exact(&mut blob).expect("full frame body");
            assert!(binary.is_none(), "two binary frames in one response");
            binary = Some((pairs, blob));
            continue;
        }
        lines.push(line);
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let greeting = read_response(&mut reader);
        assert_eq!(greeting.status, "OK rtc-rpq ready");
        Client { reader, writer }
    }

    fn send(&mut self, command: &str) {
        writeln!(self.writer, "{command}").unwrap();
        self.writer.flush().unwrap();
    }

    fn roundtrip(&mut self, command: &str) -> WireResponse {
        self.send(command);
        read_response(&mut self.reader)
    }

    /// Sends `quit`, checks the goodbye, and asserts the stream ends with
    /// EOF — no stray bytes after the last frame.
    fn quit_clean(mut self) {
        let bye = self.roundtrip("quit");
        assert_eq!(bye.status, "OK bye");
        let mut rest = Vec::new();
        self.reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "stray bytes after quit: {rest:?}");
    }
}

/// Masks the interleaving-dependent parts of a status line: the timing
/// suffix of `N pairs in 1.23ms` and the number after `epoch ` (the global
/// epoch counter depends on how clients' deltas interleave).
fn normalize(status: &str) -> String {
    let s = match status.split_once(" in ") {
        Some((head, _)) if head.ends_with("pairs") => head.to_string(),
        _ => status.to_string(),
    };
    match s.find("epoch ") {
        None => s,
        Some(at) => {
            let digits_start = at + "epoch ".len();
            let digits_end = s[digits_start..]
                .find(|c: char| !c.is_ascii_digit())
                .map_or(s.len(), |o| digits_start + o);
            format!("{}E{}", &s[..digits_start], &s[digits_end..])
        }
    }
}

/// Deterministic per-client schedule generator (LCG — no external RNG in
/// tests, reproducible across runs).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick<'a, T>(&mut self, pool: &'a [T]) -> &'a T {
        &pool[(self.next() as usize) % pool.len()]
    }
}

const QUERIES: &[&str] = &["d.(b.c)+.c", "a.(b.c)*", "(a.b)+|(b.c)+", "(b.c)+"];
const STRATEGIES: &[&str] = &["rtc", "full", "none"];
const LIMITS: &[&str] = &["0", "1", "5", "100"];

/// The seeded command log for client `i`: interleaved queries, overlay
/// changes, and toggles of the client's own `zz` edge.
fn client_schedule(i: usize, commands: usize) -> Vec<String> {
    let mut rng = Lcg(0x5eed_0000 + i as u64);
    let mut edge_present = true; // setup inserted it
    let mut binary_on = false;
    let mut out = Vec::with_capacity(commands);
    for _ in 0..commands {
        match rng.next() % 10 {
            0..=3 => out.push(format!("query {}", rng.pick(QUERIES))),
            4 => out.push(format!("strategy {}", rng.pick(STRATEGIES))),
            5 => out.push(format!("limit {}", rng.pick(LIMITS))),
            6 => out.push(format!("threads {}", 1 + rng.next() % 2)),
            7 | 8 => {
                // Toggle this client's private edge: the graph mutates for
                // real (epoch advances, cache entries go stale) but no
                // query result anywhere depends on a `zz` edge.
                let op = if edge_present { "del" } else { "ins" };
                edge_present = !edge_present;
                out.push(format!("delta {op} {} zz {}", 20 + i, 30 + i));
            }
            _ if i < 2 => {
                // Two clients exercise binary frames under concurrency.
                binary_on = !binary_on;
                out.push(format!("binary {}", if binary_on { "on" } else { "off" }));
            }
            _ => out.push(format!("query {}", rng.pick(QUERIES))),
        }
    }
    out
}

/// The server/replay setup: the paper graph, grown to 40 vertices, with
/// one `zz` edge per client pre-inserted (so later toggles never create
/// labels or vertices — their summaries stay interleaving-independent).
fn setup_commands(clients: usize) -> Vec<String> {
    let mut ins = String::from("delta");
    for i in 0..clients {
        ins.push_str(&format!(" ins {} zz {}", 20 + i, 30 + i));
    }
    vec!["gen paper".into(), "delta grow 40".into(), ins]
}

/// Replays one client's log on a fresh single-threaded session over the
/// same initial state, through the same wire encoding and parser.
fn replay(setup: &[String], log: &[String]) -> Vec<WireResponse> {
    let mut session = Session::with_config(base_config());
    for cmd in setup {
        session.execute(cmd).expect("setup responds");
    }
    log.iter()
        .map(|cmd| {
            let response = session.execute(cmd).expect("command responds");
            let mut bytes = Vec::new();
            response.write_to(&mut bytes).unwrap();
            let mut reader = BufReader::new(&bytes[..]);
            let parsed = read_response(&mut reader);
            let mut rest = Vec::new();
            reader.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty(), "replay response had trailing bytes");
            parsed
        })
        .collect()
}

#[test]
fn concurrent_clients_match_single_threaded_replay() {
    const CLIENTS: usize = 8;
    const COMMANDS: usize = 30;
    let setup = setup_commands(CLIENTS);
    let addr = spawn_server(&setup);

    // All clients connect first, then run their schedules concurrently.
    let live: Vec<(Vec<String>, Vec<WireResponse>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let schedule = client_schedule(i, COMMANDS);
                s.spawn(move || {
                    let mut client = Client::connect(addr);
                    let responses: Vec<WireResponse> =
                        schedule.iter().map(|cmd| client.roundtrip(cmd)).collect();
                    client.quit_clean();
                    (schedule, responses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (schedule, responses)) in live.iter().enumerate() {
        let expected = replay(&setup, schedule);
        assert_eq!(responses.len(), expected.len());
        for (cmd, (got, want)) in schedule.iter().zip(responses.iter().zip(&expected)) {
            assert_eq!(
                normalize(&got.status),
                normalize(&want.status),
                "client {i}, command '{cmd}'"
            );
            assert_eq!(got.lines, want.lines, "client {i}, command '{cmd}'");
            assert_eq!(
                got.binary, want.binary,
                "client {i}, command '{cmd}': binary frames diverged"
            );
        }
    }
}

#[test]
fn responses_never_start_payload_with_status_prefix() {
    // A focused check of the framing invariant the parser relies on: run
    // one client through every command shape and inspect raw payloads.
    let addr = spawn_server(&setup_commands(1));
    let mut c = Client::connect(addr);
    for cmd in [
        "help",
        "info",
        "query d.(b.c)+.c",
        "cache",
        "metrics",
        "ends 7 d.(b.c)+.c",
        "check 7 5 d.(b.c)+.c",
    ] {
        let r = c.roundtrip(cmd);
        for line in &r.lines {
            assert!(
                !line.starts_with("OK") && !line.starts_with("ERR"),
                "'{cmd}' payload line '{line}' breaks framing"
            );
        }
    }
    c.quit_clean();
}

/// The acceptance criterion: a slow query holding the shared read lock
/// must not serialize another connection's fast commands. With the old
/// session-wide mutex, B's `epoch`/`query` would finish only after A's
/// multi-second closure computation; with the read-write lock they finish
/// orders of magnitude earlier.
#[test]
fn slow_query_does_not_block_fast_reader() {
    // RMAT_3 at 2^12 vertices: `l0+` materializes ~2.5M closure pairs —
    // seconds of work in a debug build, comfortably slow everywhere.
    let addr = spawn_server(&["gen rmat 3 12 42".to_string()]);
    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    a.roundtrip("limit 0");
    b.roundtrip("limit 0");

    let start = Instant::now();
    a.send("query l0+");
    let slow = std::thread::spawn(move || {
        let response = read_response(&mut a.reader);
        (Instant::now(), response)
    });
    // Give A time to parse and enter evaluation under the read lock.
    std::thread::sleep(Duration::from_millis(100));

    let fast_epoch = b.roundtrip("epoch");
    assert_eq!(fast_epoch.status, "OK epoch 0");
    let fast_query = b.roundtrip("query l1");
    assert!(
        fast_query.status.starts_with("OK "),
        "{}",
        fast_query.status
    );
    let b_done = Instant::now();

    let (a_done, slow_response) = slow.join().unwrap();
    assert!(
        slow_response.status.starts_with("OK "),
        "{}",
        slow_response.status
    );
    let a_total = a_done.duration_since(start);
    assert!(
        a_total > Duration::from_millis(400),
        "slow query finished in {a_total:?} — too fast to prove anything; grow the graph"
    );
    assert!(
        b_done < a_done,
        "fast commands on connection B serialized behind A's slow query \
         (B at {:?}, A at {a_total:?})",
        b_done.duration_since(start)
    );
}
