//! Concurrency e2e tests over real TCP connections (ISSUE 5).
//!
//! Two properties are pinned here:
//!
//! 1. **Equivalence**: ≥8 concurrent clients each driving a seeded,
//!    interleaved stream of `query`/`delta`/`strategy`/`limit`/`threads`/
//!    `binary` commands receive byte-for-byte the responses a
//!    single-threaded replay of their own command log produces (after
//!    masking epoch numbers and timings, which legitimately depend on
//!    global interleaving), and no response is ever torn across the frame
//!    boundary — the strict framing parser would reject any interleaved
//!    bytes.
//! 2. **Non-blocking reads**: a multi-second `query` on one connection
//!    does not serialize a fast `query`/`epoch` on another — the
//!    acceptance criterion for replacing the session-wide mutex with a
//!    read-write lock.
//!
//! The schedule is crafted so every response is a function of the
//! client's *own* log: mutations toggle per-client edges under a label
//! (`zz`) no query mentions, on vertices created up front, so query
//! results and delta summaries are interleaving-independent while the
//! graph genuinely churns under concurrent readers.
//!
//! A third property rides on the MVCC refactor (ISSUE 6): reads are
//! **pinned** — a query holds its epoch view for its entire evaluation,
//! observing none of the writes published meanwhile, and `… at <epoch>`
//! re-addresses any retained view with bitwise-identical results (the
//! `mvcc_`-prefixed tests below, which CI also runs single-threaded as a
//! stress step).
//!
//! CI additionally runs this file with `--test-threads=1` and
//! `RPQ_E2E_THREADS=2` (two engine worker threads) as a stress
//! configuration.

use proptest::prelude::*;
use rpq_server::wire;
use rpq_server::{Session, Status};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Engine worker threads for the base config (CI stress sets 2).
fn engine_threads() -> usize {
    std::env::var("RPQ_E2E_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn base_config() -> rpq_core::EngineConfig {
    rpq_core::EngineConfig {
        threads: engine_threads(),
        ..rpq_core::EngineConfig::default()
    }
}

/// `base_config` with a deliberately tiny structural-cache budget: one
/// entry, so every distinct closure body forces an eviction decision and
/// epoch churn continuously evicts entries falling out of the view ring.
fn tiny_budget_config() -> rpq_core::EngineConfig {
    rpq_core::EngineConfig {
        cache_budget: rpq_core::CacheBudget {
            max_entries: Some(1),
            ..rpq_core::CacheBudget::default()
        },
        ..base_config()
    }
}

/// Spawns a server whose engine was primed with `setup` commands.
fn spawn_server(setup: &[String]) -> SocketAddr {
    spawn_server_with(base_config(), setup)
}

/// [`spawn_server`] under an explicit engine configuration.
fn spawn_server_with(config: rpq_core::EngineConfig, setup: &[String]) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut session = Session::with_config(config);
    for cmd in setup {
        let r = session.execute(cmd).expect("setup command responds");
        assert!(
            matches!(r.status, Status::Ok(_)),
            "setup '{cmd}' failed: {:?}",
            r.status
        );
    }
    let shared = rpq_server::shared(session);
    std::thread::spawn(move || rpq_server::serve(listener, shared));
    addr
}

/// One parsed wire response: payload lines, optional binary frame, status.
#[derive(Debug, Clone, PartialEq, Eq)]
struct WireResponse {
    lines: Vec<String>,
    binary: Option<(usize, Vec<u8>)>,
    status: String,
}

/// Reads one framed response from `reader` — payload lines until the
/// `OK `/`ERR ` status line, consuming a `RESULT-BIN` blob by exact byte
/// count when announced. Any violation of the framing rules panics the
/// test, which is precisely the "no torn responses" assertion.
fn read_response<R: BufRead>(reader: &mut R) -> WireResponse {
    let mut lines = Vec::new();
    let mut binary = None;
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
        let line = line.trim_end().to_string();
        if line.starts_with("OK ") || line.starts_with("ERR ") {
            return WireResponse {
                lines,
                binary,
                status: line,
            };
        }
        if line.starts_with(wire::BIN_HEADER) {
            let (byte_len, pairs) =
                wire::parse_header(&line).unwrap_or_else(|e| panic!("bad frame header: {e}"));
            let mut blob = vec![0u8; byte_len];
            reader.read_exact(&mut blob).expect("full frame body");
            assert!(binary.is_none(), "two binary frames in one response");
            binary = Some((pairs, blob));
            continue;
        }
        lines.push(line);
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        let writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let greeting = read_response(&mut reader);
        assert_eq!(greeting.status, "OK rtc-rpq ready");
        Client { reader, writer }
    }

    fn send(&mut self, command: &str) {
        writeln!(self.writer, "{command}").unwrap();
        self.writer.flush().unwrap();
    }

    fn roundtrip(&mut self, command: &str) -> WireResponse {
        self.send(command);
        read_response(&mut self.reader)
    }

    /// Sends `quit`, checks the goodbye, and asserts the stream ends with
    /// EOF — no stray bytes after the last frame.
    fn quit_clean(mut self) {
        let bye = self.roundtrip("quit");
        assert_eq!(bye.status, "OK bye");
        let mut rest = Vec::new();
        self.reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "stray bytes after quit: {rest:?}");
    }
}

/// Masks the interleaving-dependent parts of a status line: the timing
/// suffix of `N pairs in 1.23ms` and the number after `epoch ` (the global
/// epoch counter depends on how clients' deltas interleave).
fn normalize(status: &str) -> String {
    let s = match status.split_once(" in ") {
        Some((head, _)) if head.ends_with("pairs") => head.to_string(),
        _ => status.to_string(),
    };
    match s.find("epoch ") {
        None => s,
        Some(at) => {
            let digits_start = at + "epoch ".len();
            let digits_end = s[digits_start..]
                .find(|c: char| !c.is_ascii_digit())
                .map_or(s.len(), |o| digits_start + o);
            format!("{}E{}", &s[..digits_start], &s[digits_end..])
        }
    }
}

/// Deterministic per-client schedule generator (LCG — no external RNG in
/// tests, reproducible across runs).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick<'a, T>(&mut self, pool: &'a [T]) -> &'a T {
        &pool[(self.next() as usize) % pool.len()]
    }
}

const QUERIES: &[&str] = &["d.(b.c)+.c", "a.(b.c)*", "(a.b)+|(b.c)+", "(b.c)+"];
const STRATEGIES: &[&str] = &["rtc", "full", "none"];
const LIMITS: &[&str] = &["0", "1", "5", "100"];

/// The seeded command log for client `i`: interleaved queries, overlay
/// changes, and toggles of the client's own `zz` edge.
fn client_schedule(i: usize, commands: usize) -> Vec<String> {
    let mut rng = Lcg(0x5eed_0000 + i as u64);
    let mut edge_present = true; // setup inserted it
    let mut binary_on = false;
    let mut out = Vec::with_capacity(commands);
    for _ in 0..commands {
        match rng.next() % 10 {
            0..=3 => out.push(format!("query {}", rng.pick(QUERIES))),
            4 => out.push(format!("strategy {}", rng.pick(STRATEGIES))),
            5 => out.push(format!("limit {}", rng.pick(LIMITS))),
            6 => out.push(format!("threads {}", 1 + rng.next() % 2)),
            7 | 8 => {
                // Toggle this client's private edge: the graph mutates for
                // real (epoch advances, cache entries go stale) but no
                // query result anywhere depends on a `zz` edge.
                let op = if edge_present { "del" } else { "ins" };
                edge_present = !edge_present;
                out.push(format!("delta {op} {} zz {}", 20 + i, 30 + i));
            }
            _ if i < 2 => {
                // Two clients exercise binary frames under concurrency.
                binary_on = !binary_on;
                out.push(format!("binary {}", if binary_on { "on" } else { "off" }));
            }
            _ => out.push(format!("query {}", rng.pick(QUERIES))),
        }
    }
    out
}

/// The server/replay setup: the paper graph, grown to 40 vertices, with
/// one `zz` edge per client pre-inserted (so later toggles never create
/// labels or vertices — their summaries stay interleaving-independent).
fn setup_commands(clients: usize) -> Vec<String> {
    let mut ins = String::from("delta");
    for i in 0..clients {
        ins.push_str(&format!(" ins {} zz {}", 20 + i, 30 + i));
    }
    vec!["gen paper".into(), "delta grow 40".into(), ins]
}

/// Replays one client's log on a fresh single-threaded session over the
/// same initial state, through the same wire encoding and parser.
fn replay(setup: &[String], log: &[String]) -> Vec<WireResponse> {
    replay_with(base_config(), setup, log)
}

/// [`replay`] under an explicit engine configuration.
fn replay_with(
    config: rpq_core::EngineConfig,
    setup: &[String],
    log: &[String],
) -> Vec<WireResponse> {
    let mut session = Session::with_config(config);
    for cmd in setup {
        session.execute(cmd).expect("setup responds");
    }
    log.iter()
        .map(|cmd| {
            let response = session.execute(cmd).expect("command responds");
            let mut bytes = Vec::new();
            response.write_to(&mut bytes).unwrap();
            let mut reader = BufReader::new(&bytes[..]);
            let parsed = read_response(&mut reader);
            let mut rest = Vec::new();
            reader.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty(), "replay response had trailing bytes");
            parsed
        })
        .collect()
}

#[test]
fn concurrent_clients_match_single_threaded_replay() {
    const CLIENTS: usize = 8;
    const COMMANDS: usize = 30;
    let setup = setup_commands(CLIENTS);
    let addr = spawn_server(&setup);

    // All clients connect first, then run their schedules concurrently.
    let live: Vec<(Vec<String>, Vec<WireResponse>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let schedule = client_schedule(i, COMMANDS);
                s.spawn(move || {
                    let mut client = Client::connect(addr);
                    let responses: Vec<WireResponse> =
                        schedule.iter().map(|cmd| client.roundtrip(cmd)).collect();
                    client.quit_clean();
                    (schedule, responses)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, (schedule, responses)) in live.iter().enumerate() {
        let expected = replay(&setup, schedule);
        assert_eq!(responses.len(), expected.len());
        for (cmd, (got, want)) in schedule.iter().zip(responses.iter().zip(&expected)) {
            assert_eq!(
                normalize(&got.status),
                normalize(&want.status),
                "client {i}, command '{cmd}'"
            );
            assert_eq!(got.lines, want.lines, "client {i}, command '{cmd}'");
            assert_eq!(
                got.binary, want.binary,
                "client {i}, command '{cmd}': binary frames diverged"
            );
        }
    }
}

/// The running total from the `metrics` budget line (`… evictions=N (…`).
fn eviction_total(metrics: &WireResponse) -> u64 {
    let line = metrics
        .lines
        .iter()
        .find(|l| l.contains("evictions="))
        .expect("metrics report the cache budget line");
    line.split("evictions=")
        .nth(1)
        .unwrap()
        .split([' ', '('])
        .next()
        .unwrap()
        .parse()
        .unwrap_or_else(|_| panic!("bad eviction total in '{line}'"))
}

/// ISSUE 9: the equivalence property holds under continuous eviction
/// churn. The same seeded 8-client schedules run against a server whose
/// structural cache holds a single entry, so every closure alternation
/// evicts and rebuilds while deltas advance epochs out of the view ring;
/// responses must still be byte-identical to a single-threaded replay
/// under the same budget — no ERR, no torn frames — while a monitor
/// connection watches the eviction counters climb monotonically.
#[test]
fn concurrent_clients_under_tiny_budget_match_replay() {
    const CLIENTS: usize = 8;
    const COMMANDS: usize = 30;
    let setup = setup_commands(CLIENTS);
    let addr = spawn_server_with(tiny_budget_config(), &setup);

    let done = std::sync::atomic::AtomicBool::new(false);
    let live: Vec<(Vec<String>, Vec<WireResponse>)> = std::thread::scope(|s| {
        let monitor = s.spawn(|| {
            let mut m = Client::connect(addr);
            let mut last = 0u64;
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                let r = m.roundtrip("metrics");
                assert!(r.status.starts_with("OK "), "{}", r.status);
                let total = eviction_total(&r);
                assert!(
                    total >= last,
                    "eviction counter went backwards: {last} -> {total}"
                );
                last = total;
                std::thread::sleep(Duration::from_millis(5));
            }
            let total = eviction_total(&m.roundtrip("metrics"));
            assert!(total >= last, "final eviction total regressed");
            m.quit_clean();
            total
        });
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let schedule = client_schedule(i, COMMANDS);
                s.spawn(move || {
                    let mut client = Client::connect(addr);
                    let responses: Vec<WireResponse> =
                        schedule.iter().map(|cmd| client.roundtrip(cmd)).collect();
                    client.quit_clean();
                    (schedule, responses)
                })
            })
            .collect();
        let live = handles.into_iter().map(|h| h.join().unwrap()).collect();
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        let evictions = monitor.join().unwrap();
        assert!(
            evictions > 0,
            "a one-entry budget under 8 churning clients must evict"
        );
        live
    });

    for (i, (schedule, responses)) in live.iter().enumerate() {
        let expected = replay_with(tiny_budget_config(), &setup, schedule);
        assert_eq!(responses.len(), expected.len());
        for (cmd, (got, want)) in schedule.iter().zip(responses.iter().zip(&expected)) {
            assert!(
                got.status.starts_with("OK "),
                "client {i}, command '{cmd}': {}",
                got.status
            );
            assert_eq!(
                normalize(&got.status),
                normalize(&want.status),
                "client {i}, command '{cmd}'"
            );
            assert_eq!(got.lines, want.lines, "client {i}, command '{cmd}'");
            assert_eq!(
                got.binary, want.binary,
                "client {i}, command '{cmd}': binary frames diverged"
            );
        }
    }
}

#[test]
fn responses_never_start_payload_with_status_prefix() {
    // A focused check of the framing invariant the parser relies on: run
    // one client through every command shape and inspect raw payloads.
    let addr = spawn_server(&setup_commands(1));
    let mut c = Client::connect(addr);
    for cmd in [
        "help",
        "info",
        "query d.(b.c)+.c",
        "cache",
        "metrics",
        "ends 7 d.(b.c)+.c",
        "check 7 5 d.(b.c)+.c",
    ] {
        let r = c.roundtrip(cmd);
        for line in &r.lines {
            assert!(
                !line.starts_with("OK") && !line.starts_with("ERR"),
                "'{cmd}' payload line '{line}' breaks framing"
            );
        }
    }
    c.quit_clean();
}

/// Parses the leading pair count out of an `OK N pairs …` status line.
fn pair_count(status: &str) -> usize {
    status
        .strip_prefix("OK ")
        .and_then(|s| s.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("no pair count in '{status}'"))
}

/// MVCC stress: a multi-second `query l0+` pins epoch 0 and completes
/// against it while three `delta` batches publish epochs 1..=3 underneath
/// it. Afterwards `query l0+ at 0` re-addresses the pinned epoch — served
/// from the per-epoch result cache — with the identical count.
#[test]
fn mvcc_slow_query_stays_pinned_while_writers_publish() {
    // RMAT_3 at 2^13 vertices: `l0+` materializes ~10M closure pairs —
    // over a second of work even in a debug build with dense bitset rows
    // (2^12 used to suffice, but the hybrid representation got too fast).
    // The budget is pinned unbounded: the test asserts the pinned re-read
    // is a *view hit*, and a result this size outgrows any stress budget
    // an RPQ_CACHE_BUDGET CI leg might set (eviction would downgrade the
    // re-read to a correct-but-slower replay).
    let addr = spawn_server_with(
        rpq_core::EngineConfig {
            cache_budget: rpq_core::CacheBudget::default(),
            ..base_config()
        },
        &["gen rmat 3 13 42".to_string()],
    );
    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    a.roundtrip("limit 0");
    b.roundtrip("limit 0");

    let start = Instant::now();
    a.send("query l0+");
    let slow = std::thread::spawn(move || {
        let response = read_response(&mut a.reader);
        (a, Instant::now(), response)
    });
    // Give A time to parse and pin its epoch view.
    std::thread::sleep(Duration::from_millis(100));

    // Three publishes while A evaluates. The `zz` edges leave every `l0`
    // result untouched, so the pinned/live distinction is isolated to the
    // epoch mechanics, not the data.
    for i in 1..=3u32 {
        let r = b.roundtrip(&format!("delta ins 0 zz {i}"));
        assert!(r.status.starts_with("OK epoch"), "{}", r.status);
    }
    let live = b.roundtrip("epoch");
    assert_eq!(live.status, "OK epoch 3");
    let writes_done = Instant::now();

    let (mut a, a_done, slow_response) = slow.join().unwrap();
    assert!(
        slow_response.status.starts_with("OK "),
        "{}",
        slow_response.status
    );
    let a_total = a_done.duration_since(start);
    assert!(
        a_total > Duration::from_millis(400),
        "slow query finished in {a_total:?} — too fast to prove anything; grow the graph"
    );
    assert!(
        writes_done < a_done,
        "the three publishes did not overlap A's evaluation \
         (writes at {:?}, A at {a_total:?})",
        writes_done.duration_since(start)
    );

    // Time travel back to A's pinned epoch: identical count, and it came
    // from the per-epoch result cache (a view hit), not a re-evaluation.
    let pinned = a.roundtrip("query l0+ at 0");
    assert!(pinned.status.starts_with("OK "), "{}", pinned.status);
    assert_eq!(
        pair_count(&pinned.status),
        pair_count(&slow_response.status)
    );
    let metrics = a.roundtrip("metrics");
    let results_line = metrics
        .lines
        .iter()
        .find(|l| l.contains("view hits"))
        .expect("metrics report result-cache tiers");
    assert!(
        !results_line
            .trim_start()
            .starts_with("results: 0 view hits"),
        "pinned re-read was not a view hit: {results_line}"
    );
    a.quit_clean();
    b.quit_clean();
}

/// MVCC retention bounds over the wire: epochs fall out of the ring in
/// FIFO order, evicted epochs are clean `ERR`s naming the retained range,
/// and every retained epoch answers with the result its replay produces.
#[test]
fn mvcc_evicted_epochs_error_and_ring_stays_bounded() {
    let addr = spawn_server(&setup_commands(1));
    let mut c = Client::connect(addr);
    // setup_commands already advanced to epoch 2 (grow + zz insert).
    // Push well past the retention window.
    let total = rpq_server::RETAINED_VIEWS as u32 + 4;
    for i in 0..total {
        let r = c.roundtrip(&format!("delta ins {} zz {}", 2 * i % 7, 30 + i));
        assert!(r.status.starts_with("OK epoch"), "{}", r.status);
    }
    let info = c.roundtrip("info");
    assert!(
        info.status
            .contains(&format!("views {}", rpq_server::RETAINED_VIEWS)),
        "{}",
        info.status
    );
    // Oldest epochs are gone…
    let r = c.roundtrip("query (b.c)+ at 0");
    assert!(
        r.status.starts_with("ERR epoch 0 not retained"),
        "{}",
        r.status
    );
    assert!(r.status.contains("epochs"), "{}", r.status);
    // …while every retained epoch still answers, all with the same result
    // (`zz` deltas never touch query labels).
    let newest = 2 + total as u64;
    let oldest = newest - (rpq_server::RETAINED_VIEWS as u64 - 1);
    let want = pair_count(&c.roundtrip("query (b.c)+").status);
    for e in oldest..=newest {
        let r = c.roundtrip(&format!("query (b.c)+ at {e}"));
        assert!(r.status.starts_with("OK "), "epoch {e}: {}", r.status);
        assert_eq!(pair_count(&r.status), want, "epoch {e}");
    }
    let r = c.roundtrip(&format!("query (b.c)+ at {}", oldest - 1));
    assert!(r.status.starts_with("ERR "), "{}", r.status);
    c.quit_clean();
}

/// Edges the MVCC proptest toggles — real query labels, so pinned results
/// genuinely differ across epochs.
const MVCC_DELTAS: &[(u32, &str, u32)] = &[(6, "b", 8), (8, "c", 6), (1, "a", 9), (9, "d", 7)];
const MVCC_QUERIES: &[&str] = &["d.(b.c)+.c", "(b.c)+", "a.(b.c)+", "(a.b)+|(b.c)+"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// MVCC equivalence: arbitrary interleavings of writes and pinned
    /// reads. Every `query … at <epoch>` must return exactly the pairs a
    /// fresh single-threaded engine produces after replaying the delta
    /// log up to that epoch — the time-travel acceptance criterion.
    #[test]
    fn mvcc_pinned_reads_match_replay_at_their_epoch(
        ops in prop::collection::vec((0..3usize, 0..16usize), 1..40)
    ) {
        let mut s = Session::with_config(base_config());
        s.execute("gen paper").unwrap();
        s.execute("binary on").unwrap();
        // The applied-delta log: entry i produced epoch i+1.
        let mut log: Vec<(bool, (u32, &str, u32))> = Vec::new();
        let mut present = [false; MVCC_DELTAS.len()];
        for (kind, arg) in ops {
            if kind == 0 {
                // Write: toggle one pool edge, publishing a new epoch.
                let i = arg % MVCC_DELTAS.len();
                let (src, label, dst) = MVCC_DELTAS[i];
                let verb = if present[i] { "del" } else { "ins" };
                let r = s.execute(&format!("delta {verb} {src} {label} {dst}")).unwrap();
                prop_assert!(matches!(r.status, Status::Ok(_)), "{:?}", r.status);
                log.push((present[i], MVCC_DELTAS[i]));
                present[i] = !present[i];
            } else {
                // Pinned read at a random retained epoch.
                let (lo, hi, _) = s.shared().retained_span();
                let epoch = lo + (arg as u64) % (hi - lo + 1);
                let query = MVCC_QUERIES[arg % MVCC_QUERIES.len()];
                let r = s.execute(&format!("query {query} at {epoch}")).unwrap();
                let bin = r.binary.as_ref().expect("binary mode response");
                let got = wire::decode_pairs(&bin.bytes, bin.pairs).unwrap();
                // Single-threaded replay of the log up to the pinned epoch.
                let mut model = rpq_graph::VersionedGraph::new(rpq_graph::fixtures::paper_graph());
                for (was_present, (src, label, dst)) in &log[..epoch as usize] {
                    let mut d = rpq_graph::GraphDelta::new();
                    if *was_present {
                        d.delete(*src, label, *dst);
                    } else {
                        d.insert(*src, label, *dst);
                    }
                    model.apply(&d);
                }
                let oracle = rpq_core::Engine::new(model.graph()).evaluate_str(query).unwrap();
                let want: Vec<(u32, u32)> =
                    oracle.iter().map(|(x, y)| (x.raw(), y.raw())).collect();
                prop_assert_eq!(got, want, "epoch {} of {:?}", epoch, s.shared().retained_span());
                // An epoch just past the ring is a clean error, never a
                // wrong answer.
                if lo > 0 {
                    let r = s.execute(&format!("query {query} at {}", lo - 1)).unwrap();
                    prop_assert!(
                        matches!(r.status, Status::Err(ref e) if e.contains("not retained")),
                        "{:?}", r.status
                    );
                }
            }
        }
    }
}

/// The acceptance criterion: a slow query holding the shared read lock
/// must not serialize another connection's fast commands. With the old
/// session-wide mutex, B's `epoch`/`query` would finish only after A's
/// multi-second closure computation; with the read-write lock they finish
/// orders of magnitude earlier.
#[test]
fn slow_query_does_not_block_fast_reader() {
    // RMAT_3 at 2^13 vertices: `l0+` materializes ~10M closure pairs —
    // over a second of work in a debug build even with dense bitset rows,
    // comfortably slow everywhere.
    let addr = spawn_server(&["gen rmat 3 13 42".to_string()]);
    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    a.roundtrip("limit 0");
    b.roundtrip("limit 0");

    let start = Instant::now();
    a.send("query l0+");
    let slow = std::thread::spawn(move || {
        let response = read_response(&mut a.reader);
        (Instant::now(), response)
    });
    // Give A time to parse and enter evaluation under the read lock.
    std::thread::sleep(Duration::from_millis(100));

    let fast_epoch = b.roundtrip("epoch");
    assert_eq!(fast_epoch.status, "OK epoch 0");
    let fast_query = b.roundtrip("query l1");
    assert!(
        fast_query.status.starts_with("OK "),
        "{}",
        fast_query.status
    );
    let b_done = Instant::now();

    let (a_done, slow_response) = slow.join().unwrap();
    assert!(
        slow_response.status.starts_with("OK "),
        "{}",
        slow_response.status
    );
    let a_total = a_done.duration_since(start);
    assert!(
        a_total > Duration::from_millis(400),
        "slow query finished in {a_total:?} — too fast to prove anything; grow the graph"
    );
    assert!(
        b_done < a_done,
        "fast commands on connection B serialized behind A's slow query \
         (B at {:?}, A at {a_total:?})",
        b_done.duration_since(start)
    );
}
