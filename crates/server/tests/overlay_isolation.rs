//! Property test: per-connection overlays never leak (ISSUE 5).
//!
//! Arbitrary interleavings of `strategy`/`threads`/`limit` changes across
//! 2–4 sessions attached to one shared engine must keep two invariants:
//!
//! * **Isolation** — every session's `info` reflects exactly *its own*
//!   overlay resolved against the engine base config, never another
//!   session's; the engine's base configuration itself never moves.
//! * **Result determinism** — a `query`'s pair set depends only on the
//!   graph epoch and the query text, never on any session's (or any
//!   *other* session's) overlay. The oracle is a fresh engine over a
//!   model graph that replays the same deltas.
//!
//! Sessions run with `binary on`, so every query response carries the
//! complete result set (no `limit` truncation) and can be compared to the
//! oracle exactly — which simultaneously exercises the `RESULT-BIN`
//! encoder under overlay churn.

use proptest::prelude::*;
use rpq_server::wire::decode_pairs;
use rpq_server::{Session, Status};

const SESSIONS: usize = 4;
const QUERIES: &[&str] = &["d.(b.c)+.c", "(b.c)+", "(a.b)*", "a.(b.c)+", "b.c|d"];
const STRATEGIES: &[(&str, &str)] = &[
    ("rtc", "RTCSharing"),
    ("full", "FullSharing"),
    ("none", "NoSharing"),
];
const LIMITS: &[usize] = &[0, 1, 7, 50];
const THREADS: &[usize] = &[1, 2];
/// Edge toggles applied via `delta` — real query labels, so results move
/// with the epoch and the oracle check is not vacuous.
const DELTAS: &[(u32, &str, u32)] = &[(6, "b", 8), (8, "c", 6), (1, "a", 9), (9, "d", 7)];

/// One step of the interleaving: which session acts, what it does, and an
/// argument index into the relevant pool.
#[derive(Debug, Clone, Copy)]
enum Op {
    SetStrategy(usize, usize),
    SetThreads(usize, usize),
    SetLimit(usize, usize),
    Query(usize, usize),
    Delta(usize, usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0..SESSIONS, 0..5usize, 0..8usize).prop_map(|(s, kind, arg)| match kind {
        0 => Op::SetStrategy(s, arg % STRATEGIES.len()),
        1 => Op::SetThreads(s, arg % THREADS.len()),
        2 => Op::SetLimit(s, arg % LIMITS.len()),
        3 => Op::Delta(s, arg % DELTAS.len()),
        _ => Op::Query(s, arg % QUERIES.len()),
    })
}

/// The model of one session's overlay (what `info` must show).
#[derive(Clone, Copy)]
struct OverlayModel {
    strategy: &'static str, // display name
    threads: usize,
    limit: usize,
}

fn ok(r: Option<rpq_server::Response>) -> rpq_server::Response {
    let r = r.expect("command responds");
    assert!(matches!(r.status, Status::Ok(_)), "{:?}", r.status);
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn overlays_stay_per_session_and_results_depend_only_on_epoch(
        ops in prop::collection::vec(arb_op(), 1..50)
    ) {
        // Shared serving state over the paper graph…
        let mut root = Session::new();
        ok(root.execute("gen paper"));
        let mut sessions: Vec<Session> = (0..SESSIONS)
            .map(|_| Session::attach(root.shared()))
            .collect();
        for s in &mut sessions {
            ok(s.execute("binary on"));
        }
        // …and the oracle's model of the same graph.
        let mut model = rpq_graph::VersionedGraph::new(rpq_graph::fixtures::paper_graph());
        // Track which of the toggle edges are currently present (all the
        // DELTAS edges start absent: none of them is in the paper graph).
        let mut present = [false; DELTAS.len()];
        let mut overlays = [OverlayModel { strategy: "RTCSharing", threads: 1, limit: 10 }; SESSIONS];

        for op in ops {
            match op {
                Op::SetStrategy(s, a) => {
                    let (flag, display) = STRATEGIES[a];
                    ok(sessions[s].execute(&format!("strategy {flag}")));
                    overlays[s].strategy = display;
                }
                Op::SetThreads(s, a) => {
                    ok(sessions[s].execute(&format!("threads {}", THREADS[a])));
                    overlays[s].threads = THREADS[a];
                }
                Op::SetLimit(s, a) => {
                    ok(sessions[s].execute(&format!("limit {}", LIMITS[a])));
                    overlays[s].limit = LIMITS[a];
                }
                Op::Delta(s, a) => {
                    let (src, label, dst) = DELTAS[a];
                    let verb = if present[a] { "del" } else { "ins" };
                    ok(sessions[s].execute(&format!("delta {verb} {src} {label} {dst}")));
                    let mut delta = rpq_graph::GraphDelta::new();
                    if present[a] {
                        delta.delete(src, label, dst);
                    } else {
                        delta.insert(src, label, dst);
                    }
                    model.apply(&delta);
                    present[a] = !present[a];
                }
                Op::Query(s, a) => {
                    let r = ok(sessions[s].execute(&format!("query {}", QUERIES[a])));
                    let (pairs, bytes) = {
                        let b = r.binary.as_ref().expect("binary mode response");
                        (b.pairs, &b.bytes)
                    };
                    let got = decode_pairs(bytes, pairs).unwrap();
                    let oracle = rpq_core::Engine::new(model.graph())
                        .evaluate_str(QUERIES[a])
                        .unwrap();
                    let want: Vec<(u32, u32)> =
                        oracle.iter().map(|(x, y)| (x.raw(), y.raw())).collect();
                    prop_assert_eq!(
                        got, want,
                        "session {} (overlay {}/{} threads): result diverged from the \
                         epoch-{} oracle on '{}'",
                        s, overlays[s].strategy, overlays[s].threads, model.epoch(), QUERIES[a]
                    );
                }
            }

            // After *every* op, every session's info must reflect its own
            // overlay — and nobody else's.
            for (i, session) in sessions.iter_mut().enumerate() {
                let info = match ok(session.execute("info")).status {
                    Status::Ok(m) => m,
                    Status::Err(e) => panic!("info failed: {e}"),
                };
                let want = format!(
                    "strategy {}, threads {}, limit {}, binary on",
                    overlays[i].strategy, overlays[i].threads, overlays[i].limit
                );
                prop_assert!(
                    info.contains(&want),
                    "session {}'s info '{}' does not show its own overlay '{}'",
                    i, info, want
                );
            }
            // The engine's base configuration never moves, no matter how
            // many overlay changes any session makes.
            let base = *root.engine().config();
            prop_assert!(matches!(base.strategy, rpq_core::Strategy::RtcSharing));
            prop_assert_eq!(base.threads, 1);
        }
    }
}
