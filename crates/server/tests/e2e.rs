//! End-to-end tests of the `rpq` binary: the REPL command loop driven
//! over a real pipe, and a warm restart across two separate processes.

use std::io::Write;
use std::process::{Command, Stdio};

/// Runs `rpq repl` with `script` piped to stdin, returning stdout.
fn run_repl_process(args: &[&str], script: &str) -> (String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_rpq"))
        .arg("repl")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rpq repl");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("wait for rpq");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        out.status.success(),
    )
}

#[test]
fn repl_full_command_loop_over_a_pipe() {
    let script = "\
gen paper
info
query d.(b.c)+.c
query a.(b.c)+
cache
delta ins 6 b 8 ins 8 c 6
epoch
query d.(b.c)+.c
metrics
strategy full
query d.(b.c)+.c
quit
";
    let (stdout, ok) = run_repl_process(&[], script);
    assert!(ok, "rpq repl exited nonzero; stdout:\n{stdout}");

    // Load/graph status.
    assert!(
        stdout.contains("OK loaded paper graph: 10 vertices, 15 edges, 6 labels"),
        "missing gen response:\n{stdout}"
    );
    assert!(
        stdout.contains("OK graph 'paper'"),
        "missing info:\n{stdout}"
    );
    // Example 1's result, twice (RTC then FullSharing agree).
    assert!(stdout.matches("  v7 -> v5").count() >= 2, "{stdout}");
    // Second query shares the (b.c) RTC: the cache report shows 1 entry.
    assert!(
        stdout.contains("1 rtc"),
        "cache breakdown missing:\n{stdout}"
    );
    // The delta advanced the epoch.
    assert!(stdout.contains("OK epoch 1"), "{stdout}");
    // Metrics render.
    assert!(stdout.contains("maintenance: deltas=1"), "{stdout}");
    // Clean shutdown.
    assert!(stdout.trim_end().ends_with("OK bye"), "{stdout}");
}

#[test]
fn repl_errors_are_in_band_and_nonfatal() {
    let script = "\
gen paper
query (((
nonsense
query d.(b.c)+.c
quit
";
    let (stdout, ok) = run_repl_process(&[], script);
    assert!(ok);
    assert!(stdout.contains("ERR query failed"), "{stdout}");
    assert!(stdout.contains("ERR unknown command"), "{stdout}");
    // The loop survived both errors and answered the good query.
    assert!(stdout.contains("OK 2 pairs"), "{stdout}");
}

#[test]
fn snapshot_warm_restart_across_processes() {
    let dir = std::env::temp_dir().join("rpq_e2e_snapshot");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("warm.snap");
    let snap_str = snap.to_str().unwrap();

    // Process 1: build state, evaluate (computing the RTC), snapshot.
    let script = format!("gen paper\nquery d.(b.c)+.c\nsave {snap_str}\nquit\n");
    let (stdout, ok) = run_repl_process(&[], &script);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("1 cached structures"), "{stdout}");

    // Process 2: warm restart via --load; the first query must be served
    // from the restored cache (0 misses reported by `cache`).
    let script = "query d.(b.c)+.c\ncache\nquit\n";
    let (stdout, ok) = run_repl_process(&["--load", snap_str], script);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("OK 2 pairs"), "{stdout}");
    assert!(stdout.contains("0 misses"), "warm cache missed:\n{stdout}");
    assert!(!stdout.contains(" 0 hits"), "no hit recorded:\n{stdout}");
    std::fs::remove_file(&snap).ok();
}

#[test]
fn startup_flags_shape_the_session() {
    let script = "gen paper\ninfo\nquit\n";
    let (stdout, ok) = run_repl_process(&["--strategy", "full", "--threads", "2"], script);
    assert!(ok);
    assert!(
        stdout.contains("strategy FullSharing, threads 2"),
        "{stdout}"
    );
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_rpq"))
        .arg("frobnicate")
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_rpq"))
        .args(["serve"]) // missing --addr
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_rpq"))
        .args(["repl", "--load", "/no/such/file.el"])
        .stdin(Stdio::null())
        .output()
        .unwrap();
    assert!(!out.status.success());
}
