//! The materialized `R⁺_G` — FullSharing's shared structure.
//!
//! Abul-Basher's FullSharing \[8\] shares the *evaluation result* of the
//! common sub-query `R⁺` among queries. Per Lemma 1 that result equals
//! `TC(G_R)`, which this struct materializes with one BFS per vertex of
//! `G_R` (`O(|V_R|·|E_R|)` — TABLE III's left column) and stores grouped by
//! source for the join in the baseline's batch-unit evaluation.

use rpq_graph::{MappedDigraph, PairSet, RowSet, RowSetPolicy, RowTable, VertexId, VertexMapping};
use std::sync::Arc;

/// `R⁺_G` materialized and grouped by start vertex.
#[derive(Clone, Debug)]
pub struct FullTc {
    mapping: VertexMapping,
    /// Row per compact vertex: compact vertices reachable via ≥ 1 edge
    /// (hybrid sparse/dense per the build policy).
    rows: RowTable,
    pair_count: usize,
}

impl FullTc {
    /// Builds `R⁺_G` from an evaluated `R_G`.
    pub fn from_pairs(r_g: &PairSet) -> FullTc {
        Self::from_reduced(MappedDigraph::from_pairset(r_g))
    }

    /// [`FullTc::from_pairs`] with the per-vertex BFS sweep sharded over
    /// `threads` scoped workers (see [`crate::tc::tc_naive_parallel`]).
    pub fn from_pairs_parallel(r_g: &PairSet, threads: usize) -> FullTc {
        Self::from_reduced_parallel(MappedDigraph::from_pairset(r_g), threads)
    }

    /// [`FullTc::from_pairs_parallel`] with an explicit row-representation
    /// policy.
    pub fn from_pairs_parallel_with(
        r_g: &PairSet,
        threads: usize,
        policy: &RowSetPolicy,
    ) -> FullTc {
        Self::from_reduced_parallel_with(MappedDigraph::from_pairset(r_g), threads, policy)
    }

    /// Builds `R⁺_G` from an already-built `G_R`.
    pub fn from_reduced(gr: MappedDigraph) -> FullTc {
        Self::from_reduced_parallel(gr, 1)
    }

    /// [`FullTc::from_reduced`] with a parallel closure sweep.
    pub fn from_reduced_parallel(gr: MappedDigraph, threads: usize) -> FullTc {
        Self::from_reduced_parallel_with(gr, threads, &RowSetPolicy::default())
    }

    /// [`FullTc::from_reduced_parallel`] with an explicit
    /// row-representation policy.
    pub fn from_reduced_parallel_with(
        gr: MappedDigraph,
        threads: usize,
        policy: &RowSetPolicy,
    ) -> FullTc {
        let csr = crate::tc::tc_naive_parallel(&gr.graph, threads);
        let n = gr.graph.vertex_count() as u32;
        let rows: Vec<RowSet> = (0..csr.rows())
            .map(|v| RowSet::from_sorted_vec(csr.row(v).to_vec()))
            .collect();
        let rows = RowTable::from_rows_with(rows, n, policy);
        let pair_count = rows.total_len();
        FullTc {
            mapping: gr.mapping,
            rows,
            pair_count,
        }
    }

    /// Borrows the internal tables for serialization
    /// ([`crate::snapshot::FullTcParts`]).
    pub(crate) fn raw_parts(&self) -> (&VertexMapping, &RowTable) {
        (&self.mapping, &self.rows)
    }

    /// Reassembles a closure from deserialized tables (validated by
    /// [`crate::snapshot::FullTcParts::assemble`]).
    pub(crate) fn from_raw_parts(mapping: VertexMapping, rows: RowTable) -> FullTc {
        let pair_count = rows.total_len();
        FullTc {
            mapping,
            rows,
            pair_count,
        }
    }

    /// Number of pairs in `R⁺_G` — FullSharing's shared-data size (Fig. 12).
    pub fn pair_count(&self) -> usize {
        self.pair_count
    }

    /// `|V_R|`.
    pub fn vertex_count(&self) -> usize {
        self.rows.len()
    }

    /// Heap bytes held by the closure rows — FullSharing's shared-data
    /// memory, comparable against [`crate::Rtc::closure_heap_bytes`].
    pub fn heap_bytes(&self) -> usize {
        self.rows.heap_bytes()
    }

    /// Number of closure rows currently stored as dense bitsets.
    pub fn dense_rows(&self) -> usize {
        self.rows.dense_rows()
    }

    /// End vertices of `R⁺` paths from original vertex `v`, as original ids
    /// in ascending order. Empty if `v ∉ V_R`.
    pub fn successors_original(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.mapping
            .compact(v)
            .map(|c| self.rows.row(c as usize))
            .into_iter()
            .flat_map(|row| row.iter())
            .map(move |c| self.mapping.original(c))
    }

    /// Materializes the full pair set (for tests and size accounting), as
    /// a grouped [`PairSet`] with one target row per source vertex.
    pub fn expand(&self) -> PairSet {
        let mut groups: Vec<(VertexId, Arc<RowSet>)> = Vec::new();
        for v in 0..self.rows.len() {
            let row = self.rows.row(v);
            if row.is_empty() {
                continue;
            }
            let mut targets: Vec<u32> =
                row.iter().map(|c| self.mapping.original(c).raw()).collect();
            // The pairset mapping is monotone, making this a no-op sweep,
            // but RowSet rows must be sorted by contract.
            targets.sort_unstable();
            groups.push((
                self.mapping.original(v as u32),
                Arc::new(RowSet::from_sorted_vec(targets)),
            ));
        }
        PairSet::from_grouped_rows(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtc::Rtc;

    fn bc_pairs() -> PairSet {
        [(2u32, 4u32), (2, 6), (3, 5), (4, 2), (5, 3)]
            .into_iter()
            .collect()
    }

    #[test]
    fn pair_count_matches_example4() {
        let full = FullTc::from_pairs(&bc_pairs());
        assert_eq!(full.pair_count(), 10);
        assert_eq!(full.vertex_count(), 5);
    }

    #[test]
    fn expand_equals_rtc_expand() {
        // Lemma 1 + Theorem 1: both shared structures enumerate the same R⁺_G.
        let pairs = bc_pairs();
        let full = FullTc::from_pairs(&pairs);
        let rtc = Rtc::from_pairs(&pairs);
        assert_eq!(full.expand(), rtc.expand());
    }

    #[test]
    fn successors_from_original_ids() {
        let full = FullTc::from_pairs(&bc_pairs());
        let succ: Vec<u32> = full
            .successors_original(VertexId(4))
            .map(|v| v.raw())
            .collect();
        assert_eq!(succ, vec![2, 4, 6]);
        // Vertex outside V_R.
        assert_eq!(full.successors_original(VertexId(0)).count(), 0);
    }

    #[test]
    fn rtc_is_never_larger_than_full_tc() {
        // The headline size claim: |TC(Ḡ_R)| ≤ |R⁺_G| pairs.
        for pairs in [
            bc_pairs(),
            [(0u32, 1u32), (1, 2), (2, 0)].into_iter().collect(),
            [(0u32, 0u32)].into_iter().collect(),
            [(0u32, 1u32), (1, 2), (2, 3)].into_iter().collect(),
        ] {
            let full = FullTc::from_pairs(&pairs);
            let rtc = Rtc::from_pairs(&pairs);
            assert!(
                rtc.closure_pair_count() <= full.pair_count(),
                "RTC {} > full {}",
                rtc.closure_pair_count(),
                full.pair_count()
            );
        }
    }

    #[test]
    fn empty_full_tc() {
        let full = FullTc::from_pairs(&PairSet::new());
        assert_eq!(full.pair_count(), 0);
        assert!(full.expand().is_empty());
    }
}
