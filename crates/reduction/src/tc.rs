//! Transitive-closure algorithms on unlabeled digraphs.
//!
//! Three implementations with one contract (`TC` = pairs reachable by paths
//! of length ≥ 1):
//!
//! * [`tc_naive`] — per-vertex BFS, `O(|V|·|E|)`. This is what FullSharing
//!   pays to materialize `R⁺_G = TC(G_R)` (TABLE III, left column).
//! * [`closure_of_condensation`] / [`tc_condensation`] — Purdom's scheme
//!   \[12\]: condense to `Ḡ_R`, close the much smaller DAG-with-self-loops in
//!   reverse topological order, then (optionally) expand by SCC membership.
//!   The un-expanded SCC closure is exactly the RTC (TABLE III, right
//!   column).
//! * [`nuutila_closure`] — a Nuutila-inspired \[13\] two-phase variant that
//!   builds the SCC closure straight from member adjacency, never
//!   materializing the condensation graph.
//!
//! The naive BFS and the vertex-level expansion are embarrassingly
//! parallel; [`tc_naive_parallel`], [`expand_scc_closure_parallel`] and
//! [`tc_condensation_parallel`] shard them over the scoped-thread pool of
//! [`rpq_graph::par`] and are property-tested to be bitwise-identical to
//! their sequential counterparts.
//!
//! All closure rows are sorted ascending, so downstream joins can merge.

use rpq_graph::{
    par, tarjan_scc, Condensation, Csr, Digraph, EpochVisited, RowSet, RowSetPolicy, RowTable, Scc,
    SccId,
};

/// Naive transitive closure: one BFS per vertex. Row `v` holds the sorted
/// vertices reachable from `v` via ≥ 1 edge.
pub fn tc_naive(g: &Digraph) -> Csr<u32> {
    let n = g.vertex_count();
    let mut visited = EpochVisited::new(n);
    let mut queue: Vec<u32> = Vec::new();
    let mut out = Csr::new();
    for v in 0..n as u32 {
        let row = rpq_graph::bfs::reachable_ge1(g, v, &mut visited, &mut queue);
        out.push_row(row);
    }
    out
}

/// Parallel [`tc_naive`]: the per-vertex BFS sweep is sharded into chunks
/// of source vertices pulled by up to `threads` scoped workers (0 = all
/// cores), each worker reusing its own `EpochVisited`/queue scratch across
/// chunks, and the per-chunk row blocks are stitched back into one CSR in
/// vertex order. Output is identical to [`tc_naive`] (property-tested).
pub fn tc_naive_parallel(g: &Digraph, threads: usize) -> Csr<u32> {
    let n = g.vertex_count();
    let threads = par::effective_threads(threads);
    if threads <= 1 || n == 0 {
        return tc_naive(g);
    }
    let chunk = par::balanced_chunk(n, threads, 4, 1024);
    // Each chunk yields one flattened (row data, row lengths) block rather
    // than one heap Vec per source row, so buffering the whole closure
    // before the stitch costs two flat vectors per chunk instead of |V|
    // row allocations held live at once.
    let shards: Vec<(Vec<u32>, Vec<u32>)> = par::par_map_chunks_with(
        threads,
        n,
        chunk,
        || (EpochVisited::new(n), Vec::new()),
        |(visited, queue), range| {
            let mut data: Vec<u32> = Vec::new();
            let mut lens: Vec<u32> = Vec::with_capacity(range.len());
            for v in range {
                let row = rpq_graph::bfs::reachable_ge1(g, v as u32, visited, queue);
                lens.push(row.len() as u32);
                data.extend_from_slice(&row);
            }
            (data, lens)
        },
    );
    // Stitch in chunk order, dropping each block as it is consumed.
    let mut out = Csr::new();
    for (data, lens) in shards {
        let mut at = 0usize;
        for len in lens {
            let end = at + len as usize;
            out.push_row(data[at..end].iter().copied());
            at = end;
        }
    }
    out
}

/// Closure of a condensation: row `s̄` holds the sorted SCC ids reachable
/// from `s̄` via ≥ 1 edge of `Ḡ_R` (self-loops included).
///
/// Exploits the reverse-topological numbering of Tarjan SCC ids: a single
/// ascending sweep sees every successor row before it is needed. Dedup uses
/// an epoch-stamped scratch array, so the cost is proportional to the sum of
/// merged list lengths.
pub fn closure_of_condensation(cond: &Condensation) -> Csr<u32> {
    let k = cond.vertex_count();
    let mut rows: Vec<Vec<u32>> = Vec::with_capacity(k);
    let mut stamp = EpochVisited::new(k);
    for s in 0..k as u32 {
        stamp.clear();
        let mut row: Vec<u32> = Vec::new();
        if cond.has_self_loop(SccId(s)) && stamp.insert(s) {
            row.push(s);
        }
        for &t in cond.out(SccId(s)) {
            if stamp.insert(t) {
                row.push(t);
            }
            for &q in &rows[t as usize] {
                if stamp.insert(q) {
                    row.push(q);
                }
            }
        }
        row.sort_unstable();
        rows.push(row);
    }
    Csr::from_rows(rows)
}

/// Purdom-style transitive closure: condensation closure expanded back to
/// vertex level. Returns per-vertex sorted reachability rows equal to
/// [`tc_naive`]'s output.
pub fn tc_condensation(g: &Digraph) -> Csr<u32> {
    let scc = tarjan_scc(g);
    let cond = Condensation::new(g, &scc);
    let closure = closure_of_condensation(&cond);
    expand_scc_closure(&scc, &closure, g.vertex_count())
}

/// [`tc_condensation`] with the vertex-level expansion sharded over
/// `threads` scoped workers (the SCC detection and condensation closure
/// stay sequential — they are cheap and inherently ordered).
pub fn tc_condensation_parallel(g: &Digraph, threads: usize) -> Csr<u32> {
    let scc = tarjan_scc(g);
    let cond = Condensation::new(g, &scc);
    let closure = closure_of_condensation(&cond);
    expand_scc_closure_parallel(&scc, &closure, g.vertex_count(), threads)
}

/// Nuutila-inspired closure \[13\]: a two-phase computation that runs
/// [`rpq_graph::tarjan_scc`] first and then builds each SCC's successor
/// set directly from its members' out-edges in one ascending
/// (reverse-topological) sweep — Nuutila's key saving of never
/// materializing the condensation graph, but **not** the fully
/// interleaved single-traversal formulation of the original paper: SCC
/// detection and closure construction are separate passes here.
///
/// Returns the SCC decomposition (identical to [`rpq_graph::tarjan_scc`],
/// including component numbering) and the per-SCC closure rows (sorted),
/// identical to [`closure_of_condensation`] over the condensation.
pub fn nuutila_closure(g: &Digraph) -> (Scc, Csr<u32>) {
    // Tarjan SCC ids are reverse-topological, so an ascending sweep sees
    // every successor SCC's closure row before it is needed; the row for
    // `s` is merged from its members' out-edges without ever building a
    // `Condensation`.
    let scc = tarjan_scc(g);
    let k = scc.count();
    let mut rows: Vec<Vec<u32>> = Vec::with_capacity(k);
    let mut stamp = EpochVisited::new(k);
    for s in 0..k as u32 {
        stamp.clear();
        let mut row: Vec<u32> = Vec::new();
        for &member in scc.members(SccId(s)) {
            for &w in g.out(member) {
                let t = scc.component_of(w).raw();
                if t == s {
                    // Internal edge: the SCC reaches itself.
                    if stamp.insert(s) {
                        row.push(s);
                    }
                    continue;
                }
                if stamp.insert(t) {
                    row.push(t);
                }
                for &q in &rows[t as usize] {
                    if stamp.insert(q) {
                        row.push(q);
                    }
                }
            }
        }
        row.sort_unstable();
        rows.push(row);
    }
    (scc, Csr::from_rows(rows))
}

/// Hybrid variant of the condensation closure: each row is a [`RowSet`]
/// whose representation is chosen per `policy`. Sparse rows are built with
/// the same epoch-stamped merge as [`closure_of_condensation`]; rows whose
/// *estimated* merged size crosses the policy's density crossover are built
/// dense up front, so successor unions run as word-parallel ORs instead of
/// list merges. After the merge each row is normalized (an over-estimated
/// dense row demotes back to sparse under the adaptive policy).
pub fn closure_of_condensation_rows(cond: &Condensation, policy: &RowSetPolicy) -> RowTable {
    let k = cond.vertex_count();
    let mut rows: Vec<RowSet> = Vec::with_capacity(k);
    let mut stamp = EpochVisited::new(k);
    for s in 0..k as u32 {
        let self_loop = cond.has_self_loop(SccId(s));
        // Upper bound of the merged row: the successor edges plus their
        // closure rows (duplicates counted). Deciding the representation
        // *before* merging is what makes the dense path cheap — the
        // alternative (build sparse, then promote) pays the merge twice.
        let mut estimate = usize::from(self_loop);
        for &t in cond.out(SccId(s)) {
            estimate += 1 + rows[t as usize].len();
        }
        let mut row = if policy.wants_dense(estimate.min(k), k as u32) {
            let mut row = RowSet::dense_from_iter(k as u32, std::iter::empty());
            if self_loop {
                row.insert(s);
            }
            for &t in cond.out(SccId(s)) {
                row.insert(t);
                row.union_in_place(&rows[t as usize]);
            }
            row
        } else {
            stamp.clear();
            let mut row: Vec<u32> = Vec::new();
            if self_loop && stamp.insert(s) {
                row.push(s);
            }
            for &t in cond.out(SccId(s)) {
                if stamp.insert(t) {
                    row.push(t);
                }
                for q in rows[t as usize].iter() {
                    if stamp.insert(q) {
                        row.push(q);
                    }
                }
            }
            row.sort_unstable();
            RowSet::from_sorted_vec(row)
        };
        row.normalize(k as u32, policy);
        rows.push(row);
    }
    RowTable::from_rows(rows, k as u32)
}

/// Bitset variant of the condensation closure: every non-empty row is a
/// dense bit vector and the reverse-topological sweep unions successor
/// rows with word-parallel ORs. Faster than list merging when the closure
/// is dense; memory is up to `|V̄_R|²/8` bytes, so callers should prefer
/// the adaptive [`closure_of_condensation_rows`] for large condensations
/// (the `tc_ablation` and `repr_ablation` benches quantify the crossover).
pub fn closure_of_condensation_bitset(cond: &Condensation) -> RowTable {
    closure_of_condensation_rows(cond, &RowSetPolicy::dense())
}

/// Expands a per-SCC closure to per-vertex rows (the Cartesian products of
/// Lemma 3, laid out row-wise).
pub fn expand_scc_closure(scc: &Scc, closure: &Csr<u32>, n: usize) -> Csr<u32> {
    scatter_member_rows(expand_scc_rows_range(scc, closure, 0..scc.count()), n)
}

/// Parallel [`expand_scc_closure`]: the per-SCC Cartesian products are
/// sharded over `threads` scoped workers; each worker emits
/// `(member, reachable-row)` pairs for its SCC chunk and the rows are
/// scattered back into vertex order. Output is identical to
/// [`expand_scc_closure`] (property-tested).
pub fn expand_scc_closure_parallel(
    scc: &Scc,
    closure: &Csr<u32>,
    n: usize,
    threads: usize,
) -> Csr<u32> {
    let k = scc.count();
    let threads = par::effective_threads(threads);
    if threads <= 1 || k == 0 {
        return expand_scc_closure(scc, closure, n);
    }
    let chunk = par::balanced_chunk(k, threads, 4, 512);
    let shards = par::par_map_chunks(threads, k, chunk, |range| {
        expand_scc_rows_range(scc, closure, range)
    });
    scatter_member_rows(shards.into_iter().flatten().collect(), n)
}

/// Lemma 3's expansion restricted to source SCCs in `sccs`, as
/// `(member, reachable-row)` pairs — the shard unit of both expansion
/// paths. The reachable vertex set is collected once per SCC and cloned
/// per member.
fn expand_scc_rows_range(
    scc: &Scc,
    closure: &Csr<u32>,
    sccs: std::ops::Range<usize>,
) -> Vec<(u32, Vec<u32>)> {
    let mut out: Vec<(u32, Vec<u32>)> = Vec::new();
    for s in sccs {
        let succ = closure.row(s);
        if succ.is_empty() {
            continue;
        }
        let mut reach: Vec<u32> = Vec::new();
        for &t in succ {
            reach.extend_from_slice(scc.members(SccId(t)));
        }
        reach.sort_unstable();
        for &member in scc.members(SccId(s as u32)) {
            out.push((member, reach.clone()));
        }
    }
    out
}

/// Scatters `(member, row)` pairs into an `n`-row CSR in vertex order.
fn scatter_member_rows(pairs: Vec<(u32, Vec<u32>)>, n: usize) -> Csr<u32> {
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (member, reach) in pairs {
        rows[member as usize] = reach;
    }
    Csr::from_rows(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_of(csr: &Csr<u32>) -> Vec<Vec<u32>> {
        csr.iter_rows().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn naive_tc_on_chain() {
        let g = Digraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let tc = tc_naive(&g);
        assert_eq!(
            rows_of(&tc),
            vec![vec![1, 2, 3], vec![2, 3], vec![3], vec![]]
        );
    }

    #[test]
    fn naive_tc_on_cycle_includes_self() {
        let g = Digraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let tc = tc_naive(&g);
        for v in 0..3 {
            assert_eq!(tc.row(v), &[0, 1, 2]);
        }
    }

    #[test]
    fn condensation_closure_example6() {
        // G_{b·c} compact: {v2,v3,v4,v5,v6}→{0,1,2,3,4},
        // edges {(0,2),(0,4),(1,3),(2,0),(3,1)}.
        let g = Digraph::from_edges(5, vec![(0, 2), (0, 4), (1, 3), (2, 0), (3, 1)]);
        let scc = tarjan_scc(&g);
        let cond = Condensation::new(&g, &scc);
        let closure = closure_of_condensation(&cond);
        // TC(Ḡ_{b·c}) = {(s̄{24},s̄{24}), (s̄{24},s̄{6}), (s̄{35},s̄{35})} —
        // 3 pairs (Example 6).
        let total: usize = closure.iter_rows().map(|r| r.len()).sum();
        assert_eq!(total, 3);
        let s24 = scc.component_of(0);
        let s6 = scc.component_of(4);
        let s35 = scc.component_of(1);
        let mut expect_s24 = [s24.raw(), s6.raw()];
        expect_s24.sort_unstable();
        assert_eq!(closure.row(s24.index()), &expect_s24[..]);
        assert_eq!(closure.row(s6.index()), &[] as &[u32]);
        assert_eq!(closure.row(s35.index()), &[s35.raw()]);
    }

    #[test]
    fn tc_condensation_equals_tc_naive() {
        let graphs = [
            Digraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]),
            Digraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]),
            Digraph::from_edges(5, vec![(0, 2), (0, 4), (1, 3), (2, 0), (3, 1)]),
            Digraph::from_edges(2, vec![(0, 0), (0, 1)]),
            Digraph::from_edges(
                6,
                vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (4, 5)],
            ),
            Digraph::from_edges(3, vec![]),
        ];
        for (i, g) in graphs.iter().enumerate() {
            assert_eq!(
                rows_of(&tc_condensation(g)),
                rows_of(&tc_naive(g)),
                "graph {i}"
            );
        }
    }

    #[test]
    fn nuutila_matches_two_phase() {
        let graphs = [
            Digraph::from_edges(5, vec![(0, 2), (0, 4), (1, 3), (2, 0), (3, 1)]),
            Digraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]),
            Digraph::from_edges(2, vec![(0, 0)]),
            Digraph::from_edges(
                7,
                vec![
                    (0, 1),
                    (1, 2),
                    (2, 0),
                    (2, 3),
                    (3, 4),
                    (4, 5),
                    (5, 4),
                    (6, 0),
                ],
            ),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let (scc_a, closure_a) = nuutila_closure(g);
            let scc_b = tarjan_scc(g);
            let cond = Condensation::new(g, &scc_b);
            let closure_b = closure_of_condensation(&cond);
            assert_eq!(scc_a.count(), scc_b.count(), "graph {i}");
            assert_eq!(rows_of(&closure_a), rows_of(&closure_b), "graph {i}");
        }
    }

    /// Pins the documented contract of `nuutila_closure`: it is a
    /// two-phase computation whose SCC decomposition is *exactly* the
    /// plain Tarjan decomposition (same component ids per vertex, same
    /// member tables), with the closure built in a separate sweep.
    #[test]
    fn nuutila_scc_is_plain_tarjan_decomposition() {
        let g = Digraph::from_edges(
            7,
            vec![
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 4),
                (6, 0),
            ],
        );
        let (scc_a, _) = nuutila_closure(&g);
        let scc_b = tarjan_scc(&g);
        for v in 0..7u32 {
            assert_eq!(scc_a.component_of(v), scc_b.component_of(v), "vertex {v}");
        }
        for s in 0..scc_b.count() as u32 {
            assert_eq!(scc_a.members(SccId(s)), scc_b.members(SccId(s)), "scc {s}");
        }
    }

    #[test]
    fn parallel_tc_naive_matches_sequential() {
        let graphs = [
            Digraph::from_edges(0, vec![]),
            Digraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]),
            Digraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]),
            Digraph::from_edges(130, (0..129).map(|v| (v, v + 1)).collect()),
            Digraph::from_edges(64, (0..64).map(|v| (v, (v + 1) % 64)).collect()),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let seq = tc_naive(g);
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    tc_naive_parallel(g, threads),
                    seq,
                    "graph {i}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_expansion_matches_sequential() {
        let graphs = [
            Digraph::from_edges(0, vec![]),
            Digraph::from_edges(5, vec![(0, 2), (0, 4), (1, 3), (2, 0), (3, 1)]),
            Digraph::from_edges(40, (0..39).map(|v| (v, v + 1)).collect()),
            Digraph::from_edges(
                6,
                vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (4, 5)],
            ),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let scc = tarjan_scc(g);
            let cond = Condensation::new(g, &scc);
            let closure = closure_of_condensation(&cond);
            let seq = expand_scc_closure(&scc, &closure, g.vertex_count());
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    expand_scc_closure_parallel(&scc, &closure, g.vertex_count(), threads),
                    seq,
                    "graph {i}, threads {threads}"
                );
                assert_eq!(
                    tc_condensation_parallel(g, threads),
                    tc_condensation(g),
                    "graph {i}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn self_loop_singleton_closure() {
        let g = Digraph::from_edges(2, vec![(0, 0), (0, 1)]);
        let (scc, closure) = nuutila_closure(&g);
        let s0 = scc.component_of(0);
        let s1 = scc.component_of(1);
        let mut expect = [s0.raw(), s1.raw()];
        expect.sort_unstable();
        assert_eq!(closure.row(s0.index()), &expect[..]);
        assert_eq!(closure.row(s1.index()), &[] as &[u32]);
    }

    #[test]
    fn expand_scc_closure_produces_cartesian_products() {
        // Cycle {0,1} reaching singleton {2}.
        let g = Digraph::from_edges(3, vec![(0, 1), (1, 0), (1, 2)]);
        let tc = tc_condensation(&g);
        assert_eq!(tc.row(0), &[0, 1, 2]);
        assert_eq!(tc.row(1), &[0, 1, 2]);
        assert_eq!(tc.row(2), &[] as &[u32]);
    }

    #[test]
    fn empty_graph_closures() {
        let g = Digraph::from_edges(0, vec![]);
        assert_eq!(tc_naive(&g).rows(), 0);
        assert_eq!(tc_condensation(&g).rows(), 0);
        let (scc, closure) = nuutila_closure(&g);
        assert_eq!(scc.count(), 0);
        assert_eq!(closure.rows(), 0);
    }

    #[test]
    fn bitset_closure_matches_list_closure() {
        let graphs = [
            Digraph::from_edges(5, vec![(0, 2), (0, 4), (1, 3), (2, 0), (3, 1)]),
            Digraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]),
            Digraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]),
            Digraph::from_edges(2, vec![(0, 0), (0, 1)]),
            Digraph::from_edges(1, vec![]),
            Digraph::from_edges(130, (0..129).map(|v| (v, v + 1)).collect()),
        ];
        for (i, g) in graphs.iter().enumerate() {
            let scc = tarjan_scc(g);
            let cond = Condensation::new(g, &scc);
            let lists = closure_of_condensation(&cond);
            let bits = closure_of_condensation_bitset(&cond);
            assert_eq!(bits.total_len(), lists.len(), "graph {i}: pair totals");
            for s in 0..cond.vertex_count() {
                let row = bits.row(s);
                assert!(row.is_dense() || row.is_empty(), "graph {i}, scc {s}: repr");
                assert_eq!(row.to_vec(), lists.row(s), "graph {i}, scc {s}");
            }
            // The adaptive and forced-sparse sweeps agree element-wise too.
            for policy in [RowSetPolicy::adaptive(), RowSetPolicy::sparse()] {
                let rows = closure_of_condensation_rows(&cond, &policy);
                assert_eq!(rows.total_len(), lists.len(), "graph {i}: {policy:?}");
                for s in 0..cond.vertex_count() {
                    assert_eq!(rows.row(s).to_vec(), lists.row(s), "graph {i}, scc {s}");
                }
            }
        }
    }

    #[test]
    fn closure_pair_counts_match_between_algorithms() {
        let g = Digraph::from_edges(
            8,
            vec![
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 3),
                (5, 6),
                (6, 7),
            ],
        );
        let naive: usize = tc_naive(&g).len();
        let purdom: usize = tc_condensation(&g).len();
        assert_eq!(naive, purdom);
    }
}
