//! Serializable views of the shared structures, for warm restarts.
//!
//! A served engine amortizes one RTC across a stream of queries; losing
//! that structure on restart means paying Tarjan plus the closure sweep
//! again before the first answer. This module exposes the *parts* of an
//! [`Rtc`] / [`FullTc`] as plain vectors so a persistence layer
//! (`rpq_core::snapshot`) can write them to disk and reassemble the
//! structure on load **without recomputing anything** — the same
//! renumber-and-reassemble path incremental maintenance already uses
//! internally.
//!
//! The parts carry no file format of their own: they are an in-memory
//! contract. [`RtcParts::assemble`] / [`FullTcParts::assemble`] re-validate
//! every structural invariant (table lengths, id ranges, row sortedness),
//! so a corrupted or hand-rolled byte stream can fail cleanly at assembly
//! instead of panicking deep inside evaluation.

use crate::full_tc::FullTc;
use crate::rtc::Rtc;
use rpq_graph::{RowSet, RowSetPolicy, RowTable, Scc, VertexId, VertexMapping};
use std::fmt;

/// Validates one closure row against universe `k`: sparse rows must be
/// strictly ascending and in range; dense rows are sorted and deduplicated
/// by construction, so only the range check applies.
fn check_row(row: &RowSet, k: usize, what: &str, i: usize) -> Result<(), PartsError> {
    match row {
        RowSet::Sparse(ids) => {
            if !ids.windows(2).all(|w| w[0] < w[1]) {
                return Err(PartsError::new(format!(
                    "{what} row {i} is not strictly ascending"
                )));
            }
            if let Some(&t) = ids.iter().find(|&&t| t as usize >= k) {
                return Err(PartsError::new(format!(
                    "{what} row {i} references id {t} out of range ({k})"
                )));
            }
        }
        RowSet::Dense(_) => {
            if let Some(t) = row.max().filter(|&t| t as usize >= k) {
                return Err(PartsError::new(format!(
                    "{what} row {i} references id {t} out of range ({k})"
                )));
            }
        }
    }
    Ok(())
}

/// A structural-invariant violation found while reassembling parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartsError(String);

impl PartsError {
    fn new(message: impl Into<String>) -> Self {
        PartsError(message.into())
    }
}

impl fmt::Display for PartsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid shared-structure parts: {}", self.0)
    }
}

impl std::error::Error for PartsError {}

/// The complete state of an [`Rtc`], as plain vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtcParts {
    /// Original-graph vertices of `V_R`, strictly ascending; compact id
    /// `i` maps to `originals[i]`.
    pub originals: Vec<u32>,
    /// SCC id of each compact vertex (`len == originals.len()`).
    pub component_of: Vec<u32>,
    /// Number of SCCs (`|V̄_R|`).
    pub scc_count: u32,
    /// Per-SCC closure rows over SCC ids — `TC(Ḡ_R)` exactly as
    /// [`Rtc::successors`] serves it, in either representation (sparse
    /// rows sorted ascending).
    pub closure_rows: Vec<RowSet>,
    /// `|E_R|` (= `|R_G|`), carried for [`crate::RtcStats`].
    pub er_edges: u64,
    /// `|Ē_R|`, carried for [`crate::RtcStats`].
    pub ebar_edges: u64,
}

impl RtcParts {
    /// Extracts the parts of an RTC (cheap copies of its tables).
    pub fn of(rtc: &Rtc) -> RtcParts {
        let (mapping, scc, closure, stats) = rtc.raw_parts();
        RtcParts {
            originals: mapping.originals().iter().map(|v| v.raw()).collect(),
            component_of: scc.component_table().to_vec(),
            scc_count: scc.count() as u32,
            closure_rows: closure.iter().cloned().collect(),
            er_edges: stats.er_edges as u64,
            ebar_edges: stats.ebar_edges as u64,
        }
    }

    /// Reassembles the RTC, validating every structural invariant.
    pub fn assemble(self) -> Result<Rtc, PartsError> {
        let n = self.originals.len();
        let k = self.scc_count as usize;
        if !self.originals.windows(2).all(|w| w[0] < w[1]) {
            return Err(PartsError::new(
                "original vertices must be strictly ascending",
            ));
        }
        if self.component_of.len() != n {
            return Err(PartsError::new(format!(
                "component table has {} entries for {n} vertices",
                self.component_of.len()
            )));
        }
        if let Some(&c) = self.component_of.iter().find(|&&c| c as usize >= k) {
            return Err(PartsError::new(format!(
                "component id {c} out of range (scc_count = {k})"
            )));
        }
        let mut seen = vec![false; k];
        for &c in &self.component_of {
            seen[c as usize] = true;
        }
        if let Some(s) = seen.iter().position(|&s| !s) {
            return Err(PartsError::new(format!("SCC {s} has no members")));
        }
        if self.closure_rows.len() != k {
            return Err(PartsError::new(format!(
                "{} closure rows for {k} SCCs",
                self.closure_rows.len()
            )));
        }
        for (s, row) in self.closure_rows.iter().enumerate() {
            check_row(row, k, "closure", s)?;
        }
        let mapping =
            VertexMapping::from_sorted_vertices(self.originals.into_iter().map(VertexId).collect());
        let scc = Scc::from_component_table(self.component_of, k);
        let closure = RowTable::from_rows(self.closure_rows, k as u32);
        Ok(Rtc::from_parts(
            mapping,
            scc,
            closure,
            self.er_edges as usize,
            self.ebar_edges as usize,
            RowSetPolicy::default(),
        ))
    }
}

/// The complete state of a [`FullTc`], as plain vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullTcParts {
    /// Original-graph vertices of `V_R`, strictly ascending.
    pub originals: Vec<u32>,
    /// Per-compact-vertex reachability rows over compact ids
    /// (`len == originals.len()`), in either representation (sparse rows
    /// sorted ascending).
    pub rows: Vec<RowSet>,
}

impl FullTcParts {
    /// Extracts the parts of a full closure.
    pub fn of(full: &FullTc) -> FullTcParts {
        let (mapping, rows) = full.raw_parts();
        FullTcParts {
            originals: mapping.originals().iter().map(|v| v.raw()).collect(),
            rows: rows.iter().cloned().collect(),
        }
    }

    /// Reassembles the full closure, validating the invariants.
    pub fn assemble(self) -> Result<FullTc, PartsError> {
        let n = self.originals.len();
        if !self.originals.windows(2).all(|w| w[0] < w[1]) {
            return Err(PartsError::new(
                "original vertices must be strictly ascending",
            ));
        }
        if self.rows.len() != n {
            return Err(PartsError::new(format!(
                "{} reachability rows for {n} vertices",
                self.rows.len()
            )));
        }
        for (v, row) in self.rows.iter().enumerate() {
            check_row(row, n, "reachability", v)?;
        }
        let mapping =
            VertexMapping::from_sorted_vertices(self.originals.into_iter().map(VertexId).collect());
        Ok(FullTc::from_raw_parts(
            mapping,
            RowTable::from_rows(self.rows, n as u32),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::PairSet;

    fn bc_pairs() -> PairSet {
        [(2u32, 4u32), (2, 6), (3, 5), (4, 2), (5, 3)]
            .into_iter()
            .collect()
    }

    #[test]
    fn rtc_parts_roundtrip() {
        let rtc = Rtc::from_pairs(&bc_pairs());
        let back = RtcParts::of(&rtc).assemble().unwrap();
        assert_eq!(back.stats(), rtc.stats());
        assert_eq!(back.expand(), rtc.expand());
        // Lookups behave identically, not just the expansion.
        for v in 0..8u32 {
            assert_eq!(
                back.scc_of_original(VertexId(v)),
                rtc.scc_of_original(VertexId(v)),
                "scc_of v{v}"
            );
        }
    }

    #[test]
    fn empty_rtc_roundtrips() {
        let rtc = Rtc::from_pairs(&PairSet::new());
        let back = RtcParts::of(&rtc).assemble().unwrap();
        assert_eq!(back.scc_count(), 0);
        assert!(back.expand().is_empty());
    }

    #[test]
    fn full_tc_parts_roundtrip() {
        let full = FullTc::from_pairs(&bc_pairs());
        let back = FullTcParts::of(&full).assemble().unwrap();
        assert_eq!(back.pair_count(), full.pair_count());
        assert_eq!(back.expand(), full.expand());
    }

    #[test]
    fn rtc_assembly_rejects_corruption() {
        let rtc = Rtc::from_pairs(&bc_pairs());
        let good = RtcParts::of(&rtc);

        let mut p = good.clone();
        p.component_of[0] = 99;
        assert!(p
            .assemble()
            .unwrap_err()
            .to_string()
            .contains("out of range"));

        let mut p = good.clone();
        p.component_of.pop();
        assert!(p.assemble().is_err());

        let mut p = good.clone();
        p.closure_rows.pop();
        assert!(p.assemble().is_err());

        let mut p = good.clone();
        p.closure_rows[0] = RowSet::Sparse(vec![1, 0]); // break sortedness
        assert!(p.assemble().is_err());

        let mut p = good.clone();
        p.closure_rows[0] = RowSet::dense_from_iter(64, [40u32]); // SCC 40 ∉ [0,k)
        assert!(p
            .assemble()
            .unwrap_err()
            .to_string()
            .contains("out of range"));

        let mut p = good.clone();
        p.originals.reverse();
        assert!(p.assemble().is_err());

        // An SCC id with no member vertex.
        let mut p = good;
        p.scc_count += 1;
        p.closure_rows.push(RowSet::empty());
        assert!(p.assemble().unwrap_err().to_string().contains("no members"));
    }

    #[test]
    fn dense_rtc_parts_roundtrip() {
        let rtc = Rtc::from_pairs_with(&bc_pairs(), &rpq_graph::RowSetPolicy::dense());
        let parts = RtcParts::of(&rtc);
        assert!(parts.closure_rows.iter().any(|r| r.is_dense()));
        let back = parts.assemble().unwrap();
        assert_eq!(back.stats(), rtc.stats());
        assert_eq!(back.expand(), rtc.expand());
    }

    #[test]
    fn full_assembly_rejects_corruption() {
        let full = FullTc::from_pairs(&bc_pairs());
        let good = FullTcParts::of(&full);

        let mut p = good.clone();
        p.rows.pop();
        assert!(p.assemble().is_err());

        let mut p = good.clone();
        p.rows[0] = RowSet::Sparse(vec![250]);
        assert!(p
            .assemble()
            .unwrap_err()
            .to_string()
            .contains("out of range"));

        let mut p = good;
        p.originals[0] = 200; // breaks ascending order (first was smallest)
        assert!(p.assemble().is_err());
    }
}
