//! Edge-level graph reduction `G → G_R` (Section III-A).
//!
//! `G_R` maps all paths satisfying `R` between a vertex pair to **one**
//! unlabeled edge: its edge set *is* `R_G`. Three things fall out of the
//! definition, all load-bearing for the rest of the pipeline:
//!
//! * vertices and edges of `G` not on any `R`-path disappear
//!   (`V_R ⊆ V`, usually much smaller);
//! * labels disappear (every edge "is" `R` now);
//! * the multigraph becomes a simple graph (parallel `R`-paths collapse).

use rpq_eval::ProductEvaluator;
use rpq_graph::{LabeledMultigraph, MappedDigraph, PairSet};
use rpq_regex::Regex;

/// Builds `G_R` from an already-evaluated `R_G`.
///
/// This is the entry point Algorithm 1 uses: line 10 computes
/// `R_G = RTCSharing(R)` recursively, then the reduction is a pure
/// restructuring of those pairs.
pub fn reduce_edge_level(r_g: &PairSet) -> MappedDigraph {
    MappedDigraph::from_pairset(r_g)
}

/// Convenience: evaluates `R` on `G` with the product evaluator and reduces.
pub fn reduce_for(graph: &LabeledMultigraph, r: &Regex) -> MappedDigraph {
    let r_g = ProductEvaluator::new(graph, r).evaluate();
    reduce_edge_level(&r_g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::fixtures::paper_graph;
    use rpq_graph::VertexId;

    #[test]
    fn example3_edge_level_reduction() {
        // Fig. 5: G reduced at the edge level for b·c.
        let g = paper_graph();
        let gr = reduce_for(&g, &Regex::parse("b.c").unwrap());
        // V_{b·c} = {v2, v3, v4, v5, v6}.
        assert_eq!(gr.vertex_count(), 5);
        assert_eq!(
            gr.mapping.originals(),
            &[
                VertexId(2),
                VertexId(3),
                VertexId(4),
                VertexId(5),
                VertexId(6)
            ]
        );
        // E_{b·c} = {(2,4), (2,6), (3,5), (4,2), (5,3)}.
        let mut edges: Vec<(u32, u32)> = gr
            .original_edges()
            .map(|(s, d)| (s.raw(), d.raw()))
            .collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)]);
    }

    #[test]
    fn vertices_off_r_paths_are_excluded() {
        let g = paper_graph();
        let gr = reduce_for(&g, &Regex::parse("b.c").unwrap());
        // v0, v1, v7, v8, v9 are not on any b·c path.
        for v in [0u32, 1, 7, 8, 9] {
            assert_eq!(
                gr.mapping.compact(VertexId(v)),
                None,
                "v{v} must be excluded"
            );
        }
    }

    #[test]
    fn parallel_paths_collapse_to_one_edge() {
        // Both b- and c-labeled edges run v5→v6; for query `b|c` the pair
        // (5,6) must appear exactly once in G_{b|c}.
        let g = paper_graph();
        let gr = reduce_for(&g, &Regex::parse("b|c").unwrap());
        let count = gr
            .original_edges()
            .filter(|&(s, d)| s == VertexId(5) && d == VertexId(6))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn reduction_of_empty_result() {
        let g = paper_graph();
        let gr = reduce_for(&g, &Regex::parse("zz").unwrap());
        assert_eq!(gr.vertex_count(), 0);
        assert_eq!(gr.edge_count(), 0);
    }

    #[test]
    fn reduce_edge_level_matches_reduce_for() {
        let g = paper_graph();
        let r = Regex::parse("b.c").unwrap();
        let r_g = ProductEvaluator::new(&g, &r).evaluate();
        let a = reduce_edge_level(&r_g);
        let b = reduce_for(&g, &r);
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
