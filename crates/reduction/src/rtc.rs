//! The reduced transitive closure (RTC) — Section III-C.
//!
//! The RTC is `TC(Ḡ_R)` together with the SCC membership table: the
//! lightweight structure RTCSharing shares among batch units instead of the
//! heavyweight `R⁺_G`. TABLE III's comparison:
//!
//! | | `R⁺_G` (FullSharing) | `R̄⁺_G` (this struct) |
//! |---|---|---|
//! | computational | `O(\|V_R\|·\|E_R\|)` | `O(\|V̄_R\|·\|Ē_R\|)` |
//! | space | `O(\|V_R\|²)` | `O(\|V̄_R\|²)` |
//!
//! with `|V̄_R| ≪ |V_R|` whenever SCCs are nontrivial. [`Rtc::expand`]
//! implements Theorem 1's enumeration
//! `R⁺_G = ⋃ {s_k × s_l | (s̄_k, s̄_l) ∈ TC(Ḡ_R)}`.

use crate::tc::closure_of_condensation_rows;
use rpq_graph::{
    par, tarjan_scc, Condensation, MappedDigraph, PairSet, RowSet, RowSetPolicy, RowTable, Scc,
    SccId, VertexId, VertexMapping,
};
use std::sync::Arc;

/// Size/shape statistics of an RTC, reported by the experiment harness
/// (Figs. 12 and 13 compare `closure_pairs` and `scc_count` against the
/// FullSharing equivalents).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RtcStats {
    /// `|V_R|` — vertices of the edge-level reduced graph.
    pub vr_vertices: usize,
    /// `|E_R|` — edges of the edge-level reduced graph (= `|R_G|`).
    pub er_edges: usize,
    /// `|V̄_R|` — SCC count after vertex-level reduction.
    pub scc_count: usize,
    /// `|Ē_R|` — condensation edges including self-loops.
    pub ebar_edges: usize,
    /// `|TC(Ḡ_R)|` — pairs in the reduced transitive closure (the shared
    /// data size of RTCSharing in Fig. 12).
    pub closure_pairs: usize,
}

/// The reduced transitive closure of some `R` on some graph.
#[derive(Clone, Debug)]
pub struct Rtc {
    mapping: VertexMapping,
    scc: Scc,
    /// Per-SCC closure rows over SCC ids (hybrid sparse/dense).
    closure: RowTable,
    /// Representation policy used for closure rows and expansion rows.
    policy: RowSetPolicy,
    stats: RtcStats,
}

impl Rtc {
    /// Computes the RTC from an evaluated `R_G` (Algorithm 1 line 11,
    /// `Compute_RTC`): edge-level reduction, Tarjan SCCs, condensation, and
    /// the reverse-topological closure sweep.
    pub fn from_pairs(r_g: &PairSet) -> Rtc {
        Self::from_reduced(reduceable(r_g))
    }

    /// [`Rtc::from_pairs`] with an explicit row-representation policy.
    pub fn from_pairs_with(r_g: &PairSet, policy: &RowSetPolicy) -> Rtc {
        Self::from_reduced_with(reduceable(r_g), policy)
    }

    /// Computes the RTC from an already-built `G_R`.
    pub fn from_reduced(gr: MappedDigraph) -> Rtc {
        Self::from_reduced_with(gr, &RowSetPolicy::default())
    }

    /// [`Rtc::from_reduced`] with an explicit row-representation policy.
    pub fn from_reduced_with(gr: MappedDigraph, policy: &RowSetPolicy) -> Rtc {
        let scc = tarjan_scc(&gr.graph);
        let cond = Condensation::new(&gr.graph, &scc);
        let closure = closure_of_condensation_rows(&cond, policy);
        let stats = RtcStats {
            vr_vertices: gr.graph.vertex_count(),
            er_edges: gr.graph.edge_count(),
            scc_count: scc.count(),
            ebar_edges: cond.edge_count(),
            closure_pairs: closure.total_len(),
        };
        Rtc {
            mapping: gr.mapping,
            scc,
            closure,
            policy: *policy,
            stats,
        }
    }

    /// Assembles an RTC from pre-computed parts — the snapshot path of
    /// incremental maintenance ([`crate::incremental::DynamicRtc`]), which
    /// renumbers SCCs itself and must not pay for a Tarjan + closure
    /// recompute. `closure` rows must be sorted ascending and indexed by
    /// the same SCC ids as `scc` (no topological-order requirement —
    /// nothing downstream of construction relies on one).
    pub(crate) fn from_parts(
        mapping: VertexMapping,
        scc: Scc,
        closure: RowTable,
        er_edges: usize,
        ebar_edges: usize,
        policy: RowSetPolicy,
    ) -> Rtc {
        let stats = RtcStats {
            vr_vertices: mapping.len(),
            er_edges,
            scc_count: scc.count(),
            ebar_edges,
            closure_pairs: closure.total_len(),
        };
        Rtc {
            mapping,
            scc,
            closure,
            policy,
            stats,
        }
    }

    /// Borrows the internal tables for serialization
    /// ([`crate::snapshot::RtcParts`]).
    pub(crate) fn raw_parts(&self) -> (&VertexMapping, &Scc, &RowTable, &RtcStats) {
        (&self.mapping, &self.scc, &self.closure, &self.stats)
    }

    /// The row-representation policy this RTC was built with.
    pub fn policy(&self) -> &RowSetPolicy {
        &self.policy
    }

    /// Heap bytes held by the closure rows (`TC(Ḡ_R)`) — the shared-data
    /// memory of RTCSharing, comparable against [`crate::FullTc::heap_bytes`].
    pub fn closure_heap_bytes(&self) -> usize {
        self.closure.heap_bytes()
    }

    /// Number of closure rows currently stored as dense bitsets.
    pub fn dense_closure_rows(&self) -> usize {
        self.closure.dense_rows()
    }

    /// Size statistics.
    pub fn stats(&self) -> &RtcStats {
        &self.stats
    }

    /// Number of SCCs (`|V̄_R|`).
    pub fn scc_count(&self) -> usize {
        self.scc.count()
    }

    /// Number of pairs in `TC(Ḡ_R)` — the shared-data size of RTCSharing.
    pub fn closure_pair_count(&self) -> usize {
        self.stats.closure_pairs
    }

    /// Average number of vertices per SCC (1.00 means vertex-level
    /// reduction bought nothing — the Yago2s regime).
    pub fn average_scc_size(&self) -> f64 {
        self.scc.average_size()
    }

    /// The SCC containing original vertex `v`, or `None` if `v ∉ V_R`.
    ///
    /// The `None` case is what makes *useless-1* elimination automatic in
    /// Algorithm 2: `Pre_G` tuples whose end vertex is off every `R`-path
    /// simply fail this join.
    #[inline]
    pub fn scc_of_original(&self, v: VertexId) -> Option<SccId> {
        self.mapping.compact(v).map(|c| self.scc.component_of(c))
    }

    /// SCC ids reachable from `s` via ≥ 1 step of `Ḡ_R`. Iteration is
    /// ascending regardless of the row's representation. Contains `s`
    /// itself iff the SCC has an internal cycle/self-loop.
    #[inline]
    pub fn successors(&self, s: SccId) -> &RowSet {
        self.closure.row(s.index())
    }

    /// Original-graph vertices belonging to SCC `s`, ascending.
    pub fn members_original(&self, s: SccId) -> impl Iterator<Item = VertexId> + '_ {
        self.scc
            .members(s)
            .iter()
            .map(move |&c| self.mapping.original(c))
    }

    /// Number of vertices in SCC `s`.
    pub fn scc_size(&self, s: SccId) -> usize {
        self.scc.size(s)
    }

    /// Materializes `R⁺_G` per Theorem 1:
    /// `{(v_i, v_j) | (s̄_k, s̄_l) ∈ TC(Ḡ_R) ∧ (v_i, v_j) ∈ s_k × s_l}`.
    ///
    /// The result is a grouped [`PairSet`]: the target row of each source
    /// SCC is gathered once and *shared* (`Arc`) among every member of the
    /// SCC, so expansion costs `O(|V̄_R|·row)` materialized memory instead
    /// of `O(|R⁺_G|)` — Theorem 1's `s_k × s_l` without the product.
    pub fn expand(&self) -> PairSet {
        PairSet::from_grouped_rows(self.expand_groups_range(0..self.scc.count()))
    }

    /// Parallel [`Rtc::expand`]: the per-SCC target rows are sharded over
    /// `threads` scoped workers (0 = all cores) and the shard outputs
    /// merged into the same grouped spine. Output is identical to
    /// [`Rtc::expand`] (property-tested).
    pub fn expand_parallel(&self, threads: usize) -> PairSet {
        let k = self.scc.count();
        let threads = par::effective_threads(threads);
        if threads <= 1 || k == 0 {
            return self.expand();
        }
        let chunk = par::balanced_chunk(k, threads, 4, 512);
        let mut shards =
            par::par_map_chunks(threads, k, chunk, |range| self.expand_groups_range(range));
        let mut groups = Vec::with_capacity(shards.iter().map(Vec::len).sum());
        for shard in &mut shards {
            groups.append(shard);
        }
        PairSet::from_grouped_rows(groups)
    }

    /// Theorem 1's enumeration restricted to source SCCs in `sccs`, as
    /// (source vertex, shared target row) groups — the shard unit of both
    /// expansion paths. Each SCC's target row is built once and Arc-cloned
    /// per member vertex.
    fn expand_groups_range(&self, sccs: std::ops::Range<usize>) -> Vec<(VertexId, Arc<RowSet>)> {
        let mut groups: Vec<(VertexId, Arc<RowSet>)> = Vec::new();
        for s in sccs {
            let succ = self.closure.row(s);
            if succ.is_empty() {
                continue;
            }
            // Gather target vertices once per source SCC.
            let mut targets: Vec<u32> = Vec::new();
            for t in succ.iter() {
                targets.extend(self.members_original(SccId(t)).map(|v| v.raw()));
            }
            targets.sort_unstable();
            let mut row = RowSet::from_sorted_vec(targets);
            row.normalize(0, &self.policy);
            let row = Arc::new(row);
            for &m in self.scc.members(SccId(s as u32)) {
                groups.push((self.mapping.original(m), Arc::clone(&row)));
            }
        }
        groups
    }

    /// The number of pairs [`Rtc::expand`] would produce, computed without
    /// materializing them (used by the size experiments).
    pub fn expanded_pair_count(&self) -> usize {
        let sizes: Vec<usize> = (0..self.scc.count())
            .map(|s| self.scc.size(SccId(s as u32)))
            .collect();
        let mut total = 0usize;
        for s in 0..self.scc.count() {
            let succ_total: usize = self.closure.row(s).iter().map(|t| sizes[t as usize]).sum();
            total += sizes[s] * succ_total;
        }
        total
    }
}

fn reduceable(r_g: &PairSet) -> MappedDigraph {
    MappedDigraph::from_pairset(r_g)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `b·c` fixture: R_G = {(2,4),(2,6),(3,5),(4,2),(5,3)}.
    fn bc_rtc() -> Rtc {
        let r_g: PairSet = [(2u32, 4u32), (2, 6), (3, 5), (4, 2), (5, 3)]
            .into_iter()
            .collect();
        Rtc::from_pairs(&r_g)
    }

    #[test]
    fn example5_structure() {
        let rtc = bc_rtc();
        assert_eq!(rtc.scc_count(), 3);
        assert_eq!(rtc.stats().vr_vertices, 5);
        assert_eq!(rtc.stats().er_edges, 5);
        assert_eq!(rtc.stats().ebar_edges, 3); // 2 loops + 1 cross edge
    }

    #[test]
    fn example6_closure_pairs() {
        // TC(Ḡ_{b·c}) = {(s̄{2,4},s̄{2,4}), (s̄{2,4},s̄{6}), (s̄{3,5},s̄{3,5})}.
        let rtc = bc_rtc();
        assert_eq!(rtc.closure_pair_count(), 3);
    }

    #[test]
    fn example6_expansion_is_bc_plus() {
        let rtc = bc_rtc();
        let expanded: Vec<(u32, u32)> = rtc
            .expand()
            .iter()
            .map(|(a, b)| (a.raw(), b.raw()))
            .collect();
        assert_eq!(
            expanded,
            vec![
                (2, 2),
                (2, 4),
                (2, 6),
                (3, 3),
                (3, 5),
                (4, 2),
                (4, 4),
                (4, 6),
                (5, 3),
                (5, 5)
            ]
        );
    }

    #[test]
    fn expanded_pair_count_matches_expand() {
        let rtc = bc_rtc();
        assert_eq!(rtc.expanded_pair_count(), rtc.expand().len());
    }

    #[test]
    fn expand_parallel_matches_sequential() {
        // The b·c fixture plus a larger two-cycle/bridge shape.
        let fixtures: [Vec<(u32, u32)>; 3] = [
            vec![(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)],
            (0..40u32).map(|v| (v, (v + 1) % 40)).collect(),
            vec![
                (10, 20),
                (20, 10),
                (20, 30),
                (30, 40),
                (40, 50),
                (50, 30),
                (60, 60),
            ],
        ];
        for (i, edges) in fixtures.iter().enumerate() {
            let r_g: PairSet = edges.iter().copied().collect();
            let rtc = Rtc::from_pairs(&r_g);
            let seq = rtc.expand();
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    rtc.expand_parallel(threads),
                    seq,
                    "fixture {i}, threads {threads}"
                );
            }
        }
        // Empty RTC through the parallel path.
        let empty = Rtc::from_pairs(&PairSet::new());
        assert!(empty.expand_parallel(8).is_empty());
    }

    #[test]
    fn scc_of_original_vertex_lookup() {
        let rtc = bc_rtc();
        // v2 and v4 share an SCC; v6 is a singleton; v0 is not in V_R.
        let s2 = rtc.scc_of_original(VertexId(2)).unwrap();
        let s4 = rtc.scc_of_original(VertexId(4)).unwrap();
        assert_eq!(s2, s4);
        assert_eq!(rtc.scc_size(s2), 2);
        let s6 = rtc.scc_of_original(VertexId(6)).unwrap();
        assert_eq!(rtc.scc_size(s6), 1);
        assert_eq!(rtc.scc_of_original(VertexId(0)), None);
        assert_eq!(rtc.scc_of_original(VertexId(9)), None);
    }

    #[test]
    fn members_round_trip() {
        let rtc = bc_rtc();
        let s = rtc.scc_of_original(VertexId(3)).unwrap();
        let members: Vec<u32> = rtc.members_original(s).map(|v| v.raw()).collect();
        assert_eq!(members, vec![3, 5]);
    }

    #[test]
    fn successors_respect_self_loop_rule() {
        let rtc = bc_rtc();
        let s24 = rtc.scc_of_original(VertexId(2)).unwrap();
        let s6 = rtc.scc_of_original(VertexId(6)).unwrap();
        let s35 = rtc.scc_of_original(VertexId(3)).unwrap();
        // s{2,4} reaches itself (cycle) and s{6}.
        assert!(rtc.successors(s24).contains(s24.raw()));
        assert!(rtc.successors(s24).contains(s6.raw()));
        // s{6} reaches nothing.
        assert!(rtc.successors(s6).is_empty());
        // s{3,5} reaches only itself.
        assert_eq!(rtc.successors(s35).to_vec(), vec![s35.raw()]);
    }

    #[test]
    fn expand_is_grouped_and_policies_agree() {
        let r_g: PairSet = [(2u32, 4u32), (2, 6), (3, 5), (4, 2), (5, 3)]
            .into_iter()
            .collect();
        let adaptive = Rtc::from_pairs(&r_g);
        let dense = Rtc::from_pairs_with(&r_g, &RowSetPolicy::dense());
        let sparse = Rtc::from_pairs_with(&r_g, &RowSetPolicy::sparse());
        assert!(adaptive.expand().is_grouped());
        assert_eq!(dense.expand(), sparse.expand());
        assert_eq!(adaptive.expand(), dense.expand());
        assert!(dense.dense_closure_rows() > 0);
        assert_eq!(sparse.dense_closure_rows(), 0);
        assert!(sparse.closure_heap_bytes() > 0);
    }

    #[test]
    fn empty_rtc() {
        let rtc = Rtc::from_pairs(&PairSet::new());
        assert_eq!(rtc.scc_count(), 0);
        assert_eq!(rtc.closure_pair_count(), 0);
        assert!(rtc.expand().is_empty());
        assert_eq!(rtc.expanded_pair_count(), 0);
    }

    #[test]
    fn dag_rtc_has_no_self_pairs() {
        let r_g: PairSet = [(0u32, 1u32), (1, 2)].into_iter().collect();
        let rtc = Rtc::from_pairs(&r_g);
        assert_eq!(rtc.scc_count(), 3);
        assert_eq!(rtc.average_scc_size(), 1.0);
        let expanded = rtc.expand();
        for (a, b) in expanded.iter() {
            assert_ne!(a, b, "DAG must not produce (v,v) pairs");
        }
        assert_eq!(expanded.len(), 3); // (0,1),(0,2),(1,2)
    }

    #[test]
    fn lemma1_expand_equals_naive_tc_of_gr() {
        // Random-ish fixture: two cycles and a bridge over sparse ids.
        let r_g: PairSet = [
            (10u32, 20u32),
            (20, 10),
            (20, 30),
            (30, 40),
            (40, 50),
            (50, 30),
            (60, 60),
        ]
        .into_iter()
        .collect();
        let rtc = Rtc::from_pairs(&r_g);
        // Naive TC over the same pairs via the algebraic oracle.
        let tc = rpq_eval::algebraic::plus_closure(&r_g);
        assert_eq!(rtc.expand(), tc);
    }
}
