#![warn(missing_docs)]
//! RPQ-based graph reduction and the reduced transitive closure (RTC).
//!
//! Section III of the paper, implemented end to end:
//!
//! * [`edge_level`] — `G → G_R`: map every pair of `R_G` to one unlabeled
//!   edge (Section III-A). By **Lemma 1**, `R⁺_G = TC(G_R)`.
//! * [`tc`] — transitive-closure algorithms on unlabeled digraphs: the
//!   naive per-vertex BFS (`O(|V_R|·|E_R|)`, what FullSharing must pay,
//!   with a scoped-thread parallel variant), the Purdom-style condensation
//!   closure, and a Nuutila-inspired variant that skips materializing the
//!   condensation (refs \[12\], \[13\]).
//! * [`rtc`] — the [`Rtc`] structure: `TC(Ḡ_R)` plus SCC membership. By
//!   **Lemma 3 / Theorem 1**,
//!   `R⁺_G = ⋃ { s_k × s_l | (s̄_k, s̄_l) ∈ TC(Ḡ_R) }`, which
//!   [`Rtc::expand`] materializes and Algorithm 2 consumes incrementally.
//! * [`full_tc`] — the materialized `R⁺_G` grouped by source vertex: the
//!   heavyweight structure FullSharing \[8\] shares between queries, kept
//!   here as the baseline's data plane.
//!
//! ```
//! use rpq_graph::PairSet;
//! use rpq_reduction::{FullTc, Rtc};
//!
//! // R_G for b·c on the paper's Fig. 1 graph (Example 3).
//! let r_g: PairSet = [(2u32, 4u32), (2, 6), (3, 5), (4, 2), (5, 3)]
//!     .into_iter()
//!     .collect();
//! let rtc = Rtc::from_pairs(&r_g);
//! assert_eq!(rtc.scc_count(), 3);          // Example 5
//! assert_eq!(rtc.closure_pair_count(), 3); // Example 6: |TC(Ḡ)| = 3
//! // Theorem 1: the expansion is the full R⁺_G (10 pairs, Example 4).
//! assert_eq!(rtc.expand().len(), 10);
//! assert_eq!(rtc.expand(), FullTc::from_pairs(&r_g).expand());
//! ```

pub mod edge_level;
pub mod full_tc;
pub mod incremental;
pub mod rtc;
pub mod snapshot;
pub mod tc;

pub use edge_level::{reduce_edge_level, reduce_for};
pub use full_tc::FullTc;
pub use incremental::{
    DynamicRtc, MaintenanceConfig, MaintenanceOutcome, MaintenanceStats, RebuildReason,
};
pub use rtc::{Rtc, RtcStats};
pub use snapshot::{FullTcParts, PartsError, RtcParts};
pub use tc::{
    closure_of_condensation, closure_of_condensation_bitset, expand_scc_closure,
    expand_scc_closure_parallel, nuutila_closure, tc_condensation, tc_condensation_parallel,
    tc_naive, tc_naive_parallel,
};
