//! Incremental RTC maintenance for dynamic graphs.
//!
//! The static pipeline recomputes an [`Rtc`] from scratch — Tarjan over
//! `G_R`, then the reverse-topological closure sweep — whenever `R_G`
//! changes. For a serving engine absorbing edge churn that is the wrong
//! cost model: a delta touching a handful of pairs should cost work
//! proportional to the *damaged region* of the condensation, not
//! `O(|V̄_R|·|Ē_R|)`.
//!
//! [`DynamicRtc`] is the maintainable form of the RTC: the reduced graph
//! `G_R`, its SCC decomposition, the condensation adjacency (with
//! member-edge multiplicities, so cross-SCC edges survive partial
//! deletions) and the per-SCC closure rows, all in hash-indexed form keyed
//! by a *representative* vertex (the minimum original member id — stable
//! under renumber-free merges and splits). The update rules:
//!
//! * **pair insertion** `(u, v)` — if it closes a cycle (the target's SCC
//!   already reaches the source's), every SCC on a `v→…→u` condensation
//!   path merges into one and the merged row is rewritten into the
//!   ancestors found by a *backward sweep from the merge point*; otherwise
//!   the target's descendant set is propagated backward from the source's
//!   SCC, pruning the sweep wherever a row already absorbs it;
//! * **pair deletion** `(u, v)` — cross-SCC deletions decrement the
//!   member-edge count and, when the condensation edge disappears,
//!   recompute exactly the rows of the source SCC and its condensation
//!   ancestors; intra-SCC deletions re-run Tarjan *on the SCC's members
//!   only* and, if the SCC splits, rebuild the incident condensation
//!   edges and the ancestor rows;
//! * **damage threshold** — a delta whose effective operation count
//!   exceeds [`MaintenanceConfig::damage_threshold`] (as a fraction of
//!   the current `|E_R|`) rebuilds the whole structure from scratch
//!   instead: one shared closure sweep beats repeating per-operation
//!   propagation across most of the condensation. [`MaintenanceOutcome`]
//!   reports which path was taken.
//!
//! [`DynamicRtc::snapshot`] converts back to the engine-facing [`Rtc`]
//! without re-running Tarjan or the closure sweep; equivalence with
//! rebuild-from-scratch is pinned by the module tests here and
//! property-tested end-to-end in `tests/dynamic_equivalence.rs`.

use crate::rtc::Rtc;
use rpq_graph::{
    tarjan_scc, Digraph, PairSet, RowSet, RowSetPolicy, RowTable, Scc, SccId, VertexId,
    VertexMapping,
};
use rustc_hash::{FxHashMap, FxHashSet};

/// Tuning knobs for incremental maintenance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaintenanceConfig {
    /// Fraction of the current relation (`|E_R|`) a delta may touch —
    /// counting only effective operations, after no-ops and
    /// delete-then-reinsert round trips cancel — before maintenance falls
    /// back to a full rebuild. `0.0` rebuilds on any change; values
    /// `≥ 1.0` make large batches rebuild only when they outsize the
    /// relation itself. The incremental path's cost already adapts to the
    /// damaged region (batched re-split, one ancestor sweep), so this
    /// guards against the pathological regime where per-insert merge
    /// propagation repeats ancestor rewrites a single rebuild sweep would
    /// share.
    pub damage_threshold: f64,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        Self {
            damage_threshold: 0.25,
        }
    }
}

/// Which maintenance path [`DynamicRtc::apply`] took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintenanceOutcome {
    /// Every operation was a no-op (inserting present pairs, deleting
    /// absent ones); nothing changed.
    Unchanged,
    /// The delta was absorbed incrementally.
    Incremental(MaintenanceStats),
    /// The structure was rebuilt from scratch.
    Rebuilt(RebuildReason),
}

/// Work counters of an incremental application.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Pairs actually inserted into `G_R`.
    pub pairs_inserted: usize,
    /// Pairs actually deleted from `G_R`.
    pub pairs_deleted: usize,
    /// SCCs collapsed by cycle-closing insertions.
    pub sccs_merged: usize,
    /// Sub-SCCs produced by cycle-breaking deletions.
    pub sccs_split: usize,
    /// Closure rows written (the cost proxy: rebuild writes all of them).
    pub rows_touched: usize,
}

/// Why [`DynamicRtc::apply`] rebuilt instead of maintaining.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildReason {
    /// The delta's ancestor region exceeded
    /// [`MaintenanceConfig::damage_threshold`] of all SCCs.
    DamageThresholdExceeded,
}

/// A maintainable reduced transitive closure (see the module docs).
///
/// All vertex ids are *original-graph* ids; SCCs are keyed by their
/// minimum member id. The structure is `Send + Sync` and cheap to `Clone`
/// relative to recomputation (hash tables, no recompute).
#[derive(Clone, Debug, Default)]
pub struct DynamicRtc {
    /// `G_R` adjacency over original vertex ids.
    out: FxHashMap<u32, FxHashSet<u32>>,
    inn: FxHashMap<u32, FxHashSet<u32>>,
    /// Vertex → SCC representative (minimum member id).
    comp: FxHashMap<u32, u32>,
    /// Representative → sorted members.
    members: FxHashMap<u32, Vec<u32>>,
    /// Condensation adjacency with member-edge multiplicities:
    /// `scc_out[a][b]` = number of `G_R` edges from SCC `a` into SCC `b`.
    scc_out: FxHashMap<u32, FxHashMap<u32, u32>>,
    scc_in: FxHashMap<u32, FxHashMap<u32, u32>>,
    /// Representatives of SCCs with an internal ≥1-length cycle.
    cyclic: FxHashSet<u32>,
    /// Representative → SCC reps reachable via ≥1 condensation step
    /// (contains the rep itself iff cyclic). Rows are [`RowSet`]s over the
    /// *rep-id* space — sparse in practice (rep ids are arbitrary original
    /// vertex ids, so a bitset universe would span the whole id range),
    /// but every repair below goes through the set-algebra API, so a dense
    /// row arriving via churn still word-masks.
    closure: FxHashMap<u32, RowSet>,
    edge_count: usize,
}

impl DynamicRtc {
    /// Builds the maintainable form from an evaluated `R_G` (full
    /// compute: Tarjan + closure, like [`Rtc::from_pairs`]).
    pub fn from_pairs(r_g: &PairSet) -> DynamicRtc {
        Self::from_rtc(&Rtc::from_pairs(r_g), r_g)
    }

    /// Converts an already-computed [`Rtc`] (plus the `R_G` it was built
    /// from) into maintainable form **without** recomputing SCCs or the
    /// closure — a linear re-indexing pass. This is how a cache upgrades a
    /// static entry the first time a delta arrives.
    pub fn from_rtc(rtc: &Rtc, r_g: &PairSet) -> DynamicRtc {
        let mut dyn_rtc = DynamicRtc::default();
        // SCC membership, representatives and cyclicity.
        let k = rtc.scc_count();
        let mut rep_of: Vec<u32> = Vec::with_capacity(k);
        for s in 0..k {
            let scc = SccId::from_usize(s);
            let members: Vec<u32> = rtc.members_original(scc).map(|v| v.raw()).collect();
            let rep = members[0]; // members ascend; min member = representative
            for &m in &members {
                dyn_rtc.comp.insert(m, rep);
            }
            if rtc.successors(scc).contains(scc.raw()) {
                dyn_rtc.cyclic.insert(rep);
            }
            dyn_rtc.members.insert(rep, members);
            rep_of.push(rep);
        }
        // Closure rows, re-keyed by representative.
        for s in 0..k {
            let rep = rep_of[s];
            let row = RowSet::from_unsorted(
                rtc.successors(SccId::from_usize(s))
                    .iter()
                    .map(|t| rep_of[t as usize])
                    .collect(),
            );
            dyn_rtc.closure.insert(rep, row);
            dyn_rtc.scc_out.insert(rep, FxHashMap::default());
            dyn_rtc.scc_in.insert(rep, FxHashMap::default());
        }
        // Member-level adjacency and condensation multiplicities.
        for (u, v) in r_g.iter() {
            let (u, v) = (u.raw(), v.raw());
            dyn_rtc.out.entry(u).or_default().insert(v);
            dyn_rtc.out.entry(v).or_default();
            dyn_rtc.inn.entry(v).or_default().insert(u);
            dyn_rtc.inn.entry(u).or_default();
            let a = dyn_rtc.comp[&u];
            let b = dyn_rtc.comp[&v];
            if a != b {
                *dyn_rtc.scc_out.get_mut(&a).unwrap().entry(b).or_insert(0) += 1;
                *dyn_rtc.scc_in.get_mut(&b).unwrap().entry(a).or_insert(0) += 1;
            }
        }
        dyn_rtc.edge_count = r_g.len();
        dyn_rtc
    }

    /// Number of vertices in `V_R`.
    pub fn vertex_count(&self) -> usize {
        self.comp.len()
    }

    /// Number of pairs/edges in `R_G` (= `|E_R|`).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of SCCs (`|V̄_R|`).
    pub fn scc_count(&self) -> usize {
        self.members.len()
    }

    /// Whether the pair `(u, v)` is currently in `R_G`.
    pub fn contains_pair(&self, u: VertexId, v: VertexId) -> bool {
        self.out
            .get(&u.raw())
            .is_some_and(|row| row.contains(&v.raw()))
    }

    /// The current `R_G` as a pair set (materialized; for diffing and the
    /// rebuild path).
    pub fn pairs(&self) -> PairSet {
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.edge_count);
        for (&u, row) in &self.out {
            pairs.extend(row.iter().map(|&v| (VertexId(u), VertexId(v))));
        }
        PairSet::from_pairs(pairs)
    }

    /// Applies a pair-level delta: `deletes` first, then `inserts`
    /// (mirroring `VersionedGraph::apply`). No-op operations (deleting
    /// absent pairs, inserting present ones) are skipped. Returns which
    /// maintenance path ran; the structure is equivalent to
    /// rebuild-from-scratch afterward either way.
    pub fn apply(
        &mut self,
        inserts: &[(VertexId, VertexId)],
        deletes: &[(VertexId, VertexId)],
        config: &MaintenanceConfig,
    ) -> MaintenanceOutcome {
        let mut real_deletes: Vec<(u32, u32)> = deletes
            .iter()
            .map(|&(u, v)| (u.raw(), v.raw()))
            .filter(|&(u, v)| self.has_edge(u, v))
            .collect();
        real_deletes.sort_unstable();
        real_deletes.dedup();
        let mut real_inserts: Vec<(u32, u32)> = inserts
            .iter()
            .map(|&(u, v)| (u.raw(), v.raw()))
            .filter(|&(u, v)| !self.has_edge(u, v) || real_deletes.binary_search(&(u, v)).is_ok())
            .collect();
        real_inserts.sort_unstable();
        real_inserts.dedup();
        // A pair both deleted and reinserted (deletes run first) nets out
        // to "present": cancel the round trip on both sides.
        let round_trips: Vec<(u32, u32)> = real_inserts
            .iter()
            .copied()
            .filter(|p| real_deletes.binary_search(p).is_ok())
            .collect();
        real_deletes.retain(|p| round_trips.binary_search(p).is_err());
        real_inserts.retain(|p| round_trips.binary_search(p).is_err());
        if real_deletes.is_empty() && real_inserts.is_empty() {
            return MaintenanceOutcome::Unchanged;
        }

        // Damage gate: a delta touching more than `damage_threshold` of
        // the relation is cheaper to absorb with one from-scratch sweep.
        let ops = real_deletes.len() + real_inserts.len();
        if ops as f64 > config.damage_threshold * self.edge_count.max(1) as f64 {
            for &(u, v) in &real_deletes {
                self.remove_edge_raw(u, v);
            }
            for &(u, v) in &real_inserts {
                self.add_edge_raw(u, v);
            }
            self.rebuild();
            return MaintenanceOutcome::Rebuilt(RebuildReason::DamageThresholdExceeded);
        }

        let mut stats = MaintenanceStats::default();
        self.delete_batch(&real_deletes, &mut stats);
        self.insert_batch(&real_inserts, &mut stats);
        MaintenanceOutcome::Incremental(stats)
    }

    /// Converts back to the engine-facing [`Rtc`]: a linear re-indexing
    /// (sorted vertices → [`VertexMapping`], sorted representatives →
    /// dense SCC ids) with **no** Tarjan or closure recompute. The
    /// resulting SCC numbering is not topological — [`Rtc`] consumers
    /// don't rely on one.
    pub fn snapshot(&self) -> Rtc {
        let mut vertices: Vec<VertexId> = self.comp.keys().map(|&v| VertexId(v)).collect();
        vertices.sort_unstable();
        let mut reps: Vec<u32> = self.members.keys().copied().collect();
        reps.sort_unstable();
        let dense_of: FxHashMap<u32, u32> = reps
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u32))
            .collect();
        let comp_of: Vec<u32> = vertices
            .iter()
            .map(|v| dense_of[&self.comp[&v.raw()]])
            .collect();
        let scc = Scc::from_component_table(comp_of, reps.len());
        // Remap member vertex ids (original) to compact ids? `Scc` here is
        // over compact ids already because `comp_of` is indexed by compact
        // id — membership rows come out as compact ids by construction.
        let rows: Vec<RowSet> = reps
            .iter()
            .map(|r| {
                let mut row: Vec<u32> = self.closure[r].iter().map(|t| dense_of[&t]).collect();
                row.sort_unstable();
                RowSet::from_sorted_vec(row)
            })
            .collect();
        // Renumbering to dense SCC ids makes the adaptive policy
        // meaningful again (rep-id rows stay sparse; see `closure` docs).
        let policy = RowSetPolicy::default();
        let closure = RowTable::from_rows_with(rows, reps.len() as u32, &policy);
        let ebar_edges: usize =
            self.scc_out.values().map(FxHashMap::len).sum::<usize>() + self.cyclic.len();
        let mapping = VertexMapping::from_sorted_vertices(vertices);
        Rtc::from_parts(mapping, scc, closure, self.edge_count, ebar_edges, policy)
    }

    // ---- internals ----

    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.out.get(&u).is_some_and(|row| row.contains(&v))
    }

    /// Adjacency-only edge add (rebuild path).
    fn add_edge_raw(&mut self, u: u32, v: u32) {
        self.out.entry(u).or_default().insert(v);
        self.out.entry(v).or_default();
        self.inn.entry(v).or_default().insert(u);
        self.inn.entry(u).or_default();
        self.edge_count += 1;
    }

    /// Adjacency-only edge removal (rebuild path).
    fn remove_edge_raw(&mut self, u: u32, v: u32) {
        self.out.get_mut(&u).unwrap().remove(&v);
        self.inn.get_mut(&v).unwrap().remove(&u);
        self.edge_count -= 1;
    }

    /// Recomputes every derived structure from the current adjacency.
    fn rebuild(&mut self) {
        *self = Self::from_pairs(&self.pairs());
    }

    /// Whether a path of length ≥ 1 from `u` to `v` exists using only
    /// vertices of SCC `a` (early-exit BFS over the induced subgraph).
    fn reaches_within_scc(&self, a: u32, u: u32, v: u32) -> bool {
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        let mut queue: Vec<u32> = vec![u];
        // Seed with u but don't treat the start as "reached" — the path
        // must have length ≥ 1 (relevant for deleted self-loops).
        let mut first = true;
        while let Some(x) = queue.pop() {
            for &w in &self.out[&x] {
                if self.comp.get(&w) != Some(&a) {
                    continue;
                }
                if w == v {
                    return true;
                }
                if seen.insert(w) {
                    queue.push(w);
                }
            }
            if first {
                first = false;
                seen.insert(u);
            }
        }
        false
    }

    /// `frontier ∪ ancestors(frontier)` over the condensation.
    fn backward_closure(&self, frontier: impl IntoIterator<Item = u32>) -> FxHashSet<u32> {
        let mut seen: FxHashSet<u32> = frontier.into_iter().collect();
        let mut queue: Vec<u32> = seen.iter().copied().collect();
        while let Some(s) = queue.pop() {
            for &p in self.scc_in[&s].keys() {
                if seen.insert(p) {
                    queue.push(p);
                }
            }
        }
        seen
    }

    /// Registers `v` as a fresh singleton SCC if it is not in `V_R` yet.
    fn ensure_vertex(&mut self, v: u32) {
        if self.comp.contains_key(&v) {
            return;
        }
        self.comp.insert(v, v);
        self.members.insert(v, vec![v]);
        self.closure.insert(v, RowSet::empty());
        self.scc_out.insert(v, FxHashMap::default());
        self.scc_in.insert(v, FxHashMap::default());
        self.out.entry(v).or_default();
        self.inn.entry(v).or_default();
    }

    /// Removes `w` from every structure if it has become edge-free (`V_R`
    /// contains only vertices incident to some pair). An isolated vertex
    /// is always a singleton SCC with no condensation edges and an empty
    /// closure row, so the removal is local.
    fn drop_if_isolated(&mut self, w: u32) {
        let isolated = self.out.get(&w).is_none_or(FxHashSet::is_empty)
            && self.inn.get(&w).is_none_or(FxHashSet::is_empty);
        if !isolated {
            return;
        }
        if let Some(rep) = self.comp.remove(&w) {
            debug_assert_eq!(rep, w, "isolated vertex must be its own singleton SCC");
            self.members.remove(&rep);
            self.cyclic.remove(&rep);
            let row = self.closure.remove(&rep);
            debug_assert!(row.is_none_or(|r| r.is_empty()));
            let o = self.scc_out.remove(&rep);
            debug_assert!(o.is_none_or(|m| m.is_empty()));
            let i = self.scc_in.remove(&rep);
            debug_assert!(i.is_none_or(|m| m.is_empty()));
        }
        self.out.remove(&w);
        self.inn.remove(&w);
    }

    /// Inserts a batch of pairs (all known absent). Edge-level state and
    /// condensation multiplicities update pair by pair; cycle handling is
    /// batched — one Tarjan over the condensation finds *every* SCC group
    /// the new edges collapse (including cycles that only exist through
    /// several new edges combined), each group merges structurally once,
    /// and a single change-driven sweep repairs the affected closure rows.
    /// A batch with exactly one new condensation edge and no cycle skips
    /// all of that for the pruned backward propagation.
    fn insert_batch(&mut self, inserts: &[(u32, u32)], stats: &mut MaintenanceStats) {
        let mut new_cond: Vec<(u32, u32)> = Vec::new();
        for &(u, v) in inserts {
            self.ensure_vertex(u);
            self.ensure_vertex(v);
            self.out.get_mut(&u).unwrap().insert(v);
            self.inn.get_mut(&v).unwrap().insert(u);
            self.edge_count += 1;
            stats.pairs_inserted += 1;

            let a = self.comp[&u];
            let b = self.comp[&v];
            if a == b {
                // Internal edge: the SCC now (still) reaches itself.
                // Ancestors already list it, so only its own row changes.
                if self.cyclic.insert(a) {
                    self.closure.get_mut(&a).unwrap().insert(a);
                    stats.rows_touched += 1;
                }
                continue;
            }
            let count = self.scc_out.get_mut(&a).unwrap().entry(b).or_insert(0);
            *count += 1;
            if *count == 1 {
                new_cond.push((a, b));
            }
            *self.scc_in.get_mut(&b).unwrap().entry(a).or_insert(0) += 1;
        }
        if new_cond.is_empty() {
            return;
        }
        // Cycle gate: a cycle through the new edges needs some new edge's
        // tail to be reachable from some new edge's head in the *old*
        // closure (any new-edge cycle chains `head_i →old→ tail_j` hops),
        // so if no such pair exists every insertion is acyclic — even in
        // combination — and the pruned per-edge propagation applies. The
        // O(k²) test is capped; past that the condensation-wide Tarjan is
        // cheaper anyway.
        let maybe_cycle = new_cond.len() > 32
            || new_cond.iter().any(|&(_, b)| {
                new_cond
                    .iter()
                    .any(|&(a2, _)| a2 == b || self.closure[&b].contains(a2))
            });
        if maybe_cycle {
            self.absorb_cond_edges(&new_cond, stats);
        } else {
            for &(a, b) in &new_cond {
                self.propagate_insert(a, b, stats);
            }
        }
    }

    /// Batched reachability repair after new condensation edges: detect
    /// merge groups with one Tarjan over the condensation, merge each
    /// group structurally, then recompute rows from the merged reps and
    /// the new edges' tails outward.
    fn absorb_cond_edges(&mut self, new_cond: &[(u32, u32)], stats: &mut MaintenanceStats) {
        // Tarjan over the rep graph (the condensation plus the new edges,
        // which are already in `scc_out`).
        let reps: Vec<u32> = self.members.keys().copied().collect();
        let idx: FxHashMap<u32, u32> = reps
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u32))
            .collect();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (&r, outs) in &self.scc_out {
            let i = idx[&r];
            edges.extend(outs.keys().map(|t| (i, idx[t])));
        }
        let rep_graph = Digraph::from_edges(reps.len(), edges);
        let rep_scc = tarjan_scc(&rep_graph);

        let mut frontier: FxHashSet<u32> = FxHashSet::default();
        if rep_scc.count() < reps.len() {
            for s in 0..rep_scc.count() {
                let group: Vec<u32> = rep_scc
                    .members(SccId::from_usize(s))
                    .iter()
                    .map(|&i| reps[i as usize])
                    .collect();
                if group.len() > 1 {
                    frontier.insert(self.merge_group(&group, stats));
                }
            }
        }
        // Tails of the new edges gained reachability even without merging
        // (resolve through `comp` — a rep id is a vertex id, so a merged
        // tail forwards to its group's representative).
        for &(a, _) in new_cond {
            frontier.insert(self.comp[&a]);
        }
        self.recompute_rows(&frontier, stats);
    }

    /// New acyclic condensation edge `a → b`: push `{b} ∪ closure(b)`
    /// backward from `a`, pruning wherever a row already absorbs it.
    fn propagate_insert(&mut self, a: u32, b: u32, stats: &mut MaintenanceStats) {
        let mut delta = self.closure[&b].clone();
        delta.insert(b);
        let mut seen: FxHashSet<u32> = FxHashSet::default();
        seen.insert(a);
        let mut queue = vec![a];
        while let Some(s) = queue.pop() {
            let row = self.closure.get_mut(&s).unwrap();
            let changed = row.union_in_place(&delta);
            // If the row already contained the delta, every predecessor's
            // row (a superset, by the closure invariant) did too.
            if changed {
                stats.rows_touched += 1;
                for &p in self.scc_in[&s].keys() {
                    if seen.insert(p) {
                        queue.push(p);
                    }
                }
            }
        }
    }

    /// Structurally merges a group of SCCs known (by the caller's Tarjan)
    /// to have become one: members, component table, cyclicity and
    /// condensation adjacency collapse onto the minimum representative.
    /// The merged rep's closure row is left as an empty placeholder — the
    /// caller recomputes it (and every ancestor's) in its batched sweep.
    fn merge_group(&mut self, merged: &[u32], stats: &mut MaintenanceStats) -> u32 {
        debug_assert!(merged.len() >= 2, "a merge group spans several SCCs");
        let mset: FxHashSet<u32> = merged.iter().copied().collect();
        let r = *merged.iter().min().unwrap();
        stats.sccs_merged += merged.len();

        // Members and membership table.
        let mut new_members: Vec<u32> = merged
            .iter()
            .flat_map(|s| self.members.remove(s).unwrap())
            .collect();
        new_members.sort_unstable();
        for &x in &new_members {
            self.comp.insert(x, r);
        }
        self.members.insert(r, new_members);
        for &s in merged {
            self.cyclic.remove(&s);
            self.closure.remove(&s);
        }
        self.cyclic.insert(r); // the group is a cycle by construction
        self.closure.insert(r, RowSet::empty());

        // Condensation adjacency: union the merged SCCs' maps (edges
        // between them become internal) and re-point external neighbors.
        let mut merged_out: FxHashMap<u32, u32> = FxHashMap::default();
        let mut merged_in: FxHashMap<u32, u32> = FxHashMap::default();
        for &s in merged {
            for (t, c) in self.scc_out.remove(&s).unwrap() {
                if !mset.contains(&t) {
                    *merged_out.entry(t).or_insert(0) += c;
                }
            }
            for (t, c) in self.scc_in.remove(&s).unwrap() {
                if !mset.contains(&t) {
                    *merged_in.entry(t).or_insert(0) += c;
                }
            }
        }
        for (&t, &c) in &merged_out {
            let t_in = self.scc_in.get_mut(&t).unwrap();
            for &s in merged {
                t_in.remove(&s);
            }
            t_in.insert(r, c);
        }
        for (&t, &c) in &merged_in {
            let t_out = self.scc_out.get_mut(&t).unwrap();
            for &s in merged {
                t_out.remove(&s);
            }
            t_out.insert(r, c);
        }
        self.scc_out.insert(r, merged_out);
        self.scc_in.insert(r, merged_in);
        r
    }

    /// Deletes a batch of pairs (all known present), doing the expensive
    /// structural work **once per damaged region** rather than once per
    /// pair: adjacency and condensation multiplicities are updated pair by
    /// pair, then each SCC that lost an internal edge is re-split by a
    /// single local Tarjan, then one backward sweep from the whole delete
    /// frontier recomputes every affected closure row.
    fn delete_batch(&mut self, deletes: &[(u32, u32)], stats: &mut MaintenanceStats) {
        if deletes.is_empty() {
            return;
        }
        // Phase 1: edge-level updates. SCC classification uses the
        // pre-delete decomposition throughout (comp is untouched here), so
        // intra/cross bookkeeping stays consistent; structural repair of
        // over-coarse SCCs happens in phase 2.
        let mut dirty_sccs: FxHashMap<u32, Vec<(u32, u32)>> = FxHashMap::default();
        let mut row_frontier: FxHashSet<u32> = FxHashSet::default();
        for &(u, v) in deletes {
            self.out.get_mut(&u).unwrap().remove(&v);
            self.inn.get_mut(&v).unwrap().remove(&u);
            self.edge_count -= 1;
            stats.pairs_deleted += 1;
            let a = self.comp[&u];
            let b = self.comp[&v];
            if a != b {
                let count = self.scc_out.get_mut(&a).unwrap().get_mut(&b).unwrap();
                *count -= 1;
                if *count == 0 {
                    self.scc_out.get_mut(&a).unwrap().remove(&b);
                    self.scc_in.get_mut(&b).unwrap().remove(&a);
                    // Redundancy check: if `a` still reaches `b` through a
                    // surviving out-edge, its row (and every ancestor's)
                    // is unchanged — no recompute trigger. Staleness of
                    // `closure[t]` within this batch is safe: any deeper
                    // loss has its own frontier entry, and the changed-
                    // chain in `recompute_rows` carries it up through `a`.
                    let redundant = self.scc_out[&a]
                        .keys()
                        .any(|&t| t == b || self.closure[&t].contains(b));
                    if !redundant {
                        row_frontier.insert(a);
                    }
                }
            } else if self.members[&a].len() == 1 {
                // Removing a singleton's self-loop: cyclicity may flip;
                // ancestors still reach it either way.
                debug_assert_eq!(u, v);
                if !self.out[&u].contains(&u) && self.cyclic.remove(&a) {
                    self.closure.get_mut(&a).unwrap().remove(a);
                    stats.rows_touched += 1;
                }
            } else {
                dirty_sccs.entry(a).or_default().push((u, v));
            }
        }
        // Phase 2: structural repair of each SCC that lost internal edges
        // (at most one local Tarjan per SCC, skipped entirely when an
        // early-exit reachability check proves the SCC intact).
        let dirty: Vec<(u32, Vec<(u32, u32)>)> = dirty_sccs.into_iter().collect();
        for (a, lost) in dirty {
            if let Some(sub_reps) = self.resplit_scc(a, &lost, stats) {
                row_frontier.extend(sub_reps);
            }
        }
        // Phase 3: one row-recompute sweep over the union of all damaged
        // ancestor regions, pruned wherever rows turn out unchanged.
        if !row_frontier.is_empty() {
            self.recompute_rows(&row_frontier, stats);
        }
        // Phase 4: vertices left edge-free exit V_R (rows are already
        // recomputed, so an isolated vertex's row is provably empty).
        for &(u, v) in deletes {
            self.drop_if_isolated(u);
            if v != u {
                self.drop_if_isolated(v);
            }
        }
    }

    /// Structural repair of one SCC after losing the internal edges in
    /// `lost`: if the SCC splits, rebuilds the incident condensation edges
    /// and returns the sub-SCC representatives (whose closure rows — and
    /// their ancestors' — the caller must recompute). `None` if the SCC
    /// survived intact.
    ///
    /// The fast path avoids Tarjan entirely: the SCC stays strongly
    /// connected iff, in the post-deletion induced subgraph, the source of
    /// every lost edge still reaches its target (every broken path can
    /// then be rerouted). Each check is an early-exit BFS — in dense SCCs
    /// it terminates after a handful of hops, where a full Tarjan would
    /// pay for every internal edge.
    fn resplit_scc(
        &mut self,
        a: u32,
        lost: &[(u32, u32)],
        stats: &mut MaintenanceStats,
    ) -> Option<Vec<u32>> {
        if lost.iter().all(|&(u, v)| self.reaches_within_scc(a, u, v)) {
            return None;
        }
        let mem: Vec<u32> = self.members[&a].clone();
        let idx_of: FxHashMap<u32, u32> = mem
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, i as u32))
            .collect();
        // One pass over the members' edges collects both the induced
        // subgraph (by local index) and the external crossings (local
        // index + external rep), so the post-split recount never re-walks
        // adjacency with hash lookups.
        let mut local_edges: Vec<(u32, u32)> = Vec::new();
        let mut ext_out: Vec<(u32, u32)> = Vec::new();
        let mut ext_in: Vec<(u32, u32)> = Vec::new();
        for (i, &x) in mem.iter().enumerate() {
            for &y in &self.out[&x] {
                match idx_of.get(&y) {
                    Some(&j) => local_edges.push((i as u32, j)),
                    None => ext_out.push((i as u32, self.comp[&y])),
                }
            }
            for &p in &self.inn[&x] {
                if !idx_of.contains_key(&p) {
                    ext_in.push((i as u32, self.comp[&p]));
                }
            }
        }
        let local = Digraph::from_edges(mem.len(), local_edges.clone());
        let local_scc = tarjan_scc(&local);
        if local_scc.count() == 1 {
            // Unreachable when the reachability pre-check ran (it is
            // exact), but kept as a safety net for direct callers.
            return None;
        }
        stats.sccs_split += local_scc.count();

        // Retire the old SCC's bookkeeping, remembering its external
        // condensation neighbors.
        self.members.remove(&a);
        self.closure.remove(&a);
        self.cyclic.remove(&a);
        let old_out = self.scc_out.remove(&a).unwrap();
        let old_in = self.scc_in.remove(&a).unwrap();
        for t in old_out.keys() {
            self.scc_in.get_mut(t).unwrap().remove(&a);
        }
        for t in old_in.keys() {
            self.scc_out.get_mut(t).unwrap().remove(&a);
        }

        // Install the sub-SCCs.
        let mut sub_reps: Vec<u32> = Vec::with_capacity(local_scc.count());
        for s in 0..local_scc.count() {
            let sub_members: Vec<u32> = local_scc
                .members(SccId::from_usize(s))
                .iter()
                .map(|&i| mem[i as usize])
                .collect();
            let rep = sub_members[0];
            for &x in &sub_members {
                self.comp.insert(x, rep);
            }
            let is_cyclic = sub_members.len() > 1 || self.out[&rep].contains(&rep);
            if is_cyclic {
                self.cyclic.insert(rep);
            }
            self.members.insert(rep, sub_members);
            self.closure.insert(rep, RowSet::empty());
            self.scc_out.insert(rep, FxHashMap::default());
            self.scc_in.insert(rep, FxHashMap::default());
            sub_reps.push(rep);
        }

        // Recount every member-level edge crossing a (new) SCC boundary
        // from the pre-collected lists: sub↔sub via local indices (no
        // hashing), sub↔external via the recorded external reps.
        let sub_of_local = |i: u32| sub_reps[local_scc.component_of(i).index()];
        for &(i, j) in &local_edges {
            let (ca, cb) = (sub_of_local(i), sub_of_local(j));
            if ca != cb {
                *self.scc_out.get_mut(&ca).unwrap().entry(cb).or_insert(0) += 1;
                *self.scc_in.get_mut(&cb).unwrap().entry(ca).or_insert(0) += 1;
            }
        }
        for &(i, e) in &ext_out {
            let ca = sub_of_local(i);
            *self.scc_out.get_mut(&ca).unwrap().entry(e).or_insert(0) += 1;
            *self.scc_in.get_mut(&e).unwrap().entry(ca).or_insert(0) += 1;
        }
        for &(i, e) in &ext_in {
            let ca = sub_of_local(i);
            *self.scc_out.get_mut(&e).unwrap().entry(ca).or_insert(0) += 1;
            *self.scc_in.get_mut(&ca).unwrap().entry(e).or_insert(0) += 1;
        }

        Some(sub_reps)
    }

    /// Recomputes closure rows after structural damage at `frontier`: the
    /// potentially affected set is `frontier ∪ ancestors(frontier)`,
    /// visited in dependency order with an explicit stack — but a row is
    /// only actually recomputed if it sits on the frontier or one of its
    /// recomputed successors *changed*; reachability shrinkage that dies
    /// out (a deleted edge with redundant paths) stops propagating
    /// immediately instead of sweeping every ancestor.
    fn recompute_rows(&mut self, frontier: &FxHashSet<u32>, stats: &mut MaintenanceStats) {
        let affected = self.backward_closure(frontier.iter().copied());
        let mut done: FxHashSet<u32> = FxHashSet::default();
        // Frontier reps count as changed a priori: after a split their
        // *identity* changed (ancestor rows hold stale rep ids), even when
        // their own recomputed row happens to match — the first ancestor
        // ring must always look.
        let mut changed: FxHashSet<u32> = frontier.clone();
        for &root in &affected {
            if done.contains(&root) {
                continue;
            }
            let mut stack = vec![root];
            while let Some(&s) = stack.last() {
                if done.contains(&s) {
                    stack.pop();
                    continue;
                }
                let mut ready = true;
                for &t in self.scc_out[&s].keys() {
                    if affected.contains(&t) && !done.contains(&t) {
                        stack.push(t);
                        ready = false;
                    }
                }
                if !ready {
                    continue;
                }
                let must_recompute =
                    frontier.contains(&s) || self.scc_out[&s].keys().any(|t| changed.contains(t));
                if must_recompute {
                    let mut ids: Vec<u32> = Vec::new();
                    for &t in self.scc_out[&s].keys() {
                        ids.push(t);
                        ids.extend(self.closure[&t].iter());
                    }
                    if self.cyclic.contains(&s) {
                        ids.push(s);
                    }
                    let row = RowSet::from_unsorted(ids);
                    if row != self.closure[&s] {
                        changed.insert(s);
                        self.closure.insert(s, row);
                    }
                    stats.rows_touched += 1;
                }
                done.insert(s);
                stack.pop();
            }
        }
    }

    /// Exhaustive internal consistency check against a rebuild — test
    /// support, kept out of release binaries.
    #[cfg(test)]
    fn assert_consistent(&self) {
        let rebuilt = Self::from_pairs(&self.pairs());
        assert_eq!(self.edge_count, rebuilt.edge_count, "edge count");
        assert_eq!(self.comp, rebuilt.comp, "component table");
        assert_eq!(self.members, rebuilt.members, "membership");
        assert_eq!(self.cyclic, rebuilt.cyclic, "cyclic set");
        assert_eq!(self.closure, rebuilt.closure, "closure rows");
        assert_eq!(self.scc_out, rebuilt.scc_out, "condensation out");
        assert_eq!(self.scc_in, rebuilt.scc_in, "condensation in");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_set(pairs: &[(u32, u32)]) -> PairSet {
        pairs.iter().map(|&(a, b)| (a, b)).collect()
    }

    fn vid(pairs: &[(u32, u32)]) -> Vec<(VertexId, VertexId)> {
        pairs
            .iter()
            .map(|&(a, b)| (VertexId(a), VertexId(b)))
            .collect()
    }

    const NEVER_REBUILD: MaintenanceConfig = MaintenanceConfig {
        damage_threshold: 2.0,
    };

    /// Applies a delta incrementally and asserts full equivalence with the
    /// rebuilt structure plus snapshot-level equivalence with a fresh Rtc.
    fn check_apply(
        base: &[(u32, u32)],
        inserts: &[(u32, u32)],
        deletes: &[(u32, u32)],
    ) -> MaintenanceOutcome {
        let mut dynamic = DynamicRtc::from_pairs(&pair_set(base));
        let outcome = dynamic.apply(&vid(inserts), &vid(deletes), &NEVER_REBUILD);
        dynamic.assert_consistent();
        let fresh = Rtc::from_pairs(&dynamic.pairs());
        let snap = dynamic.snapshot();
        assert_eq!(snap.expand(), fresh.expand(), "expansion");
        assert_eq!(snap.stats().vr_vertices, fresh.stats().vr_vertices);
        assert_eq!(snap.stats().er_edges, fresh.stats().er_edges);
        assert_eq!(snap.stats().scc_count, fresh.stats().scc_count);
        assert_eq!(snap.stats().ebar_edges, fresh.stats().ebar_edges);
        assert_eq!(snap.stats().closure_pairs, fresh.stats().closure_pairs);
        outcome
    }

    /// The paper's b·c fixture.
    const BC: &[(u32, u32)] = &[(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)];

    #[test]
    fn from_rtc_matches_from_pairs() {
        let pairs = pair_set(BC);
        let via_rtc = DynamicRtc::from_rtc(&Rtc::from_pairs(&pairs), &pairs);
        let direct = DynamicRtc::from_pairs(&pairs);
        assert_eq!(via_rtc.closure, direct.closure);
        assert_eq!(via_rtc.comp, direct.comp);
        assert_eq!(via_rtc.scc_out, direct.scc_out);
        assert_eq!(via_rtc.cyclic, direct.cyclic);
    }

    #[test]
    fn snapshot_of_static_structure_matches_rtc() {
        let pairs = pair_set(BC);
        let snap = DynamicRtc::from_pairs(&pairs).snapshot();
        let fresh = Rtc::from_pairs(&pairs);
        assert_eq!(snap.expand(), fresh.expand());
        assert_eq!(snap.closure_pair_count(), fresh.closure_pair_count());
        assert_eq!(snap.scc_count(), fresh.scc_count());
    }

    #[test]
    fn acyclic_insert_propagates_to_ancestors() {
        // Chain 0→1→2 gains 2→3: 0, 1, 2 all gain 3.
        let out = check_apply(&[(0, 1), (1, 2)], &[(2, 3)], &[]);
        assert!(matches!(out, MaintenanceOutcome::Incremental(s) if s.rows_touched == 3));
    }

    #[test]
    fn cycle_closing_insert_merges_sccs() {
        // Chain 0→1→2→3 gains 3→1: {1,2,3} merge.
        let out = check_apply(&[(0, 1), (1, 2), (2, 3)], &[(3, 1)], &[]);
        assert!(matches!(out, MaintenanceOutcome::Incremental(s) if s.sccs_merged == 3));
    }

    #[test]
    fn merge_through_branching_paths() {
        // Diamond 0→{1,2}→3 plus 3→0: everything merges.
        check_apply(&[(0, 1), (0, 2), (1, 3), (2, 3)], &[(3, 0)], &[]);
        // Only one branch on the cycle: 3→1 merges {1,3} but not 2.
        let out = check_apply(&[(0, 1), (0, 2), (1, 3), (2, 3)], &[(3, 1)], &[]);
        assert!(matches!(out, MaintenanceOutcome::Incremental(s) if s.sccs_merged == 2));
    }

    #[test]
    fn cross_scc_delete_recomputes_ancestors() {
        // 0→1→2; delete 1→2: rows of 1 and 0 shrink.
        let out = check_apply(&[(0, 1), (1, 2)], &[], &[(1, 2)]);
        assert!(matches!(out, MaintenanceOutcome::Incremental(s) if s.pairs_deleted == 1));
    }

    #[test]
    fn intra_scc_delete_splits() {
        // Cycle 0→1→2→0; deleting 2→0 splits into three singletons.
        let out = check_apply(&[(0, 1), (1, 2), (2, 0)], &[], &[(2, 0)]);
        assert!(matches!(out, MaintenanceOutcome::Incremental(s) if s.sccs_split == 3));
    }

    #[test]
    fn intra_scc_delete_that_keeps_scc_intact() {
        // Two-cycle {0,1} with chord 0→0 (self-loop): deleting the loop
        // leaves the SCC strongly connected.
        let out = check_apply(&[(0, 1), (1, 0), (0, 0)], &[], &[(0, 0)]);
        assert!(matches!(out, MaintenanceOutcome::Incremental(s) if s.sccs_split == 0));
    }

    #[test]
    fn singleton_self_loop_lifecycle() {
        check_apply(&[(7, 7)], &[], &[(7, 7)]); // drop to empty
        check_apply(&[(0, 1)], &[(1, 1)], &[]); // gain a self-loop
        check_apply(&[(0, 1), (1, 1)], &[], &[(1, 1)]);
    }

    #[test]
    fn delete_then_reinsert_round_trips() {
        let mut dynamic = DynamicRtc::from_pairs(&pair_set(BC));
        let before = dynamic.snapshot();
        dynamic.apply(&[], &vid(&[(4, 2)]), &NEVER_REBUILD);
        dynamic.assert_consistent();
        dynamic.apply(&vid(&[(4, 2)]), &[], &NEVER_REBUILD);
        dynamic.assert_consistent();
        let after = dynamic.snapshot();
        assert_eq!(before.expand(), after.expand());
        assert_eq!(before.stats(), after.stats());
    }

    #[test]
    fn same_delta_delete_and_reinsert_is_unchanged() {
        let mut dynamic = DynamicRtc::from_pairs(&pair_set(BC));
        let out = dynamic.apply(&vid(&[(4, 2)]), &vid(&[(4, 2)]), &NEVER_REBUILD);
        assert_eq!(out, MaintenanceOutcome::Unchanged);
        dynamic.assert_consistent();
    }

    #[test]
    fn noop_delta_is_unchanged() {
        let mut dynamic = DynamicRtc::from_pairs(&pair_set(BC));
        // Present insert + absent delete.
        let out = dynamic.apply(&vid(&[(2, 4)]), &vid(&[(9, 9)]), &NEVER_REBUILD);
        assert_eq!(out, MaintenanceOutcome::Unchanged);
    }

    #[test]
    fn damage_threshold_forces_rebuild() {
        let chain: Vec<(u32, u32)> = (0..20).map(|i| (i, i + 1)).collect();
        // Threshold 0.0: any effective change rebuilds.
        let mut dynamic = DynamicRtc::from_pairs(&pair_set(&chain));
        let strict = MaintenanceConfig {
            damage_threshold: 0.0,
        };
        let out = dynamic.apply(&vid(&[(20, 21)]), &[], &strict);
        assert_eq!(
            out,
            MaintenanceOutcome::Rebuilt(RebuildReason::DamageThresholdExceeded)
        );
        dynamic.assert_consistent();
        let fresh = Rtc::from_pairs(&dynamic.pairs());
        assert_eq!(dynamic.snapshot().expand(), fresh.expand());
        // A one-edge delta on a 20-edge relation is 5% — under the default
        // threshold it stays incremental...
        let mut dynamic = DynamicRtc::from_pairs(&pair_set(&chain));
        let out = dynamic.apply(&vid(&[(20, 21)]), &[], &MaintenanceConfig::default());
        assert!(matches!(out, MaintenanceOutcome::Incremental(_)));
        dynamic.assert_consistent();
        // ...while a batch outsizing the threshold rebuilds.
        let big: Vec<(u32, u32)> = (0..30).map(|i| (100 + i, 101 + i)).collect();
        let mut dynamic = DynamicRtc::from_pairs(&pair_set(&chain));
        let out = dynamic.apply(&vid(&big), &[], &MaintenanceConfig::default());
        assert_eq!(
            out,
            MaintenanceOutcome::Rebuilt(RebuildReason::DamageThresholdExceeded)
        );
        dynamic.assert_consistent();
    }

    #[test]
    fn growing_from_empty() {
        let mut dynamic = DynamicRtc::from_pairs(&PairSet::new());
        dynamic.apply(&vid(&[(0, 1)]), &[], &NEVER_REBUILD);
        dynamic.assert_consistent();
        dynamic.apply(&vid(&[(1, 0)]), &[], &NEVER_REBUILD);
        dynamic.assert_consistent();
        assert_eq!(dynamic.scc_count(), 1);
        assert_eq!(dynamic.snapshot().expand().len(), 4);
    }

    #[test]
    fn scripted_update_stream_stays_equivalent() {
        // A mixed script exercising merge, split, propagation, vertex
        // birth/death and reinsertion, checking full consistency per step.
        let mut dynamic = DynamicRtc::from_pairs(&pair_set(BC));
        let script: &[(&str, u32, u32)] = &[
            ("ins", 6, 2),  // merge {2,4} with {6}
            ("ins", 5, 6),  // cross edge into the merged SCC
            ("del", 6, 2),  // split the merge back apart
            ("ins", 10, 2), // new vertex feeding the cycle
            ("del", 2, 4),  // break {2,4}
            ("ins", 2, 4),  // restore it
            ("del", 3, 5),  // break {3,5}
            ("del", 5, 3),  // 5 keeps only the 5→6 edge
            ("del", 5, 6),  // 5 goes isolated and leaves V_R
            ("ins", 3, 3),  // self-loop on a singleton
        ];
        for &(op, u, v) in script {
            let (ins, del) = if op == "ins" {
                (vec![(VertexId(u), VertexId(v))], vec![])
            } else {
                (vec![], vec![(VertexId(u), VertexId(v))])
            };
            dynamic.apply(&ins, &del, &NEVER_REBUILD);
            dynamic.assert_consistent();
            let fresh = Rtc::from_pairs(&dynamic.pairs());
            assert_eq!(dynamic.snapshot().expand(), fresh.expand(), "{op} {u}->{v}");
        }
    }

    #[test]
    fn batch_delta_matches_sequential_singles() {
        let inserts = [(6, 3), (5, 2), (11, 12)];
        let deletes = [(2, 6), (3, 5)];
        let mut batched = DynamicRtc::from_pairs(&pair_set(BC));
        batched.apply(&vid(&inserts), &vid(&deletes), &NEVER_REBUILD);
        batched.assert_consistent();

        let mut single = DynamicRtc::from_pairs(&pair_set(BC));
        for &d in &deletes {
            single.apply(&[], &vid(&[d]), &NEVER_REBUILD);
        }
        for &i in &inserts {
            single.apply(&vid(&[i]), &[], &NEVER_REBUILD);
        }
        assert_eq!(batched.pairs(), single.pairs());
        assert_eq!(batched.snapshot().expand(), single.snapshot().expand());
    }
}
