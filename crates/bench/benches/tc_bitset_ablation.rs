//! Closure-representation ablation: sorted-list merge vs word-parallel
//! bitset rows for the condensation closure (the RTC's core computation).
//!
//! Lists win when the closure is sparse (long chains, Yago2s regime);
//! bitsets win when it is dense (few big SCCs reaching most of the DAG).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_datasets::structured::{cycle_clusters, erdos_renyi, CycleClusterConfig};
use rpq_eval::ProductEvaluator;
use rpq_graph::{tarjan_scc, Condensation, MappedDigraph};
use rpq_reduction::{closure_of_condensation, closure_of_condensation_bitset};
use rpq_regex::Regex;
use std::time::Duration;

fn condensation_of(graph: &rpq_graph::LabeledMultigraph, query: &str) -> Condensation {
    let r_g = ProductEvaluator::new(graph, &Regex::parse(query).unwrap()).evaluate();
    let gr = MappedDigraph::from_pairset(&r_g);
    let scc = tarjan_scc(&gr.graph);
    Condensation::new(&gr.graph, &scc)
}

fn bench_tc_bitset(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc_bitset_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Sparse regime: 2048 trivial SCCs in a shallow DAG.
    let sparse = cycle_clusters(&CycleClusterConfig {
        clusters: 2048,
        cluster_size: 1,
        inter_edges: 4096,
        labels: 1,
        seed: 31,
    });
    // Dense regime: uniform random graph, most SCCs collapse.
    let dense = erdos_renyi(2048, 16384, 1, 32);

    for (name, graph) in [("sparse_dag", &sparse), ("dense_random", &dense)] {
        let cond = condensation_of(graph, "l0");
        let label = format!("{name}(k={})", cond.vertex_count());
        group.bench_with_input(BenchmarkId::new("lists", &label), &cond, |b, cond| {
            b.iter(|| closure_of_condensation(cond))
        });
        group.bench_with_input(BenchmarkId::new("bitset", &label), &cond, |b, cond| {
            b.iter(|| closure_of_condensation_bitset(cond))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tc_bitset);
criterion_main!(benches);
