//! Automata-backend ablation: Glushkov vs Thompson(+ε-elimination) vs
//! subset-construction DFA — construction cost and word-matching cost for
//! the paper's query shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_automata::{build_glushkov, build_thompson, Dfa};
use rpq_regex::Regex;
use std::time::Duration;

fn bench_automata(c: &mut Criterion) {
    let mut group = c.benchmark_group("automata_ablation");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let queries = [
        ("simple", "d.(b.c)+.c"),
        ("nested", "(a.b)*.b+.(a.b+.c)+"),
        ("alt_heavy", "(a|b|c).(a|b)+.(b|c)*"),
    ];
    for (name, src) in queries {
        let r = Regex::parse(src).unwrap();
        group.bench_with_input(BenchmarkId::new("glushkov_build", name), &r, |b, r| {
            b.iter(|| build_glushkov(r))
        });
        group.bench_with_input(BenchmarkId::new("thompson_build", name), &r, |b, r| {
            b.iter(|| build_thompson(r))
        });
        group.bench_with_input(BenchmarkId::new("dfa_build", name), &r, |b, r| {
            b.iter(|| Dfa::from_nfa(&build_glushkov(r)).unwrap())
        });

        // Matching a long accepted-prefix word.
        let word: Vec<&str> = std::iter::once("d")
            .chain(std::iter::repeat_n(["b", "c"], 64).flatten())
            .chain(std::iter::once("c"))
            .collect();
        let nfa = build_glushkov(&r);
        let dfa = Dfa::from_nfa(&nfa).unwrap();
        group.bench_with_input(BenchmarkId::new("nfa_match", name), &word, |b, w| {
            b.iter(|| nfa.matches(w))
        });
        group.bench_with_input(BenchmarkId::new("dfa_match", name), &word, |b, w| {
            b.iter(|| dfa.matches(w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_automata);
criterion_main!(benches);
