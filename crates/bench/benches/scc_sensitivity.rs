//! SCC-structure sensitivity: how the RTC's advantage scales with the
//! average SCC size of `G_R`.
//!
//! This is the structural variable behind every result in the paper —
//! Section V-B1 explains both the growing speedups (bigger SCCs at higher
//! degree) and the Yago2s exception (average SCC size 1.00) with it. The
//! cycle-cluster generator pins |V| and the workload while sweeping the
//! cluster (= SCC) size from 1 to 32.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_core::Strategy;
use rpq_datasets::structured::{cycle_clusters, CycleClusterConfig};
use rpq_regex::Regex;
use std::time::Duration;

fn bench_scc_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc_sensitivity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    const TOTAL_VERTICES: u32 = 1024;
    for cluster_size in [1u32, 4, 32] {
        let graph = cycle_clusters(&CycleClusterConfig {
            clusters: TOTAL_VERTICES / cluster_size,
            cluster_size,
            inter_edges: 2048,
            labels: 3,
            seed: 21,
        });
        // The paper's workload shape: Pre·R+·Post sharing R = l0.
        let queries: Vec<Regex> = ["l1.(l0)+.l2", "l2.(l0)+.l1", "l0.(l0)+.l1", "l1.(l0)+.l1"]
            .iter()
            .map(|q| Regex::parse(q).unwrap())
            .collect();
        for strategy in [Strategy::FullSharing, Strategy::RtcSharing] {
            group.bench_with_input(
                BenchmarkId::new(strategy.short_name(), format!("scc_size_{cluster_size}")),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        let engine = rpq_core::Engine::with_strategy(&graph, strategy);
                        engine.evaluate_set(queries).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scc_sensitivity);
criterion_main!(benches);
