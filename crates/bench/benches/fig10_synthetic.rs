//! Fig. 10(a): multiple-RPQ response time of No/Full/RTC on the synthetic
//! degree sweep (Criterion variant of `experiments fig10`).
//!
//! Bench scale is kept small (2^9 vertices, three degree points) so the
//! whole suite completes quickly; the `experiments` binary runs the full
//! sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_core::Strategy;
use rpq_datasets::rmat::rmat_n_scaled;
use rpq_datasets::workload::{alphabet_of, generate_workload, WorkloadConfig};
use std::time::Duration;

fn bench_fig10_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_synthetic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1500));

    for n in [0u32, 2, 4] {
        let graph = rmat_n_scaled(n, 9, 42 + n as u64);
        let sets = generate_workload(
            &alphabet_of(&graph),
            &WorkloadConfig {
                rs_per_length: 1,
                queries_per_set: 4,
                ..WorkloadConfig::default()
            },
        );
        let queries: Vec<_> = sets[0].queries[..4].to_vec();
        for strategy in Strategy::ALL {
            group.bench_with_input(
                BenchmarkId::new(strategy.short_name(), format!("RMAT_{n}")),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        let engine = rpq_core::Engine::with_strategy(&graph, strategy);
                        engine.evaluate_set(queries).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10_synthetic);
criterion_main!(benches);
