//! Incremental RTC maintenance vs rebuild-from-scratch under churn.
//!
//! Two levels. **Structure level** isolates one stale-entry refresh —
//! absorb a pair-delta into a [`DynamicRtc`] (apply + snapshot back to an
//! `Rtc`) vs `Rtc::from_pairs` on the post-delta relation — across three
//! small-delta profiles (~0.1% of `|R_G|` per delta):
//!
//! * `churn` — delete real pairs, then reinsert the same pairs (the
//!   delete-then-reinsert pattern; deletions are mostly redundant in a
//!   well-connected relation, so damage dies out immediately);
//! * `growth` — insert fresh uniform-random pairs (append-mostly
//!   workloads; merges happen occasionally);
//! * `mixed` — delete real pairs and insert random ones, then invert
//!   (adversarial: every other refresh splits/merges a giant SCC, the
//!   worst case for incremental maintenance — expected to be close to, or
//!   worse than, rebuild).
//!
//! **Engine level** replays an update/query stream against a dynamic
//! engine (stale entries refresh in place; bodies whose `R_G` is
//! untouched re-stamp after an equality check) vs a cold-cache engine per
//! round. The update stream only touches one label, while the query
//! workload spans three closure bodies — the multi-query serving scenario
//! the epoch-aware cache is built for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_core::{Engine, EngineConfig, Strategy};
use rpq_datasets::rmat::rmat_n_scaled;
use rpq_datasets::structured::{cycle_clusters, CycleClusterConfig};
use rpq_eval::ProductEvaluator;
use rpq_graph::{GraphDelta, PairSet, VersionedGraph, VertexId};
use rpq_reduction::{DynamicRtc, MaintenanceConfig, Rtc};
use rpq_regex::Regex;
use std::time::Duration;

/// Tiny deterministic LCG (the bench needs cheap uniform pairs, not rand).
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u32 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as u32
    }
}

fn structure_cases() -> Vec<(String, PairSet)> {
    let mut cases = Vec::new();
    // Dense join relation on an R-MAT graph (one giant SCC + fringe).
    let graph = rmat_n_scaled(3, 10, 7);
    let r_g = ProductEvaluator::new(&graph, &Regex::parse("l0.l1").unwrap()).evaluate();
    cases.push((format!("rmat_join(|R_G|={})", r_g.len()), r_g));
    // Cluster-structured relation (many mid-size SCCs).
    let graph = cycle_clusters(&CycleClusterConfig {
        clusters: 150,
        cluster_size: 8,
        inter_edges: 120,
        labels: 2,
        seed: 11,
    });
    let r_g = ProductEvaluator::new(&graph, &Regex::parse("l0|l1").unwrap()).evaluate();
    cases.push((format!("clusters(|R_G|={})", r_g.len()), r_g));
    cases
}

fn bench_structure_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_rtc_structure");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let config = MaintenanceConfig::default();
    for (label, r_g) in structure_cases() {
        let k = (r_g.len() / 1000).max(2); // ~0.1% of the relation
        let pairs: Vec<(VertexId, VertexId)> = r_g.iter().collect();
        let stride = (pairs.len() / k).max(1);
        let real: Vec<(VertexId, VertexId)> =
            pairs.iter().step_by(stride).take(k).copied().collect();
        let max_v = pairs
            .iter()
            .map(|&(a, b)| a.raw().max(b.raw()))
            .max()
            .unwrap_or(1);

        // churn: delete real pairs / reinsert them, alternating. Each
        // iteration performs TWO refreshes; the rebuild arm mirrors that
        // with two from-scratch builds of the matching relations.
        let mut dynamic = DynamicRtc::from_pairs(&r_g);
        group.bench_function(BenchmarkId::new("churn_incremental", &label), |b| {
            b.iter(|| {
                dynamic.apply(&[], &real, &config);
                let fwd = dynamic.snapshot();
                dynamic.apply(&real, &[], &config);
                (
                    fwd.closure_pair_count(),
                    dynamic.snapshot().closure_pair_count(),
                )
            })
        });
        let shrunk = {
            let mut d = DynamicRtc::from_pairs(&r_g);
            d.apply(&[], &real, &config);
            d.pairs()
        };
        group.bench_function(BenchmarkId::new("churn_rebuild", &label), |b| {
            b.iter(|| {
                (
                    Rtc::from_pairs(&shrunk).closure_pair_count(),
                    Rtc::from_pairs(&r_g).closure_pair_count(),
                )
            })
        });

        // growth: insert a batch of fresh uniform pairs, then revert it
        // (two refreshes per iteration, state resets — no drift). The
        // rebuild arm builds the grown and base relations once each.
        let mut lcg = Lcg(0x9E3779B97F4A7C15);
        let fresh: Vec<(VertexId, VertexId)> = (0..k)
            .map(|_| {
                (
                    VertexId(lcg.next() % (max_v + 1)),
                    VertexId(lcg.next() % (max_v + 1)),
                )
            })
            .collect();
        let mut dynamic = DynamicRtc::from_pairs(&r_g);
        group.bench_function(BenchmarkId::new("growth_incremental", &label), |b| {
            b.iter(|| {
                dynamic.apply(&fresh, &[], &config);
                let fwd = dynamic.snapshot();
                dynamic.apply(&[], &fresh, &config);
                (
                    fwd.closure_pair_count(),
                    dynamic.snapshot().closure_pair_count(),
                )
            })
        });
        let grown = {
            let mut d = DynamicRtc::from_pairs(&r_g);
            d.apply(&fresh, &[], &config);
            d.pairs()
        };
        group.bench_function(BenchmarkId::new("growth_rebuild", &label), |b| {
            b.iter(|| {
                (
                    Rtc::from_pairs(&grown).closure_pair_count(),
                    Rtc::from_pairs(&r_g).closure_pair_count(),
                )
            })
        });

        // mixed (adversarial): delete real pairs + insert random ones,
        // then invert — every other refresh splits a big SCC.
        let mut lcg = Lcg(42);
        let random: Vec<(VertexId, VertexId)> = (0..k)
            .map(|_| {
                (
                    VertexId(lcg.next() % (max_v + 1)),
                    VertexId(lcg.next() % (max_v + 1)),
                )
            })
            .collect();
        let mut dynamic = DynamicRtc::from_pairs(&r_g);
        group.bench_function(BenchmarkId::new("mixed_incremental", &label), |b| {
            b.iter(|| {
                dynamic.apply(&random, &real, &config);
                let fwd = dynamic.snapshot();
                dynamic.apply(&real, &random, &config);
                (
                    fwd.closure_pair_count(),
                    dynamic.snapshot().closure_pair_count(),
                )
            })
        });
        let crossed = {
            let mut d = DynamicRtc::from_pairs(&r_g);
            d.apply(&random, &real, &config);
            d.pairs()
        };
        group.bench_function(BenchmarkId::new("mixed_rebuild", &label), |b| {
            b.iter(|| {
                (
                    Rtc::from_pairs(&crossed).closure_pair_count(),
                    Rtc::from_pairs(&r_g).closure_pair_count(),
                )
            })
        });
    }
    group.finish();
}

fn bench_engine_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_engine_churn");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let graph = rmat_n_scaled(3, 10, 45);
    // Three closure bodies over distinct label pairs; the delta stream
    // below only touches label l0, so one body refreshes incrementally
    // and two re-stamp after an equality check.
    let queries: Vec<Regex> = [
        "l2.(l0.l1)+.l3",
        "l0.(l2.l3)+.l1",
        "l3.(l1.l2)+.l0",
        "(l0.l1)+",
        "(l2.l3)+",
    ]
    .iter()
    .map(|q| Regex::parse(q).unwrap())
    .collect();
    // 4 rounds of ~0.5% |E| updates, all on label l0: delete existing l0
    // edges (stride-sampled) and insert random ones.
    let l0_edges: Vec<(u32, u32)> = {
        let l0 = graph.labels().get("l0").unwrap();
        graph
            .edges_with_label(l0)
            .iter()
            .map(|&(s, d)| (s.raw(), d.raw()))
            .collect()
    };
    let per_round = (graph.edge_count() / 200).max(4);
    let n = graph.vertex_count() as u32;
    let mut lcg = Lcg(7);
    let deltas: Vec<GraphDelta> = (0..4)
        .map(|round| {
            let mut delta = GraphDelta::new();
            for i in 0..per_round / 2 {
                let (s, d) = l0_edges[(round * 131 + i * 17) % l0_edges.len()];
                delta.delete(s, "l0", d);
            }
            for _ in 0..per_round / 2 {
                delta.insert(lcg.next() % n, "l0", lcg.next() % n);
            }
            delta
        })
        .collect();
    let label = format!("rmat3@2^10({} bodies, {} upd/round)", 3, per_round);

    group.bench_function(BenchmarkId::new("incremental_engine", &label), |b| {
        b.iter(|| {
            let mut engine = Engine::with_config_versioned(
                VersionedGraph::new(graph.clone()),
                EngineConfig::default(),
            );
            engine.evaluate_set(&queries).unwrap();
            let mut total = 0usize;
            for delta in &deltas {
                engine.apply_delta(delta);
                total += engine
                    .evaluate_set(&queries)
                    .unwrap()
                    .iter()
                    .map(PairSet::len)
                    .sum::<usize>();
            }
            total
        })
    });

    group.bench_function(BenchmarkId::new("rebuild_engine", &label), |b| {
        b.iter(|| {
            let mut vg = VersionedGraph::new(graph.clone());
            let warm = Engine::with_strategy(vg.graph(), Strategy::RtcSharing);
            warm.evaluate_set(&queries).unwrap();
            drop(warm);
            let mut total = 0usize;
            for delta in &deltas {
                vg.apply(delta);
                // Cold cache: the graph changed, rebuild everything.
                let engine = Engine::with_strategy(vg.graph(), Strategy::RtcSharing);
                total += engine
                    .evaluate_set(&queries)
                    .unwrap()
                    .iter()
                    .map(PairSet::len)
                    .sum::<usize>();
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_structure_maintenance, bench_engine_churn);
criterion_main!(benches);
