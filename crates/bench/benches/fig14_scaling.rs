//! Figs. 14–15: amortization with the number of RPQs per set (1, 4, 10) on
//! an RMAT_3-shaped graph. RTC/Full costs amortize; NoSharing grows
//! linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_core::Strategy;
use rpq_datasets::rmat::rmat_n_scaled;
use rpq_datasets::workload::{alphabet_of, generate_workload, WorkloadConfig};
use std::time::Duration;

fn bench_fig14_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let graph = rmat_n_scaled(3, 9, 45);
    let sets = generate_workload(
        &alphabet_of(&graph),
        &WorkloadConfig {
            rs_per_length: 1,
            queries_per_set: 10,
            ..WorkloadConfig::default()
        },
    );
    let set = &sets[0];
    for k in [1usize, 4, 10] {
        let queries: Vec<_> = set.prefix(k).to_vec();
        for strategy in Strategy::ALL {
            group.bench_with_input(
                BenchmarkId::new(strategy.short_name(), format!("{k}rpqs")),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        let engine = rpq_core::Engine::with_strategy(&graph, strategy);
                        engine.evaluate_set(queries).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig14_scaling);
criterion_main!(benches);
