//! Join-planning ablation for closure-free clauses: left-to-right label
//! joins vs the rare-label-first plan (Koschmieder-style \[10\]). The skewed
//! alphabet makes the pivot choice matter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_eval::{eval_label_sequence, eval_label_sequence_planned};
use rpq_graph::{GraphBuilder, LabelId};
use std::time::Duration;

/// A graph with one rare label (64 edges) and three common ones (~20k each).
fn skewed_graph() -> rpq_graph::LabeledMultigraph {
    let mut rng = StdRng::seed_from_u64(99);
    let mut b = GraphBuilder::new();
    b.ensure_vertices(4096);
    for _ in 0..20_000 {
        for l in ["common0", "common1", "common2"] {
            b.add_edge(rng.gen_range(0..4096), l, rng.gen_range(0..4096));
        }
    }
    for _ in 0..64 {
        b.add_edge(rng.gen_range(0..4096), "rare", rng.gen_range(0..4096));
    }
    b.build()
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let g = skewed_graph();
    let seq: Vec<LabelId> = ["common0", "common1", "rare", "common2"]
        .iter()
        .map(|n| g.labels().get(n).unwrap())
        .collect();

    group.bench_function(BenchmarkId::new("left_to_right", "c.c.rare.c"), |b| {
        b.iter(|| eval_label_sequence(&g, &seq))
    });
    group.bench_function(BenchmarkId::new("rare_first", "c.c.rare.c"), |b| {
        b.iter(|| eval_label_sequence_planned(&g, &seq))
    });
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
