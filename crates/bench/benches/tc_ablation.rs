//! TC-algorithm ablation (TABLE III empirically): naive per-vertex BFS
//! (`O(|V_R|·|E_R|)`, what FullSharing pays) vs Purdom-style condensation
//! closure vs Nuutila-style one-pass, and the RTC-only variant that skips
//! vertex-level expansion entirely (what RTCSharing pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_datasets::rmat::rmat_n_scaled;
use rpq_eval::ProductEvaluator;
use rpq_graph::{tarjan_scc, Condensation, MappedDigraph};
use rpq_reduction::tc::{closure_of_condensation, nuutila_closure, tc_condensation, tc_naive};
use rpq_regex::Regex;
use std::time::Duration;

fn bench_tc_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tc_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // G_R for a 2-label closure body on a moderately dense RMAT graph —
    // the regime where SCCs are large and reduction pays off.
    for n in [2u32, 4] {
        let graph = rmat_n_scaled(n, 10, 7);
        let r_g = ProductEvaluator::new(&graph, &Regex::parse("l0.l1").unwrap()).evaluate();
        let gr = MappedDigraph::from_pairset(&r_g);
        let label = format!(
            "RMAT_{n}(|V_R|={},|E_R|={})",
            gr.vertex_count(),
            gr.edge_count()
        );

        group.bench_with_input(BenchmarkId::new("naive_bfs", &label), &gr, |b, gr| {
            b.iter(|| tc_naive(&gr.graph))
        });
        group.bench_with_input(BenchmarkId::new("purdom_expand", &label), &gr, |b, gr| {
            b.iter(|| tc_condensation(&gr.graph))
        });
        group.bench_with_input(BenchmarkId::new("nuutila", &label), &gr, |b, gr| {
            b.iter(|| nuutila_closure(&gr.graph))
        });
        group.bench_with_input(BenchmarkId::new("rtc_only", &label), &gr, |b, gr| {
            b.iter(|| {
                let scc = tarjan_scc(&gr.graph);
                let cond = Condensation::new(&gr.graph, &scc);
                closure_of_condensation(&cond)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tc_ablation);
criterion_main!(benches);
