//! Sequential/parallel crossover ablation for the scoped-thread pool.
//!
//! Three parallelized hot paths, each swept over worker counts {1, 2, 4}:
//! the per-vertex BFS closure (`tc_naive_parallel`), Theorem 1's RTC
//! expansion (`Rtc::expand_parallel`), and the engine's batch mode
//! (`evaluate_set` with `EngineConfig::threads`). Small inputs quantify
//! where spawn/stitch overhead eats the win (the crossover the README's
//! speedup table reports); larger inputs show the scaling headroom on
//! multi-core hosts. On a single-core container all thread counts should
//! land within noise of each other — the fan-out is cheap enough that
//! oversubscription does not regress.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_core::{Engine, EngineConfig, Strategy};
use rpq_datasets::rmat::rmat_n_scaled;
use rpq_datasets::workload::{alphabet_of, generate_workload, WorkloadConfig};
use rpq_eval::ProductEvaluator;
use rpq_graph::MappedDigraph;
use rpq_reduction::{tc_naive_parallel, Rtc};
use rpq_regex::Regex;
use std::time::Duration;

const THREADS: [usize; 3] = [1, 2, 4];

fn bench_par_tc_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_tc_naive");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Small (crossover regime) and moderate (scaling regime) R_G sizes.
    for (n, scale) in [(2u32, 8u32), (2, 10), (4, 10)] {
        let graph = rmat_n_scaled(n, scale, 7);
        let r_g = ProductEvaluator::new(&graph, &Regex::parse("l0.l1").unwrap()).evaluate();
        let gr = MappedDigraph::from_pairset(&r_g);
        let label = format!("RMAT_{n}@2^{scale}(|V_R|={})", gr.vertex_count());
        for t in THREADS {
            group.bench_with_input(
                BenchmarkId::new(format!("threads_{t}"), &label),
                &gr,
                |b, gr| b.iter(|| tc_naive_parallel(&gr.graph, t)),
            );
        }
    }
    group.finish();
}

fn bench_par_expand(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_rtc_expand");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for (n, scale) in [(2u32, 10u32), (4, 10)] {
        let graph = rmat_n_scaled(n, scale, 7);
        let r_g = ProductEvaluator::new(&graph, &Regex::parse("l0.l1").unwrap()).evaluate();
        let rtc = Rtc::from_pairs(&r_g);
        let label = format!(
            "RMAT_{n}@2^{scale}(sccs={},pairs={})",
            rtc.scc_count(),
            rtc.expanded_pair_count()
        );
        for t in THREADS {
            group.bench_with_input(
                BenchmarkId::new(format!("threads_{t}"), &label),
                &rtc,
                |b, rtc| b.iter(|| rtc.expand_parallel(t)),
            );
        }
    }
    group.finish();
}

fn bench_par_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_batch_eval");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    // The multi_query_workload shape: one 4-RPQ set sharing a closure body.
    let graph = rmat_n_scaled(3, 10, 45);
    let sets = generate_workload(
        &alphabet_of(&graph),
        &WorkloadConfig {
            rs_per_length: 1,
            r_lengths: vec![2],
            queries_per_set: 4,
            ..WorkloadConfig::default()
        },
    );
    let queries = &sets[0].queries;
    for strategy in [Strategy::RtcSharing, Strategy::FullSharing] {
        for t in THREADS {
            group.bench_with_input(
                BenchmarkId::new(
                    format!("{}_threads_{t}", strategy.short_name()),
                    "RMAT_3@2^10x4rpq",
                ),
                queries,
                |b, queries| {
                    b.iter(|| {
                        let e = Engine::with_config(
                            &graph,
                            EngineConfig {
                                strategy,
                                threads: t,
                                ..EngineConfig::default()
                            },
                        );
                        e.evaluate_set(queries).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_par_tc_naive,
    bench_par_expand,
    bench_par_batch
);
criterion_main!(benches);
