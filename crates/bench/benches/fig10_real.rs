//! Fig. 10(b): multiple-RPQ response time on real-dataset surrogates
//! (Robots and Youtube, the sparse and dense ends of the real sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_core::Strategy;
use rpq_datasets::surrogate::{robots_like, youtube_like_scaled};
use rpq_datasets::workload::{alphabet_of, generate_workload, WorkloadConfig};
use std::time::Duration;

fn bench_fig10_real(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_real");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let datasets = [
        ("Robots", robots_like()),
        ("Youtube(1/4)", youtube_like_scaled(4)),
    ];
    for (name, graph) in &datasets {
        let sets = generate_workload(
            &alphabet_of(graph),
            &WorkloadConfig {
                rs_per_length: 1,
                queries_per_set: 4,
                ..WorkloadConfig::default()
            },
        );
        let queries: Vec<_> = sets[0].queries[..4].to_vec();
        for strategy in Strategy::ALL {
            group.bench_with_input(
                BenchmarkId::new(strategy.short_name(), name),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        let engine = rpq_core::Engine::with_strategy(graph, strategy);
                        engine.evaluate_set(queries).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10_real);
criterion_main!(benches);
