//! Batch-unit ablation: Algorithm 2 with the useless/redundant-operation
//! eliminations (RTC) vs the FullSharing-style join that pays a duplicate
//! check per successor insert. Shared structures are prebuilt so the bench
//! isolates the `Pre_G ⋈ R⁺_G ⋈ Post` stage (the paper's Fig. 11 delta).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpq_core::{eval_batch_unit_full, eval_batch_unit_rtc, EliminationStats, PreRelation};
use rpq_datasets::rmat::rmat_n_scaled;
use rpq_eval::ProductEvaluator;
use rpq_reduction::{FullTc, Rtc};
use rpq_regex::{ClosureKind, Regex};
use std::time::Duration;

fn bench_batchunit(c: &mut Criterion) {
    let mut group = c.benchmark_group("batchunit_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for n in [2u32, 4] {
        let graph = rmat_n_scaled(n, 10, 11);
        let pre_g = ProductEvaluator::new(&graph, &Regex::parse("l2").unwrap()).evaluate();
        let r_g = ProductEvaluator::new(&graph, &Regex::parse("l0.l1").unwrap()).evaluate();
        let rtc = Rtc::from_pairs(&r_g);
        let full = FullTc::from_pairs(&r_g);
        let pre = PreRelation::from(pre_g);
        let post = vec!["l3".to_string()];
        let label = format!("RMAT_{n}");

        group.bench_with_input(BenchmarkId::new("rtc_alg2", &label), &pre, |b, pre| {
            b.iter(|| {
                let mut stats = EliminationStats::default();
                eval_batch_unit_rtc(&graph, pre, &rtc, ClosureKind::Plus, &post, &mut stats)
            })
        });
        group.bench_with_input(BenchmarkId::new("full_join", &label), &pre, |b, pre| {
            b.iter(|| {
                let mut stats = EliminationStats::default();
                eval_batch_unit_full(&graph, pre, &full, ClosureKind::Plus, &post, &mut stats)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batchunit);
criterion_main!(benches);
