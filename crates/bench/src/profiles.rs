//! Experiment scale profiles.
//!
//! The paper runs on an i7-7700 with 64 GB; this harness defaults to a
//! scaled-down profile that finishes in minutes while preserving every
//! per-label degree point (the x-axis of all figures). `paper` reproduces
//! the full `2^13`-vertex RMAT family of TABLE IV.

/// An experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Smoke-test scale: `2^9`-vertex synthetic graphs, tiny workloads.
    Fast,
    /// Default: `2^11`-vertex synthetic graphs, Yago2s at 1/2000 scale.
    Default,
    /// Paper scale: `2^13`-vertex RMAT_N (TABLE IV), Yago2s at 1/200.
    Paper,
}

impl Profile {
    /// Parses a profile name.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "fast" => Some(Profile::Fast),
            "default" => Some(Profile::Default),
            "paper" => Some(Profile::Paper),
            _ => None,
        }
    }

    /// log2 vertex count of the synthetic RMAT graphs.
    pub fn rmat_scale(&self) -> u32 {
        match self {
            Profile::Fast => 9,
            Profile::Default => 11,
            Profile::Paper => 13,
        }
    }

    /// The RMAT_N degree exponents to sweep (degree per label = `2^(N-2)`).
    pub fn rmat_ns(&self) -> Vec<u32> {
        match self {
            Profile::Fast => vec![0, 2, 4],
            Profile::Default | Profile::Paper => vec![0, 1, 2, 3, 4, 5, 6],
        }
    }

    /// Yago2s surrogate scale denominator.
    pub fn yago_denominator(&self) -> usize {
        match self {
            Profile::Fast => 20_000,
            Profile::Default => 2_000,
            Profile::Paper => 200,
        }
    }

    /// Number of distinct `R`s per length in the workload (the paper
    /// uses 10).
    pub fn rs_per_length(&self) -> usize {
        match self {
            Profile::Fast => 1,
            Profile::Default => 2,
            Profile::Paper => 10,
        }
    }

    /// Number of `R`s per length for Experiment 2. The #RPQs sweep runs
    /// every prefix size over every set, so it multiplies query volume by
    /// ~8x relative to Experiment 1; smaller profiles use fewer sets.
    pub fn rs_per_length_exp2(&self) -> usize {
        match self {
            Profile::Fast | Profile::Default => 1,
            Profile::Paper => 10,
        }
    }

    /// Scale denominator for the Advogato surrogate in Experiment 2
    /// (degree preserved; see `surrogate::advogato_like_scaled`).
    pub fn advogato_denominator_exp2(&self) -> usize {
        match self {
            Profile::Fast => 4,
            Profile::Default => 2,
            Profile::Paper => 1,
        }
    }

    /// Multiple-RPQ set sizes for Experiment 2 (the paper's 1..10 ladder).
    pub fn set_sizes(&self) -> Vec<usize> {
        match self {
            Profile::Fast => vec![1, 4],
            Profile::Default | Profile::Paper => vec![1, 2, 4, 6, 8, 10],
        }
    }

    /// The fixed set size used in Experiment 1 (the paper's median: 4).
    pub fn fixed_set_size(&self) -> usize {
        4
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Profile::Fast => "fast",
            Profile::Default => "default",
            Profile::Paper => "paper",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for p in [Profile::Fast, Profile::Default, Profile::Paper] {
            assert_eq!(Profile::parse(&p.to_string()), Some(p));
        }
        assert_eq!(Profile::parse("nope"), None);
    }

    #[test]
    fn paper_profile_matches_table4() {
        let p = Profile::Paper;
        assert_eq!(p.rmat_scale(), 13);
        assert_eq!(p.rmat_ns(), vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(p.set_sizes(), vec![1, 2, 4, 6, 8, 10]);
        assert_eq!(p.rs_per_length(), 10);
        assert_eq!(p.fixed_set_size(), 4);
    }
}
