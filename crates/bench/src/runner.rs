//! Executes one multiple-RPQ set under one strategy and captures metrics.

use rpq_core::{Breakdown, EliminationStats, Engine, EngineConfig, Strategy};
use rpq_graph::LabeledMultigraph;
use rpq_regex::Regex;
use std::time::Duration;

/// Metrics of one multiple-RPQ set evaluation.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// Strategy that produced these metrics.
    pub strategy: Strategy,
    /// Wall-clock query response time for the whole set (includes building
    /// reduced graphs, shared data, and all query evaluations — the
    /// paper's "query response time").
    pub total: Duration,
    /// Stage breakdown (`Shared_Data` / `Pre⋈R⁺` / remainder).
    pub breakdown: Breakdown,
    /// Operation-elimination counters.
    pub eliminations: EliminationStats,
    /// Shared-data size in pairs (`|R̄⁺_G|` or `|R⁺_G|`; 0 for NoSharing).
    pub shared_pairs: usize,
    /// Shared-structure vertex count (`|V̄_R|` for RTC, `|V_R|` for Full).
    pub shared_vertices: usize,
    /// Total result pairs across all queries (sanity/consistency checks).
    pub result_pairs: usize,
}

/// Runs `queries` as one set under `strategy` on a fresh engine.
///
/// Returns `None` if any query fails (DNF limit); workload queries never do.
pub fn run_query_set(
    graph: &LabeledMultigraph,
    queries: &[Regex],
    strategy: Strategy,
) -> Option<RunMetrics> {
    run_query_set_threads(graph, queries, strategy, 1)
}

/// [`run_query_set`] with an explicit worker-thread count (1 = sequential,
/// 0 = all cores) — the engine runs its parallel batch mode when > 1.
pub fn run_query_set_threads(
    graph: &LabeledMultigraph,
    queries: &[Regex],
    strategy: Strategy,
    threads: usize,
) -> Option<RunMetrics> {
    let engine = Engine::with_config(
        graph,
        EngineConfig {
            strategy,
            threads,
            ..EngineConfig::default()
        },
    );
    let results = engine.evaluate_set(queries).ok()?;
    let result_pairs = results.iter().map(|r| r.len()).sum();
    let breakdown = engine.breakdown();
    let shared_vertices = match strategy {
        Strategy::NoSharing => 0,
        Strategy::FullSharing => engine.cache().full_total_vertices(),
        Strategy::RtcSharing => engine.cache().rtc_total_sccs(),
    };
    Some(RunMetrics {
        strategy,
        total: breakdown.total,
        breakdown,
        eliminations: engine.elimination_stats(),
        shared_pairs: engine.shared_data_pairs(),
        shared_vertices,
        result_pairs,
    })
}

/// Runs the set under all three strategies, asserting result agreement.
///
/// The agreement check makes every harness run double as a correctness
/// test: if any strategy disagrees on any query, the harness panics with
/// the offending query.
pub fn run_all_strategies(graph: &LabeledMultigraph, queries: &[Regex]) -> Vec<RunMetrics> {
    run_all_strategies_threads(graph, queries, 1)
}

/// [`run_all_strategies`] with an explicit worker-thread count plumbed
/// into every engine (the `--threads` flag of the experiments driver).
pub fn run_all_strategies_threads(
    graph: &LabeledMultigraph,
    queries: &[Regex],
    threads: usize,
) -> Vec<RunMetrics> {
    let mut reference: Option<Vec<usize>> = None;
    let mut out = Vec::with_capacity(3);
    for strategy in Strategy::ALL {
        let engine = Engine::with_config(
            graph,
            EngineConfig {
                strategy,
                threads,
                ..EngineConfig::default()
            },
        );
        let results = engine
            .evaluate_set(queries)
            .expect("workload queries stay under the DNF limit");
        let sizes: Vec<usize> = results.iter().map(|r| r.len()).collect();
        match &reference {
            None => reference = Some(sizes),
            Some(expect) => {
                for (i, (a, b)) in expect.iter().zip(&sizes).enumerate() {
                    assert_eq!(
                        a, b,
                        "strategy {strategy} disagrees on query {i}: {}",
                        queries[i]
                    );
                }
            }
        }
        let breakdown = engine.breakdown();
        let shared_vertices = match strategy {
            Strategy::NoSharing => 0,
            Strategy::FullSharing => engine.cache().full_total_vertices(),
            Strategy::RtcSharing => engine.cache().rtc_total_sccs(),
        };
        out.push(RunMetrics {
            strategy,
            total: breakdown.total,
            breakdown,
            eliminations: engine.elimination_stats(),
            shared_pairs: engine.shared_data_pairs(),
            shared_vertices,
            result_pairs: results.iter().map(|r| r.len()).sum(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::fixtures::paper_graph;

    #[test]
    fn run_metrics_for_paper_query() {
        let g = paper_graph();
        let queries = vec![Regex::parse("d.(b.c)+.c").unwrap()];
        let metrics = run_query_set(&g, &queries, Strategy::RtcSharing).unwrap();
        assert_eq!(metrics.result_pairs, 2);
        assert_eq!(metrics.shared_pairs, 3);
        assert_eq!(metrics.shared_vertices, 3); // 3 SCCs
        assert!(metrics.total > Duration::ZERO);
    }

    #[test]
    fn threaded_runner_matches_sequential() {
        let g = paper_graph();
        let queries = vec![
            Regex::parse("d.(b.c)+.c").unwrap(),
            Regex::parse("a.(b.c)*.c").unwrap(),
        ];
        let seq = run_query_set(&g, &queries, Strategy::RtcSharing).unwrap();
        for threads in [2usize, 8] {
            let par = run_query_set_threads(&g, &queries, Strategy::RtcSharing, threads).unwrap();
            assert_eq!(par.result_pairs, seq.result_pairs, "threads {threads}");
            assert_eq!(par.shared_pairs, seq.shared_pairs, "threads {threads}");
        }
        let all = run_all_strategies_threads(&g, &queries, 2);
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|m| m.result_pairs == seq.result_pairs));
    }

    #[test]
    fn all_strategies_agree_and_report() {
        let g = paper_graph();
        let queries = vec![
            Regex::parse("d.(b.c)+.c").unwrap(),
            Regex::parse("a.(b.c)*.c").unwrap(),
        ];
        let all = run_all_strategies(&g, &queries);
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|m| m.result_pairs == all[0].result_pairs));
        // NoSharing shares nothing.
        assert_eq!(all[0].shared_pairs, 0);
        // RTC shares fewer pairs than Full.
        assert!(all[2].shared_pairs <= all[1].shared_pairs);
    }
}
