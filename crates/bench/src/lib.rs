#![warn(missing_docs)]
//! Experiment harness regenerating the paper's evaluation (Section V).
//!
//! The [`profiles`] module defines three experiment scales (`fast`,
//! `default`, `paper`); [`datasets`] builds the synthetic degree sweep and
//! the real-dataset surrogates for a profile; [`runner`] executes a
//! multiple-RPQ workload under each strategy and captures the metrics the
//! figures plot; [`experiments`] assembles those metrics into the exact
//! rows/series of TABLE IV and Figs. 10–15; [`table`] renders aligned text
//! and CSV.
//!
//! The `experiments` binary (`cargo run -p rpq_bench --release --bin
//! experiments -- all`) drives everything.

pub mod ablation;
pub mod datasets;
pub mod experiments;
pub mod profiles;
pub mod runner;
pub mod table;

pub use profiles::Profile;
pub use runner::{
    run_all_strategies, run_all_strategies_threads, run_query_set, run_query_set_threads,
    RunMetrics,
};
