//! Text-mode ablation experiments (the quick counterpart of the Criterion
//! ablation benches, for inclusion in `EXPERIMENTS.md`).
//!
//! Four tables:
//!
//! 1. **TC algorithms** — naive per-vertex BFS (what FullSharing pays) vs
//!    Purdom-style expansion vs Nuutila one-pass vs the RTC-only closure
//!    (what RTCSharing pays) vs the bitset closure, on real `G_R`s.
//! 2. **Batch-unit evaluation** — Algorithm 2 vs the FullSharing join,
//!    with the elimination counters that explain the gap.
//! 3. **SCC sensitivity** — shared sizes and times as the average SCC size
//!    grows with everything else held fixed.
//! 4. **Row representation** — forced-sparse vs forced-dense vs adaptive
//!    closure rows at several crossover thresholds, on one
//!    reachability-dense and one reachability-sparse workload.

use crate::profiles::Profile;
use crate::table::{fmt_ratio, fmt_secs, Table};
use rpq_core::{eval_batch_unit_full, eval_batch_unit_rtc, EliminationStats, PreRelation};
use rpq_datasets::rmat::rmat_n_scaled;
use rpq_datasets::structured::{cycle_clusters, CycleClusterConfig};
use rpq_eval::ProductEvaluator;
use rpq_graph::{tarjan_scc, Condensation, MappedDigraph, ReprMode, RowSetPolicy};
use rpq_reduction::{
    closure_of_condensation, closure_of_condensation_bitset, nuutila_closure, tc_condensation,
    tc_naive, FullTc, Rtc,
};
use rpq_regex::{ClosureKind, Regex};
use std::time::{Duration, Instant};

/// Times `f` as the minimum of `reps` runs (noise-robust on busy hosts).
fn time_min<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed());
    }
    best
}

/// Table 1: transitive-closure algorithm comparison on RMAT-derived `G_R`s.
pub fn tc_algorithms_table(profile: Profile) -> Table {
    let mut t = Table::new(
        "Ablation: TC algorithms on G_R",
        &[
            "graph",
            "|V_R|",
            "|E_R|",
            "naive(s)",
            "purdom(s)",
            "nuutila(s)",
            "rtc_only(s)",
            "bitset(s)",
        ],
    );
    for n in [2u32, 4] {
        let graph = rmat_n_scaled(n, profile.rmat_scale().min(11), 7);
        let r_g = ProductEvaluator::new(&graph, &Regex::parse("l0.l1").unwrap()).evaluate();
        let gr = MappedDigraph::from_pairset(&r_g);
        let naive = time_min(3, || tc_naive(&gr.graph));
        let purdom = time_min(3, || tc_condensation(&gr.graph));
        let nuutila = time_min(3, || nuutila_closure(&gr.graph));
        let rtc_only = time_min(3, || {
            let scc = tarjan_scc(&gr.graph);
            let cond = Condensation::new(&gr.graph, &scc);
            closure_of_condensation(&cond)
        });
        let scc = tarjan_scc(&gr.graph);
        let cond = Condensation::new(&gr.graph, &scc);
        let bitset = time_min(3, || closure_of_condensation_bitset(&cond));
        t.row(vec![
            format!("RMAT_{n}"),
            gr.vertex_count().to_string(),
            gr.edge_count().to_string(),
            fmt_secs(naive),
            fmt_secs(purdom),
            fmt_secs(nuutila),
            fmt_secs(rtc_only),
            fmt_secs(bitset),
        ]);
    }
    t
}

/// Table 2: Algorithm 2 vs the FullSharing join, with elimination counters.
pub fn batch_unit_table(profile: Profile) -> Table {
    let mut t = Table::new(
        "Ablation: batch-unit evaluation (Pre⋈R+⋈Post)",
        &[
            "graph",
            "alg2(s)",
            "full_join(s)",
            "speedup",
            "redundant1",
            "redundant2",
            "useless1",
            "full_dup_hits",
        ],
    );
    for n in [2u32, 4] {
        let graph = rmat_n_scaled(n, profile.rmat_scale().min(11), 11);
        let pre_g = ProductEvaluator::new(&graph, &Regex::parse("l2").unwrap()).evaluate();
        let r_g = ProductEvaluator::new(&graph, &Regex::parse("l0.l1").unwrap()).evaluate();
        let rtc = Rtc::from_pairs(&r_g);
        let full = FullTc::from_pairs(&r_g);
        let pre = PreRelation::from(pre_g);
        let post = vec!["l3".to_string()];

        let mut stats = EliminationStats::default();
        let alg2 = time_min(3, || {
            stats = EliminationStats::default();
            eval_batch_unit_rtc(&graph, &pre, &rtc, ClosureKind::Plus, &post, &mut stats)
        });
        let mut full_stats = EliminationStats::default();
        let full_join = time_min(3, || {
            full_stats = EliminationStats::default();
            eval_batch_unit_full(
                &graph,
                &pre,
                &full,
                ClosureKind::Plus,
                &post,
                &mut full_stats,
            )
        });
        t.row(vec![
            format!("RMAT_{n}"),
            fmt_secs(alg2),
            fmt_secs(full_join),
            fmt_ratio(full_join.as_secs_f64(), alg2.as_secs_f64()),
            stats.redundant1_skipped.to_string(),
            stats.redundant2_skipped.to_string(),
            stats.useless1_skipped.to_string(),
            full_stats.full_duplicate_hits.to_string(),
        ]);
    }
    t
}

/// Table 3: SCC-size sensitivity with |V| and the workload held fixed.
pub fn scc_sensitivity_table() -> Table {
    let mut t = Table::new(
        "Ablation: SCC-size sensitivity (|V|=1024, |E| fixed)",
        &[
            "scc_size",
            "avg_scc",
            "Full pairs",
            "RTC pairs",
            "size ratio",
            "Full(s)",
            "RTC(s)",
            "time ratio",
        ],
    );
    for cluster_size in [1u32, 4, 16, 64] {
        let graph = cycle_clusters(&CycleClusterConfig {
            clusters: 1024 / cluster_size,
            cluster_size,
            inter_edges: 2048,
            labels: 3,
            seed: 21,
        });
        let queries: Vec<Regex> = ["l1.(l0)+.l2", "l2.(l0)+.l1", "l0.(l0)+.l1", "l1.(l0)+.l1"]
            .iter()
            .map(|q| Regex::parse(q).unwrap())
            .collect();
        let r_g = ProductEvaluator::new(&graph, &Regex::parse("l0").unwrap()).evaluate();
        let rtc = Rtc::from_pairs(&r_g);
        let full = FullTc::from_pairs(&r_g);

        let full_time = time_min(2, || {
            let e = rpq_core::Engine::with_strategy(&graph, rpq_core::Strategy::FullSharing);
            e.evaluate_set(&queries).unwrap()
        });
        let rtc_time = time_min(2, || {
            let e = rpq_core::Engine::with_strategy(&graph, rpq_core::Strategy::RtcSharing);
            e.evaluate_set(&queries).unwrap()
        });
        t.row(vec![
            cluster_size.to_string(),
            format!("{:.2}", rtc.average_scc_size()),
            full.pair_count().to_string(),
            rtc.closure_pair_count().to_string(),
            fmt_ratio(
                full.pair_count() as f64,
                rtc.closure_pair_count().max(1) as f64,
            ),
            fmt_secs(full_time),
            fmt_secs(rtc_time),
            fmt_ratio(full_time.as_secs_f64(), rtc_time.as_secs_f64()),
        ]);
    }
    t
}

/// The representation policies the ablation sweeps: both pure modes plus
/// the adaptive hybrid at three crossover densities around the default
/// (`1/32`).
fn repr_policies() -> [(&'static str, RowSetPolicy); 5] {
    [
        ("sparse", RowSetPolicy::sparse()),
        ("dense", RowSetPolicy::dense()),
        (
            "adapt 1/64",
            RowSetPolicy {
                mode: ReprMode::Adaptive,
                crossover: 1.0 / 64.0,
            },
        ),
        ("adapt 1/32", RowSetPolicy::adaptive()),
        (
            "adapt 1/8",
            RowSetPolicy {
                mode: ReprMode::Adaptive,
                crossover: 1.0 / 8.0,
            },
        ),
    ]
}

/// Table 4: hybrid row-representation ablation (density × crossover).
///
/// The `cycles` workload is a deep random DAG of small cycle clusters —
/// most SCCs reach a large fraction of the condensation, so closure rows
/// are dense and the bitset backing should win on both time and memory.
/// The `rmat` workload has shallow reachability, so rows stay far below
/// any sensible crossover and forcing them dense wastes memory.
/// `vs sparse` is the closure-construction speedup over the forced-sparse
/// row (construction is the representation-sensitive phase; `eval(s)` is
/// reported to show end-to-end times are join-dominated and unharmed).
/// The `(B)` columns are heap bytes; `scripts/bench_drift.py` watches
/// them for memory regressions.
pub fn repr_ablation_table(profile: Profile) -> Table {
    let mut t = Table::new(
        "Ablation: row representation (density × crossover)",
        &[
            "workload",
            "policy",
            "dense rows",
            "rtc mem(B)",
            "full mem(B)",
            "build(s)",
            "vs sparse",
            "eval(s)",
        ],
    );
    let scale = profile.rmat_scale().min(11);
    let cycles = cycle_clusters(&CycleClusterConfig {
        clusters: (1u32 << scale) / 4,
        cluster_size: 4,
        inter_edges: 1usize << (scale + 2),
        labels: 3,
        seed: 33,
    });
    let rmat = rmat_n_scaled(2, scale, 7);
    let queries: Vec<Regex> = ["l1.(l0)+.l2", "l2.(l0)+.l1", "l0.(l0)+.l1"]
        .iter()
        .map(|q| Regex::parse(q).unwrap())
        .collect();
    for (workload, graph) in [("cycles", &cycles), ("rmat", &rmat)] {
        let r_g = ProductEvaluator::new(graph, &Regex::parse("l0").unwrap()).evaluate();
        let mut sparse_build = f64::NAN;
        for (label, policy) in repr_policies() {
            let build = time_min(2, || Rtc::from_pairs_with(&r_g, &policy));
            let rtc = Rtc::from_pairs_with(&r_g, &policy);
            let full = FullTc::from_pairs_parallel_with(&r_g, 1, &policy);
            let eval = time_min(2, || {
                let config = rpq_core::EngineConfig {
                    representation: policy,
                    ..rpq_core::EngineConfig::default()
                };
                rpq_core::Engine::with_config(graph, config)
                    .evaluate_set(&queries)
                    .unwrap()
            });
            if label == "sparse" {
                sparse_build = build.as_secs_f64();
            }
            t.row(vec![
                workload.to_string(),
                label.to_string(),
                rtc.dense_closure_rows().to_string(),
                rtc.closure_heap_bytes().to_string(),
                full.heap_bytes().to_string(),
                fmt_secs(build),
                fmt_ratio(sparse_build, build.as_secs_f64()),
                fmt_secs(eval),
            ]);
        }
    }
    t
}

/// A Zipf-ranked pool of closure-heavy queries over the RMAT labels
/// `l0..l3`: 16 two-label closures plus 4 single-label ones, so the
/// structural cache sees 20 distinct shared bodies with a long tail.
fn zipf_query_pool() -> Vec<String> {
    let mut pool = Vec::with_capacity(20);
    for i in 0..4 {
        for j in 0..4 {
            pool.push(format!("(l{i}.l{j})+"));
        }
    }
    for i in 0..4 {
        pool.push(format!("(l{i})+"));
    }
    pool
}

/// A deterministic Zipf stream of `len` indices into a `pool`-sized
/// rank list (rank r drawn with weight `(r+1)^-1.75`; LCG-driven, no RNG
/// dep). The exponent keeps the head heavy enough that half the
/// unbounded footprint covers most of the traffic while the tail still
/// churns the eviction path.
fn zipf_stream(pool: usize, len: usize, mut state: u64) -> Vec<usize> {
    let weights: Vec<f64> = (0..pool).map(|r| (r as f64 + 1.0).powf(-1.75)).collect();
    let total: f64 = weights.iter().sum();
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut u = (state >> 11) as f64 / (1u64 << 53) as f64 * total;
            for (r, w) in weights.iter().enumerate() {
                if u < *w {
                    return r;
                }
                u -= w;
            }
            pool - 1
        })
        .collect()
}

struct PressureRun {
    elapsed: Duration,
    hit_rate: f64,
    occupancy: usize,
}

/// Table 5: cache pressure — the same Zipf query stream against an
/// unbounded cache and against a byte budget at **half** the unbounded
/// steady state. The bounded run asserts occupancy ≤ budget after every
/// query (the budget is a hard bound, not advisory), and its hit rate
/// should stay within ~20% of unbounded: Zipf's head fits in half the
/// footprint, so eviction mostly recycles the tail. `budget(B)` is the
/// deterministic structural footprint each mode may retain;
/// `scripts/bench_drift.py` gates it alongside the stream time.
pub fn cache_pressure_table(profile: Profile) -> Table {
    let mut t = Table::new(
        "Ablation: cache pressure (Zipf stream, bounded vs unbounded)",
        &[
            "cache",
            "budget(B)",
            "eval(s)",
            "hit ratio",
            "occ vs budget",
        ],
    );
    let scale = profile.rmat_scale().min(11);
    let graph = rmat_n_scaled(2, scale, 19);
    let pool = zipf_query_pool();
    let len = match profile {
        Profile::Fast => 120,
        _ => 400,
    };
    let stream = zipf_stream(pool.len(), len, 0x2f1e_5eed);

    let run = |budget: Option<usize>| -> PressureRun {
        let config = rpq_core::EngineConfig {
            cache_budget: rpq_core::CacheBudget {
                max_bytes: budget,
                ..rpq_core::CacheBudget::default()
            },
            ..rpq_core::EngineConfig::default()
        };
        let engine = rpq_core::Engine::with_config(&graph, config);
        let t = Instant::now();
        for &r in &stream {
            engine.evaluate_str(&pool[r]).unwrap();
            if let Some(max) = budget {
                // The acceptance probe: never over budget, at any point.
                assert!(
                    engine.cache().occupancy_bytes() <= max,
                    "occupancy {} B over the {} B budget",
                    engine.cache().occupancy_bytes(),
                    max
                );
            }
        }
        let elapsed = t.elapsed();
        let c = engine.cache();
        PressureRun {
            elapsed,
            hit_rate: c.hits() as f64 / (c.hits() + c.misses()).max(1) as f64,
            occupancy: c.occupancy_bytes(),
        }
    };

    let unbounded = run(None);
    let budget = (unbounded.occupancy / 2).max(1);
    let bounded = run(Some(budget));

    for (label, cap, r) in [
        ("unbounded", unbounded.occupancy, &unbounded),
        ("bounded 1/2", budget, &bounded),
    ] {
        t.row(vec![
            label.to_string(),
            cap.to_string(),
            fmt_secs(r.elapsed),
            format!("{:.3}", r.hit_rate),
            fmt_ratio(r.occupancy as f64, budget as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_pressure_fast_profile() {
        let t = cache_pressure_table(Profile::Fast);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn zipf_stream_is_deterministic_and_head_heavy() {
        let a = zipf_stream(20, 200, 42);
        assert_eq!(a, zipf_stream(20, 200, 42));
        let head = a.iter().filter(|&&r| r < 5).count();
        assert!(head > a.len() / 3, "head ranks drew only {head}/200");
    }

    #[test]
    fn ablation_tables_fast_profile() {
        let t1 = tc_algorithms_table(Profile::Fast);
        assert_eq!(t1.len(), 2);
        let t2 = batch_unit_table(Profile::Fast);
        assert_eq!(t2.len(), 2);
    }

    #[test]
    fn repr_ablation_fast_profile() {
        let t = repr_ablation_table(Profile::Fast);
        // 2 workloads × 5 policies.
        assert_eq!(t.len(), 10);
    }
}
