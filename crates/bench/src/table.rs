//! Aligned text tables and CSV output for the experiment results.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table with a title.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:<width$}", cell, width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders CSV (RFC-4180-lite: cells containing commas are quoted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to `dir/<slug>.csv` (slug derived from title).
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.slug()));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Renders JSON: `{"title", "header", "rows": [{col: cell, ...}]}` —
    /// hand-rolled (no serde in the offline container), with full string
    /// escaping; all cells are emitted as JSON strings.
    pub fn to_json(&self) -> String {
        let esc = |s: &str| -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        };
        let mut out = String::new();
        let _ = write!(out, "{{\"title\":\"{}\",\"header\":[", esc(&self.title));
        let _ = write!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| format!("\"{}\"", esc(h)))
                .collect::<Vec<_>>()
                .join(",")
        );
        let _ = write!(out, "],\"rows\":[");
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = self
                    .header
                    .iter()
                    .zip(row)
                    .map(|(h, c)| format!("\"{}\":\"{}\"", esc(h), esc(c)))
                    .collect();
                format!("{{{}}}", cells.join(","))
            })
            .collect();
        let _ = write!(out, "{}", rows.join(","));
        let _ = writeln!(out, "]}}");
        out
    }

    /// Writes the JSON form to `dir/<slug>.json`.
    pub fn write_json(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.slug()));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// File-name slug derived from the title.
    fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect()
    }
}

/// Formats a duration in seconds with engineering-friendly precision.
pub fn fmt_secs(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.1}")
    } else if s >= 1.0 {
        format!("{s:.3}")
    } else if s >= 1e-3 {
        format!("{:.3}m", s * 1e3).replace('m', "e-3")
    } else {
        format!("{:.3}e-6", s * 1e6)
    }
}

/// Formats a ratio like the paper quotes ("4.20x").
pub fn fmt_ratio(num: f64, den: f64) -> String {
    if den <= 0.0 {
        return "-".to_string();
    }
    format!("{:.2}x", num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("longer"));
        let lines: Vec<&str> = r.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1,2".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,2\",plain"));
    }

    #[test]
    fn csv_file_roundtrip() {
        let mut t = Table::new("Fig 10(a) demo", &["c"]);
        t.row(vec!["v".into()]);
        let dir = std::env::temp_dir().join("rpq_table_test");
        let path = t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("c\n"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_escapes_and_structures() {
        let mut t = Table::new("Fig \"10\"", &["a,b", "c"]);
        t.row(vec!["x\"y".into(), "line\nbreak".into()]);
        let json = t.to_json();
        assert!(json.starts_with("{\"title\":\"Fig \\\"10\\\"\""));
        assert!(json.contains("\"a,b\":\"x\\\"y\""));
        assert!(json.contains("\"c\":\"line\\nbreak\""));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn json_file_roundtrip() {
        let mut t = Table::new("Fig 10(a) demo", &["c"]);
        t.row(vec!["v".into()]);
        let dir = std::env::temp_dir().join("rpq_table_test_json");
        let path = t.write_json(&dir).unwrap();
        assert!(path.to_string_lossy().ends_with("fig_10_a__demo.json"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"rows\":[{\"c\":\"v\"}]"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_secs(Duration::from_secs(200)), "200.0");
        assert_eq!(fmt_secs(Duration::from_secs(2)), "2.000");
        assert_eq!(fmt_secs(Duration::from_millis(5)), "5.000e-3");
        assert_eq!(fmt_secs(Duration::from_micros(5)), "5.000e-6");
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(10.0, 2.0), "5.00x");
        assert_eq!(fmt_ratio(1.0, 0.0), "-");
    }
}
