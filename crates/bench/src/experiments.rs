//! Per-figure experiment drivers (TABLE IV, Figs. 10–15).
//!
//! Experiment 1 (Figs. 10–13) sweeps the average vertex degree per label
//! with 4-RPQ sets; Experiment 2 (Figs. 14–15) sweeps the number of RPQs
//! per set on RMAT_3 and Advogato. One pass over each dataset produces the
//! metrics for all figures of its experiment, so `all` does not repeat the
//! expensive runs.

use crate::datasets::{experiment2_datasets, real_surrogates, synthetic_sweep, Dataset};
use crate::profiles::Profile;
use crate::runner::{run_all_strategies_threads, RunMetrics};
use crate::table::{fmt_ratio, fmt_secs, Table};
use rpq_datasets::workload::{alphabet_of, generate_workload, WorkloadConfig};
use std::time::Duration;

/// Strategy metrics averaged across the multiple-RPQ sets of one dataset.
#[derive(Clone, Debug, Default)]
pub struct AggMetrics {
    /// Mean query response time (seconds).
    pub total_s: f64,
    /// Mean `Shared_Data` time (seconds).
    pub shared_s: f64,
    /// Mean `Pre⋈R⁺` time (seconds).
    pub pre_join_s: f64,
    /// Mean remainder time (seconds).
    pub remainder_s: f64,
    /// Mean shared-data size (pairs).
    pub shared_pairs: f64,
    /// Mean shared-structure vertex count.
    pub shared_vertices: f64,
}

impl AggMetrics {
    fn accumulate(&mut self, m: &RunMetrics) {
        self.total_s += m.total.as_secs_f64();
        self.shared_s += m.breakdown.shared_data.as_secs_f64();
        self.pre_join_s += m.breakdown.pre_join.as_secs_f64();
        self.remainder_s += m.breakdown.remainder().as_secs_f64();
        self.shared_pairs += m.shared_pairs as f64;
        self.shared_vertices += m.shared_vertices as f64;
    }

    fn divide(&mut self, n: f64) {
        self.total_s /= n;
        self.shared_s /= n;
        self.pre_join_s /= n;
        self.remainder_s /= n;
        self.shared_pairs /= n;
        self.shared_vertices /= n;
    }
}

/// Aggregated Experiment 1 measurements for one dataset.
pub struct Exp1Row {
    /// Dataset name.
    pub name: String,
    /// Average vertex degree per label.
    pub degree: f64,
    /// Per-strategy aggregates, indexed as `Strategy::ALL` (No, Full, RTC).
    pub agg: [AggMetrics; 3],
}

/// Runs Experiment 1 on the given datasets with `set_size` RPQs per set
/// and `threads` engine workers (1 = sequential).
pub fn run_experiment1(
    datasets: &[Dataset],
    profile: Profile,
    set_size: usize,
    threads: usize,
) -> Vec<Exp1Row> {
    let mut rows = Vec::with_capacity(datasets.len());
    for ds in datasets {
        let sets = generate_workload(
            &alphabet_of(&ds.graph),
            &WorkloadConfig {
                rs_per_length: profile.rs_per_length(),
                queries_per_set: set_size,
                ..WorkloadConfig::default()
            },
        );
        let mut agg: [AggMetrics; 3] = Default::default();
        for set in &sets {
            let runs = run_all_strategies_threads(&ds.graph, set.prefix(set_size), threads);
            for (slot, m) in agg.iter_mut().zip(&runs) {
                slot.accumulate(m);
            }
        }
        let n = sets.len() as f64;
        for slot in agg.iter_mut() {
            slot.divide(n);
        }
        rows.push(Exp1Row {
            name: ds.name.clone(),
            degree: ds.graph.degree_per_label(),
            agg,
        });
    }
    rows
}

/// Fig. 10: query response time of No / Full / RTC per dataset.
pub fn fig10_table(title: &str, rows: &[Exp1Row]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "dataset", "degree", "No(s)", "Full(s)", "RTC(s)", "Full/RTC", "No/RTC",
        ],
    );
    for r in rows {
        let (no, full, rtc) = (&r.agg[0], &r.agg[1], &r.agg[2]);
        t.row(vec![
            r.name.clone(),
            format!("{:.4}", r.degree),
            fmt_secs(Duration::from_secs_f64(no.total_s)),
            fmt_secs(Duration::from_secs_f64(full.total_s)),
            fmt_secs(Duration::from_secs_f64(rtc.total_s)),
            fmt_ratio(full.total_s, rtc.total_s),
            fmt_ratio(no.total_s, rtc.total_s),
        ]);
    }
    t
}

/// Fig. 11: three-part computation time of Full vs RTC per dataset.
pub fn fig11_table(title: &str, rows: &[Exp1Row]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "dataset",
            "method",
            "Shared_Data(s)",
            "Pre⋈R+(s)",
            "Remainder(s)",
        ],
    );
    for r in rows {
        for (idx, strategy) in [(1usize, "Full"), (2, "RTC")] {
            let a = &r.agg[idx];
            t.row(vec![
                r.name.clone(),
                strategy.to_string(),
                fmt_secs(Duration::from_secs_f64(a.shared_s)),
                fmt_secs(Duration::from_secs_f64(a.pre_join_s)),
                fmt_secs(Duration::from_secs_f64(a.remainder_s)),
            ]);
        }
    }
    t
}

/// Fig. 12: shared data size (pairs) of Full (`R⁺_G`) vs RTC (`R̄⁺_G`).
pub fn fig12_table(title: &str, rows: &[Exp1Row]) -> Table {
    let mut t = Table::new(
        title,
        &["dataset", "degree", "Full pairs", "RTC pairs", "Full/RTC"],
    );
    for r in rows {
        let (full, rtc) = (&r.agg[1], &r.agg[2]);
        t.row(vec![
            r.name.clone(),
            format!("{:.4}", r.degree),
            format!("{:.0}", full.shared_pairs),
            format!("{:.0}", rtc.shared_pairs),
            fmt_ratio(full.shared_pairs, rtc.shared_pairs),
        ]);
    }
    t
}

/// Fig. 13: number of vertices `|V_R|` (Full) vs `|V̄_R|` (RTC).
pub fn fig13_table(title: &str, rows: &[Exp1Row]) -> Table {
    let mut t = Table::new(
        title,
        &["dataset", "degree", "|V_R| (Full)", "|V̄_R| (RTC)", "ratio"],
    );
    for r in rows {
        let (full, rtc) = (&r.agg[1], &r.agg[2]);
        t.row(vec![
            r.name.clone(),
            format!("{:.4}", r.degree),
            format!("{:.0}", full.shared_vertices),
            format!("{:.0}", rtc.shared_vertices),
            fmt_ratio(full.shared_vertices, rtc.shared_vertices),
        ]);
    }
    t
}

/// Aggregated Experiment 2 measurements: one row per (dataset, #RPQs).
pub struct Exp2Row {
    /// Dataset name.
    pub name: String,
    /// Number of RPQs in the set.
    pub set_size: usize,
    /// Per-strategy aggregates (No, Full, RTC).
    pub agg: [AggMetrics; 3],
}

/// Runs Experiment 2 (vary #RPQs) on RMAT_3 and the Advogato surrogate
/// with `threads` engine workers (1 = sequential).
pub fn run_experiment2(profile: Profile, threads: usize) -> Vec<Exp2Row> {
    let mut rows = Vec::new();
    for ds in experiment2_datasets(profile) {
        let sets = generate_workload(
            &alphabet_of(&ds.graph),
            &WorkloadConfig {
                rs_per_length: profile.rs_per_length_exp2(),
                queries_per_set: *profile.set_sizes().last().unwrap_or(&10),
                ..WorkloadConfig::default()
            },
        );
        for &k in &profile.set_sizes() {
            let mut agg: [AggMetrics; 3] = Default::default();
            for set in &sets {
                let runs = run_all_strategies_threads(&ds.graph, set.prefix(k), threads);
                for (slot, m) in agg.iter_mut().zip(&runs) {
                    slot.accumulate(m);
                }
            }
            let n = sets.len() as f64;
            for slot in agg.iter_mut() {
                slot.divide(n);
            }
            rows.push(Exp2Row {
                name: ds.name.clone(),
                set_size: k,
                agg,
            });
        }
    }
    rows
}

/// Fig. 14: response time vs number of RPQs.
pub fn fig14_table(rows: &[Exp2Row]) -> Table {
    let mut t = Table::new(
        "Fig 14: query response time vs #RPQs",
        &[
            "dataset", "#RPQs", "No(s)", "Full(s)", "RTC(s)", "Full/RTC", "No/RTC",
        ],
    );
    for r in rows {
        let (no, full, rtc) = (&r.agg[0], &r.agg[1], &r.agg[2]);
        t.row(vec![
            r.name.clone(),
            r.set_size.to_string(),
            fmt_secs(Duration::from_secs_f64(no.total_s)),
            fmt_secs(Duration::from_secs_f64(full.total_s)),
            fmt_secs(Duration::from_secs_f64(rtc.total_s)),
            fmt_ratio(full.total_s, rtc.total_s),
            fmt_ratio(no.total_s, rtc.total_s),
        ]);
    }
    t
}

/// Fig. 15: three-part computation time vs number of RPQs.
pub fn fig15_table(rows: &[Exp2Row]) -> Table {
    let mut t = Table::new(
        "Fig 15: computation time of three parts vs #RPQs",
        &[
            "dataset",
            "#RPQs",
            "method",
            "Shared_Data(s)",
            "Pre⋈R+(s)",
            "Remainder(s)",
        ],
    );
    for r in rows {
        for (idx, name) in [(1usize, "Full"), (2, "RTC")] {
            let a = &r.agg[idx];
            t.row(vec![
                r.name.clone(),
                r.set_size.to_string(),
                name.to_string(),
                fmt_secs(Duration::from_secs_f64(a.shared_s)),
                fmt_secs(Duration::from_secs_f64(a.pre_join_s)),
                fmt_secs(Duration::from_secs_f64(a.remainder_s)),
            ]);
        }
    }
    t
}

/// TABLE IV: statistics of the datasets used in the experiments.
pub fn table4(profile: Profile) -> Table {
    let mut t = Table::new(
        "TABLE IV: statistics of datasets",
        &["dataset", "|V|", "|E|", "|Σ|", "|E|/(|V||Σ|)"],
    );
    for ds in real_surrogates(profile)
        .iter()
        .chain(synthetic_sweep(profile).iter())
    {
        let s = ds.stats();
        t.row(vec![
            ds.name.clone(),
            s.vertices.to_string(),
            s.edges.to_string(),
            s.labels.to_string(),
            format!("{:.4}", s.degree_per_label),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment1_fast_profile_smoke() {
        // One tiny dataset end-to-end through all figures.
        let datasets = vec![crate::datasets::Dataset {
            name: "RMAT_2".into(),
            graph: rpq_datasets::rmat::rmat_n_scaled(2, 8, 3),
            synthetic: true,
        }];
        let rows = run_experiment1(&datasets, Profile::Fast, 2, 1);
        let rows_par = run_experiment1(&datasets, Profile::Fast, 2, 2);
        assert_eq!(rows_par.len(), rows.len());
        assert_eq!(rows.len(), 1);
        let f10 = fig10_table("Fig 10(a)", &rows);
        assert_eq!(f10.len(), 1);
        let f11 = fig11_table("Fig 11(a)", &rows);
        assert_eq!(f11.len(), 2); // Full + RTC
        let f12 = fig12_table("Fig 12(a)", &rows);
        assert!(!f12.is_empty());
        let f13 = fig13_table("Fig 13(a)", &rows);
        assert!(!f13.is_empty());
        // RTC shared pairs never exceed Full shared pairs.
        let r = &rows[0];
        assert!(r.agg[2].shared_pairs <= r.agg[1].shared_pairs + 1e-9);
        assert!(r.agg[2].shared_vertices <= r.agg[1].shared_vertices + 1e-9);
    }

    #[test]
    fn table4_lists_all_datasets() {
        let t = table4(Profile::Fast);
        // 4 surrogates + 3 fast-profile RMAT points.
        assert_eq!(t.len(), 7);
    }
}
