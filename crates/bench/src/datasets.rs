//! Dataset registry for the experiments.

use crate::profiles::Profile;
use rpq_datasets::rmat::rmat_n_scaled;
use rpq_datasets::surrogate;
use rpq_graph::{GraphStats, LabeledMultigraph};

/// A named experiment dataset.
pub struct Dataset {
    /// Display name (TABLE IV row).
    pub name: String,
    /// The graph.
    pub graph: LabeledMultigraph,
    /// Whether this is a synthetic RMAT graph (Fig. 10a) or a real-dataset
    /// surrogate (Fig. 10b).
    pub synthetic: bool,
}

impl Dataset {
    /// TABLE IV statistics for this dataset.
    pub fn stats(&self) -> GraphStats {
        GraphStats::of(&self.graph)
    }
}

/// The synthetic RMAT_N sweep for a profile (Figs. 10a–13a).
pub fn synthetic_sweep(profile: Profile) -> Vec<Dataset> {
    profile
        .rmat_ns()
        .into_iter()
        .map(|n| Dataset {
            name: format!("RMAT_{n}"),
            graph: rmat_n_scaled(n, profile.rmat_scale(), 42 + n as u64),
            synthetic: true,
        })
        .collect()
}

/// The real-dataset surrogates for a profile (Figs. 10b–13b), in ascending
/// degree order as the paper presents them.
pub fn real_surrogates(profile: Profile) -> Vec<Dataset> {
    vec![
        Dataset {
            name: format!("Yago2s(1/{})", profile.yago_denominator()),
            graph: surrogate::yago2s_like(profile.yago_denominator()),
            synthetic: false,
        },
        Dataset {
            name: "Robots".to_string(),
            graph: surrogate::robots_like(),
            synthetic: false,
        },
        Dataset {
            name: "Advogato".to_string(),
            graph: surrogate::advogato_like(),
            synthetic: false,
        },
        Dataset {
            name: "Youtube".to_string(),
            graph: surrogate::youtube_like(),
            synthetic: false,
        },
    ]
}

/// The Experiment 2 datasets: RMAT_3 (median synthetic degree) and the
/// Advogato surrogate (median real degree).
pub fn experiment2_datasets(profile: Profile) -> Vec<Dataset> {
    vec![
        Dataset {
            name: "RMAT_3".to_string(),
            graph: rmat_n_scaled(3, profile.rmat_scale(), 45),
            synthetic: true,
        },
        Dataset {
            name: format!("Advogato(1/{})", profile.advogato_denominator_exp2()),
            graph: surrogate::advogato_like_scaled(profile.advogato_denominator_exp2()),
            synthetic: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_sweep_shapes() {
        let sweep = synthetic_sweep(Profile::Fast);
        assert_eq!(sweep.len(), 3);
        for ds in &sweep {
            assert_eq!(ds.graph.vertex_count(), 512);
            assert_eq!(ds.graph.label_count(), 4);
            assert!(ds.synthetic);
        }
        // Degrees double with N: 2^-2, 2^0, 2^2.
        let degrees: Vec<f64> = sweep.iter().map(|d| d.stats().degree_per_label).collect();
        assert!((degrees[0] - 0.25).abs() < 1e-9);
        assert!((degrees[1] - 1.0).abs() < 1e-9);
        assert!((degrees[2] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn surrogates_present() {
        let real = real_surrogates(Profile::Fast);
        assert_eq!(real.len(), 4);
        assert!(real.iter().all(|d| !d.synthetic));
        // Ascending degree ordering (Yago sparsest, Youtube densest).
        let degrees: Vec<f64> = real.iter().map(|d| d.stats().degree_per_label).collect();
        assert!(degrees.windows(2).all(|w| w[0] < w[1]), "{degrees:?}");
    }
}
