//! The experiment driver binary.
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! ```text
//! cargo run -p rpq_bench --release --bin experiments -- all
//! cargo run -p rpq_bench --release --bin experiments -- fig10 --profile paper
//! cargo run -p rpq_bench --release --bin experiments -- table4 --csv results/
//! cargo run -p rpq_bench --release --bin experiments -- exp1 --threads 4
//! ```
//!
//! Commands: `table4`, `fig10`, `fig11`, `fig12`, `fig13` (Experiment 1),
//! `fig14`, `fig15` (Experiment 2), `exp1`, `exp2`, `ablation`, `repr`,
//! `cache`, `all`.
//! Duplicate commands are deduplicated and `all` subsumes everything, so
//! no experiment ever runs twice. Flags: `--profile fast|default|paper`
//! (scale), `--csv DIR` (also write CSV files), `--json DIR` (also write
//! JSON files — what the nightly bench job uploads as artifacts),
//! `--threads N` (engine worker threads; 1 = sequential, 0 = all cores).

use rpq_bench::ablation::{
    batch_unit_table, cache_pressure_table, repr_ablation_table, scc_sensitivity_table,
    tc_algorithms_table,
};
use rpq_bench::datasets::{real_surrogates, synthetic_sweep};
use rpq_bench::experiments::{
    fig10_table, fig11_table, fig12_table, fig13_table, fig14_table, fig15_table, run_experiment1,
    run_experiment2, table4,
};
use rpq_bench::profiles::Profile;
use rpq_bench::table::Table;
use std::path::PathBuf;
use std::process::ExitCode;

/// Every subcommand the driver understands — single source of truth for
/// argument validation and the usage string. `main`'s `wants()` dispatch
/// must cover exactly these names.
const COMMANDS: [&str; 13] = [
    "table4", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "exp1", "exp2", "ablation",
    "repr", "cache", "all",
];

struct Options {
    profile: Profile,
    csv_dir: Option<PathBuf>,
    json_dir: Option<PathBuf>,
    threads: usize,
    commands: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    parse_args_from(std::env::args().skip(1))
}

fn parse_args_from(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut profile = Profile::Default;
    let mut csv_dir = None;
    let mut json_dir = None;
    let mut threads = 1usize;
    let mut commands = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                let v = args.next().ok_or("--profile needs a value")?;
                profile = Profile::parse(&v).ok_or(format!("unknown profile '{v}'"))?;
            }
            "--csv" => {
                let v = args.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(PathBuf::from(v));
            }
            "--json" => {
                let v = args.next().ok_or("--json needs a directory")?;
                json_dir = Some(PathBuf::from(v));
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                threads = v
                    .parse::<usize>()
                    .map_err(|_| format!("--threads needs a non-negative integer, got '{v}'"))?;
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            cmd if !cmd.starts_with('-') => {
                if !COMMANDS.contains(&cmd) {
                    return Err(format!("unknown command '{cmd}'"));
                }
                commands.push(cmd.to_string());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Options {
        profile,
        csv_dir,
        json_dir,
        threads,
        commands: normalize_commands(commands),
    })
}

/// Normalizes the requested command list so no experiment runs twice:
/// an empty list defaults to `all`, `all` anywhere subsumes every other
/// command, and duplicates collapse to their first occurrence (order
/// otherwise preserved).
fn normalize_commands(commands: Vec<String>) -> Vec<String> {
    if commands.is_empty() || commands.iter().any(|c| c == "all") {
        return vec!["all".to_string()];
    }
    let mut out: Vec<String> = Vec::with_capacity(commands.len());
    for c in commands {
        if !out.contains(&c) {
            out.push(c);
        }
    }
    out
}

fn print_usage() {
    eprintln!(
        "usage: experiments [--profile fast|default|paper] [--csv DIR] [--json DIR] [--threads N] [{}]...",
        COMMANDS.join("|")
    );
    eprintln!();
    eprintln!("flags:");
    eprintln!("  --profile P   experiment scale: fast (seconds), default, paper (TABLE IV sizes)");
    eprintln!("  --csv DIR     additionally write each table as DIR/<table-slug>.csv");
    eprintln!("  --json DIR    additionally write each table as DIR/<table-slug>.json —");
    eprintln!("                the machine-readable form the nightly bench workflow");
    eprintln!("                (.github/workflows/nightly-bench.yml) uploads as artifacts");
    eprintln!(
        "  --threads N   engine worker threads for exp1/exp2 (1 = sequential, 0 = all cores)"
    );
    eprintln!();
    eprintln!("Commands may be combined; duplicates are deduplicated and 'all' subsumes");
    eprintln!("everything. With no command, 'all' runs.");
}

fn emit(table: &Table, opts: &Options) {
    println!("{}", table.render());
    if let Some(dir) = &opts.csv_dir {
        match table.write_csv(dir) {
            Ok(path) => eprintln!("  [csv] {}", path.display()),
            Err(e) => eprintln!("  [csv] write failed: {e}"),
        }
    }
    if let Some(dir) = &opts.json_dir {
        match table.write_json(dir) {
            Ok(path) => eprintln!("  [json] {}", path.display()),
            Err(e) => eprintln!("  [json] write failed: {e}"),
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    let wants = |names: &[&str]| {
        opts.commands
            .iter()
            .any(|c| names.contains(&c.as_str()) || c == "all")
    };

    eprintln!(
        "# profile = {} (use --profile paper for the full-scale TABLE IV sizes)",
        opts.profile
    );
    eprintln!(
        "# threads = {} ({}; applies to exp1/exp2 engine runs — table4/ablation are sequential)",
        opts.threads,
        match opts.threads {
            0 => "all available cores".to_string(),
            1 => "sequential".to_string(),
            n => format!("{n} scoped workers"),
        }
    );

    if wants(&["table4"]) {
        emit(&table4(opts.profile), &opts);
    }

    let exp1_needed = wants(&["fig10", "fig11", "fig12", "fig13", "exp1"]);
    if exp1_needed {
        eprintln!(
            "# experiment 1: degree sweep, {} RPQs per set",
            opts.profile.fixed_set_size()
        );
        let synth = synthetic_sweep(opts.profile);
        let synth_rows = run_experiment1(
            &synth,
            opts.profile,
            opts.profile.fixed_set_size(),
            opts.threads,
        );
        let real = real_surrogates(opts.profile);
        let real_rows = run_experiment1(
            &real,
            opts.profile,
            opts.profile.fixed_set_size(),
            opts.threads,
        );

        if wants(&["fig10", "exp1"]) {
            emit(
                &fig10_table("Fig 10(a): response time, synthetic", &synth_rows),
                &opts,
            );
            emit(
                &fig10_table("Fig 10(b): response time, real surrogates", &real_rows),
                &opts,
            );
        }
        if wants(&["fig11", "exp1"]) {
            emit(
                &fig11_table("Fig 11(a): 3-part breakdown, synthetic", &synth_rows),
                &opts,
            );
            emit(
                &fig11_table("Fig 11(b): 3-part breakdown, real surrogates", &real_rows),
                &opts,
            );
        }
        if wants(&["fig12", "exp1"]) {
            emit(
                &fig12_table("Fig 12(a): shared data size, synthetic", &synth_rows),
                &opts,
            );
            emit(
                &fig12_table("Fig 12(b): shared data size, real surrogates", &real_rows),
                &opts,
            );
        }
        if wants(&["fig13", "exp1"]) {
            emit(
                &fig13_table("Fig 13(a): number of vertices, synthetic", &synth_rows),
                &opts,
            );
            emit(
                &fig13_table("Fig 13(b): number of vertices, real surrogates", &real_rows),
                &opts,
            );
        }
    }

    if wants(&["ablation"]) {
        eprintln!("# ablations: TC algorithms, batch-unit join, SCC sensitivity");
        emit(&tc_algorithms_table(opts.profile), &opts);
        emit(&batch_unit_table(opts.profile), &opts);
        emit(&scc_sensitivity_table(), &opts);
    }

    if wants(&["repr"]) {
        eprintln!("# row-representation ablation: sparse vs dense vs adaptive closure rows");
        emit(&repr_ablation_table(opts.profile), &opts);
    }

    if wants(&["cache"]) {
        eprintln!("# cache-pressure ablation: Zipf stream, bounded vs unbounded budget");
        emit(&cache_pressure_table(opts.profile), &opts);
    }

    if wants(&["fig14", "fig15", "exp2"]) {
        eprintln!("# experiment 2: #RPQs sweep on RMAT_3 and Advogato");
        let rows = run_experiment2(opts.profile, opts.threads);
        if wants(&["fig14", "exp2"]) {
            emit(&fig14_table(&rows), &opts);
        }
        if wants(&["fig15", "exp2"]) {
            emit(&fig15_table(&rows), &opts);
        }
    }

    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_to_all() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.commands, vec!["all"]);
        assert_eq!(o.threads, 1);
        assert_eq!(o.profile, Profile::Default);
        assert!(o.csv_dir.is_none());
    }

    #[test]
    fn duplicate_commands_run_once() {
        // Regression: `exp1 exp1 fig10 exp1` used to run exp1 three times.
        let o = parse(&["exp1", "exp1", "fig10", "exp1"]).unwrap();
        assert_eq!(o.commands, vec!["exp1", "fig10"]);
    }

    #[test]
    fn all_subsumes_specific_commands() {
        // Regression: `all exp1` used to run experiment 1 twice (once via
        // `all`, once via the explicit command).
        for args in [
            &["all", "exp1"][..],
            &["exp1", "all"][..],
            &["fig10", "all", "fig10"][..],
        ] {
            let o = parse(args).unwrap();
            assert_eq!(o.commands, vec!["all"], "args {args:?}");
        }
    }

    #[test]
    fn order_of_first_occurrence_is_preserved() {
        let o = parse(&["fig12", "exp2", "fig12", "table4"]).unwrap();
        assert_eq!(o.commands, vec!["fig12", "exp2", "table4"]);
    }

    #[test]
    fn threads_flag_parses() {
        assert_eq!(parse(&["--threads", "4", "exp1"]).unwrap().threads, 4);
        assert_eq!(parse(&["--threads", "0"]).unwrap().threads, 0);
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "x"]).is_err());
        assert!(parse(&["--threads", "-2"]).is_err());
    }

    #[test]
    fn profile_and_csv_flags_parse() {
        let o = parse(&["--profile", "fast", "--csv", "out", "fig14"]).unwrap();
        assert_eq!(o.profile, Profile::Fast);
        assert_eq!(o.csv_dir.as_deref(), Some(std::path::Path::new("out")));
        assert_eq!(o.commands, vec!["fig14"]);
        assert!(parse(&["--profile", "nope"]).is_err());
    }

    #[test]
    fn json_flag_parses() {
        let o = parse(&["--json", "artifacts", "table4"]).unwrap();
        assert_eq!(
            o.json_dir.as_deref(),
            Some(std::path::Path::new("artifacts"))
        );
        assert!(o.csv_dir.is_none());
        assert!(parse(&["--json"]).is_err());
        // CSV and JSON can be requested together.
        let o = parse(&["--csv", "a", "--json", "b"]).unwrap();
        assert!(o.csv_dir.is_some() && o.json_dir.is_some());
    }

    #[test]
    fn unknown_commands_and_flags_rejected() {
        assert!(parse(&["fig99"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn normalize_is_idempotent() {
        let once = normalize_commands(vec!["exp1".into(), "exp2".into(), "exp1".into()]);
        assert_eq!(normalize_commands(once.clone()), once);
    }
}
