//! The experiment driver binary.
//!
//! Regenerates every table and figure of the paper's evaluation section:
//!
//! ```text
//! cargo run -p rpq_bench --release --bin experiments -- all
//! cargo run -p rpq_bench --release --bin experiments -- fig10 --profile paper
//! cargo run -p rpq_bench --release --bin experiments -- table4 --csv results/
//! ```
//!
//! Commands: `table4`, `fig10`, `fig11`, `fig12`, `fig13` (Experiment 1),
//! `fig14`, `fig15` (Experiment 2), `exp1`, `exp2`, `ablation`, `all`.
//! Flags: `--profile fast|default|paper` (scale), `--csv DIR` (also write
//! CSV files).

use rpq_bench::ablation::{batch_unit_table, scc_sensitivity_table, tc_algorithms_table};
use rpq_bench::datasets::{real_surrogates, synthetic_sweep};
use rpq_bench::experiments::{
    fig10_table, fig11_table, fig12_table, fig13_table, fig14_table, fig15_table, run_experiment1,
    run_experiment2, table4,
};
use rpq_bench::profiles::Profile;
use rpq_bench::table::Table;
use std::path::PathBuf;
use std::process::ExitCode;

/// Every subcommand the driver understands — single source of truth for
/// argument validation and the usage string. `main`'s `wants()` dispatch
/// must cover exactly these names.
const COMMANDS: [&str; 11] = [
    "table4", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "exp1", "exp2", "ablation",
    "all",
];

struct Options {
    profile: Profile,
    csv_dir: Option<PathBuf>,
    commands: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut profile = Profile::Default;
    let mut csv_dir = None;
    let mut commands = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile" => {
                let v = args.next().ok_or("--profile needs a value")?;
                profile = Profile::parse(&v).ok_or(format!("unknown profile '{v}'"))?;
            }
            "--csv" => {
                let v = args.next().ok_or("--csv needs a directory")?;
                csv_dir = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            cmd if !cmd.starts_with('-') => {
                if !COMMANDS.contains(&cmd) {
                    return Err(format!("unknown command '{cmd}'"));
                }
                commands.push(cmd.to_string());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if commands.is_empty() {
        commands.push("all".to_string());
    }
    Ok(Options {
        profile,
        csv_dir,
        commands,
    })
}

fn print_usage() {
    eprintln!(
        "usage: experiments [--profile fast|default|paper] [--csv DIR] [{}]...",
        COMMANDS.join("|")
    );
}

fn emit(table: &Table, csv_dir: &Option<PathBuf>) {
    println!("{}", table.render());
    if let Some(dir) = csv_dir {
        match table.write_csv(dir) {
            Ok(path) => eprintln!("  [csv] {}", path.display()),
            Err(e) => eprintln!("  [csv] write failed: {e}"),
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            return ExitCode::FAILURE;
        }
    };

    let wants = |names: &[&str]| {
        opts.commands
            .iter()
            .any(|c| names.contains(&c.as_str()) || c == "all")
    };

    eprintln!(
        "# profile = {} (use --profile paper for the full-scale TABLE IV sizes)",
        opts.profile
    );

    if wants(&["table4"]) {
        emit(&table4(opts.profile), &opts.csv_dir);
    }

    let exp1_needed = wants(&["fig10", "fig11", "fig12", "fig13", "exp1"]);
    if exp1_needed {
        eprintln!(
            "# experiment 1: degree sweep, {} RPQs per set",
            opts.profile.fixed_set_size()
        );
        let synth = synthetic_sweep(opts.profile);
        let synth_rows = run_experiment1(&synth, opts.profile, opts.profile.fixed_set_size());
        let real = real_surrogates(opts.profile);
        let real_rows = run_experiment1(&real, opts.profile, opts.profile.fixed_set_size());

        if wants(&["fig10", "exp1"]) {
            emit(
                &fig10_table("Fig 10(a): response time, synthetic", &synth_rows),
                &opts.csv_dir,
            );
            emit(
                &fig10_table("Fig 10(b): response time, real surrogates", &real_rows),
                &opts.csv_dir,
            );
        }
        if wants(&["fig11", "exp1"]) {
            emit(
                &fig11_table("Fig 11(a): 3-part breakdown, synthetic", &synth_rows),
                &opts.csv_dir,
            );
            emit(
                &fig11_table("Fig 11(b): 3-part breakdown, real surrogates", &real_rows),
                &opts.csv_dir,
            );
        }
        if wants(&["fig12", "exp1"]) {
            emit(
                &fig12_table("Fig 12(a): shared data size, synthetic", &synth_rows),
                &opts.csv_dir,
            );
            emit(
                &fig12_table("Fig 12(b): shared data size, real surrogates", &real_rows),
                &opts.csv_dir,
            );
        }
        if wants(&["fig13", "exp1"]) {
            emit(
                &fig13_table("Fig 13(a): number of vertices, synthetic", &synth_rows),
                &opts.csv_dir,
            );
            emit(
                &fig13_table("Fig 13(b): number of vertices, real surrogates", &real_rows),
                &opts.csv_dir,
            );
        }
    }

    if wants(&["ablation"]) {
        eprintln!("# ablations: TC algorithms, batch-unit join, SCC sensitivity");
        emit(&tc_algorithms_table(opts.profile), &opts.csv_dir);
        emit(&batch_unit_table(opts.profile), &opts.csv_dir);
        emit(&scc_sensitivity_table(), &opts.csv_dir);
    }

    if wants(&["fig14", "fig15", "exp2"]) {
        eprintln!("# experiment 2: #RPQs sweep on RMAT_3 and Advogato");
        let rows = run_experiment2(opts.profile);
        if wants(&["fig14", "exp2"]) {
            emit(&fig14_table(&rows), &opts.csv_dir);
        }
        if wants(&["fig15", "exp2"]) {
            emit(&fig15_table(&rows), &opts.csv_dir);
        }
    }

    ExitCode::SUCCESS
}
