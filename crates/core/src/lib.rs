#![warn(missing_docs)]
//! The RTCSharing engine — the paper's primary contribution.
//!
//! [`Engine`] evaluates (multiple) regular path queries over a
//! [`rpq_graph::LabeledMultigraph`] under one of three strategies
//! (Section V's comparison set):
//!
//! * [`Strategy::RtcSharing`] — Algorithm 1: DNF with outermost closures as
//!   literals, batch units `Pre·R^(+|*)·Post`, a **reduced transitive
//!   closure** shared across batch units and queries, and the optimized
//!   [`batch_unit`] evaluation (Algorithm 2) that eliminates *useless-1/2*
//!   and *redundant-1/2* operations.
//! * [`Strategy::FullSharing`] — Abul-Basher \[8\]: the same recursion but
//!   sharing the materialized `R⁺_G` and joining it directly (incurring the
//!   redundant/useless operations).
//! * [`Strategy::NoSharing`] — Yakovets et al. \[5\]: each query evaluated
//!   independently by automaton product traversal; nothing shared.
//!
//! Per-stage timings ([`Breakdown`]: `Shared_Data`, `Pre⋈R⁺`, `Remainder`)
//! and operation counters ([`EliminationStats`]) expose exactly the
//! quantities the paper's Figures 10–15 plot.

pub mod batch_unit;
pub mod breakdown;
pub mod cache;
pub mod engine;
pub mod error;
pub mod explain;
pub mod pre_relation;
pub mod result_cache;
pub mod sharing;
pub mod snapshot;
pub mod view;

pub use batch_unit::{eval_batch_unit_full, eval_batch_unit_rtc};
pub use breakdown::{Breakdown, EliminationStats, MaintenanceMetrics};
pub use cache::{
    CacheBudget, EpochPin, EvictionCounters, FullLookup, RtcLookup, SharedCache, StaleFull,
    StaleRtc,
};
pub use engine::{Engine, EngineConfig, PrepareReport, Strategy};
pub use error::EngineError;
pub use explain::{
    explain, explain_set, explain_set_with_limit, explain_with_limit, ClausePlan, QueryPlan,
    SetPlan,
};
pub use pre_relation::PreRelation;
pub use result_cache::ResultCache;
pub use view::{evaluate_at, EpochView};
