//! The recursive query driver — Algorithm 1 (`RTCSharing`) and its
//! FullSharing twin.
//!
//! Both sharing strategies walk the same recursion:
//!
//! 1. convert the query to DNF, outermost closures opaque (line 2);
//! 2. decompose each clause into `Pre · R^(+|*) · Post` (line 4);
//! 3. closure-free clauses go to `EvalRPQwithoutKC` — label joins (line 6);
//! 4. `Pre` is evaluated by recursion (line 8), `R` likewise when the
//!    shared structure is missing (line 10);
//! 5. the shared structure is cached by the canonical form of `R`
//!    (lines 9–11) and the batch unit evaluated (line 12);
//! 6. clause results are unioned (line 13).
//!
//! The only difference between the strategies is the shared structure and
//! the batch-unit evaluator: `Rtc` + Algorithm 2 vs `FullTc` + the plain
//! join — exactly the delta the paper measures.

use crate::batch_unit::{eval_batch_unit_full, eval_batch_unit_rtc};
use crate::breakdown::{Breakdown, EliminationStats, MaintenanceMetrics};
use crate::cache::{FullLookup, RtcLookup, SharedCache, StaleFull, StaleRtc};
use crate::error::EngineError;
use crate::pre_relation::PreRelation;
use rpq_eval::label_seq::eval_label_names;
use rpq_graph::{LabeledMultigraph, PairSet, RowSetPolicy};
use rpq_reduction::{DynamicRtc, FullTc, MaintenanceConfig, MaintenanceOutcome, Rtc};
use rpq_regex::{decompose, to_dnf_with_limit, Regex};
use std::sync::Arc;
use std::time::Instant;

/// Which shared structure the recursion maintains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SharingKind {
    Rtc,
    Full,
}

/// Evaluation context threaded through the recursion. The cache is a
/// shared reference — its interior is lock-protected and its counters
/// atomic, so many recursions (from many threads) fill one cache at once;
/// the metric accumulators are exclusive, local to this evaluation, and
/// merged into the engine's shared totals afterwards.
pub(crate) struct EvalCtx<'g, 'c> {
    pub graph: &'g LabeledMultigraph,
    pub cache: &'c SharedCache,
    /// The graph epoch this evaluation is pinned to. Equal to the cache's
    /// live epoch on the engine's own path; older when evaluating against
    /// a frozen [`crate::EpochView`] — then cache lookups hit only entries
    /// stamped with exactly this epoch and inserts never displace newer
    /// ones.
    pub epoch: u64,
    pub kind: SharingKind,
    pub clause_limit: usize,
    pub fast_paths: bool,
    /// Worker threads for parallel shared-structure construction and
    /// expansion (1 = sequential, 0 = all cores).
    pub threads: usize,
    /// Damage threshold etc. for incremental refresh of stale entries.
    pub maintenance_config: MaintenanceConfig,
    /// Row-representation policy for newly built shared structures.
    pub representation: RowSetPolicy,
    pub breakdown: &'c mut Breakdown,
    pub stats: &'c mut EliminationStats,
    pub maintenance: &'c mut MaintenanceMetrics,
}

/// Algorithm 1, parameterized by the sharing kind.
pub(crate) fn eval_query(ctx: &mut EvalCtx<'_, '_>, q: &Regex) -> Result<PairSet, EngineError> {
    let clauses = to_dnf_with_limit(q, ctx.clause_limit)?;
    let mut q_g = PairSet::new();
    for clause in &clauses {
        let unit = decompose(clause);
        let clause_g = match unit.closure {
            // Line 6: no Kleene closure — the whole clause is Post.
            None => eval_label_names(ctx.graph, &unit.post),
            Some((r, closure_kind)) => {
                // Line 8: evaluate Pre by recursion (ε stays symbolic).
                let pre = if unit.pre == Regex::Epsilon {
                    PreRelation::Identity(ctx.graph.vertex_count())
                } else {
                    PreRelation::Pairs(eval_query(ctx, &unit.pre)?)
                };
                // Lines 9–11: fetch, refresh or compute the shared
                // structure for R.
                let key = r.canonical_key();
                match ctx.kind {
                    SharingKind::Rtc => {
                        let rtc = obtain_rtc(ctx, &key, &r)?;
                        // Theorem 2 fast path: a bare closure (`Pre = ε`,
                        // `Post = ε`) is exactly the RTC expansion, with the
                        // identity relation unioned in for `R*`.
                        if ctx.fast_paths
                            && matches!(pre, PreRelation::Identity(_))
                            && unit.post.is_empty()
                        {
                            let t = Instant::now();
                            let mut result = rtc.expand_parallel(ctx.threads);
                            if closure_kind == rpq_regex::ClosureKind::Star {
                                result = result.union(&PairSet::identity(ctx.graph.vertex_count()));
                            }
                            ctx.breakdown.pre_join += t.elapsed();
                            result
                        } else {
                            // Line 12: the optimized batch unit (Algorithm 2).
                            let out = eval_batch_unit_rtc(
                                ctx.graph,
                                &pre,
                                &rtc,
                                closure_kind,
                                &unit.post,
                                ctx.stats,
                            );
                            ctx.breakdown.pre_join += out.pre_join;
                            out.result
                        }
                    }
                    SharingKind::Full => {
                        let full = obtain_full(ctx, &key, &r)?;
                        let out = eval_batch_unit_full(
                            ctx.graph,
                            &pre,
                            &full,
                            closure_kind,
                            &unit.post,
                            ctx.stats,
                        );
                        ctx.breakdown.pre_join += out.pre_join;
                        out.result
                    }
                }
            }
        };
        // Line 13: union the clause result.
        q_g.union_in_place(&clause_g);
    }
    Ok(q_g)
}

/// Fetches the RTC for `key` — fresh from the cache, refreshed from a
/// stale entry (incrementally where possible), or computed from scratch on
/// a miss. The cache ends up holding a current-epoch entry either way.
fn obtain_rtc(ctx: &mut EvalCtx<'_, '_>, key: &str, r: &Regex) -> Result<Arc<Rtc>, EngineError> {
    let stale = match ctx.cache.lookup_rtc_at(key, ctx.epoch) {
        RtcLookup::Fresh(rtc) => return Ok(rtc),
        RtcLookup::Stale(stale) => Some(stale),
        RtcLookup::Miss => None,
    };
    // Both the refresh and the miss path need the current R_G, which is
    // itself evaluated by recursion (nested closure bodies refresh first).
    let r_g = eval_query(ctx, r)?;
    let t = Instant::now();
    let (rtc, r_g, dynamic) = match stale {
        Some(stale) => refresh_rtc(
            stale,
            r_g,
            &ctx.maintenance_config,
            ctx.maintenance,
            &ctx.representation,
        ),
        None => {
            let rtc = Arc::new(Rtc::from_pairs_with(&r_g, &ctx.representation));
            (rtc, Arc::new(r_g), None)
        }
    };
    let build = t.elapsed();
    ctx.breakdown.shared_data += build;
    // The construction time doubles as the entry's cost-to-rebuild under
    // the cache's cost-aware eviction.
    ctx.cache.insert_rtc_entry_costed(
        key.to_owned(),
        Arc::clone(&rtc),
        r_g,
        dynamic,
        ctx.epoch,
        build,
    );
    Ok(rtc)
}

/// Brings a stale RTC entry up to date against the freshly evaluated
/// `R_G`: re-stamp when the relation is unchanged, otherwise diff the base
/// relations and hand the pair delta to [`DynamicRtc`] (upgrading the
/// static entry to maintainable form on first refresh). Falls back to a
/// from-scratch rebuild when no base relation was recorded or the
/// structure's own damage threshold trips.
fn refresh_rtc(
    stale: StaleRtc,
    new_r_g: PairSet,
    config: &MaintenanceConfig,
    metrics: &mut MaintenanceMetrics,
    representation: &RowSetPolicy,
) -> (Arc<Rtc>, Arc<PairSet>, Option<Arc<DynamicRtc>>) {
    let t = Instant::now();
    let Some(old_r_g) = stale.r_g else {
        let rtc = Arc::new(Rtc::from_pairs_with(&new_r_g, representation));
        metrics.rebuild_refreshes += 1;
        metrics.rebuild_time += t.elapsed();
        return (rtc, Arc::new(new_r_g), None);
    };
    if *old_r_g == new_r_g {
        metrics.unchanged_refreshes += 1;
        return (stale.rtc, old_r_g, stale.dynamic);
    }
    let inserted = new_r_g.difference(&old_r_g).into_vec();
    let deleted = old_r_g.difference(&new_r_g).into_vec();
    let mut dynamic = match stale.dynamic {
        Some(arc) => Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()),
        None => DynamicRtc::from_rtc(&stale.rtc, &old_r_g),
    };
    let outcome = dynamic.apply(&inserted, &deleted, config);
    let rtc = Arc::new(dynamic.snapshot());
    match outcome {
        MaintenanceOutcome::Rebuilt(_) => {
            metrics.rebuild_refreshes += 1;
            metrics.rebuild_time += t.elapsed();
        }
        MaintenanceOutcome::Incremental(_) | MaintenanceOutcome::Unchanged => {
            metrics.incremental_refreshes += 1;
            metrics.incremental_time += t.elapsed();
        }
    }
    (rtc, Arc::new(new_r_g), Some(Arc::new(dynamic)))
}

/// Fetches the materialized `R⁺_G` for `key` — fresh, refreshed, or
/// computed. `FullTc` has no incremental maintenance path (it is the
/// baseline's structure); a stale entry whose base relation changed is
/// rebuilt, which is exactly the cost asymmetry the dynamic ablation
/// measures against RTC maintenance.
fn obtain_full(
    ctx: &mut EvalCtx<'_, '_>,
    key: &str,
    r: &Regex,
) -> Result<Arc<FullTc>, EngineError> {
    let stale = match ctx.cache.lookup_full_at(key, ctx.epoch) {
        FullLookup::Fresh(full) => return Ok(full),
        FullLookup::Stale(stale) => Some(stale),
        FullLookup::Miss => None,
    };
    let r_g = eval_query(ctx, r)?;
    let t = Instant::now();
    let full = match stale {
        Some(StaleFull {
            full,
            r_g: Some(old_r_g),
        }) if *old_r_g == r_g => {
            ctx.maintenance.unchanged_refreshes += 1;
            full
        }
        Some(_) => {
            let rebuilt = Arc::new(FullTc::from_pairs_parallel_with(
                &r_g,
                ctx.threads,
                &ctx.representation,
            ));
            ctx.maintenance.rebuild_refreshes += 1;
            ctx.maintenance.rebuild_time += t.elapsed();
            rebuilt
        }
        None => Arc::new(FullTc::from_pairs_parallel_with(
            &r_g,
            ctx.threads,
            &ctx.representation,
        )),
    };
    let build = t.elapsed();
    ctx.breakdown.shared_data += build;
    ctx.cache.insert_full_entry_costed(
        key.to_owned(),
        Arc::clone(&full),
        Arc::new(r_g),
        ctx.epoch,
        build,
    );
    Ok(full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::fixtures::paper_graph;
    use rpq_graph::VertexId;

    fn run(kind: SharingKind, src: &str) -> (PairSet, SharedCache) {
        let g = paper_graph();
        let cache = SharedCache::new();
        let mut breakdown = Breakdown::default();
        let mut stats = EliminationStats::default();
        let mut maintenance = MaintenanceMetrics::default();
        let mut ctx = EvalCtx {
            graph: &g,
            cache: &cache,
            epoch: 0,
            kind,
            clause_limit: 1024,
            fast_paths: false,
            threads: 1,
            maintenance_config: MaintenanceConfig::default(),
            representation: RowSetPolicy::default(),
            breakdown: &mut breakdown,
            stats: &mut stats,
            maintenance: &mut maintenance,
        };
        let q = Regex::parse(src).unwrap();
        let r = eval_query(&mut ctx, &q).unwrap();
        (r, cache)
    }

    #[test]
    fn example1_rtc_and_full_agree() {
        let (rtc_res, _) = run(SharingKind::Rtc, "d.(b.c)+.c");
        let (full_res, _) = run(SharingKind::Full, "d.(b.c)+.c");
        assert_eq!(rtc_res, full_res);
        assert_eq!(rtc_res.len(), 2);
        assert!(rtc_res.contains(VertexId(7), VertexId(5)));
        assert!(rtc_res.contains(VertexId(7), VertexId(3)));
    }

    #[test]
    fn closure_free_query_uses_label_joins() {
        let (res, cache) = run(SharingKind::Rtc, "b.c");
        assert_eq!(res.len(), 5);
        assert_eq!(cache.rtc_count(), 0); // no closure → nothing cached
    }

    #[test]
    fn rtc_cached_once_per_closure_body() {
        // Two closures with the same body must share one RTC.
        let (_, cache) = run(SharingKind::Rtc, "d.(b.c)+.c | a.(b.c)+");
        assert_eq!(cache.rtc_count(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn nested_closures_cache_inner_bodies() {
        // (a.b)*.b+ caches RTCs for both a·b and b.
        let (_, cache) = run(SharingKind::Rtc, "(a.b)*.b+");
        assert_eq!(cache.rtc_count(), 2);
    }

    #[test]
    fn alternation_unions_clauses() {
        let (res, _) = run(SharingKind::Rtc, "b.c | d");
        let g = paper_graph();
        let bc = rpq_eval::evaluate_algebraic(&g, &Regex::parse("b.c").unwrap());
        let d = rpq_eval::evaluate_algebraic(&g, &Regex::parse("d").unwrap());
        assert_eq!(res, bc.union(&d));
    }

    #[test]
    fn plus_and_star_share_one_cache_entry() {
        let (_, cache) = run(SharingKind::Rtc, "(b.c)+ | (b.c)*");
        assert_eq!(cache.rtc_count(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn epsilon_query() {
        let (res, _) = run(SharingKind::Rtc, "()");
        assert_eq!(res, PairSet::identity(10));
    }

    #[test]
    fn matches_oracle_on_fixture_queries() {
        let g = paper_graph();
        for q in [
            "a",
            "b.c",
            "(b.c)+",
            "(b.c)*",
            "d.(b.c)+.c",
            "d.(b.c)*.c",
            "a.(a.b)+.b",
            "(a.b)*.b+",
            "b?",
            "(b|c)+",
            "c.(b.c)*",
            "(b.c)+|(c.b)+",
        ] {
            let oracle = rpq_eval::evaluate_algebraic(&g, &Regex::parse(q).unwrap());
            let (rtc_res, _) = run(SharingKind::Rtc, q);
            let (full_res, _) = run(SharingKind::Full, q);
            assert_eq!(rtc_res, oracle, "RTC vs oracle on {q}");
            assert_eq!(full_res, oracle, "Full vs oracle on {q}");
        }
    }
}
