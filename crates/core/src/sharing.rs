//! The recursive query driver — Algorithm 1 (`RTCSharing`) and its
//! FullSharing twin.
//!
//! Both sharing strategies walk the same recursion:
//!
//! 1. convert the query to DNF, outermost closures opaque (line 2);
//! 2. decompose each clause into `Pre · R^(+|*) · Post` (line 4);
//! 3. closure-free clauses go to `EvalRPQwithoutKC` — label joins (line 6);
//! 4. `Pre` is evaluated by recursion (line 8), `R` likewise when the
//!    shared structure is missing (line 10);
//! 5. the shared structure is cached by the canonical form of `R`
//!    (lines 9–11) and the batch unit evaluated (line 12);
//! 6. clause results are unioned (line 13).
//!
//! The only difference between the strategies is the shared structure and
//! the batch-unit evaluator: `Rtc` + Algorithm 2 vs `FullTc` + the plain
//! join — exactly the delta the paper measures.

use crate::batch_unit::{eval_batch_unit_full, eval_batch_unit_rtc};
use crate::breakdown::{Breakdown, EliminationStats};
use crate::cache::SharedCache;
use crate::error::EngineError;
use crate::pre_relation::PreRelation;
use rpq_eval::label_seq::eval_label_names;
use rpq_graph::{LabeledMultigraph, PairSet};
use rpq_reduction::{FullTc, Rtc};
use rpq_regex::{decompose, to_dnf_with_limit, Regex};
use std::sync::Arc;
use std::time::Instant;

/// Which shared structure the recursion maintains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SharingKind {
    Rtc,
    Full,
}

/// Mutable evaluation context threaded through the recursion.
pub(crate) struct EvalCtx<'g, 'c> {
    pub graph: &'g LabeledMultigraph,
    pub cache: &'c mut SharedCache,
    pub kind: SharingKind,
    pub clause_limit: usize,
    pub fast_paths: bool,
    /// Worker threads for parallel shared-structure construction and
    /// expansion (1 = sequential, 0 = all cores).
    pub threads: usize,
    pub breakdown: &'c mut Breakdown,
    pub stats: &'c mut EliminationStats,
}

/// Algorithm 1, parameterized by the sharing kind.
pub(crate) fn eval_query(ctx: &mut EvalCtx<'_, '_>, q: &Regex) -> Result<PairSet, EngineError> {
    let clauses = to_dnf_with_limit(q, ctx.clause_limit)?;
    let mut q_g = PairSet::new();
    for clause in &clauses {
        let unit = decompose(clause);
        let clause_g = match unit.closure {
            // Line 6: no Kleene closure — the whole clause is Post.
            None => eval_label_names(ctx.graph, &unit.post),
            Some((r, closure_kind)) => {
                // Line 8: evaluate Pre by recursion (ε stays symbolic).
                let pre = if unit.pre == Regex::Epsilon {
                    PreRelation::Identity(ctx.graph.vertex_count())
                } else {
                    PreRelation::Pairs(eval_query(ctx, &unit.pre)?)
                };
                // Lines 9–11: fetch or compute the shared structure for R.
                let key = r.canonical_key();
                match ctx.kind {
                    SharingKind::Rtc => {
                        let rtc = match ctx.cache.get_rtc(&key) {
                            Some(rtc) => rtc,
                            None => {
                                let r_g = eval_query(ctx, &r)?;
                                let t = Instant::now();
                                let rtc = Arc::new(Rtc::from_pairs(&r_g));
                                ctx.breakdown.shared_data += t.elapsed();
                                ctx.cache.insert_rtc(key, Arc::clone(&rtc));
                                rtc
                            }
                        };
                        // Theorem 2 fast path: a bare closure (`Pre = ε`,
                        // `Post = ε`) is exactly the RTC expansion, with the
                        // identity relation unioned in for `R*`.
                        if ctx.fast_paths
                            && matches!(pre, PreRelation::Identity(_))
                            && unit.post.is_empty()
                        {
                            let t = Instant::now();
                            let mut result = rtc.expand_parallel(ctx.threads);
                            if closure_kind == rpq_regex::ClosureKind::Star {
                                result = result.union(&PairSet::identity(ctx.graph.vertex_count()));
                            }
                            ctx.breakdown.pre_join += t.elapsed();
                            result
                        } else {
                            // Line 12: the optimized batch unit (Algorithm 2).
                            let out = eval_batch_unit_rtc(
                                ctx.graph,
                                &pre,
                                &rtc,
                                closure_kind,
                                &unit.post,
                                ctx.stats,
                            );
                            ctx.breakdown.pre_join += out.pre_join;
                            out.result
                        }
                    }
                    SharingKind::Full => {
                        let full = match ctx.cache.get_full(&key) {
                            Some(full) => full,
                            None => {
                                let r_g = eval_query(ctx, &r)?;
                                let t = Instant::now();
                                let full = Arc::new(FullTc::from_pairs_parallel(&r_g, ctx.threads));
                                ctx.breakdown.shared_data += t.elapsed();
                                ctx.cache.insert_full(key, Arc::clone(&full));
                                full
                            }
                        };
                        let out = eval_batch_unit_full(
                            ctx.graph,
                            &pre,
                            &full,
                            closure_kind,
                            &unit.post,
                            ctx.stats,
                        );
                        ctx.breakdown.pre_join += out.pre_join;
                        out.result
                    }
                }
            }
        };
        // Line 13: union the clause result.
        q_g.union_in_place(&clause_g);
    }
    Ok(q_g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::fixtures::paper_graph;
    use rpq_graph::VertexId;

    fn run(kind: SharingKind, src: &str) -> (PairSet, SharedCache) {
        let g = paper_graph();
        let mut cache = SharedCache::new();
        let mut breakdown = Breakdown::default();
        let mut stats = EliminationStats::default();
        let mut ctx = EvalCtx {
            graph: &g,
            cache: &mut cache,
            kind,
            clause_limit: 1024,
            fast_paths: false,
            threads: 1,
            breakdown: &mut breakdown,
            stats: &mut stats,
        };
        let q = Regex::parse(src).unwrap();
        let r = eval_query(&mut ctx, &q).unwrap();
        (r, cache)
    }

    #[test]
    fn example1_rtc_and_full_agree() {
        let (rtc_res, _) = run(SharingKind::Rtc, "d.(b.c)+.c");
        let (full_res, _) = run(SharingKind::Full, "d.(b.c)+.c");
        assert_eq!(rtc_res, full_res);
        assert_eq!(rtc_res.len(), 2);
        assert!(rtc_res.contains(VertexId(7), VertexId(5)));
        assert!(rtc_res.contains(VertexId(7), VertexId(3)));
    }

    #[test]
    fn closure_free_query_uses_label_joins() {
        let (res, cache) = run(SharingKind::Rtc, "b.c");
        assert_eq!(res.len(), 5);
        assert_eq!(cache.rtc_count(), 0); // no closure → nothing cached
    }

    #[test]
    fn rtc_cached_once_per_closure_body() {
        // Two closures with the same body must share one RTC.
        let (_, cache) = run(SharingKind::Rtc, "d.(b.c)+.c | a.(b.c)+");
        assert_eq!(cache.rtc_count(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn nested_closures_cache_inner_bodies() {
        // (a.b)*.b+ caches RTCs for both a·b and b.
        let (_, cache) = run(SharingKind::Rtc, "(a.b)*.b+");
        assert_eq!(cache.rtc_count(), 2);
    }

    #[test]
    fn alternation_unions_clauses() {
        let (res, _) = run(SharingKind::Rtc, "b.c | d");
        let g = paper_graph();
        let bc = rpq_eval::evaluate_algebraic(&g, &Regex::parse("b.c").unwrap());
        let d = rpq_eval::evaluate_algebraic(&g, &Regex::parse("d").unwrap());
        assert_eq!(res, bc.union(&d));
    }

    #[test]
    fn plus_and_star_share_one_cache_entry() {
        let (_, cache) = run(SharingKind::Rtc, "(b.c)+ | (b.c)*");
        assert_eq!(cache.rtc_count(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn epsilon_query() {
        let (res, _) = run(SharingKind::Rtc, "()");
        assert_eq!(res, PairSet::identity(10));
    }

    #[test]
    fn matches_oracle_on_fixture_queries() {
        let g = paper_graph();
        for q in [
            "a",
            "b.c",
            "(b.c)+",
            "(b.c)*",
            "d.(b.c)+.c",
            "d.(b.c)*.c",
            "a.(a.b)+.b",
            "(a.b)*.b+",
            "b?",
            "(b|c)+",
            "c.(b.c)*",
            "(b.c)+|(c.b)+",
        ] {
            let oracle = rpq_eval::evaluate_algebraic(&g, &Regex::parse(q).unwrap());
            let (rtc_res, _) = run(SharingKind::Rtc, q);
            let (full_res, _) = run(SharingKind::Full, q);
            assert_eq!(rtc_res, oracle, "RTC vs oracle on {q}");
            assert_eq!(full_res, oracle, "Full vs oracle on {q}");
        }
    }
}
