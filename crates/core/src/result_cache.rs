//! The bounded per-(epoch, query) result cache layered **above** the
//! structural [`crate::SharedCache`].
//!
//! The structural cache shares closure *ingredients* (RTCs, full
//! closures) across queries; this cache memoizes whole materialized
//! result sets. That is only sound when the graph the result was computed
//! against can never change underneath the entry — which is exactly what
//! an [`crate::EpochView`] guarantees, so the key is `(epoch, canonical
//! query text)` and the serving layer's pinned readers are the only
//! writers. Results are identical across strategies and thread counts
//! (property-tested), so the key deliberately omits the evaluation
//! configuration: a result computed by one connection's overlay is a hit
//! for every other connection pinned to the same epoch.
//!
//! The cache is bounded (FIFO eviction at [`ResultCache::capacity`]
//! entries) because materialized results can dwarf the structures they
//! were computed from, and epochs keep coming. Counters distinguish the
//! serving layer's hit tiers: a **view hit** here short-circuits the
//! whole evaluation; a miss falls through to the structural cache
//! (whose own hit/miss counters make up the second tier).

use rpq_graph::PairSet;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Default bound on memoized results (see [`ResultCache::with_capacity`]).
pub const DEFAULT_RESULT_CACHE_ENTRIES: usize = 256;

/// The lock-protected interior: the memo map plus insertion order for
/// FIFO eviction.
#[derive(Default)]
struct Inner {
    map: FxHashMap<(u64, String), Arc<PairSet>>,
    order: VecDeque<(u64, String)>,
}

/// Bounded map from `(epoch, canonical query)` to a materialized result.
///
/// All methods take `&self` (one mutex around the map, atomic counters):
/// concurrent pinned readers look up and fill one cache. Entries are
/// `Arc`-shared, so a hit costs one reference bump however large the
/// result set is.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
    view_hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// An empty cache with the default capacity
    /// ([`DEFAULT_RESULT_CACHE_ENTRIES`]).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RESULT_CACHE_ENTRIES)
    }

    /// An empty cache bounded to `capacity` entries (0 disables
    /// memoization: every insert is immediately evicted).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
            view_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The memoized result for `query` at `epoch`, counting a view hit or
    /// a miss.
    pub fn get(&self, epoch: u64, query: &str) -> Option<Arc<PairSet>> {
        // Borrow-friendly probe: build the owned key only on insert.
        let inner = self.lock();
        let hit = inner.map.get(&(epoch, query.to_owned())).map(Arc::clone);
        drop(inner);
        match &hit {
            Some(_) => self.view_hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Memoizes `result` for `query` at `epoch`, evicting the oldest
    /// entries past the capacity bound. Re-inserting an existing key
    /// replaces the value without extending its eviction lifetime.
    pub fn insert(&self, epoch: u64, query: String, result: Arc<PairSet>) {
        let mut inner = self.lock();
        let key = (epoch, query);
        if inner.map.insert(key.clone(), result).is_none() {
            inner.order.push_back(key);
        }
        while inner.map.len() > self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&oldest);
        }
    }

    /// Number of memoized results currently held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether no results are memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The eviction bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups answered from a memoized result since the last reset.
    pub fn view_hits(&self) -> u64 {
        self.view_hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to evaluation since the last reset.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Resets the hit/miss counters, preserving memoized results — the
    /// result-cache half of `Engine::reset_metrics`.
    pub fn reset_counters(&self) {
        self.view_hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Drops every memoized result and resets the counters.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
        drop(inner);
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: u32) -> Arc<PairSet> {
        Arc::new((0..n).map(|i| (i, i + 1)).collect())
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = ResultCache::new();
        assert!(c.get(0, "q").is_none());
        assert_eq!((c.view_hits(), c.misses()), (0, 1));
        c.insert(0, "q".into(), pairs(3));
        let hit = c.get(0, "q").unwrap();
        assert_eq!(hit.len(), 3);
        assert_eq!((c.view_hits(), c.misses()), (1, 1));
        // Same query at another epoch is a different entry.
        assert!(c.get(1, "q").is_none());
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let c = ResultCache::with_capacity(2);
        c.insert(0, "a".into(), pairs(1));
        c.insert(0, "b".into(), pairs(1));
        c.insert(0, "c".into(), pairs(1));
        assert_eq!(c.len(), 2);
        assert!(c.get(0, "a").is_none(), "oldest entry evicted");
        assert!(c.get(0, "b").is_some());
        assert!(c.get(0, "c").is_some());
    }

    #[test]
    fn reinsert_replaces_without_duplicating_order() {
        let c = ResultCache::with_capacity(2);
        c.insert(0, "a".into(), pairs(1));
        c.insert(0, "a".into(), pairs(5));
        c.insert(0, "b".into(), pairs(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0, "a").unwrap().len(), 5);
        // A third key still only evicts one entry ("a", the oldest).
        c.insert(0, "c".into(), pairs(1));
        assert_eq!(c.len(), 2);
        assert!(c.get(0, "a").is_none());
    }

    #[test]
    fn reset_counters_preserves_entries() {
        let c = ResultCache::new();
        c.insert(0, "q".into(), pairs(2));
        let _ = c.get(0, "q");
        let _ = c.get(0, "other");
        c.reset_counters();
        assert_eq!((c.view_hits(), c.misses()), (0, 0));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let c = ResultCache::with_capacity(0);
        c.insert(0, "q".into(), pairs(1));
        assert_eq!(c.len(), 0);
        assert!(c.get(0, "q").is_none());
    }
}
