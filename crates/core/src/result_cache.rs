//! The bounded per-(epoch, query) result cache layered **above** the
//! structural [`crate::SharedCache`].
//!
//! The structural cache shares closure *ingredients* (RTCs, full
//! closures) across queries; this cache memoizes whole materialized
//! result sets. That is only sound when the graph the result was computed
//! against can never change underneath the entry — which is exactly what
//! an [`crate::EpochView`] guarantees, so the key is `(epoch, canonical
//! query text)` and the serving layer's pinned readers are the only
//! writers. Results are identical across strategies and thread counts
//! (property-tested), so the key deliberately omits the evaluation
//! configuration: a result computed by one connection's overlay is a hit
//! for every other connection pinned to the same epoch.
//!
//! The cache is bounded — by entry count ([`ResultCache::capacity`])
//! and optionally by heap bytes — because materialized results can dwarf
//! the structures they were computed from, and epochs keep coming.
//! Eviction uses the same cost-aware scoring as the structural cache
//! (see [`crate::CacheBudget`]): the entry with the lowest
//! `cost_to_rebuild / bytes` goes first, oldest-inserted among ties — so
//! uncosted entries of equal size degrade to exactly the old FIFO
//! behavior, and re-inserting an existing key never extends its
//! eviction lifetime. Counters distinguish the serving
//! layer's hit tiers: a **view hit** here short-circuits the whole
//! evaluation; a miss falls through to the structural cache (whose own
//! hit/miss counters make up the second tier).

use rpq_graph::PairSet;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// Default bound on memoized results (see [`ResultCache::with_capacity`]).
pub const DEFAULT_RESULT_CACHE_ENTRIES: usize = 256;

/// One memoized result with its retention metadata.
struct Entry {
    result: Arc<PairSet>,
    /// Heap bytes of the materialized result.
    bytes: usize,
    /// Nanos the evaluation took — the cost a future miss pays again.
    build_nanos: u64,
    /// Insertion sequence — the tie-break among equal scores; preserved
    /// on re-insert so replacing a value never extends the entry's
    /// eviction lifetime.
    seq: u64,
}

impl Entry {
    /// Eviction score: rebuild nanos bought per retained byte; lowest
    /// goes first.
    fn score(&self) -> f64 {
        self.build_nanos as f64 / self.bytes.max(1) as f64
    }
}

/// The lock-protected interior.
#[derive(Default)]
struct Inner {
    map: FxHashMap<(u64, String), Entry>,
    /// Retained result bytes (maintained incrementally).
    bytes: usize,
    /// Next insertion sequence number.
    seq: u64,
}

/// Bounded map from `(epoch, canonical query)` to a materialized result.
///
/// All methods take `&self` (one mutex around the map, atomic counters):
/// concurrent pinned readers look up and fill one cache. Entries are
/// `Arc`-shared, so a hit costs one reference bump however large the
/// result set is.
pub struct ResultCache {
    capacity: usize,
    /// Optional heap-byte bound on retained results (the result-cache
    /// half of [`crate::CacheBudget::max_bytes`]).
    max_bytes: Option<usize>,
    inner: Mutex<Inner>,
    view_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ResultCache {
    /// An empty cache with the default capacity
    /// ([`DEFAULT_RESULT_CACHE_ENTRIES`]) and no byte bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RESULT_CACHE_ENTRIES)
    }

    /// An empty cache bounded to `capacity` entries (0 disables
    /// memoization: every insert is immediately evicted).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_capacity_and_budget(capacity, None)
    }

    /// [`ResultCache::with_capacity`] with an additional heap-byte bound
    /// on retained results.
    pub fn with_capacity_and_budget(capacity: usize, max_bytes: Option<usize>) -> Self {
        Self {
            capacity,
            max_bytes,
            inner: Mutex::new(Inner::default()),
            view_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The memoized result for `query` at `epoch`, counting a view hit or
    /// a miss.
    pub fn get(&self, epoch: u64, query: &str) -> Option<Arc<PairSet>> {
        // Borrow-friendly probe: build the owned key only on insert.
        let inner = self.lock();
        let hit = inner
            .map
            .get(&(epoch, query.to_owned()))
            .map(|entry| Arc::clone(&entry.result));
        drop(inner);
        match &hit {
            Some(_) => self.view_hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Memoizes `result` for `query` at `epoch` with no recorded build
    /// cost (scores cheapest-to-rebuild; uncosted entries of equal size
    /// evict in insertion order, the old FIFO behavior).
    pub fn insert(&self, epoch: u64, query: String, result: Arc<PairSet>) {
        self.insert_costed(epoch, query, result, Duration::ZERO);
    }

    /// Memoizes `result`, recording `build` — the wall clock the
    /// evaluation took — as its cost-to-rebuild, then evicts
    /// lowest-score entries past the capacity and byte bounds.
    /// Re-inserting an existing key replaces the value without extending
    /// its eviction lifetime.
    pub fn insert_costed(&self, epoch: u64, query: String, result: Arc<PairSet>, build: Duration) {
        let bytes = result.heap_bytes();
        let mut inner = self.lock();
        let key = (epoch, query);
        let seq = match inner.map.get(&key) {
            // Keep the original insertion point: replacement must not
            // push the entry back in the eviction order.
            Some(existing) => existing.seq,
            None => {
                inner.seq += 1;
                inner.seq
            }
        };
        let entry = Entry {
            result,
            bytes,
            build_nanos: build.as_nanos() as u64,
            seq,
        };
        inner.bytes += bytes;
        if let Some(old) = inner.map.insert(key, entry) {
            inner.bytes -= old.bytes;
        }
        let mut evicted = 0u64;
        while inner.map.len() > self.capacity || self.max_bytes.is_some_and(|b| inner.bytes > b) {
            let victim = inner
                .map
                .iter()
                .min_by(|(ka, a), (kb, b)| {
                    (a.score(), a.seq, ka)
                        .partial_cmp(&(b.score(), b.seq, kb))
                        .expect("scores are finite")
                })
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else {
                break;
            };
            let old = inner.map.remove(&victim).expect("victim present");
            inner.bytes -= old.bytes;
            evicted += 1;
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Number of memoized results currently held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether no results are memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The entry-count eviction bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The heap-byte eviction bound, if one is set.
    pub fn max_bytes(&self) -> Option<usize> {
        self.max_bytes
    }

    /// Retained heap bytes across every memoized result.
    pub fn occupancy_bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Lookups answered from a memoized result since the last reset.
    pub fn view_hits(&self) -> u64 {
        self.view_hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to evaluation since the last reset.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Results evicted past the capacity/byte bounds since the last reset.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Resets the hit/miss/eviction counters, preserving memoized results
    /// — the result-cache half of `Engine::reset_metrics`.
    pub fn reset_counters(&self) {
        self.view_hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Drops every memoized result and resets the counters.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.bytes = 0;
        drop(inner);
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(n: u32) -> Arc<PairSet> {
        Arc::new((0..n).map(|i| (i, i + 1)).collect())
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = ResultCache::new();
        assert!(c.get(0, "q").is_none());
        assert_eq!((c.view_hits(), c.misses()), (0, 1));
        c.insert(0, "q".into(), pairs(3));
        let hit = c.get(0, "q").unwrap();
        assert_eq!(hit.len(), 3);
        assert_eq!((c.view_hits(), c.misses()), (1, 1));
        // Same query at another epoch is a different entry.
        assert!(c.get(1, "q").is_none());
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let c = ResultCache::with_capacity(2);
        c.insert(0, "a".into(), pairs(1));
        c.insert(0, "b".into(), pairs(1));
        c.insert(0, "c".into(), pairs(1));
        assert_eq!(c.len(), 2);
        assert!(c.get(0, "a").is_none(), "oldest entry evicted");
        assert!(c.get(0, "b").is_some());
        assert!(c.get(0, "c").is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinsert_replaces_without_duplicating_order() {
        let c = ResultCache::with_capacity(2);
        c.insert(0, "a".into(), pairs(1));
        c.insert(0, "a".into(), pairs(5));
        c.insert(0, "b".into(), pairs(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0, "a").unwrap().len(), 5);
        // A third key still only evicts one entry ("a", the oldest).
        c.insert(0, "c".into(), pairs(1));
        assert_eq!(c.len(), 2);
        assert!(c.get(0, "a").is_none());
    }

    #[test]
    fn reset_counters_preserves_entries() {
        let c = ResultCache::new();
        c.insert(0, "q".into(), pairs(2));
        let _ = c.get(0, "q");
        let _ = c.get(0, "other");
        c.reset_counters();
        assert_eq!((c.view_hits(), c.misses()), (0, 0));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let c = ResultCache::with_capacity(0);
        c.insert(0, "q".into(), pairs(1));
        assert_eq!(c.len(), 0);
        assert!(c.get(0, "q").is_none());
    }

    #[test]
    fn costly_results_outlive_cheap_ones() {
        let c = ResultCache::with_capacity(2);
        c.insert_costed(0, "slow".into(), pairs(1), Duration::from_millis(50));
        c.insert_costed(0, "fast".into(), pairs(1), Duration::from_micros(10));
        c.insert_costed(0, "medium".into(), pairs(1), Duration::from_millis(5));
        assert_eq!(c.len(), 2);
        // Equal sizes: the cheapest-to-rebuild result goes, not the oldest.
        assert!(c.get(0, "fast").is_none());
        assert!(c.get(0, "slow").is_some());
        assert!(c.get(0, "medium").is_some());
    }

    #[test]
    fn byte_budget_bounds_retained_results() {
        let unit = pairs(8).heap_bytes();
        let c = ResultCache::with_capacity_and_budget(1024, Some(2 * unit));
        c.insert_costed(0, "a".into(), pairs(8), Duration::from_millis(9));
        c.insert_costed(0, "b".into(), pairs(8), Duration::from_millis(1));
        assert_eq!(c.occupancy_bytes(), 2 * unit);
        c.insert_costed(0, "c".into(), pairs(8), Duration::from_millis(5));
        assert!(c.occupancy_bytes() <= 2 * unit);
        assert_eq!(c.len(), 2);
        assert!(c.get(0, "b").is_none(), "lowest score evicted");
        assert_eq!(c.evictions(), 1);
    }
}
