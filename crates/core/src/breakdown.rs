//! Per-stage timing and operation-elimination accounting.
//!
//! Section V-B splits query response time into three parts and compares
//! them between FullSharing and RTCSharing:
//!
//! * **`Shared_Data`** — computing the shared structure *from `R_G`*
//!   (`R̄⁺_G` for RTC, `R⁺_G` for Full). Both methods compute `R_G`
//!   identically, so that time is excluded here (it lands in the
//!   remainder).
//! * **`Pre⋈R⁺`** — the join of `Pre_G` with the shared structure
//!   (Algorithm 2 lines 4–12), where the useless/redundant eliminations
//!   act.
//! * **`Remainder`** — everything the methods share: evaluating `Pre_G` and
//!   `R_G`, the `Post` stage, DNF conversion and result unions. Computed as
//!   `total − shared_data − pre_join`, where `total` is the wall-clock
//!   response time, so nothing can be double-counted across the recursion.

use std::fmt;
use std::ops::AddAssign;
use std::time::Duration;

/// Accumulated per-stage wall-clock times.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Time building the shared structure from `R_G`.
    pub shared_data: Duration,
    /// Time joining `Pre_G` with the shared closure.
    pub pre_join: Duration,
    /// Total wall-clock query response time.
    pub total: Duration,
}

impl Breakdown {
    /// `Remainder`: total minus the two instrumented stages (saturating, in
    /// case timer granularity makes the parts exceed the whole).
    pub fn remainder(&self) -> Duration {
        self.total
            .saturating_sub(self.shared_data)
            .saturating_sub(self.pre_join)
    }

    /// Resets all accumulators.
    pub fn reset(&mut self) {
        *self = Breakdown::default();
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        self.shared_data += rhs.shared_data;
        self.pre_join += rhs.pre_join;
        self.total += rhs.total;
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shared_data={:?} pre_join={:?} remainder={:?} total={:?}",
            self.shared_data,
            self.pre_join,
            self.remainder(),
            self.total
        )
    }
}

/// Counters making the four operation-elimination rules observable.
///
/// For RTCSharing these count *avoided* work; for FullSharing the
/// corresponding counter records *incurred* duplicate work, so tests can
/// assert the asymmetry the paper claims.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EliminationStats {
    /// `Pre_G` tuples whose end vertex lies outside `V_R` — the closure is
    /// never expanded for them (*useless-1* elimination).
    pub useless1_skipped: u64,
    /// `Pre_G` tuples collapsing onto an already-seen `(v_i, s_j)` pair
    /// (*redundant-1* elimination; Algorithm 2 line 6).
    pub redundant1_skipped: u64,
    /// Closure successors collapsing onto an already-seen `(v_i, s_k)` pair
    /// (*redundant-2* elimination; Algorithm 2 line 9).
    pub redundant2_skipped: u64,
    /// Member-expansion inserts performed **without** a duplicate check
    /// (*useless-2* elimination; Algorithm 2 line 12).
    pub useless2_unchecked_inserts: u64,
    /// FullSharing only: successor inserts that hit the duplicate check —
    /// the redundant operations RTCSharing structurally avoids.
    pub full_duplicate_hits: u64,
}

impl EliminationStats {
    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = EliminationStats::default();
    }
}

impl AddAssign for EliminationStats {
    fn add_assign(&mut self, rhs: EliminationStats) {
        self.useless1_skipped += rhs.useless1_skipped;
        self.redundant1_skipped += rhs.redundant1_skipped;
        self.redundant2_skipped += rhs.redundant2_skipped;
        self.useless2_unchecked_inserts += rhs.useless2_unchecked_inserts;
        self.full_duplicate_hits += rhs.full_duplicate_hits;
    }
}

/// Accounting for the dynamic-graph maintenance paths: how stale shared
/// structures were brought up to the current graph epoch, and what it
/// cost. `incremental_time` vs `rebuild_time` is the comparison the
/// `dynamic_ablation` bench reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaintenanceMetrics {
    /// `Engine::apply_delta` calls absorbed.
    pub deltas_applied: u64,
    /// Stale entries whose base relation turned out unchanged — the entry
    /// was re-stamped without touching the structure.
    pub unchanged_refreshes: u64,
    /// Stale entries refreshed by incremental RTC maintenance.
    pub incremental_refreshes: u64,
    /// Stale entries refreshed by a from-scratch rebuild (damage threshold
    /// exceeded, or a structure with no incremental path, e.g. `FullTc`).
    pub rebuild_refreshes: u64,
    /// Wall-clock time in incremental maintenance (diff + apply + snapshot).
    pub incremental_time: Duration,
    /// Wall-clock time in rebuild refreshes.
    pub rebuild_time: Duration,
}

impl MaintenanceMetrics {
    /// Total stale-entry refreshes, whichever path they took.
    pub fn refreshes(&self) -> u64 {
        self.unchanged_refreshes + self.incremental_refreshes + self.rebuild_refreshes
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = MaintenanceMetrics::default();
    }
}

impl AddAssign for MaintenanceMetrics {
    fn add_assign(&mut self, rhs: MaintenanceMetrics) {
        self.deltas_applied += rhs.deltas_applied;
        self.unchanged_refreshes += rhs.unchanged_refreshes;
        self.incremental_refreshes += rhs.incremental_refreshes;
        self.rebuild_refreshes += rhs.rebuild_refreshes;
        self.incremental_time += rhs.incremental_time;
        self.rebuild_time += rhs.rebuild_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maintenance_metrics_accumulate() {
        let m = MaintenanceMetrics {
            deltas_applied: 1,
            unchanged_refreshes: 2,
            incremental_refreshes: 3,
            rebuild_refreshes: 4,
            incremental_time: Duration::from_millis(5),
            rebuild_time: Duration::from_millis(6),
        };
        let mut sum = MaintenanceMetrics::default();
        sum += m;
        sum += m;
        assert_eq!(sum.refreshes(), 18);
        assert_eq!(sum.incremental_time, Duration::from_millis(10));
        sum.reset();
        assert_eq!(sum, MaintenanceMetrics::default());
    }

    #[test]
    fn breakdown_remainder_and_reset() {
        let mut b = Breakdown {
            shared_data: Duration::from_millis(2),
            pre_join: Duration::from_millis(3),
            total: Duration::from_millis(10),
        };
        assert_eq!(b.remainder(), Duration::from_millis(5));
        let mut sum = Breakdown::default();
        sum += b;
        sum += b;
        assert_eq!(sum.total, Duration::from_millis(20));
        assert_eq!(sum.remainder(), Duration::from_millis(10));
        b.reset();
        assert_eq!(b.total, Duration::ZERO);
    }

    #[test]
    fn remainder_saturates() {
        let b = Breakdown {
            shared_data: Duration::from_millis(8),
            pre_join: Duration::from_millis(8),
            total: Duration::from_millis(10),
        };
        assert_eq!(b.remainder(), Duration::ZERO);
    }

    #[test]
    fn elimination_stats_accumulate() {
        let a = EliminationStats {
            useless1_skipped: 1,
            redundant1_skipped: 2,
            redundant2_skipped: 3,
            useless2_unchecked_inserts: 4,
            full_duplicate_hits: 5,
        };
        let mut sum = EliminationStats::default();
        sum += a;
        sum += a;
        assert_eq!(sum.redundant2_skipped, 6);
        assert_eq!(sum.full_duplicate_hits, 10);
        sum.reset();
        assert_eq!(sum, EliminationStats::default());
    }

    #[test]
    fn breakdown_display() {
        let b = Breakdown::default();
        let s = b.to_string();
        assert!(s.contains("shared_data"));
        assert!(s.contains("total"));
    }
}
