//! The shared-structure cache, epoch-aware for dynamic graphs and safe
//! under concurrent readers.
//!
//! Algorithm 1 lines 9–11: "If the RTC for R exists, we reuse \[it\].
//! Otherwise, we compute and store \[it\] to share." The cache key is the
//! *closure body* `R` (canonicalized), not the closure itself — `R+` and
//! `R*` share one entry, which is how Example 7's `(a·b)*` reuses the RTC
//! computed for `a·(a·b)+·b`.
//!
//! For dynamic graphs every entry additionally records the **epoch** it
//! was built at and the base relation `R_G` it was built from. The cache
//! itself tracks the graph's current epoch (advanced by
//! `Engine::apply_delta`); a lookup whose entry is older than the current
//! epoch returns [`RtcLookup::Stale`] — handing the caller everything
//! needed to refresh *incrementally* (diff the base relations, feed the
//! delta to [`DynamicRtc`]) instead of silently serving a closure of a
//! graph that no longer exists.
//!
//! ## Concurrency
//!
//! Every method takes `&self`: the interior is **sharded** — entries live
//! in `SHARD_COUNT` (8) hash maps, each behind its own `RwLock`, selected
//! by the key's hash — and the hit/miss/stale counters and the epoch are
//! atomics. N threads evaluating disjoint closure bodies therefore insert
//! and look up without contending on one lock, and a fresh-entry hit only
//! ever takes a shard *read* lock, so the serving front-end's concurrent
//! `query` connections all read one cache simultaneously. Two threads
//! racing to fill the same miss both compute and insert; the structures
//! are deterministic per `(key, epoch)`, so whichever insert lands last is
//! immaterial. A stale entry is claimed (removed) under the shard write
//! lock, so exactly one racer receives the refreshable state — the others
//! see a plain miss and rebuild from scratch, which is correct, just not
//! incremental.
//!
//! ## Budgets and eviction
//!
//! By default the cache is unbounded — every distinct closure body pins
//! its structures forever. A [`CacheBudget`] (engine-config field, the
//! `RPQ_CACHE_BUDGET` environment variable, or the `rpq --cache-budget`
//! flag) caps the retained footprint: every entry records its heap bytes,
//! the wall-clock nanos spent building it (the cost to rebuild) and a
//! last-hit tick, and whenever an insert pushes the cache over
//! `max_bytes`/`max_entries` the entry with the lowest
//! `cost_to_rebuild / bytes` score is evicted. Scores are compared by
//! order of magnitude (power-of-8 buckets): measured build times jitter
//! from run to run, so raw float scores would never tie and a hot entry
//! whose build happened to measure fast would thrash; entries of
//! comparable rebuild density instead *tie* and the least-recently-hit
//! one goes (then key order, so eviction is deterministic). Entries
//! whose epoch is pinned by a live [`EpochPin`] — i.e. retained by an
//! [`crate::EpochView`] — are never evicted; if pinned entries alone
//! exceed the budget, enforcement is best-effort until the pins drop.
//! `ttl_epochs` adds a [`SharedCache::sweep`] run on every epoch advance
//! that drops unpinned entries too many epochs behind the live one.
//! Eviction never affects results — an evicted structure is rebuilt on
//! its next miss (counted in
//! [`EvictionCounters::rebuilds_after_evict`]) — it only trades memory
//! for rebuild time.

use rpq_graph::PairSet;
use rpq_reduction::{DynamicRtc, FullTc, Rtc};
use rustc_hash::{FxHashMap, FxHashSet};
use std::hash::{BuildHasher, BuildHasherDefault};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of independent lock-protected map shards. A small power of two:
/// enough to keep a handful of serving threads off each other's locks,
/// small enough that whole-cache aggregates stay cheap.
const SHARD_COUNT: usize = 8;

/// Bound on the evicted-key set behind the rebuild-after-evict counter.
/// Purely accounting state; when it fills up it is dropped wholesale
/// rather than growing without limit (the counter becomes best-effort).
const EVICTED_KEYS_CAP: usize = 4096;

/// Retention budget for the engine's caches. `Default` is unbounded on
/// every axis — the pre-budget behavior.
///
/// Parsed from specs like `64k`, `bytes=1m,entries=128,ttl=4` (sizes
/// take `k`/`m`/`g` binary suffixes; a bare size means `max_bytes`), set
/// via [`crate::EngineConfig::cache_budget`], the `RPQ_CACHE_BUDGET`
/// environment variable or the server's `--cache-budget` flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheBudget {
    /// Maximum retained heap bytes (structures plus recorded base
    /// relations, both namespaces combined); `None` = unbounded.
    pub max_bytes: Option<usize>,
    /// Maximum number of retained entries (RTCs plus full closures);
    /// `None` = unbounded.
    pub max_entries: Option<usize>,
    /// Entries whose build epoch trails the live epoch by more than this
    /// many epochs are dropped by [`SharedCache::sweep`]; `None` keeps
    /// stale entries indefinitely (they back incremental refreshes).
    pub ttl_epochs: Option<u64>,
}

impl CacheBudget {
    /// Whether no axis is bounded (the default).
    pub fn is_unbounded(&self) -> bool {
        *self == Self::default()
    }

    /// Parses a budget spec: comma-separated `bytes=SIZE`, `entries=N`,
    /// `ttl=N` parts, a bare `SIZE` (meaning `bytes=SIZE`), or the word
    /// `unbounded`. Sizes accept `k`/`m`/`g` binary suffixes
    /// (case-insensitive). Returns `None` on anything malformed.
    pub fn parse(spec: &str) -> Option<Self> {
        fn size(s: &str) -> Option<usize> {
            let s = s.trim();
            let (digits, mult) = match s.as_bytes().last()? {
                b'k' | b'K' => (&s[..s.len() - 1], 1usize << 10),
                b'm' | b'M' => (&s[..s.len() - 1], 1usize << 20),
                b'g' | b'G' => (&s[..s.len() - 1], 1usize << 30),
                _ => (s, 1usize),
            };
            digits.trim().parse::<usize>().ok()?.checked_mul(mult)
        }
        if spec.trim().eq_ignore_ascii_case("unbounded") {
            return Some(Self::default());
        }
        let mut budget = Self::default();
        let mut any = false;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), v.trim()),
                None => ("bytes", part),
            };
            match key {
                "bytes" => budget.max_bytes = Some(size(value)?),
                "entries" => budget.max_entries = Some(value.parse().ok()?),
                "ttl" => budget.ttl_epochs = Some(value.parse().ok()?),
                _ => return None,
            }
            any = true;
        }
        any.then_some(budget)
    }

    /// The budget named by `RPQ_CACHE_BUDGET`, or the unbounded default
    /// when the variable is unset or malformed (mirrors
    /// `RowSetPolicy::from_env_or_default`).
    pub fn from_env_or_default() -> Self {
        match std::env::var("RPQ_CACHE_BUDGET") {
            Ok(spec) => Self::parse(&spec).unwrap_or_default(),
            Err(_) => Self::default(),
        }
    }
}

impl std::fmt::Display for CacheBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_unbounded() {
            return write!(f, "unbounded");
        }
        let mut parts = Vec::new();
        if let Some(b) = self.max_bytes {
            parts.push(format!("bytes={b}"));
        }
        if let Some(e) = self.max_entries {
            parts.push(format!("entries={e}"));
        }
        if let Some(t) = self.ttl_epochs {
            parts.push(format!("ttl={t}"));
        }
        write!(f, "{}", parts.join(","))
    }
}

/// Point-in-time copy of the eviction counters, by reason.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionCounters {
    /// Entries evicted because the byte budget overflowed.
    pub by_bytes: u64,
    /// Entries evicted because the entry budget overflowed.
    pub by_entries: u64,
    /// Entries dropped by the TTL sweep.
    pub by_ttl: u64,
    /// Stale entries displaced by a newer-epoch insert under their key.
    pub by_stale: u64,
    /// Misses on keys that were previously evicted under budget pressure
    /// — each one is a rebuild the budget caused.
    pub rebuilds_after_evict: u64,
}

impl EvictionCounters {
    /// Total evictions across every reason.
    pub fn total(&self) -> u64 {
        self.by_bytes + self.by_entries + self.by_ttl + self.by_stale
    }
}

/// RAII pin on an epoch: while any pin for epoch `E` is alive, budget
/// eviction and the TTL sweep never remove entries stamped `E`, so an
/// [`crate::EpochView`] retained by the serving layer keeps getting
/// fresh hits for the structures it already paid for. Dropping the last
/// pin makes the epoch's entries evictable again.
pub struct EpochPin {
    cache: Arc<SharedCache>,
    epoch: u64,
}

impl EpochPin {
    /// Pins `epoch` in `cache` until the returned guard drops.
    pub fn new(cache: Arc<SharedCache>, epoch: u64) -> Self {
        cache.pin_epoch(epoch);
        Self { cache, epoch }
    }

    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.cache.unpin_epoch(self.epoch);
    }
}

/// Per-entry retention metadata: everything eviction scores on.
struct EntryMeta {
    /// Retained heap bytes: the structure plus its recorded base
    /// relation (the maintainable form is not counted — it only exists
    /// transiently between refreshes).
    bytes: usize,
    /// Wall-clock nanos spent building the structure — the cost a future
    /// miss would pay again. 0 when the insert path measured none, which
    /// scores the entry cheapest-to-rebuild (evicted first).
    build_nanos: u64,
    /// Tick of the most recent fresh hit (insert counts as one); updated
    /// under the shard *read* lock, hence atomic.
    last_hit: AtomicU64,
}

impl EntryMeta {
    /// Eviction score: nanos of rebuild work bought per retained byte.
    /// Lowest goes first.
    fn score(&self) -> f64 {
        self.build_nanos as f64 / self.bytes.max(1) as f64
    }

    /// The score's power-of-8 bucket, used for victim comparison.
    /// Build times are measured wall-clock and jitter between runs, so
    /// comparing raw float scores never produces the tie the recency
    /// rule needs — a hot entry whose build happened to measure fast
    /// would be re-evicted on every round of tail churn. Bucketing by
    /// order of magnitude makes entries of comparable rebuild density
    /// tie, and recency picks among them. Unmeasured entries (cost 0)
    /// sort below every bucket and go first.
    fn score_class(&self) -> i32 {
        let score = self.score();
        if score <= 0.0 {
            return i32::MIN;
        }
        (score.log2() / 3.0).floor() as i32
    }
}

impl Clone for EntryMeta {
    fn clone(&self) -> Self {
        Self {
            bytes: self.bytes,
            build_nanos: self.build_nanos,
            last_hit: AtomicU64::new(self.last_hit.load(Ordering::Relaxed)),
        }
    }
}

/// A cached RTC with its provenance.
#[derive(Clone)]
struct RtcEntry {
    rtc: Arc<Rtc>,
    /// The `R_G` the structure was built from (diff base for refreshes);
    /// `None` when the entry was stored without one (legacy path) — such
    /// an entry can only be refreshed by rebuild.
    r_g: Option<Arc<PairSet>>,
    /// The maintainable form, once a refresh has materialized it.
    dynamic: Option<Arc<DynamicRtc>>,
    epoch: u64,
    meta: EntryMeta,
}

/// A cached full closure with its provenance.
#[derive(Clone)]
struct FullEntry {
    full: Arc<FullTc>,
    r_g: Option<Arc<PairSet>>,
    epoch: u64,
    meta: EntryMeta,
}

/// Result of an epoch-aware RTC lookup.
pub enum RtcLookup {
    /// A structure built at the current epoch.
    Fresh(Arc<Rtc>),
    /// A structure from an older epoch, with the state needed to refresh.
    Stale(StaleRtc),
    /// No entry under this key.
    Miss,
}

/// The refreshable state of a stale RTC entry.
pub struct StaleRtc {
    /// The stale structure (still correct for the epoch it was built at).
    pub rtc: Arc<Rtc>,
    /// The base relation it was built from, if recorded.
    pub r_g: Option<Arc<PairSet>>,
    /// The maintainable form, if an earlier refresh already built one.
    pub dynamic: Option<Arc<DynamicRtc>>,
}

/// Result of an epoch-aware full-closure lookup.
pub enum FullLookup {
    /// A structure built at the current epoch.
    Fresh(Arc<FullTc>),
    /// A structure from an older epoch with its base relation.
    Stale(StaleFull),
    /// No entry under this key.
    Miss,
}

/// The refreshable state of a stale full-closure entry.
pub struct StaleFull {
    /// The stale structure.
    pub full: Arc<FullTc>,
    /// The base relation it was built from, if recorded.
    pub r_g: Option<Arc<PairSet>>,
}

/// One lock-protected shard of the cache interior.
#[derive(Default)]
struct Shard {
    rtcs: RwLock<FxHashMap<String, RtcEntry>>,
    fulls: RwLock<FxHashMap<String, FullEntry>>,
}

/// Cache of shared structures keyed by the canonical form of `R`.
///
/// Structures are held behind [`Arc`], so a `clone()` of the cache is a
/// cheap snapshot sharing the underlying RTCs/closures. All methods take
/// `&self` (sharded lock-protected maps, atomic counters — see the module
/// docs), so one cache can be read and filled by any number of threads at
/// once: this is what lets the engine evaluate queries under a shared
/// reference and the TCP front-end serve concurrent clients from one
/// epoch-aware cache.
#[derive(Default)]
pub struct SharedCache {
    shards: [Shard; SHARD_COUNT],
    /// The retention budget; immutable after construction.
    budget: CacheBudget,
    /// The graph epoch this cache serves; entries with an older epoch are
    /// stale.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_hits: AtomicU64,
    /// Monotone logical clock stamped into entries' `last_hit` — the
    /// recency axis of the eviction tie-break.
    tick: AtomicU64,
    /// Retained footprint across both namespaces, maintained on every
    /// map mutation so budget checks are O(1).
    occ_bytes: AtomicU64,
    occ_entries: AtomicU64,
    ev_bytes: AtomicU64,
    ev_entries: AtomicU64,
    ev_ttl: AtomicU64,
    ev_stale: AtomicU64,
    rebuilds_after_evict: AtomicU64,
    /// Epoch → number of live [`EpochPin`] guards.
    pinned: Mutex<FxHashMap<u64, usize>>,
    /// Keys evicted under budget pressure (namespace-prefixed), consumed
    /// by the first subsequent miss to count a rebuild-after-evict.
    evicted_keys: Mutex<FxHashSet<String>>,
}

impl Clone for SharedCache {
    fn clone(&self) -> Self {
        let clone = SharedCache::with_budget(self.budget);
        for (mine, theirs) in clone.shards.iter().zip(&self.shards) {
            *write(&mine.rtcs) = read(&theirs.rtcs).clone();
            *write(&mine.fulls) = read(&theirs.fulls).clone();
        }
        clone.epoch.store(self.epoch(), Ordering::Relaxed);
        clone.hits.store(self.hits(), Ordering::Relaxed);
        clone.misses.store(self.misses(), Ordering::Relaxed);
        clone.stale_hits.store(self.stale_hits(), Ordering::Relaxed);
        clone
            .tick
            .store(self.tick.load(Ordering::Relaxed), Ordering::Relaxed);
        clone
            .occ_bytes
            .store(self.occ_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
        clone
            .occ_entries
            .store(self.occ_entries.load(Ordering::Relaxed), Ordering::Relaxed);
        let ev = self.eviction_counters();
        clone.ev_bytes.store(ev.by_bytes, Ordering::Relaxed);
        clone.ev_entries.store(ev.by_entries, Ordering::Relaxed);
        clone.ev_ttl.store(ev.by_ttl, Ordering::Relaxed);
        clone.ev_stale.store(ev.by_stale, Ordering::Relaxed);
        clone
            .rebuilds_after_evict
            .store(ev.rebuilds_after_evict, Ordering::Relaxed);
        *lock(&clone.evicted_keys) = lock(&self.evicted_keys).clone();
        // Pins are deliberately not cloned: each EpochPin guard releases
        // against the cache it was created on.
        clone
    }
}

/// Acquires a shard read lock, clearing poisoning: a panicked evaluation
/// elsewhere leaves entries consistent (inserts are whole-entry), so
/// serving continues.
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires a shard write lock, clearing poisoning (see [`read`]).
fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires a mutex, clearing poisoning (see [`read`]).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl SharedCache {
    /// An empty, **unbounded** cache at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache at epoch 0 enforcing `budget` on every insert.
    pub fn with_budget(budget: CacheBudget) -> Self {
        Self {
            budget,
            ..Self::default()
        }
    }

    /// The retention budget this cache enforces.
    pub fn budget(&self) -> CacheBudget {
        self.budget
    }

    fn shard(&self, key: &str) -> &Shard {
        let hash = BuildHasherDefault::<rustc_hash::FxHasher>::default().hash_one(key);
        &self.shards[(hash as usize) % SHARD_COUNT]
    }

    /// The graph epoch this cache currently serves.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Moves the cache to a newer graph epoch; existing entries become
    /// stale and will be refreshed on their next lookup. Epochs are
    /// monotone — moving backward panics (it would un-stale entries).
    pub fn advance_epoch(&self, epoch: u64) {
        // fetch_max (not check-then-store) so racing callers can never
        // move the epoch backward even transiently; the assert then
        // reports the caller that *tried* to.
        let previous = self.epoch.fetch_max(epoch, Ordering::AcqRel);
        assert!(epoch >= previous, "cache epoch must be monotone");
        self.sweep();
    }

    /// Stamps a fresh hit: bumps the counter and the entry's recency
    /// tick. Safe under a shard read lock (the tick is atomic).
    fn note_fresh_hit(&self, meta: &EntryMeta) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        meta.last_hit
            .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Counts a miss, and a rebuild-after-evict when the key was
    /// previously evicted under budget pressure (`ns` keeps the RTC and
    /// full namespaces from colliding in the evicted-key set).
    fn note_miss(&self, ns: char, key: &str) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if self.budget.is_unbounded() {
            return;
        }
        let mut evicted = lock(&self.evicted_keys);
        if !evicted.is_empty() && evicted.remove(&format!("{ns}:{key}")) {
            self.rebuilds_after_evict.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `key` as budget-evicted so its next miss counts as a
    /// rebuild. The set is accounting state only and bounded.
    fn remember_evicted(&self, ns: char, key: &str) {
        let mut evicted = lock(&self.evicted_keys);
        if evicted.len() >= EVICTED_KEYS_CAP {
            evicted.clear();
        }
        evicted.insert(format!("{ns}:{key}"));
    }

    /// Occupancy bookkeeping for an insert that replaced `replaced`.
    fn note_insert(&self, added_bytes: usize, replaced: Option<&EntryMeta>) {
        self.occ_bytes
            .fetch_add(added_bytes as u64, Ordering::AcqRel);
        match replaced {
            Some(old) => {
                self.occ_bytes.fetch_sub(old.bytes as u64, Ordering::AcqRel);
            }
            None => {
                self.occ_entries.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Occupancy bookkeeping for a removal (claim, eviction, sweep).
    fn note_remove(&self, meta: &EntryMeta) {
        self.occ_bytes
            .fetch_sub(meta.bytes as u64, Ordering::AcqRel);
        self.occ_entries.fetch_sub(1, Ordering::AcqRel);
    }

    /// Epoch-aware RTC lookup. Counts a hit for [`RtcLookup::Fresh`], a
    /// stale hit for [`RtcLookup::Stale`] and a miss otherwise.
    ///
    /// A fresh hit only takes the shard **read** lock, so concurrent
    /// lookups of warm entries never serialize. A stale entry is
    /// **removed** from the cache (under the shard write lock, re-checked
    /// after the upgrade) and handed to the caller by value: the caller is
    /// expected to refresh it and re-insert at the current epoch, and the
    /// ownership transfer lets the refresh mutate the maintainable
    /// structure in place (`Arc::try_unwrap` succeeds) instead of
    /// deep-cloning it.
    pub fn lookup_rtc(&self, key: &str) -> RtcLookup {
        self.lookup_rtc_at(key, self.epoch())
    }

    /// [`SharedCache::lookup_rtc`] pinned to an explicit `epoch` — the
    /// lookup an [`crate::EpochView`] reader performs. An entry stamped
    /// exactly `epoch` is a fresh hit regardless of where the live epoch
    /// has moved since. Stale entries are only *claimed* when the pinned
    /// epoch **is** the live epoch (claiming exists to refresh the entry
    /// forward, which only makes sense at the front); a reader pinned to
    /// an older epoch treats any other-epoch entry as a plain miss and
    /// recomputes from its frozen graph, leaving the entry in place for
    /// live readers.
    pub fn lookup_rtc_at(&self, key: &str, epoch: u64) -> RtcLookup {
        let shard = self.shard(key);
        {
            let map = read(&shard.rtcs);
            match map.get(key) {
                Some(entry) if entry.epoch == epoch => {
                    self.note_fresh_hit(&entry.meta);
                    return RtcLookup::Fresh(Arc::clone(&entry.rtc));
                }
                Some(_) if epoch == self.epoch() => {
                    // Stale at the front: claim it below, under the write lock.
                }
                _ => {
                    self.note_miss('r', key);
                    return RtcLookup::Miss;
                }
            }
        }
        let mut map = write(&shard.rtcs);
        // Re-check: between the two locks another thread may have
        // refreshed the entry (now fresh) or claimed it (now gone).
        match map.get(key) {
            Some(entry) if entry.epoch == epoch => {
                self.note_fresh_hit(&entry.meta);
                RtcLookup::Fresh(Arc::clone(&entry.rtc))
            }
            Some(_) => {
                self.stale_hits.fetch_add(1, Ordering::Relaxed);
                let entry = map.remove(key).expect("stale entry present");
                // A claim is a refresh hand-off, not an eviction — but
                // the entry did leave the cache, so occupancy drops.
                self.note_remove(&entry.meta);
                RtcLookup::Stale(StaleRtc {
                    rtc: entry.rtc,
                    r_g: entry.r_g,
                    dynamic: entry.dynamic,
                })
            }
            None => {
                self.note_miss('r', key);
                RtcLookup::Miss
            }
        }
    }

    /// Looks up the RTC for `key`, counting hit/miss. Stale entries are
    /// *not* returned (and count as misses) — use [`SharedCache::lookup_rtc`]
    /// to refresh instead of recomputing.
    pub fn get_rtc(&self, key: &str) -> Option<Arc<Rtc>> {
        let epoch = self.epoch();
        match read(&self.shard(key).rtcs).get(key) {
            Some(entry) if entry.epoch == epoch => {
                self.note_fresh_hit(&entry.meta);
                Some(Arc::clone(&entry.rtc))
            }
            _ => {
                self.note_miss('r', key);
                None
            }
        }
    }

    /// Stores an RTC under `key` at the current epoch, with no recorded
    /// base relation (a later staleness can only be resolved by rebuild).
    /// Prefer [`SharedCache::insert_rtc_entry`] where `R_G` is at hand.
    pub fn insert_rtc(&self, key: String, rtc: Arc<Rtc>) {
        self.insert_rtc_at(key, rtc, self.epoch());
    }

    /// Stores an RTC stamped with an explicit `epoch`, never displacing an
    /// entry from a **newer** epoch — the insert used by a reader pinned
    /// to an older [`crate::EpochView`], whose recomputed structure must
    /// not clobber what live readers are sharing. Ties overwrite
    /// (structures are deterministic per `(key, epoch)`).
    pub fn insert_rtc_at(&self, key: String, rtc: Arc<Rtc>, epoch: u64) {
        self.insert_rtc_inner(key, rtc, None, None, epoch, 0);
    }

    /// Stores an RTC with its base relation (and optionally its
    /// maintainable form) at the current epoch.
    pub fn insert_rtc_entry(
        &self,
        key: String,
        rtc: Arc<Rtc>,
        r_g: Arc<PairSet>,
        dynamic: Option<Arc<DynamicRtc>>,
    ) {
        self.insert_rtc_entry_at(key, rtc, r_g, dynamic, self.epoch());
    }

    /// [`SharedCache::insert_rtc_entry`] stamped with an explicit `epoch`
    /// (newest epoch wins — see [`SharedCache::insert_rtc_at`]).
    pub fn insert_rtc_entry_at(
        &self,
        key: String,
        rtc: Arc<Rtc>,
        r_g: Arc<PairSet>,
        dynamic: Option<Arc<DynamicRtc>>,
        epoch: u64,
    ) {
        self.insert_rtc_inner(key, rtc, Some(r_g), dynamic, epoch, 0);
    }

    /// [`SharedCache::insert_rtc_entry_at`] recording `build` — the wall
    /// clock spent constructing the structure — as its cost-to-rebuild.
    /// The insert every measured evaluation path uses; the uncosted
    /// variants stamp cost 0 (cheapest to rebuild, evicted first).
    pub fn insert_rtc_entry_costed(
        &self,
        key: String,
        rtc: Arc<Rtc>,
        r_g: Arc<PairSet>,
        dynamic: Option<Arc<DynamicRtc>>,
        epoch: u64,
        build: std::time::Duration,
    ) {
        self.insert_rtc_inner(key, rtc, Some(r_g), dynamic, epoch, build.as_nanos() as u64);
    }

    /// [`SharedCache::insert_rtc_at`] carrying a cost-to-rebuild — the
    /// snapshot loader's insert for entries persisted without `R_G`.
    pub fn insert_rtc_at_costed(
        &self,
        key: String,
        rtc: Arc<Rtc>,
        epoch: u64,
        build: std::time::Duration,
    ) {
        self.insert_rtc_inner(key, rtc, None, None, epoch, build.as_nanos() as u64);
    }

    fn insert_rtc_inner(
        &self,
        key: String,
        rtc: Arc<Rtc>,
        r_g: Option<Arc<PairSet>>,
        dynamic: Option<Arc<DynamicRtc>>,
        epoch: u64,
        build_nanos: u64,
    ) {
        let bytes = rtc.closure_heap_bytes() + r_g.as_ref().map_or(0, |p| p.heap_bytes());
        let meta = EntryMeta {
            bytes,
            build_nanos,
            last_hit: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
        };
        {
            let mut map = write(&self.shard(&key).rtcs);
            if map.get(&key).is_some_and(|existing| existing.epoch > epoch) {
                return;
            }
            let replaced = map.insert(
                key,
                RtcEntry {
                    rtc,
                    r_g,
                    dynamic,
                    epoch,
                    meta,
                },
            );
            if let Some(old) = &replaced {
                if old.epoch < epoch {
                    self.ev_stale.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.note_insert(bytes, replaced.as_ref().map(|e| &e.meta));
        }
        self.enforce_budget();
    }

    /// Whether a fresh (current-epoch) RTC exists for `key`, without
    /// touching the hit/miss counters.
    pub fn contains_fresh_rtc(&self, key: &str) -> bool {
        let epoch = self.epoch();
        read(&self.shard(key).rtcs)
            .get(key)
            .is_some_and(|entry| entry.epoch == epoch)
    }

    /// Epoch-aware full-closure lookup (see [`SharedCache::lookup_rtc`]).
    /// Unlike the RTC path, a stale full entry is returned by shared
    /// reference (never claimed): `FullTc` has no in-place maintenance, so
    /// there is nothing to mutate and concurrent refreshers can all rebuild
    /// from the same stale base.
    pub fn lookup_full(&self, key: &str) -> FullLookup {
        self.lookup_full_at(key, self.epoch())
    }

    /// [`SharedCache::lookup_full`] pinned to an explicit `epoch` (see
    /// [`SharedCache::lookup_rtc_at`]): an exact-epoch entry is a fresh
    /// hit; stale refresh state is only handed out when the pinned epoch
    /// is the live one; anything else is a miss.
    pub fn lookup_full_at(&self, key: &str, epoch: u64) -> FullLookup {
        match read(&self.shard(key).fulls).get(key) {
            Some(entry) if entry.epoch == epoch => {
                self.note_fresh_hit(&entry.meta);
                FullLookup::Fresh(Arc::clone(&entry.full))
            }
            Some(entry) if epoch == self.epoch() => {
                self.stale_hits.fetch_add(1, Ordering::Relaxed);
                FullLookup::Stale(StaleFull {
                    full: Arc::clone(&entry.full),
                    r_g: entry.r_g.clone(),
                })
            }
            _ => {
                self.note_miss('f', key);
                FullLookup::Miss
            }
        }
    }

    /// Looks up the materialized `R⁺_G` for `key`, counting hit/miss.
    /// Stale entries are not returned (and count as misses).
    pub fn get_full(&self, key: &str) -> Option<Arc<FullTc>> {
        let epoch = self.epoch();
        match read(&self.shard(key).fulls).get(key) {
            Some(entry) if entry.epoch == epoch => {
                self.note_fresh_hit(&entry.meta);
                Some(Arc::clone(&entry.full))
            }
            _ => {
                self.note_miss('f', key);
                None
            }
        }
    }

    /// Stores a materialized `R⁺_G` under `key` at the current epoch, with
    /// no recorded base relation.
    pub fn insert_full(&self, key: String, full: Arc<FullTc>) {
        self.insert_full_at(key, full, self.epoch());
    }

    /// [`SharedCache::insert_full`] stamped with an explicit `epoch`
    /// (newest epoch wins — see [`SharedCache::insert_rtc_at`]).
    pub fn insert_full_at(&self, key: String, full: Arc<FullTc>, epoch: u64) {
        self.insert_full_inner(key, full, None, epoch, 0);
    }

    /// Stores a materialized `R⁺_G` with its base relation.
    pub fn insert_full_entry(&self, key: String, full: Arc<FullTc>, r_g: Arc<PairSet>) {
        self.insert_full_entry_at(key, full, r_g, self.epoch());
    }

    /// [`SharedCache::insert_full_entry`] stamped with an explicit `epoch`
    /// (newest epoch wins — see [`SharedCache::insert_rtc_at`]).
    pub fn insert_full_entry_at(
        &self,
        key: String,
        full: Arc<FullTc>,
        r_g: Arc<PairSet>,
        epoch: u64,
    ) {
        self.insert_full_inner(key, full, Some(r_g), epoch, 0);
    }

    /// [`SharedCache::insert_full_entry_at`] recording `build` as the
    /// cost-to-rebuild (see [`SharedCache::insert_rtc_entry_costed`]).
    pub fn insert_full_entry_costed(
        &self,
        key: String,
        full: Arc<FullTc>,
        r_g: Arc<PairSet>,
        epoch: u64,
        build: std::time::Duration,
    ) {
        self.insert_full_inner(key, full, Some(r_g), epoch, build.as_nanos() as u64);
    }

    /// [`SharedCache::insert_full_at`] carrying a cost-to-rebuild — the
    /// snapshot loader's insert for entries persisted without `R_G`.
    pub fn insert_full_at_costed(
        &self,
        key: String,
        full: Arc<FullTc>,
        epoch: u64,
        build: std::time::Duration,
    ) {
        self.insert_full_inner(key, full, None, epoch, build.as_nanos() as u64);
    }

    fn insert_full_inner(
        &self,
        key: String,
        full: Arc<FullTc>,
        r_g: Option<Arc<PairSet>>,
        epoch: u64,
        build_nanos: u64,
    ) {
        let bytes = full.heap_bytes() + r_g.as_ref().map_or(0, |p| p.heap_bytes());
        let meta = EntryMeta {
            bytes,
            build_nanos,
            last_hit: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
        };
        {
            let mut map = write(&self.shard(&key).fulls);
            if map.get(&key).is_some_and(|existing| existing.epoch > epoch) {
                return;
            }
            let replaced = map.insert(
                key,
                FullEntry {
                    full,
                    r_g,
                    epoch,
                    meta,
                },
            );
            if let Some(old) = &replaced {
                if old.epoch < epoch {
                    self.ev_stale.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.note_insert(bytes, replaced.as_ref().map(|e| &e.meta));
        }
        self.enforce_budget();
    }

    /// Whether a fresh (current-epoch) full closure exists for `key`,
    /// without touching the hit/miss counters.
    pub fn contains_fresh_full(&self, key: &str) -> bool {
        let epoch = self.epoch();
        read(&self.shard(key).fulls)
            .get(key)
            .is_some_and(|entry| entry.epoch == epoch)
    }

    /// Collects the **fresh** (current-epoch) RTC entries as
    /// `(key, rtc, recorded base relation, build nanos)` — the
    /// persistence surface used by the engine snapshot
    /// ([`crate::snapshot`]). Stale entries are skipped: they would need
    /// a refresh before being served anyway, so a snapshot simply drops
    /// them. Returns an owned point-in-time copy (cheap `Arc` clones),
    /// since the interior is lock-protected.
    #[allow(clippy::type_complexity)]
    pub fn fresh_rtc_entries(&self) -> Vec<(String, Arc<Rtc>, Option<Arc<PairSet>>, u64)> {
        let epoch = self.epoch();
        self.shards
            .iter()
            .flat_map(|s| {
                read(&s.rtcs)
                    .iter()
                    .filter(|(_, e)| e.epoch == epoch)
                    .map(|(k, e)| {
                        (
                            k.clone(),
                            Arc::clone(&e.rtc),
                            e.r_g.clone(),
                            e.meta.build_nanos,
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Collects the fresh full-closure entries (see
    /// [`SharedCache::fresh_rtc_entries`]).
    #[allow(clippy::type_complexity)]
    pub fn fresh_full_entries(&self) -> Vec<(String, Arc<FullTc>, Option<Arc<PairSet>>, u64)> {
        let epoch = self.epoch();
        self.shards
            .iter()
            .flat_map(|s| {
                read(&s.fulls)
                    .iter()
                    .filter(|(_, e)| e.epoch == epoch)
                    .map(|(k, e)| {
                        (
                            k.clone(),
                            Arc::clone(&e.full),
                            e.r_g.clone(),
                            e.meta.build_nanos,
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Sums `f` over every RTC entry, one shard read lock at a time — the
    /// shared fold behind the aggregate metrics below.
    fn sum_rtcs(&self, f: impl Fn(&RtcEntry) -> usize) -> usize {
        self.shards
            .iter()
            .map(|s| read(&s.rtcs).values().map(&f).sum::<usize>())
            .sum()
    }

    /// Sums `f` over every full-closure entry (see [`SharedCache::sum_rtcs`]).
    fn sum_fulls(&self, f: impl Fn(&FullEntry) -> usize) -> usize {
        self.shards
            .iter()
            .map(|s| read(&s.fulls).values().map(&f).sum::<usize>())
            .sum()
    }

    /// Number of cached RTCs (fresh or stale).
    pub fn rtc_count(&self) -> usize {
        self.sum_rtcs(|_| 1)
    }

    /// Number of cached full closures (fresh or stale).
    pub fn full_count(&self) -> usize {
        self.sum_fulls(|_| 1)
    }

    /// Cache hits since creation/clear (fresh entries only).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation/clear.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that found an entry from an older epoch (each one leads to
    /// a refresh, not a recompute-from-nothing).
    pub fn stale_hits(&self) -> u64 {
        self.stale_hits.load(Ordering::Relaxed)
    }

    /// Total pairs held in cached RTCs (`Σ |TC(Ḡ_R)|`) — RTCSharing's
    /// shared-data size in Fig. 12.
    pub fn rtc_shared_pairs(&self) -> usize {
        self.sum_rtcs(|e| e.rtc.closure_pair_count())
    }

    /// Total pairs held in cached full closures (`Σ |R⁺_G|`) — FullSharing's
    /// shared-data size in Fig. 12.
    pub fn full_shared_pairs(&self) -> usize {
        self.sum_fulls(|e| e.full.pair_count())
    }

    /// Sum of `|V̄_R|` (SCC counts) across cached RTCs — RTCSharing's
    /// vertex-count metric in Fig. 13.
    pub fn rtc_total_sccs(&self) -> usize {
        self.sum_rtcs(|e| e.rtc.scc_count())
    }

    /// Sum of `|V_R|` across cached RTCs.
    pub fn rtc_total_vr(&self) -> usize {
        self.sum_rtcs(|e| e.rtc.stats().vr_vertices)
    }

    /// Sum of `|V_R|` across cached full closures — FullSharing's
    /// vertex-count metric in Fig. 13.
    pub fn full_total_vertices(&self) -> usize {
        self.sum_fulls(|e| e.full.vertex_count())
    }

    /// Heap bytes held by cached RTC closure tables (`Σ heap_bytes` over
    /// their hybrid dense/sparse rows) — the memory side of the
    /// representation ablation, surfaced through `Engine` metrics and the
    /// server's `metrics`/`info` commands.
    pub fn rtc_heap_bytes(&self) -> usize {
        self.sum_rtcs(|e| e.rtc.closure_heap_bytes())
    }

    /// Heap bytes held by cached full closures (see
    /// [`SharedCache::rtc_heap_bytes`]).
    pub fn full_heap_bytes(&self) -> usize {
        self.sum_fulls(|e| e.full.heap_bytes())
    }

    /// Number of dense (bitset-backed) rows across cached RTC closure
    /// tables — how far the adaptive representation promoted.
    pub fn rtc_dense_rows(&self) -> usize {
        self.sum_rtcs(|e| e.rtc.dense_closure_rows())
    }

    /// Number of dense rows across cached full closures (see
    /// [`SharedCache::rtc_dense_rows`]).
    pub fn full_dense_rows(&self) -> usize {
        self.sum_fulls(|e| e.full.dense_rows())
    }

    /// Resets the hit/miss/stale and eviction counters while
    /// **preserving** every cached structure — the metric-reset half of
    /// [`SharedCache::clear`], used by `Engine::reset_metrics`.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.stale_hits.store(0, Ordering::Relaxed);
        self.ev_bytes.store(0, Ordering::Relaxed);
        self.ev_entries.store(0, Ordering::Relaxed);
        self.ev_ttl.store(0, Ordering::Relaxed);
        self.ev_stale.store(0, Ordering::Relaxed);
        self.rebuilds_after_evict.store(0, Ordering::Relaxed);
        lock(&self.evicted_keys).clear();
    }

    /// Point-in-time copy of the eviction counters.
    pub fn eviction_counters(&self) -> EvictionCounters {
        EvictionCounters {
            by_bytes: self.ev_bytes.load(Ordering::Relaxed),
            by_entries: self.ev_entries.load(Ordering::Relaxed),
            by_ttl: self.ev_ttl.load(Ordering::Relaxed),
            by_stale: self.ev_stale.load(Ordering::Relaxed),
            rebuilds_after_evict: self.rebuilds_after_evict.load(Ordering::Relaxed),
        }
    }

    /// Retained heap bytes across both namespaces (structures plus
    /// recorded base relations — the footprint the byte budget governs;
    /// [`SharedCache::rtc_heap_bytes`] and friends measure the
    /// structures alone).
    pub fn occupancy_bytes(&self) -> usize {
        self.occ_bytes.load(Ordering::Acquire) as usize
    }

    /// Retained entries across both namespaces.
    pub fn occupancy_entries(&self) -> usize {
        self.occ_entries.load(Ordering::Acquire) as usize
    }

    /// Retained heap bytes held by entries whose epoch is currently
    /// pinned — the part of the footprint eviction cannot reclaim.
    pub fn pinned_occupancy_bytes(&self) -> usize {
        let pinned: FxHashSet<u64> = lock(&self.pinned).keys().copied().collect();
        if pinned.is_empty() {
            return 0;
        }
        let in_pins = |epoch: u64| pinned.contains(&epoch);
        self.sum_rtcs(|e| if in_pins(e.epoch) { e.meta.bytes } else { 0 })
            + self.sum_fulls(|e| if in_pins(e.epoch) { e.meta.bytes } else { 0 })
    }

    /// Registers a pin on `epoch` (see [`EpochPin`], which pairs this
    /// with the release).
    pub fn pin_epoch(&self, epoch: u64) {
        *lock(&self.pinned).entry(epoch).or_insert(0) += 1;
    }

    /// Releases one pin on `epoch`.
    pub fn unpin_epoch(&self, epoch: u64) {
        let mut pinned = lock(&self.pinned);
        if let Some(count) = pinned.get_mut(&epoch) {
            *count -= 1;
            if *count == 0 {
                pinned.remove(&epoch);
            }
        }
    }

    /// Whether any live pin covers `epoch`.
    pub fn is_pinned(&self, epoch: u64) -> bool {
        lock(&self.pinned).contains_key(&epoch)
    }

    /// Evicts lowest-score entries until the byte/entry budget holds (or
    /// only pinned entries remain — enforcement is best-effort under
    /// pins). Inserts call this themselves; it is public for bulk paths
    /// (snapshot load, [`SharedCache::absorb`]) and tests.
    pub fn enforce_budget(&self) {
        let (max_bytes, max_entries) = (self.budget.max_bytes, self.budget.max_entries);
        if max_bytes.is_none() && max_entries.is_none() {
            return;
        }
        loop {
            let over_bytes = max_bytes.is_some_and(|b| self.occupancy_bytes() > b);
            let over_entries = max_entries.is_some_and(|e| self.occupancy_entries() > e);
            if !over_bytes && !over_entries {
                return;
            }
            if !self.evict_one(over_bytes) {
                return;
            }
        }
    }

    /// Removes the unpinned entry with the lowest
    /// `cost_to_rebuild / bytes` score class (ties — entries within the
    /// same order of magnitude: least-recently-hit, then key order, RTCs
    /// before fulls — fully deterministic for a given cache state).
    /// Returns `false` when nothing is evictable. `for_bytes` selects
    /// which reason counter the eviction lands in.
    fn evict_one(&self, for_bytes: bool) -> bool {
        struct Victim {
            class: i32,
            last_hit: u64,
            key: String,
            is_rtc: bool,
            shard: usize,
            epoch: u64,
        }
        let pinned: FxHashSet<u64> = lock(&self.pinned).keys().copied().collect();
        let mut victim: Option<Victim> = None;
        let mut consider = |cand: Victim| {
            let better = match &victim {
                None => true,
                Some(cur) => {
                    (cand.class, cand.last_hit, &cand.key, cand.is_rtc)
                        < (cur.class, cur.last_hit, &cur.key, cur.is_rtc)
                }
            };
            if better {
                victim = Some(cand);
            }
        };
        for (i, shard) in self.shards.iter().enumerate() {
            for (key, entry) in read(&shard.rtcs).iter() {
                if pinned.contains(&entry.epoch) {
                    continue;
                }
                consider(Victim {
                    class: entry.meta.score_class(),
                    last_hit: entry.meta.last_hit.load(Ordering::Relaxed),
                    key: key.clone(),
                    is_rtc: true,
                    shard: i,
                    epoch: entry.epoch,
                });
            }
            for (key, entry) in read(&shard.fulls).iter() {
                if pinned.contains(&entry.epoch) {
                    continue;
                }
                consider(Victim {
                    class: entry.meta.score_class(),
                    last_hit: entry.meta.last_hit.load(Ordering::Relaxed),
                    key: key.clone(),
                    is_rtc: false,
                    shard: i,
                    epoch: entry.epoch,
                });
            }
        }
        let Some(v) = victim else {
            return false;
        };
        // Re-check under the write lock: the entry may have been claimed,
        // replaced or re-pinned since the scan. A lost race still returns
        // `true` — the caller loops and re-reads occupancy.
        let shard = &self.shards[v.shard];
        let removed = if v.is_rtc {
            let mut map = write(&shard.rtcs);
            match map.get(&v.key) {
                Some(e) if e.epoch == v.epoch && !self.is_pinned(e.epoch) => {
                    let e = map.remove(&v.key).expect("victim present");
                    self.note_remove(&e.meta);
                    true
                }
                _ => false,
            }
        } else {
            let mut map = write(&shard.fulls);
            match map.get(&v.key) {
                Some(e) if e.epoch == v.epoch && !self.is_pinned(e.epoch) => {
                    let e = map.remove(&v.key).expect("victim present");
                    self.note_remove(&e.meta);
                    true
                }
                _ => false,
            }
        };
        if removed {
            if for_bytes {
                self.ev_bytes.fetch_add(1, Ordering::Relaxed);
            } else {
                self.ev_entries.fetch_add(1, Ordering::Relaxed);
            }
            self.remember_evicted(if v.is_rtc { 'r' } else { 'f' }, &v.key);
        }
        true
    }

    /// Drops unpinned entries whose build epoch trails the live epoch by
    /// more than the budget's `ttl_epochs` (no-op without one). Runs on
    /// every [`SharedCache::advance_epoch`]; public so servers can sweep
    /// on their own cadence too. Merely-stale entries inside the TTL are
    /// deliberately kept — they are what incremental refresh feeds on.
    pub fn sweep(&self) {
        let Some(ttl) = self.budget.ttl_epochs else {
            return;
        };
        let live = self.epoch();
        let pinned: FxHashSet<u64> = lock(&self.pinned).keys().copied().collect();
        let expired = |epoch: u64| !pinned.contains(&epoch) && live.saturating_sub(epoch) > ttl;
        for shard in &self.shards {
            let mut rtcs = write(&shard.rtcs);
            let doomed: Vec<String> = rtcs
                .iter()
                .filter(|(_, e)| expired(e.epoch))
                .map(|(k, _)| k.clone())
                .collect();
            for key in doomed {
                let entry = rtcs.remove(&key).expect("expired entry present");
                self.note_remove(&entry.meta);
                self.ev_ttl.fetch_add(1, Ordering::Relaxed);
                self.remember_evicted('r', &key);
            }
            drop(rtcs);
            let mut fulls = write(&shard.fulls);
            let doomed: Vec<String> = fulls
                .iter()
                .filter(|(_, e)| expired(e.epoch))
                .map(|(k, _)| k.clone())
                .collect();
            for key in doomed {
                let entry = fulls.remove(&key).expect("expired entry present");
                self.note_remove(&entry.meta);
                self.ev_ttl.fetch_add(1, Ordering::Relaxed);
                self.remember_evicted('f', &key);
            }
        }
    }

    /// Merges another cache's contents into this one: counters add up, and
    /// per key the entry from the **newest epoch** wins (ties keep the
    /// existing entry; structures are deterministic per `(key, epoch)`, so
    /// which clone survives is immaterial). Kept for workers that evaluate
    /// against a private snapshot; the engine's parallel batch mode now
    /// shares one cache directly instead.
    pub fn absorb(&self, other: SharedCache) {
        self.hits.fetch_add(other.hits(), Ordering::Relaxed);
        self.misses.fetch_add(other.misses(), Ordering::Relaxed);
        self.stale_hits
            .fetch_add(other.stale_hits(), Ordering::Relaxed);
        let ev = other.eviction_counters();
        self.ev_bytes.fetch_add(ev.by_bytes, Ordering::Relaxed);
        self.ev_entries.fetch_add(ev.by_entries, Ordering::Relaxed);
        self.ev_ttl.fetch_add(ev.by_ttl, Ordering::Relaxed);
        self.ev_stale.fetch_add(ev.by_stale, Ordering::Relaxed);
        self.rebuilds_after_evict
            .fetch_add(ev.rebuilds_after_evict, Ordering::Relaxed);
        // Shard selection depends only on the key, so shard i of `other`
        // merges into shard i of `self`.
        for (mine, theirs) in self.shards.iter().zip(other.shards) {
            let rtcs = theirs
                .rtcs
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            let mut map = write(&mine.rtcs);
            for (key, entry) in rtcs {
                match map.get(&key) {
                    Some(existing) if existing.epoch >= entry.epoch => {}
                    _ => {
                        let bytes = entry.meta.bytes;
                        let replaced = map.insert(key, entry);
                        self.note_insert(bytes, replaced.as_ref().map(|e| &e.meta));
                    }
                }
            }
            drop(map);
            let fulls = theirs
                .fulls
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            let mut map = write(&mine.fulls);
            for (key, entry) in fulls {
                match map.get(&key) {
                    Some(existing) if existing.epoch >= entry.epoch => {}
                    _ => {
                        let bytes = entry.meta.bytes;
                        let replaced = map.insert(key, entry);
                        self.note_insert(bytes, replaced.as_ref().map(|e| &e.meta));
                    }
                }
            }
        }
        // A bulk merge bypasses the per-insert enforcement; settle the
        // budget once at the end.
        self.enforce_budget();
    }

    /// Drops all cached structures and resets counters (the epoch is
    /// preserved — it tracks the graph, not the contents).
    pub fn clear(&self) {
        for shard in &self.shards {
            write(&shard.rtcs).clear();
            write(&shard.fulls).clear();
        }
        self.occ_bytes.store(0, Ordering::Release);
        self.occ_entries.store(0, Ordering::Release);
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::PairSet;

    fn sample_pairs() -> PairSet {
        [(0u32, 1u32), (1, 0)].into_iter().collect()
    }

    fn sample_rtc() -> Arc<Rtc> {
        Arc::new(Rtc::from_pairs(&sample_pairs()))
    }

    #[test]
    fn hit_miss_accounting() {
        let c = SharedCache::new();
        assert!(c.get_rtc("a.b").is_none());
        assert_eq!(c.misses(), 1);
        c.insert_rtc("a.b".into(), sample_rtc());
        assert!(c.get_rtc("a.b").is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.rtc_count(), 1);
    }

    #[test]
    fn shared_pair_totals() {
        let c = SharedCache::new();
        c.insert_rtc("a.b".into(), sample_rtc());
        // One 2-cycle SCC with a self-reach: closure has 1 pair.
        assert_eq!(c.rtc_shared_pairs(), 1);
        c.insert_full("a.b".into(), Arc::new(FullTc::from_pairs(&sample_pairs())));
        // Full closure: both vertices reach both → 4 pairs.
        assert_eq!(c.full_shared_pairs(), 4);
    }

    #[test]
    fn clear_resets_everything() {
        let c = SharedCache::new();
        c.insert_rtc("x".into(), sample_rtc());
        let _ = c.get_rtc("x");
        c.clear();
        assert_eq!(c.rtc_count(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn reset_counters_preserves_structures() {
        let c = SharedCache::new();
        c.insert_rtc("x".into(), sample_rtc());
        let _ = c.get_rtc("x");
        let _ = c.get_rtc("missing");
        assert_eq!((c.hits(), c.misses()), (1, 1));
        c.reset_counters();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert_eq!(c.rtc_count(), 1);
        assert_eq!(c.rtc_shared_pairs(), 1);
    }

    #[test]
    fn absorb_merges_counters_and_missing_structures() {
        let main = SharedCache::new();
        main.insert_rtc("shared".into(), sample_rtc());
        let _ = main.get_rtc("shared"); // 1 hit

        let worker = main.clone();
        worker.reset_counters();
        let _ = worker.get_rtc("shared"); // 1 worker hit
        let _ = worker.get_rtc("extra"); // 1 worker miss
        worker.insert_rtc("extra".into(), sample_rtc());

        main.absorb(worker);
        assert_eq!(main.hits(), 2);
        assert_eq!(main.misses(), 1);
        assert_eq!(main.rtc_count(), 2);
    }

    #[test]
    fn clone_is_a_cheap_shared_snapshot() {
        let c = SharedCache::new();
        let rtc = sample_rtc();
        c.insert_rtc("k".into(), Arc::clone(&rtc));
        let snapshot = c.clone();
        // The clone shares the same Arc'd structure, not a deep copy.
        assert_eq!(snapshot.rtc_count(), 1);
        assert_eq!(Arc::strong_count(&rtc), 3); // local + cache + snapshot
    }

    #[test]
    fn rtc_and_full_are_independent_namespaces() {
        let c = SharedCache::new();
        c.insert_rtc("k".into(), sample_rtc());
        assert!(c.get_full("k").is_none());
        assert_eq!(c.full_count(), 0);
    }

    #[test]
    fn entries_go_stale_when_the_epoch_advances() {
        let c = SharedCache::new();
        let r_g = Arc::new(sample_pairs());
        c.insert_rtc_entry("k".into(), sample_rtc(), Arc::clone(&r_g), None);
        assert!(c.contains_fresh_rtc("k"));
        c.advance_epoch(1);
        assert!(!c.contains_fresh_rtc("k"));
        // The legacy getter refuses stale entries...
        assert!(c.get_rtc("k").is_none());
        // ...while the epoch-aware lookup hands back the refresh state.
        match c.lookup_rtc("k") {
            RtcLookup::Stale(stale) => assert_eq!(*stale.r_g.unwrap(), *r_g),
            _ => panic!("expected a stale entry"),
        }
        assert_eq!(c.stale_hits(), 1);
        // Re-inserting at the new epoch makes it fresh again.
        c.insert_rtc_entry("k".into(), sample_rtc(), r_g, None);
        assert!(matches!(c.lookup_rtc("k"), RtcLookup::Fresh(_)));
    }

    #[test]
    fn full_entries_go_stale_too() {
        let c = SharedCache::new();
        c.insert_full_entry(
            "k".into(),
            Arc::new(FullTc::from_pairs(&sample_pairs())),
            Arc::new(sample_pairs()),
        );
        c.advance_epoch(3);
        assert!(matches!(c.lookup_full("k"), FullLookup::Stale(_)));
        assert!(c.get_full("k").is_none());
        assert!(!c.contains_fresh_full("k"));
    }

    #[test]
    fn pinned_lookup_hits_its_own_epoch_after_the_front_moves() {
        let c = SharedCache::new();
        c.insert_rtc("k".into(), sample_rtc());
        c.advance_epoch(2);
        // Live lookups see a stale entry; a reader pinned to epoch 0 still
        // gets a fresh hit — and, being a read, must not claim anything.
        assert!(matches!(c.lookup_rtc_at("k", 0), RtcLookup::Fresh(_)));
        assert_eq!(c.rtc_count(), 1);
        assert_eq!((c.hits(), c.stale_hits()), (1, 0));
    }

    #[test]
    fn pinned_lookup_never_claims_other_epochs() {
        let c = SharedCache::new();
        c.insert_rtc("k".into(), sample_rtc());
        c.advance_epoch(5);
        // Pinned to epoch 3: the epoch-0 entry is neither fresh (wrong
        // epoch) nor claimable (3 is not the live epoch) — a plain miss
        // that leaves the entry for the live readers to refresh.
        assert!(matches!(c.lookup_rtc_at("k", 3), RtcLookup::Miss));
        assert_eq!(c.rtc_count(), 1);
        assert_eq!(c.misses(), 1);
        assert!(matches!(c.lookup_full_at("missing", 3), FullLookup::Miss));
    }

    #[test]
    fn pinned_insert_never_displaces_newer_entries() {
        let c = SharedCache::new();
        c.advance_epoch(4);
        c.insert_rtc("k".into(), sample_rtc()); // stamped 4 (live)
        c.insert_rtc_at("k".into(), sample_rtc(), 1); // old view: ignored
        assert!(c.contains_fresh_rtc("k"));
        c.insert_full("f".into(), Arc::new(FullTc::from_pairs(&sample_pairs())));
        c.insert_full_entry_at(
            "f".into(),
            Arc::new(FullTc::from_pairs(&PairSet::new())),
            Arc::new(PairSet::new()),
            2,
        );
        assert!(c.contains_fresh_full("f"));
        assert_eq!(c.full_shared_pairs(), 4); // the epoch-4 entry survived
                                              // An old-epoch insert under a *new* key does land (epoch 1).
        c.insert_rtc_entry_at(
            "old-only".into(),
            sample_rtc(),
            Arc::new(sample_pairs()),
            None,
            1,
        );
        assert!(matches!(
            c.lookup_rtc_at("old-only", 1),
            RtcLookup::Fresh(_)
        ));
        assert!(!c.contains_fresh_rtc("old-only"));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn epoch_cannot_move_backward() {
        let c = SharedCache::new();
        c.advance_epoch(2);
        c.advance_epoch(1);
    }

    #[test]
    fn absorb_prefers_newer_epochs() {
        let main = SharedCache::new();
        main.insert_rtc("k".into(), sample_rtc());
        let worker = main.clone();
        worker.advance_epoch(1);
        let fresh = sample_rtc();
        worker.insert_rtc_entry(
            "k".into(),
            Arc::clone(&fresh),
            Arc::new(sample_pairs()),
            None,
        );
        main.advance_epoch(1);
        main.absorb(worker);
        // The epoch-1 entry from the worker displaced the stale epoch-0 one.
        assert!(main.contains_fresh_rtc("k"));
    }

    #[test]
    fn fresh_entries_are_point_in_time_copies() {
        let c = SharedCache::new();
        c.insert_rtc_entry("k".into(), sample_rtc(), Arc::new(sample_pairs()), None);
        c.insert_rtc("stale-after-advance".into(), sample_rtc());
        let fresh = c.fresh_rtc_entries();
        assert_eq!(fresh.len(), 2);
        c.advance_epoch(1);
        assert!(c.fresh_rtc_entries().is_empty());
        // The earlier copy is unaffected by the advance.
        assert_eq!(fresh.len(), 2);
    }

    /// The counters are atomics precisely so `metrics`/`reset_metrics`
    /// stay correct while concurrent readers hammer the cache — this
    /// pins the accounting under real threads (ISSUE 5 satellite).
    #[test]
    fn counters_are_exact_under_concurrent_readers() {
        const THREADS: usize = 8;
        const LOOKUPS: u64 = 200;
        let c = SharedCache::new();
        c.insert_rtc("warm".into(), sample_rtc());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = &c;
                s.spawn(move || {
                    for i in 0..LOOKUPS {
                        // Every thread alternates one guaranteed hit and
                        // one guaranteed miss (a key nobody inserts).
                        assert!(c.get_rtc("warm").is_some());
                        assert!(c.get_rtc(&format!("missing-{t}-{i}")).is_none());
                    }
                });
            }
        });
        assert_eq!(c.hits(), THREADS as u64 * LOOKUPS);
        assert_eq!(c.misses(), THREADS as u64 * LOOKUPS);
        c.reset_counters();
        assert_eq!((c.hits(), c.misses(), c.stale_hits()), (0, 0, 0));
        assert_eq!(c.rtc_count(), 1);
    }

    /// Concurrent fillers racing on the same and different keys leave the
    /// cache consistent: every key present, every entry fresh.
    #[test]
    fn concurrent_inserts_and_lookups_stay_consistent() {
        const THREADS: usize = 8;
        let c = SharedCache::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = &c;
                s.spawn(move || {
                    for round in 0..50 {
                        let contended = format!("key-{}", round % 4);
                        let private = format!("key-{t}-{round}");
                        c.insert_rtc(contended.clone(), sample_rtc());
                        c.insert_rtc(private.clone(), sample_rtc());
                        assert!(c.get_rtc(&contended).is_some());
                        assert!(c.get_rtc(&private).is_some());
                    }
                });
            }
        });
        // 4 contended keys + one private key per (thread, round).
        assert_eq!(c.rtc_count(), 4 + THREADS * 50);
        assert_eq!(c.fresh_rtc_entries().len(), c.rtc_count());
        assert_eq!(c.misses(), 0);
    }

    use std::time::Duration;

    fn insert_costed(c: &SharedCache, key: &str, epoch: u64, nanos: u64) {
        c.insert_rtc_entry_costed(
            key.into(),
            sample_rtc(),
            Arc::new(sample_pairs()),
            None,
            epoch,
            Duration::from_nanos(nanos),
        );
    }

    /// Bytes one sample entry occupies (same structures every time).
    fn unit_bytes() -> usize {
        let probe = SharedCache::new();
        insert_costed(&probe, "probe", 0, 1);
        probe.occupancy_bytes()
    }

    #[test]
    fn budget_specs_parse() {
        assert_eq!(CacheBudget::parse(""), None);
        assert_eq!(CacheBudget::parse("nope=3"), None);
        assert_eq!(CacheBudget::parse("bytes=abc"), None);
        assert_eq!(
            CacheBudget::parse("unbounded"),
            Some(CacheBudget::default())
        );
        assert_eq!(
            CacheBudget::parse("64k"),
            Some(CacheBudget {
                max_bytes: Some(64 << 10),
                ..Default::default()
            })
        );
        let full = CacheBudget::parse("bytes=1M, entries=128, ttl=4").unwrap();
        assert_eq!(full.max_bytes, Some(1 << 20));
        assert_eq!(full.max_entries, Some(128));
        assert_eq!(full.ttl_epochs, Some(4));
        assert_eq!(full.to_string(), "bytes=1048576,entries=128,ttl=4");
        assert_eq!(CacheBudget::default().to_string(), "unbounded");
        assert!(CacheBudget::default().is_unbounded());
        assert!(!full.is_unbounded());
    }

    #[test]
    fn occupancy_tracks_every_mutation() {
        let c = SharedCache::new();
        assert_eq!((c.occupancy_bytes(), c.occupancy_entries()), (0, 0));
        insert_costed(&c, "a", 0, 10);
        let unit = c.occupancy_bytes();
        assert!(unit > 0);
        assert_eq!(c.occupancy_entries(), 1);
        // Replacement at the same key does not double-count.
        insert_costed(&c, "a", 0, 20);
        assert_eq!((c.occupancy_bytes(), c.occupancy_entries()), (unit, 1));
        insert_costed(&c, "b", 0, 10);
        assert_eq!(c.occupancy_entries(), 2);
        // A stale claim removes the entry and its footprint.
        c.advance_epoch(1);
        assert!(matches!(c.lookup_rtc("a"), RtcLookup::Stale(_)));
        assert_eq!((c.occupancy_bytes(), c.occupancy_entries()), (unit, 1));
        c.clear();
        assert_eq!((c.occupancy_bytes(), c.occupancy_entries()), (0, 0));
    }

    #[test]
    fn byte_budget_evicts_lowest_score_first() {
        let unit = unit_bytes();
        let c = SharedCache::with_budget(CacheBudget {
            max_bytes: Some(2 * unit),
            ..Default::default()
        });
        insert_costed(&c, "expensive", 0, 30_000);
        insert_costed(&c, "cheap", 0, 1_000);
        insert_costed(&c, "middling", 0, 20_000);
        // Equal bytes, so the lowest build cost scores lowest and goes.
        assert_eq!(c.occupancy_entries(), 2);
        assert!(c.occupancy_bytes() <= 2 * unit);
        assert!(c.contains_fresh_rtc("expensive"));
        assert!(c.contains_fresh_rtc("middling"));
        assert!(!c.contains_fresh_rtc("cheap"));
        assert_eq!(c.eviction_counters().by_bytes, 1);
        // The miss that rebuilds the evicted key is counted once.
        assert!(c.get_rtc("cheap").is_none());
        assert!(c.get_rtc("cheap").is_none());
        assert_eq!(c.eviction_counters().rebuilds_after_evict, 1);
    }

    #[test]
    fn entry_budget_evicts_with_recency_tie_break() {
        let c = SharedCache::with_budget(CacheBudget {
            max_entries: Some(2),
            ..Default::default()
        });
        // Identical scores: the least-recently-hit entry goes.
        insert_costed(&c, "old", 0, 5_000);
        insert_costed(&c, "warm", 0, 5_000);
        assert!(c.get_rtc("old").is_some()); // "old" now most recent
        insert_costed(&c, "new", 0, 5_000);
        assert_eq!(c.occupancy_entries(), 2);
        assert!(c.contains_fresh_rtc("old"));
        assert!(!c.contains_fresh_rtc("warm"));
        assert!(c.contains_fresh_rtc("new"));
        assert_eq!(c.eviction_counters().by_entries, 1);
    }

    /// Scores within the same order of magnitude count as a tie —
    /// measured build times jitter, and a raw float comparison would let
    /// a hot entry lose to a cold one over measurement noise.
    #[test]
    fn comparable_scores_tie_and_recency_decides() {
        let c = SharedCache::with_budget(CacheBudget {
            max_entries: Some(2),
            ..Default::default()
        });
        // "hot" measured slightly cheaper than "cold" (same power-of-8
        // bucket): under a raw float comparison "hot" would be the
        // victim; under class comparison they tie and recency keeps it.
        insert_costed(&c, "hot", 0, 5_000);
        insert_costed(&c, "cold", 0, 6_000);
        assert!(c.get_rtc("hot").is_some()); // "hot" now most recent
        insert_costed(&c, "new", 0, 5_500);
        assert!(c.contains_fresh_rtc("hot"));
        assert!(!c.contains_fresh_rtc("cold"));
        // An order-of-magnitude gap is *not* a tie: the far cheaper
        // rebuild goes first no matter how recently it arrived — here
        // the newcomer itself, evicted by its own insert's enforcement.
        insert_costed(&c, "trivial", 0, 5_500 / 100);
        assert!(!c.contains_fresh_rtc("trivial"));
        assert!(c.contains_fresh_rtc("hot"));
        assert!(c.contains_fresh_rtc("new"));
    }

    #[test]
    fn pinned_epochs_survive_eviction() {
        let c = Arc::new(SharedCache::with_budget(CacheBudget {
            max_entries: Some(1),
            ..Default::default()
        }));
        insert_costed(&c, "a", 0, 100);
        let pin = EpochPin::new(Arc::clone(&c), 0);
        assert_eq!(pin.epoch(), 0);
        assert!(c.is_pinned(0));
        assert_eq!(c.pinned_occupancy_bytes(), c.occupancy_bytes());
        c.advance_epoch(1);
        // Over budget, but only the unpinned newcomer is evictable — the
        // pinned epoch-0 entry keeps serving its view.
        insert_costed(&c, "b", 1, 1_000_000);
        assert_eq!(c.occupancy_entries(), 1);
        assert!(matches!(c.lookup_rtc_at("a", 0), RtcLookup::Fresh(_)));
        // Dropping the pin makes epoch 0 evictable again.
        drop(pin);
        assert!(!c.is_pinned(0));
        insert_costed(&c, "b", 1, 1_000_000);
        assert_eq!(c.occupancy_entries(), 1);
        assert!(matches!(c.lookup_rtc_at("a", 0), RtcLookup::Miss));
        assert!(c.contains_fresh_rtc("b"));
    }

    #[test]
    fn ttl_sweep_drops_entries_behind_the_live_epoch() {
        let c = SharedCache::with_budget(CacheBudget {
            ttl_epochs: Some(1),
            ..Default::default()
        });
        insert_costed(&c, "k", 0, 100);
        c.insert_full_entry(
            "k".into(),
            Arc::new(FullTc::from_pairs(&sample_pairs())),
            Arc::new(sample_pairs()),
        );
        c.advance_epoch(1); // lag 1 ≤ ttl: kept (still refreshable)
        assert_eq!(c.occupancy_entries(), 2);
        c.advance_epoch(2); // lag 2 > ttl: swept
        assert_eq!(c.occupancy_entries(), 0);
        assert_eq!(c.eviction_counters().by_ttl, 2);
    }

    #[test]
    fn ttl_sweep_spares_pinned_epochs() {
        let c = Arc::new(SharedCache::with_budget(CacheBudget {
            ttl_epochs: Some(0),
            ..Default::default()
        }));
        insert_costed(&c, "k", 0, 100);
        let pin = EpochPin::new(Arc::clone(&c), 0);
        c.advance_epoch(5);
        assert!(matches!(c.lookup_rtc_at("k", 0), RtcLookup::Fresh(_)));
        drop(pin);
        c.sweep();
        assert_eq!(c.occupancy_entries(), 0);
    }

    #[test]
    fn stale_displacement_is_counted() {
        let c = SharedCache::new();
        insert_costed(&c, "k", 0, 100);
        c.advance_epoch(1);
        // Re-inserting the key at the new epoch displaces the stale one.
        insert_costed(&c, "k", 1, 100);
        assert_eq!(c.eviction_counters().by_stale, 1);
        assert_eq!(c.occupancy_entries(), 1);
    }

    #[test]
    fn clone_carries_budget_and_occupancy() {
        let unit = unit_bytes();
        let c = SharedCache::with_budget(CacheBudget {
            max_bytes: Some(10 * unit),
            ..Default::default()
        });
        insert_costed(&c, "a", 0, 100);
        let snapshot = c.clone();
        assert_eq!(snapshot.budget(), c.budget());
        assert_eq!(snapshot.occupancy_bytes(), c.occupancy_bytes());
        assert_eq!(snapshot.occupancy_entries(), 1);
    }

    #[test]
    fn absorb_enforces_the_budget_and_accounts_occupancy() {
        let c = SharedCache::with_budget(CacheBudget {
            max_entries: Some(2),
            ..Default::default()
        });
        let worker = SharedCache::new();
        insert_costed(&worker, "a", 0, 30_000);
        insert_costed(&worker, "b", 0, 1_000);
        insert_costed(&worker, "c", 0, 20_000);
        c.absorb(worker);
        assert_eq!(c.occupancy_entries(), 2);
        assert!(c.contains_fresh_rtc("a"));
        assert!(!c.contains_fresh_rtc("b"));
        assert!(c.contains_fresh_rtc("c"));
        assert!(c.eviction_counters().by_entries >= 1);
    }
}
