//! The shared-structure cache, epoch-aware for dynamic graphs and safe
//! under concurrent readers.
//!
//! Algorithm 1 lines 9–11: "If the RTC for R exists, we reuse \[it\].
//! Otherwise, we compute and store \[it\] to share." The cache key is the
//! *closure body* `R` (canonicalized), not the closure itself — `R+` and
//! `R*` share one entry, which is how Example 7's `(a·b)*` reuses the RTC
//! computed for `a·(a·b)+·b`.
//!
//! For dynamic graphs every entry additionally records the **epoch** it
//! was built at and the base relation `R_G` it was built from. The cache
//! itself tracks the graph's current epoch (advanced by
//! `Engine::apply_delta`); a lookup whose entry is older than the current
//! epoch returns [`RtcLookup::Stale`] — handing the caller everything
//! needed to refresh *incrementally* (diff the base relations, feed the
//! delta to [`DynamicRtc`]) instead of silently serving a closure of a
//! graph that no longer exists.
//!
//! ## Concurrency
//!
//! Every method takes `&self`: the interior is **sharded** — entries live
//! in `SHARD_COUNT` (8) hash maps, each behind its own `RwLock`, selected
//! by the key's hash — and the hit/miss/stale counters and the epoch are
//! atomics. N threads evaluating disjoint closure bodies therefore insert
//! and look up without contending on one lock, and a fresh-entry hit only
//! ever takes a shard *read* lock, so the serving front-end's concurrent
//! `query` connections all read one cache simultaneously. Two threads
//! racing to fill the same miss both compute and insert; the structures
//! are deterministic per `(key, epoch)`, so whichever insert lands last is
//! immaterial. A stale entry is claimed (removed) under the shard write
//! lock, so exactly one racer receives the refreshable state — the others
//! see a plain miss and rebuild from scratch, which is correct, just not
//! incremental.

use rpq_graph::PairSet;
use rpq_reduction::{DynamicRtc, FullTc, Rtc};
use rustc_hash::FxHashMap;
use std::hash::{BuildHasher, BuildHasherDefault};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Number of independent lock-protected map shards. A small power of two:
/// enough to keep a handful of serving threads off each other's locks,
/// small enough that whole-cache aggregates stay cheap.
const SHARD_COUNT: usize = 8;

/// A cached RTC with its provenance.
#[derive(Clone)]
struct RtcEntry {
    rtc: Arc<Rtc>,
    /// The `R_G` the structure was built from (diff base for refreshes);
    /// `None` when the entry was stored without one (legacy path) — such
    /// an entry can only be refreshed by rebuild.
    r_g: Option<Arc<PairSet>>,
    /// The maintainable form, once a refresh has materialized it.
    dynamic: Option<Arc<DynamicRtc>>,
    epoch: u64,
}

/// A cached full closure with its provenance.
#[derive(Clone)]
struct FullEntry {
    full: Arc<FullTc>,
    r_g: Option<Arc<PairSet>>,
    epoch: u64,
}

/// Result of an epoch-aware RTC lookup.
pub enum RtcLookup {
    /// A structure built at the current epoch.
    Fresh(Arc<Rtc>),
    /// A structure from an older epoch, with the state needed to refresh.
    Stale(StaleRtc),
    /// No entry under this key.
    Miss,
}

/// The refreshable state of a stale RTC entry.
pub struct StaleRtc {
    /// The stale structure (still correct for the epoch it was built at).
    pub rtc: Arc<Rtc>,
    /// The base relation it was built from, if recorded.
    pub r_g: Option<Arc<PairSet>>,
    /// The maintainable form, if an earlier refresh already built one.
    pub dynamic: Option<Arc<DynamicRtc>>,
}

/// Result of an epoch-aware full-closure lookup.
pub enum FullLookup {
    /// A structure built at the current epoch.
    Fresh(Arc<FullTc>),
    /// A structure from an older epoch with its base relation.
    Stale(StaleFull),
    /// No entry under this key.
    Miss,
}

/// The refreshable state of a stale full-closure entry.
pub struct StaleFull {
    /// The stale structure.
    pub full: Arc<FullTc>,
    /// The base relation it was built from, if recorded.
    pub r_g: Option<Arc<PairSet>>,
}

/// One lock-protected shard of the cache interior.
#[derive(Default)]
struct Shard {
    rtcs: RwLock<FxHashMap<String, RtcEntry>>,
    fulls: RwLock<FxHashMap<String, FullEntry>>,
}

/// Cache of shared structures keyed by the canonical form of `R`.
///
/// Structures are held behind [`Arc`], so a `clone()` of the cache is a
/// cheap snapshot sharing the underlying RTCs/closures. All methods take
/// `&self` (sharded lock-protected maps, atomic counters — see the module
/// docs), so one cache can be read and filled by any number of threads at
/// once: this is what lets the engine evaluate queries under a shared
/// reference and the TCP front-end serve concurrent clients from one
/// epoch-aware cache.
#[derive(Default)]
pub struct SharedCache {
    shards: [Shard; SHARD_COUNT],
    /// The graph epoch this cache serves; entries with an older epoch are
    /// stale.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_hits: AtomicU64,
}

impl Clone for SharedCache {
    fn clone(&self) -> Self {
        let clone = SharedCache::new();
        for (mine, theirs) in clone.shards.iter().zip(&self.shards) {
            *write(&mine.rtcs) = read(&theirs.rtcs).clone();
            *write(&mine.fulls) = read(&theirs.fulls).clone();
        }
        clone.epoch.store(self.epoch(), Ordering::Relaxed);
        clone.hits.store(self.hits(), Ordering::Relaxed);
        clone.misses.store(self.misses(), Ordering::Relaxed);
        clone.stale_hits.store(self.stale_hits(), Ordering::Relaxed);
        clone
    }
}

/// Acquires a shard read lock, clearing poisoning: a panicked evaluation
/// elsewhere leaves entries consistent (inserts are whole-entry), so
/// serving continues.
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Acquires a shard write lock, clearing poisoning (see [`read`]).
fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

impl SharedCache {
    /// An empty cache at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: &str) -> &Shard {
        let hash = BuildHasherDefault::<rustc_hash::FxHasher>::default().hash_one(key);
        &self.shards[(hash as usize) % SHARD_COUNT]
    }

    /// The graph epoch this cache currently serves.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Moves the cache to a newer graph epoch; existing entries become
    /// stale and will be refreshed on their next lookup. Epochs are
    /// monotone — moving backward panics (it would un-stale entries).
    pub fn advance_epoch(&self, epoch: u64) {
        // fetch_max (not check-then-store) so racing callers can never
        // move the epoch backward even transiently; the assert then
        // reports the caller that *tried* to.
        let previous = self.epoch.fetch_max(epoch, Ordering::AcqRel);
        assert!(epoch >= previous, "cache epoch must be monotone");
    }

    /// Epoch-aware RTC lookup. Counts a hit for [`RtcLookup::Fresh`], a
    /// stale hit for [`RtcLookup::Stale`] and a miss otherwise.
    ///
    /// A fresh hit only takes the shard **read** lock, so concurrent
    /// lookups of warm entries never serialize. A stale entry is
    /// **removed** from the cache (under the shard write lock, re-checked
    /// after the upgrade) and handed to the caller by value: the caller is
    /// expected to refresh it and re-insert at the current epoch, and the
    /// ownership transfer lets the refresh mutate the maintainable
    /// structure in place (`Arc::try_unwrap` succeeds) instead of
    /// deep-cloning it.
    pub fn lookup_rtc(&self, key: &str) -> RtcLookup {
        self.lookup_rtc_at(key, self.epoch())
    }

    /// [`SharedCache::lookup_rtc`] pinned to an explicit `epoch` — the
    /// lookup an [`crate::EpochView`] reader performs. An entry stamped
    /// exactly `epoch` is a fresh hit regardless of where the live epoch
    /// has moved since. Stale entries are only *claimed* when the pinned
    /// epoch **is** the live epoch (claiming exists to refresh the entry
    /// forward, which only makes sense at the front); a reader pinned to
    /// an older epoch treats any other-epoch entry as a plain miss and
    /// recomputes from its frozen graph, leaving the entry in place for
    /// live readers.
    pub fn lookup_rtc_at(&self, key: &str, epoch: u64) -> RtcLookup {
        let shard = self.shard(key);
        {
            let map = read(&shard.rtcs);
            match map.get(key) {
                Some(entry) if entry.epoch == epoch => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return RtcLookup::Fresh(Arc::clone(&entry.rtc));
                }
                Some(_) if epoch == self.epoch() => {
                    // Stale at the front: claim it below, under the write lock.
                }
                _ => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return RtcLookup::Miss;
                }
            }
        }
        let mut map = write(&shard.rtcs);
        // Re-check: between the two locks another thread may have
        // refreshed the entry (now fresh) or claimed it (now gone).
        match map.get(key) {
            Some(entry) if entry.epoch == epoch => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                RtcLookup::Fresh(Arc::clone(&entry.rtc))
            }
            Some(_) => {
                self.stale_hits.fetch_add(1, Ordering::Relaxed);
                let entry = map.remove(key).expect("stale entry present");
                RtcLookup::Stale(StaleRtc {
                    rtc: entry.rtc,
                    r_g: entry.r_g,
                    dynamic: entry.dynamic,
                })
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                RtcLookup::Miss
            }
        }
    }

    /// Looks up the RTC for `key`, counting hit/miss. Stale entries are
    /// *not* returned (and count as misses) — use [`SharedCache::lookup_rtc`]
    /// to refresh instead of recomputing.
    pub fn get_rtc(&self, key: &str) -> Option<Arc<Rtc>> {
        let epoch = self.epoch();
        match read(&self.shard(key).rtcs).get(key) {
            Some(entry) if entry.epoch == epoch => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.rtc))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an RTC under `key` at the current epoch, with no recorded
    /// base relation (a later staleness can only be resolved by rebuild).
    /// Prefer [`SharedCache::insert_rtc_entry`] where `R_G` is at hand.
    pub fn insert_rtc(&self, key: String, rtc: Arc<Rtc>) {
        self.insert_rtc_at(key, rtc, self.epoch());
    }

    /// Stores an RTC stamped with an explicit `epoch`, never displacing an
    /// entry from a **newer** epoch — the insert used by a reader pinned
    /// to an older [`crate::EpochView`], whose recomputed structure must
    /// not clobber what live readers are sharing. Ties overwrite
    /// (structures are deterministic per `(key, epoch)`).
    pub fn insert_rtc_at(&self, key: String, rtc: Arc<Rtc>, epoch: u64) {
        let mut map = write(&self.shard(&key).rtcs);
        if map.get(&key).is_some_and(|existing| existing.epoch > epoch) {
            return;
        }
        map.insert(
            key,
            RtcEntry {
                rtc,
                r_g: None,
                dynamic: None,
                epoch,
            },
        );
    }

    /// Stores an RTC with its base relation (and optionally its
    /// maintainable form) at the current epoch.
    pub fn insert_rtc_entry(
        &self,
        key: String,
        rtc: Arc<Rtc>,
        r_g: Arc<PairSet>,
        dynamic: Option<Arc<DynamicRtc>>,
    ) {
        self.insert_rtc_entry_at(key, rtc, r_g, dynamic, self.epoch());
    }

    /// [`SharedCache::insert_rtc_entry`] stamped with an explicit `epoch`
    /// (newest epoch wins — see [`SharedCache::insert_rtc_at`]).
    pub fn insert_rtc_entry_at(
        &self,
        key: String,
        rtc: Arc<Rtc>,
        r_g: Arc<PairSet>,
        dynamic: Option<Arc<DynamicRtc>>,
        epoch: u64,
    ) {
        let mut map = write(&self.shard(&key).rtcs);
        if map.get(&key).is_some_and(|existing| existing.epoch > epoch) {
            return;
        }
        map.insert(
            key,
            RtcEntry {
                rtc,
                r_g: Some(r_g),
                dynamic,
                epoch,
            },
        );
    }

    /// Whether a fresh (current-epoch) RTC exists for `key`, without
    /// touching the hit/miss counters.
    pub fn contains_fresh_rtc(&self, key: &str) -> bool {
        let epoch = self.epoch();
        read(&self.shard(key).rtcs)
            .get(key)
            .is_some_and(|entry| entry.epoch == epoch)
    }

    /// Epoch-aware full-closure lookup (see [`SharedCache::lookup_rtc`]).
    /// Unlike the RTC path, a stale full entry is returned by shared
    /// reference (never claimed): `FullTc` has no in-place maintenance, so
    /// there is nothing to mutate and concurrent refreshers can all rebuild
    /// from the same stale base.
    pub fn lookup_full(&self, key: &str) -> FullLookup {
        self.lookup_full_at(key, self.epoch())
    }

    /// [`SharedCache::lookup_full`] pinned to an explicit `epoch` (see
    /// [`SharedCache::lookup_rtc_at`]): an exact-epoch entry is a fresh
    /// hit; stale refresh state is only handed out when the pinned epoch
    /// is the live one; anything else is a miss.
    pub fn lookup_full_at(&self, key: &str, epoch: u64) -> FullLookup {
        match read(&self.shard(key).fulls).get(key) {
            Some(entry) if entry.epoch == epoch => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                FullLookup::Fresh(Arc::clone(&entry.full))
            }
            Some(entry) if epoch == self.epoch() => {
                self.stale_hits.fetch_add(1, Ordering::Relaxed);
                FullLookup::Stale(StaleFull {
                    full: Arc::clone(&entry.full),
                    r_g: entry.r_g.clone(),
                })
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                FullLookup::Miss
            }
        }
    }

    /// Looks up the materialized `R⁺_G` for `key`, counting hit/miss.
    /// Stale entries are not returned (and count as misses).
    pub fn get_full(&self, key: &str) -> Option<Arc<FullTc>> {
        let epoch = self.epoch();
        match read(&self.shard(key).fulls).get(key) {
            Some(entry) if entry.epoch == epoch => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.full))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a materialized `R⁺_G` under `key` at the current epoch, with
    /// no recorded base relation.
    pub fn insert_full(&self, key: String, full: Arc<FullTc>) {
        self.insert_full_at(key, full, self.epoch());
    }

    /// [`SharedCache::insert_full`] stamped with an explicit `epoch`
    /// (newest epoch wins — see [`SharedCache::insert_rtc_at`]).
    pub fn insert_full_at(&self, key: String, full: Arc<FullTc>, epoch: u64) {
        let mut map = write(&self.shard(&key).fulls);
        if map.get(&key).is_some_and(|existing| existing.epoch > epoch) {
            return;
        }
        map.insert(
            key,
            FullEntry {
                full,
                r_g: None,
                epoch,
            },
        );
    }

    /// Stores a materialized `R⁺_G` with its base relation.
    pub fn insert_full_entry(&self, key: String, full: Arc<FullTc>, r_g: Arc<PairSet>) {
        self.insert_full_entry_at(key, full, r_g, self.epoch());
    }

    /// [`SharedCache::insert_full_entry`] stamped with an explicit `epoch`
    /// (newest epoch wins — see [`SharedCache::insert_rtc_at`]).
    pub fn insert_full_entry_at(
        &self,
        key: String,
        full: Arc<FullTc>,
        r_g: Arc<PairSet>,
        epoch: u64,
    ) {
        let mut map = write(&self.shard(&key).fulls);
        if map.get(&key).is_some_and(|existing| existing.epoch > epoch) {
            return;
        }
        map.insert(
            key,
            FullEntry {
                full,
                r_g: Some(r_g),
                epoch,
            },
        );
    }

    /// Whether a fresh (current-epoch) full closure exists for `key`,
    /// without touching the hit/miss counters.
    pub fn contains_fresh_full(&self, key: &str) -> bool {
        let epoch = self.epoch();
        read(&self.shard(key).fulls)
            .get(key)
            .is_some_and(|entry| entry.epoch == epoch)
    }

    /// Collects the **fresh** (current-epoch) RTC entries as
    /// `(key, rtc, recorded base relation)` — the persistence surface used
    /// by the engine snapshot ([`crate::snapshot`]). Stale entries are
    /// skipped: they would need a refresh before being served anyway, so a
    /// snapshot simply drops them. Returns an owned point-in-time copy
    /// (cheap `Arc` clones), since the interior is lock-protected.
    pub fn fresh_rtc_entries(&self) -> Vec<(String, Arc<Rtc>, Option<Arc<PairSet>>)> {
        let epoch = self.epoch();
        self.shards
            .iter()
            .flat_map(|s| {
                read(&s.rtcs)
                    .iter()
                    .filter(|(_, e)| e.epoch == epoch)
                    .map(|(k, e)| (k.clone(), Arc::clone(&e.rtc), e.r_g.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Collects the fresh full-closure entries (see
    /// [`SharedCache::fresh_rtc_entries`]).
    pub fn fresh_full_entries(&self) -> Vec<(String, Arc<FullTc>, Option<Arc<PairSet>>)> {
        let epoch = self.epoch();
        self.shards
            .iter()
            .flat_map(|s| {
                read(&s.fulls)
                    .iter()
                    .filter(|(_, e)| e.epoch == epoch)
                    .map(|(k, e)| (k.clone(), Arc::clone(&e.full), e.r_g.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Sums `f` over every RTC entry, one shard read lock at a time — the
    /// shared fold behind the aggregate metrics below.
    fn sum_rtcs(&self, f: impl Fn(&RtcEntry) -> usize) -> usize {
        self.shards
            .iter()
            .map(|s| read(&s.rtcs).values().map(&f).sum::<usize>())
            .sum()
    }

    /// Sums `f` over every full-closure entry (see [`SharedCache::sum_rtcs`]).
    fn sum_fulls(&self, f: impl Fn(&FullEntry) -> usize) -> usize {
        self.shards
            .iter()
            .map(|s| read(&s.fulls).values().map(&f).sum::<usize>())
            .sum()
    }

    /// Number of cached RTCs (fresh or stale).
    pub fn rtc_count(&self) -> usize {
        self.sum_rtcs(|_| 1)
    }

    /// Number of cached full closures (fresh or stale).
    pub fn full_count(&self) -> usize {
        self.sum_fulls(|_| 1)
    }

    /// Cache hits since creation/clear (fresh entries only).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation/clear.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that found an entry from an older epoch (each one leads to
    /// a refresh, not a recompute-from-nothing).
    pub fn stale_hits(&self) -> u64 {
        self.stale_hits.load(Ordering::Relaxed)
    }

    /// Total pairs held in cached RTCs (`Σ |TC(Ḡ_R)|`) — RTCSharing's
    /// shared-data size in Fig. 12.
    pub fn rtc_shared_pairs(&self) -> usize {
        self.sum_rtcs(|e| e.rtc.closure_pair_count())
    }

    /// Total pairs held in cached full closures (`Σ |R⁺_G|`) — FullSharing's
    /// shared-data size in Fig. 12.
    pub fn full_shared_pairs(&self) -> usize {
        self.sum_fulls(|e| e.full.pair_count())
    }

    /// Sum of `|V̄_R|` (SCC counts) across cached RTCs — RTCSharing's
    /// vertex-count metric in Fig. 13.
    pub fn rtc_total_sccs(&self) -> usize {
        self.sum_rtcs(|e| e.rtc.scc_count())
    }

    /// Sum of `|V_R|` across cached RTCs.
    pub fn rtc_total_vr(&self) -> usize {
        self.sum_rtcs(|e| e.rtc.stats().vr_vertices)
    }

    /// Sum of `|V_R|` across cached full closures — FullSharing's
    /// vertex-count metric in Fig. 13.
    pub fn full_total_vertices(&self) -> usize {
        self.sum_fulls(|e| e.full.vertex_count())
    }

    /// Heap bytes held by cached RTC closure tables (`Σ heap_bytes` over
    /// their hybrid dense/sparse rows) — the memory side of the
    /// representation ablation, surfaced through `Engine` metrics and the
    /// server's `metrics`/`info` commands.
    pub fn rtc_heap_bytes(&self) -> usize {
        self.sum_rtcs(|e| e.rtc.closure_heap_bytes())
    }

    /// Heap bytes held by cached full closures (see
    /// [`SharedCache::rtc_heap_bytes`]).
    pub fn full_heap_bytes(&self) -> usize {
        self.sum_fulls(|e| e.full.heap_bytes())
    }

    /// Number of dense (bitset-backed) rows across cached RTC closure
    /// tables — how far the adaptive representation promoted.
    pub fn rtc_dense_rows(&self) -> usize {
        self.sum_rtcs(|e| e.rtc.dense_closure_rows())
    }

    /// Number of dense rows across cached full closures (see
    /// [`SharedCache::rtc_dense_rows`]).
    pub fn full_dense_rows(&self) -> usize {
        self.sum_fulls(|e| e.full.dense_rows())
    }

    /// Resets the hit/miss/stale counters while **preserving** every
    /// cached structure — the metric-reset half of [`SharedCache::clear`],
    /// used by `Engine::reset_metrics`.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.stale_hits.store(0, Ordering::Relaxed);
    }

    /// Merges another cache's contents into this one: counters add up, and
    /// per key the entry from the **newest epoch** wins (ties keep the
    /// existing entry; structures are deterministic per `(key, epoch)`, so
    /// which clone survives is immaterial). Kept for workers that evaluate
    /// against a private snapshot; the engine's parallel batch mode now
    /// shares one cache directly instead.
    pub fn absorb(&self, other: SharedCache) {
        self.hits.fetch_add(other.hits(), Ordering::Relaxed);
        self.misses.fetch_add(other.misses(), Ordering::Relaxed);
        self.stale_hits
            .fetch_add(other.stale_hits(), Ordering::Relaxed);
        // Shard selection depends only on the key, so shard i of `other`
        // merges into shard i of `self`.
        for (mine, theirs) in self.shards.iter().zip(other.shards) {
            let rtcs = theirs
                .rtcs
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            let mut map = write(&mine.rtcs);
            for (key, entry) in rtcs {
                match map.get(&key) {
                    Some(existing) if existing.epoch >= entry.epoch => {}
                    _ => {
                        map.insert(key, entry);
                    }
                }
            }
            drop(map);
            let fulls = theirs
                .fulls
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            let mut map = write(&mine.fulls);
            for (key, entry) in fulls {
                match map.get(&key) {
                    Some(existing) if existing.epoch >= entry.epoch => {}
                    _ => {
                        map.insert(key, entry);
                    }
                }
            }
        }
    }

    /// Drops all cached structures and resets counters (the epoch is
    /// preserved — it tracks the graph, not the contents).
    pub fn clear(&self) {
        for shard in &self.shards {
            write(&shard.rtcs).clear();
            write(&shard.fulls).clear();
        }
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::PairSet;

    fn sample_pairs() -> PairSet {
        [(0u32, 1u32), (1, 0)].into_iter().collect()
    }

    fn sample_rtc() -> Arc<Rtc> {
        Arc::new(Rtc::from_pairs(&sample_pairs()))
    }

    #[test]
    fn hit_miss_accounting() {
        let c = SharedCache::new();
        assert!(c.get_rtc("a.b").is_none());
        assert_eq!(c.misses(), 1);
        c.insert_rtc("a.b".into(), sample_rtc());
        assert!(c.get_rtc("a.b").is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.rtc_count(), 1);
    }

    #[test]
    fn shared_pair_totals() {
        let c = SharedCache::new();
        c.insert_rtc("a.b".into(), sample_rtc());
        // One 2-cycle SCC with a self-reach: closure has 1 pair.
        assert_eq!(c.rtc_shared_pairs(), 1);
        c.insert_full("a.b".into(), Arc::new(FullTc::from_pairs(&sample_pairs())));
        // Full closure: both vertices reach both → 4 pairs.
        assert_eq!(c.full_shared_pairs(), 4);
    }

    #[test]
    fn clear_resets_everything() {
        let c = SharedCache::new();
        c.insert_rtc("x".into(), sample_rtc());
        let _ = c.get_rtc("x");
        c.clear();
        assert_eq!(c.rtc_count(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn reset_counters_preserves_structures() {
        let c = SharedCache::new();
        c.insert_rtc("x".into(), sample_rtc());
        let _ = c.get_rtc("x");
        let _ = c.get_rtc("missing");
        assert_eq!((c.hits(), c.misses()), (1, 1));
        c.reset_counters();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert_eq!(c.rtc_count(), 1);
        assert_eq!(c.rtc_shared_pairs(), 1);
    }

    #[test]
    fn absorb_merges_counters_and_missing_structures() {
        let main = SharedCache::new();
        main.insert_rtc("shared".into(), sample_rtc());
        let _ = main.get_rtc("shared"); // 1 hit

        let worker = main.clone();
        worker.reset_counters();
        let _ = worker.get_rtc("shared"); // 1 worker hit
        let _ = worker.get_rtc("extra"); // 1 worker miss
        worker.insert_rtc("extra".into(), sample_rtc());

        main.absorb(worker);
        assert_eq!(main.hits(), 2);
        assert_eq!(main.misses(), 1);
        assert_eq!(main.rtc_count(), 2);
    }

    #[test]
    fn clone_is_a_cheap_shared_snapshot() {
        let c = SharedCache::new();
        let rtc = sample_rtc();
        c.insert_rtc("k".into(), Arc::clone(&rtc));
        let snapshot = c.clone();
        // The clone shares the same Arc'd structure, not a deep copy.
        assert_eq!(snapshot.rtc_count(), 1);
        assert_eq!(Arc::strong_count(&rtc), 3); // local + cache + snapshot
    }

    #[test]
    fn rtc_and_full_are_independent_namespaces() {
        let c = SharedCache::new();
        c.insert_rtc("k".into(), sample_rtc());
        assert!(c.get_full("k").is_none());
        assert_eq!(c.full_count(), 0);
    }

    #[test]
    fn entries_go_stale_when_the_epoch_advances() {
        let c = SharedCache::new();
        let r_g = Arc::new(sample_pairs());
        c.insert_rtc_entry("k".into(), sample_rtc(), Arc::clone(&r_g), None);
        assert!(c.contains_fresh_rtc("k"));
        c.advance_epoch(1);
        assert!(!c.contains_fresh_rtc("k"));
        // The legacy getter refuses stale entries...
        assert!(c.get_rtc("k").is_none());
        // ...while the epoch-aware lookup hands back the refresh state.
        match c.lookup_rtc("k") {
            RtcLookup::Stale(stale) => assert_eq!(*stale.r_g.unwrap(), *r_g),
            _ => panic!("expected a stale entry"),
        }
        assert_eq!(c.stale_hits(), 1);
        // Re-inserting at the new epoch makes it fresh again.
        c.insert_rtc_entry("k".into(), sample_rtc(), r_g, None);
        assert!(matches!(c.lookup_rtc("k"), RtcLookup::Fresh(_)));
    }

    #[test]
    fn full_entries_go_stale_too() {
        let c = SharedCache::new();
        c.insert_full_entry(
            "k".into(),
            Arc::new(FullTc::from_pairs(&sample_pairs())),
            Arc::new(sample_pairs()),
        );
        c.advance_epoch(3);
        assert!(matches!(c.lookup_full("k"), FullLookup::Stale(_)));
        assert!(c.get_full("k").is_none());
        assert!(!c.contains_fresh_full("k"));
    }

    #[test]
    fn pinned_lookup_hits_its_own_epoch_after_the_front_moves() {
        let c = SharedCache::new();
        c.insert_rtc("k".into(), sample_rtc());
        c.advance_epoch(2);
        // Live lookups see a stale entry; a reader pinned to epoch 0 still
        // gets a fresh hit — and, being a read, must not claim anything.
        assert!(matches!(c.lookup_rtc_at("k", 0), RtcLookup::Fresh(_)));
        assert_eq!(c.rtc_count(), 1);
        assert_eq!((c.hits(), c.stale_hits()), (1, 0));
    }

    #[test]
    fn pinned_lookup_never_claims_other_epochs() {
        let c = SharedCache::new();
        c.insert_rtc("k".into(), sample_rtc());
        c.advance_epoch(5);
        // Pinned to epoch 3: the epoch-0 entry is neither fresh (wrong
        // epoch) nor claimable (3 is not the live epoch) — a plain miss
        // that leaves the entry for the live readers to refresh.
        assert!(matches!(c.lookup_rtc_at("k", 3), RtcLookup::Miss));
        assert_eq!(c.rtc_count(), 1);
        assert_eq!(c.misses(), 1);
        assert!(matches!(c.lookup_full_at("missing", 3), FullLookup::Miss));
    }

    #[test]
    fn pinned_insert_never_displaces_newer_entries() {
        let c = SharedCache::new();
        c.advance_epoch(4);
        c.insert_rtc("k".into(), sample_rtc()); // stamped 4 (live)
        c.insert_rtc_at("k".into(), sample_rtc(), 1); // old view: ignored
        assert!(c.contains_fresh_rtc("k"));
        c.insert_full("f".into(), Arc::new(FullTc::from_pairs(&sample_pairs())));
        c.insert_full_entry_at(
            "f".into(),
            Arc::new(FullTc::from_pairs(&PairSet::new())),
            Arc::new(PairSet::new()),
            2,
        );
        assert!(c.contains_fresh_full("f"));
        assert_eq!(c.full_shared_pairs(), 4); // the epoch-4 entry survived
                                              // An old-epoch insert under a *new* key does land (epoch 1).
        c.insert_rtc_entry_at(
            "old-only".into(),
            sample_rtc(),
            Arc::new(sample_pairs()),
            None,
            1,
        );
        assert!(matches!(
            c.lookup_rtc_at("old-only", 1),
            RtcLookup::Fresh(_)
        ));
        assert!(!c.contains_fresh_rtc("old-only"));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn epoch_cannot_move_backward() {
        let c = SharedCache::new();
        c.advance_epoch(2);
        c.advance_epoch(1);
    }

    #[test]
    fn absorb_prefers_newer_epochs() {
        let main = SharedCache::new();
        main.insert_rtc("k".into(), sample_rtc());
        let worker = main.clone();
        worker.advance_epoch(1);
        let fresh = sample_rtc();
        worker.insert_rtc_entry(
            "k".into(),
            Arc::clone(&fresh),
            Arc::new(sample_pairs()),
            None,
        );
        main.advance_epoch(1);
        main.absorb(worker);
        // The epoch-1 entry from the worker displaced the stale epoch-0 one.
        assert!(main.contains_fresh_rtc("k"));
    }

    #[test]
    fn fresh_entries_are_point_in_time_copies() {
        let c = SharedCache::new();
        c.insert_rtc_entry("k".into(), sample_rtc(), Arc::new(sample_pairs()), None);
        c.insert_rtc("stale-after-advance".into(), sample_rtc());
        let fresh = c.fresh_rtc_entries();
        assert_eq!(fresh.len(), 2);
        c.advance_epoch(1);
        assert!(c.fresh_rtc_entries().is_empty());
        // The earlier copy is unaffected by the advance.
        assert_eq!(fresh.len(), 2);
    }

    /// The counters are atomics precisely so `metrics`/`reset_metrics`
    /// stay correct while concurrent readers hammer the cache — this
    /// pins the accounting under real threads (ISSUE 5 satellite).
    #[test]
    fn counters_are_exact_under_concurrent_readers() {
        const THREADS: usize = 8;
        const LOOKUPS: u64 = 200;
        let c = SharedCache::new();
        c.insert_rtc("warm".into(), sample_rtc());
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = &c;
                s.spawn(move || {
                    for i in 0..LOOKUPS {
                        // Every thread alternates one guaranteed hit and
                        // one guaranteed miss (a key nobody inserts).
                        assert!(c.get_rtc("warm").is_some());
                        assert!(c.get_rtc(&format!("missing-{t}-{i}")).is_none());
                    }
                });
            }
        });
        assert_eq!(c.hits(), THREADS as u64 * LOOKUPS);
        assert_eq!(c.misses(), THREADS as u64 * LOOKUPS);
        c.reset_counters();
        assert_eq!((c.hits(), c.misses(), c.stale_hits()), (0, 0, 0));
        assert_eq!(c.rtc_count(), 1);
    }

    /// Concurrent fillers racing on the same and different keys leave the
    /// cache consistent: every key present, every entry fresh.
    #[test]
    fn concurrent_inserts_and_lookups_stay_consistent() {
        const THREADS: usize = 8;
        let c = SharedCache::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = &c;
                s.spawn(move || {
                    for round in 0..50 {
                        let contended = format!("key-{}", round % 4);
                        let private = format!("key-{t}-{round}");
                        c.insert_rtc(contended.clone(), sample_rtc());
                        c.insert_rtc(private.clone(), sample_rtc());
                        assert!(c.get_rtc(&contended).is_some());
                        assert!(c.get_rtc(&private).is_some());
                    }
                });
            }
        });
        // 4 contended keys + one private key per (thread, round).
        assert_eq!(c.rtc_count(), 4 + THREADS * 50);
        assert_eq!(c.fresh_rtc_entries().len(), c.rtc_count());
        assert_eq!(c.misses(), 0);
    }
}
