//! The shared-structure cache, epoch-aware for dynamic graphs.
//!
//! Algorithm 1 lines 9–11: "If the RTC for R exists, we reuse \[it\].
//! Otherwise, we compute and store \[it\] to share." The cache key is the
//! *closure body* `R` (canonicalized), not the closure itself — `R+` and
//! `R*` share one entry, which is how Example 7's `(a·b)*` reuses the RTC
//! computed for `a·(a·b)+·b`.
//!
//! For dynamic graphs every entry additionally records the **epoch** it
//! was built at and the base relation `R_G` it was built from. The cache
//! itself tracks the graph's current epoch (advanced by
//! `Engine::apply_delta`); a lookup whose entry is older than the current
//! epoch returns [`RtcLookup::Stale`] — handing the caller everything
//! needed to refresh *incrementally* (diff the base relations, feed the
//! delta to [`DynamicRtc`]) instead of silently serving a closure of a
//! graph that no longer exists.

use rpq_graph::PairSet;
use rpq_reduction::{DynamicRtc, FullTc, Rtc};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// A cached RTC with its provenance.
#[derive(Clone)]
struct RtcEntry {
    rtc: Arc<Rtc>,
    /// The `R_G` the structure was built from (diff base for refreshes);
    /// `None` when the entry was stored without one (legacy path) — such
    /// an entry can only be refreshed by rebuild.
    r_g: Option<Arc<PairSet>>,
    /// The maintainable form, once a refresh has materialized it.
    dynamic: Option<Arc<DynamicRtc>>,
    epoch: u64,
}

/// A cached full closure with its provenance.
#[derive(Clone)]
struct FullEntry {
    full: Arc<FullTc>,
    r_g: Option<Arc<PairSet>>,
    epoch: u64,
}

/// Result of an epoch-aware RTC lookup.
pub enum RtcLookup {
    /// A structure built at the current epoch.
    Fresh(Arc<Rtc>),
    /// A structure from an older epoch, with the state needed to refresh.
    Stale(StaleRtc),
    /// No entry under this key.
    Miss,
}

/// The refreshable state of a stale RTC entry.
pub struct StaleRtc {
    /// The stale structure (still correct for the epoch it was built at).
    pub rtc: Arc<Rtc>,
    /// The base relation it was built from, if recorded.
    pub r_g: Option<Arc<PairSet>>,
    /// The maintainable form, if an earlier refresh already built one.
    pub dynamic: Option<Arc<DynamicRtc>>,
}

/// Result of an epoch-aware full-closure lookup.
pub enum FullLookup {
    /// A structure built at the current epoch.
    Fresh(Arc<FullTc>),
    /// A structure from an older epoch with its base relation.
    Stale(StaleFull),
    /// No entry under this key.
    Miss,
}

/// The refreshable state of a stale full-closure entry.
pub struct StaleFull {
    /// The stale structure.
    pub full: Arc<FullTc>,
    /// The base relation it was built from, if recorded.
    pub r_g: Option<Arc<PairSet>>,
}

/// Cache of shared structures keyed by the canonical form of `R`.
///
/// Structures are held behind [`Arc`], so a `clone()` of the cache is a
/// cheap snapshot sharing the underlying RTCs/closures — this is what the
/// engine hands each worker in parallel batch mode (`Send + Sync` all the
/// way down).
#[derive(Clone, Default)]
pub struct SharedCache {
    rtcs: FxHashMap<String, RtcEntry>,
    fulls: FxHashMap<String, FullEntry>,
    /// The graph epoch this cache serves; entries with an older epoch are
    /// stale.
    epoch: u64,
    hits: u64,
    misses: u64,
    stale_hits: u64,
}

impl SharedCache {
    /// An empty cache at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The graph epoch this cache currently serves.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Moves the cache to a newer graph epoch; existing entries become
    /// stale and will be refreshed on their next lookup. Epochs are
    /// monotone — moving backward panics (it would un-stale entries).
    pub fn advance_epoch(&mut self, epoch: u64) {
        assert!(epoch >= self.epoch, "cache epoch must be monotone");
        self.epoch = epoch;
    }

    /// Epoch-aware RTC lookup. Counts a hit for [`RtcLookup::Fresh`], a
    /// stale hit for [`RtcLookup::Stale`] and a miss otherwise.
    ///
    /// A stale entry is **removed** from the cache and handed to the
    /// caller by value: the caller is expected to refresh it and
    /// re-insert at the current epoch, and the ownership transfer lets
    /// the refresh mutate the maintainable structure in place
    /// (`Arc::try_unwrap` succeeds) instead of deep-cloning it.
    pub fn lookup_rtc(&mut self, key: &str) -> RtcLookup {
        match self.rtcs.get(key) {
            Some(entry) if entry.epoch == self.epoch => {
                self.hits += 1;
                return RtcLookup::Fresh(Arc::clone(&entry.rtc));
            }
            Some(_) => {}
            None => {
                self.misses += 1;
                return RtcLookup::Miss;
            }
        }
        self.stale_hits += 1;
        let entry = self.rtcs.remove(key).expect("stale entry present");
        RtcLookup::Stale(StaleRtc {
            rtc: entry.rtc,
            r_g: entry.r_g,
            dynamic: entry.dynamic,
        })
    }

    /// Looks up the RTC for `key`, counting hit/miss. Stale entries are
    /// *not* returned (and count as misses) — use [`SharedCache::lookup_rtc`]
    /// to refresh instead of recomputing.
    pub fn get_rtc(&mut self, key: &str) -> Option<Arc<Rtc>> {
        match self.rtcs.get(key) {
            Some(entry) if entry.epoch == self.epoch => {
                self.hits += 1;
                Some(Arc::clone(&entry.rtc))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores an RTC under `key` at the current epoch, with no recorded
    /// base relation (a later staleness can only be resolved by rebuild).
    /// Prefer [`SharedCache::insert_rtc_entry`] where `R_G` is at hand.
    pub fn insert_rtc(&mut self, key: String, rtc: Arc<Rtc>) {
        let epoch = self.epoch;
        self.rtcs.insert(
            key,
            RtcEntry {
                rtc,
                r_g: None,
                dynamic: None,
                epoch,
            },
        );
    }

    /// Stores an RTC with its base relation (and optionally its
    /// maintainable form) at the current epoch.
    pub fn insert_rtc_entry(
        &mut self,
        key: String,
        rtc: Arc<Rtc>,
        r_g: Arc<PairSet>,
        dynamic: Option<Arc<DynamicRtc>>,
    ) {
        let r_g = Some(r_g);
        let epoch = self.epoch;
        self.rtcs.insert(
            key,
            RtcEntry {
                rtc,
                r_g,
                dynamic,
                epoch,
            },
        );
    }

    /// Whether a fresh (current-epoch) RTC exists for `key`, without
    /// touching the hit/miss counters.
    pub fn contains_fresh_rtc(&self, key: &str) -> bool {
        self.rtcs
            .get(key)
            .is_some_and(|entry| entry.epoch == self.epoch)
    }

    /// Epoch-aware full-closure lookup (see [`SharedCache::lookup_rtc`]).
    pub fn lookup_full(&mut self, key: &str) -> FullLookup {
        match self.fulls.get(key) {
            Some(entry) if entry.epoch == self.epoch => {
                self.hits += 1;
                FullLookup::Fresh(Arc::clone(&entry.full))
            }
            Some(entry) => {
                self.stale_hits += 1;
                FullLookup::Stale(StaleFull {
                    full: Arc::clone(&entry.full),
                    r_g: entry.r_g.clone(),
                })
            }
            None => {
                self.misses += 1;
                FullLookup::Miss
            }
        }
    }

    /// Looks up the materialized `R⁺_G` for `key`, counting hit/miss.
    /// Stale entries are not returned (and count as misses).
    pub fn get_full(&mut self, key: &str) -> Option<Arc<FullTc>> {
        match self.fulls.get(key) {
            Some(entry) if entry.epoch == self.epoch => {
                self.hits += 1;
                Some(Arc::clone(&entry.full))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a materialized `R⁺_G` under `key` at the current epoch, with
    /// no recorded base relation.
    pub fn insert_full(&mut self, key: String, full: Arc<FullTc>) {
        let epoch = self.epoch;
        self.fulls.insert(
            key,
            FullEntry {
                full,
                r_g: None,
                epoch,
            },
        );
    }

    /// Stores a materialized `R⁺_G` with its base relation.
    pub fn insert_full_entry(&mut self, key: String, full: Arc<FullTc>, r_g: Arc<PairSet>) {
        let epoch = self.epoch;
        self.fulls.insert(
            key,
            FullEntry {
                full,
                r_g: Some(r_g),
                epoch,
            },
        );
    }

    /// Whether a fresh (current-epoch) full closure exists for `key`,
    /// without touching the hit/miss counters.
    pub fn contains_fresh_full(&self, key: &str) -> bool {
        self.fulls
            .get(key)
            .is_some_and(|entry| entry.epoch == self.epoch)
    }

    /// Iterates the **fresh** (current-epoch) RTC entries as
    /// `(key, rtc, recorded base relation)` — the persistence surface used
    /// by the engine snapshot ([`crate::snapshot`]). Stale entries are
    /// skipped: they would need a refresh before being served anyway, so a
    /// snapshot simply drops them.
    pub fn fresh_rtc_entries(
        &self,
    ) -> impl Iterator<Item = (&str, &Arc<Rtc>, Option<&Arc<PairSet>>)> {
        self.rtcs
            .iter()
            .filter(|(_, e)| e.epoch == self.epoch)
            .map(|(k, e)| (k.as_str(), &e.rtc, e.r_g.as_ref()))
    }

    /// Iterates the fresh full-closure entries (see
    /// [`SharedCache::fresh_rtc_entries`]).
    pub fn fresh_full_entries(
        &self,
    ) -> impl Iterator<Item = (&str, &Arc<FullTc>, Option<&Arc<PairSet>>)> {
        self.fulls
            .iter()
            .filter(|(_, e)| e.epoch == self.epoch)
            .map(|(k, e)| (k.as_str(), &e.full, e.r_g.as_ref()))
    }

    /// Number of cached RTCs (fresh or stale).
    pub fn rtc_count(&self) -> usize {
        self.rtcs.len()
    }

    /// Number of cached full closures (fresh or stale).
    pub fn full_count(&self) -> usize {
        self.fulls.len()
    }

    /// Cache hits since creation/clear (fresh entries only).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since creation/clear.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lookups that found an entry from an older epoch (each one leads to
    /// a refresh, not a recompute-from-nothing).
    pub fn stale_hits(&self) -> u64 {
        self.stale_hits
    }

    /// Total pairs held in cached RTCs (`Σ |TC(Ḡ_R)|`) — RTCSharing's
    /// shared-data size in Fig. 12.
    pub fn rtc_shared_pairs(&self) -> usize {
        self.rtcs.values().map(|e| e.rtc.closure_pair_count()).sum()
    }

    /// Total pairs held in cached full closures (`Σ |R⁺_G|`) — FullSharing's
    /// shared-data size in Fig. 12.
    pub fn full_shared_pairs(&self) -> usize {
        self.fulls.values().map(|e| e.full.pair_count()).sum()
    }

    /// Sum of `|V̄_R|` (SCC counts) across cached RTCs — RTCSharing's
    /// vertex-count metric in Fig. 13.
    pub fn rtc_total_sccs(&self) -> usize {
        self.rtcs.values().map(|e| e.rtc.scc_count()).sum()
    }

    /// Sum of `|V_R|` across cached RTCs.
    pub fn rtc_total_vr(&self) -> usize {
        self.rtcs.values().map(|e| e.rtc.stats().vr_vertices).sum()
    }

    /// Sum of `|V_R|` across cached full closures — FullSharing's
    /// vertex-count metric in Fig. 13.
    pub fn full_total_vertices(&self) -> usize {
        self.fulls.values().map(|e| e.full.vertex_count()).sum()
    }

    /// Resets the hit/miss/stale counters while **preserving** every
    /// cached structure — the metric-reset half of [`SharedCache::clear`],
    /// used by `Engine::reset_metrics`.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.stale_hits = 0;
    }

    /// Merges a worker's cache back after a parallel batch: counters add
    /// up, and per key the entry from the **newest epoch** wins (ties keep
    /// the existing entry; structures are deterministic per `(key, epoch)`,
    /// so which clone survives is immaterial).
    pub fn absorb(&mut self, other: SharedCache) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.stale_hits += other.stale_hits;
        for (key, entry) in other.rtcs {
            match self.rtcs.get(&key) {
                Some(existing) if existing.epoch >= entry.epoch => {}
                _ => {
                    self.rtcs.insert(key, entry);
                }
            }
        }
        for (key, entry) in other.fulls {
            match self.fulls.get(&key) {
                Some(existing) if existing.epoch >= entry.epoch => {}
                _ => {
                    self.fulls.insert(key, entry);
                }
            }
        }
    }

    /// Drops all cached structures and resets counters (the epoch is
    /// preserved — it tracks the graph, not the contents).
    pub fn clear(&mut self) {
        self.rtcs.clear();
        self.fulls.clear();
        self.hits = 0;
        self.misses = 0;
        self.stale_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::PairSet;

    fn sample_pairs() -> PairSet {
        [(0u32, 1u32), (1, 0)].into_iter().collect()
    }

    fn sample_rtc() -> Arc<Rtc> {
        Arc::new(Rtc::from_pairs(&sample_pairs()))
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = SharedCache::new();
        assert!(c.get_rtc("a.b").is_none());
        assert_eq!(c.misses(), 1);
        c.insert_rtc("a.b".into(), sample_rtc());
        assert!(c.get_rtc("a.b").is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.rtc_count(), 1);
    }

    #[test]
    fn shared_pair_totals() {
        let mut c = SharedCache::new();
        c.insert_rtc("a.b".into(), sample_rtc());
        // One 2-cycle SCC with a self-reach: closure has 1 pair.
        assert_eq!(c.rtc_shared_pairs(), 1);
        c.insert_full("a.b".into(), Arc::new(FullTc::from_pairs(&sample_pairs())));
        // Full closure: both vertices reach both → 4 pairs.
        assert_eq!(c.full_shared_pairs(), 4);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = SharedCache::new();
        c.insert_rtc("x".into(), sample_rtc());
        let _ = c.get_rtc("x");
        c.clear();
        assert_eq!(c.rtc_count(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn reset_counters_preserves_structures() {
        let mut c = SharedCache::new();
        c.insert_rtc("x".into(), sample_rtc());
        let _ = c.get_rtc("x");
        let _ = c.get_rtc("missing");
        assert_eq!((c.hits(), c.misses()), (1, 1));
        c.reset_counters();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert_eq!(c.rtc_count(), 1);
        assert_eq!(c.rtc_shared_pairs(), 1);
    }

    #[test]
    fn absorb_merges_counters_and_missing_structures() {
        let mut main = SharedCache::new();
        main.insert_rtc("shared".into(), sample_rtc());
        let _ = main.get_rtc("shared"); // 1 hit

        let mut worker = main.clone();
        worker.reset_counters();
        let _ = worker.get_rtc("shared"); // 1 worker hit
        let _ = worker.get_rtc("extra"); // 1 worker miss
        worker.insert_rtc("extra".into(), sample_rtc());

        main.absorb(worker);
        assert_eq!(main.hits(), 2);
        assert_eq!(main.misses(), 1);
        assert_eq!(main.rtc_count(), 2);
    }

    #[test]
    fn clone_is_a_cheap_shared_snapshot() {
        let mut c = SharedCache::new();
        let rtc = sample_rtc();
        c.insert_rtc("k".into(), Arc::clone(&rtc));
        let snapshot = c.clone();
        // The clone shares the same Arc'd structure, not a deep copy.
        assert_eq!(snapshot.rtc_count(), 1);
        assert_eq!(Arc::strong_count(&rtc), 3); // local + cache + snapshot
    }

    #[test]
    fn rtc_and_full_are_independent_namespaces() {
        let mut c = SharedCache::new();
        c.insert_rtc("k".into(), sample_rtc());
        assert!(c.get_full("k").is_none());
        assert_eq!(c.full_count(), 0);
    }

    #[test]
    fn entries_go_stale_when_the_epoch_advances() {
        let mut c = SharedCache::new();
        let r_g = Arc::new(sample_pairs());
        c.insert_rtc_entry("k".into(), sample_rtc(), Arc::clone(&r_g), None);
        assert!(c.contains_fresh_rtc("k"));
        c.advance_epoch(1);
        assert!(!c.contains_fresh_rtc("k"));
        // The legacy getter refuses stale entries...
        assert!(c.get_rtc("k").is_none());
        // ...while the epoch-aware lookup hands back the refresh state.
        match c.lookup_rtc("k") {
            RtcLookup::Stale(stale) => assert_eq!(*stale.r_g.unwrap(), *r_g),
            _ => panic!("expected a stale entry"),
        }
        assert_eq!(c.stale_hits(), 1);
        // Re-inserting at the new epoch makes it fresh again.
        c.insert_rtc_entry("k".into(), sample_rtc(), r_g, None);
        assert!(matches!(c.lookup_rtc("k"), RtcLookup::Fresh(_)));
    }

    #[test]
    fn full_entries_go_stale_too() {
        let mut c = SharedCache::new();
        c.insert_full_entry(
            "k".into(),
            Arc::new(FullTc::from_pairs(&sample_pairs())),
            Arc::new(sample_pairs()),
        );
        c.advance_epoch(3);
        assert!(matches!(c.lookup_full("k"), FullLookup::Stale(_)));
        assert!(c.get_full("k").is_none());
        assert!(!c.contains_fresh_full("k"));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn epoch_cannot_move_backward() {
        let mut c = SharedCache::new();
        c.advance_epoch(2);
        c.advance_epoch(1);
    }

    #[test]
    fn absorb_prefers_newer_epochs() {
        let mut main = SharedCache::new();
        main.insert_rtc("k".into(), sample_rtc());
        let mut worker = main.clone();
        worker.advance_epoch(1);
        let fresh = sample_rtc();
        worker.insert_rtc_entry(
            "k".into(),
            Arc::clone(&fresh),
            Arc::new(sample_pairs()),
            None,
        );
        main.advance_epoch(1);
        main.absorb(worker);
        // The epoch-1 entry from the worker displaced the stale epoch-0 one.
        assert!(main.contains_fresh_rtc("k"));
    }
}
