//! The shared-structure cache.
//!
//! Algorithm 1 lines 9–11: "If the RTC for R exists, we reuse \[it\].
//! Otherwise, we compute and store \[it\] to share." The cache key is the
//! *closure body* `R` (canonicalized), not the closure itself — `R+` and
//! `R*` share one entry, which is how Example 7's `(a·b)*` reuses the RTC
//! computed for `a·(a·b)+·b`.

use rpq_reduction::{FullTc, Rtc};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Cache of shared structures keyed by the canonical form of `R`.
///
/// Structures are held behind [`Arc`], so a `clone()` of the cache is a
/// cheap snapshot sharing the underlying RTCs/closures — this is what the
/// engine hands each worker in parallel batch mode (`Send + Sync` all the
/// way down).
#[derive(Clone, Default)]
pub struct SharedCache {
    rtcs: FxHashMap<String, Arc<Rtc>>,
    fulls: FxHashMap<String, Arc<FullTc>>,
    hits: u64,
    misses: u64,
}

impl SharedCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the RTC for `key`, counting hit/miss.
    pub fn get_rtc(&mut self, key: &str) -> Option<Arc<Rtc>> {
        match self.rtcs.get(key) {
            Some(rtc) => {
                self.hits += 1;
                Some(Arc::clone(rtc))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores an RTC under `key`.
    pub fn insert_rtc(&mut self, key: String, rtc: Arc<Rtc>) {
        self.rtcs.insert(key, rtc);
    }

    /// Looks up the materialized `R⁺_G` for `key`, counting hit/miss.
    pub fn get_full(&mut self, key: &str) -> Option<Arc<FullTc>> {
        match self.fulls.get(key) {
            Some(full) => {
                self.hits += 1;
                Some(Arc::clone(full))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a materialized `R⁺_G` under `key`.
    pub fn insert_full(&mut self, key: String, full: Arc<FullTc>) {
        self.fulls.insert(key, full);
    }

    /// Number of cached RTCs.
    pub fn rtc_count(&self) -> usize {
        self.rtcs.len()
    }

    /// Number of cached full closures.
    pub fn full_count(&self) -> usize {
        self.fulls.len()
    }

    /// Cache hits since creation/clear.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since creation/clear.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total pairs held in cached RTCs (`Σ |TC(Ḡ_R)|`) — RTCSharing's
    /// shared-data size in Fig. 12.
    pub fn rtc_shared_pairs(&self) -> usize {
        self.rtcs.values().map(|r| r.closure_pair_count()).sum()
    }

    /// Total pairs held in cached full closures (`Σ |R⁺_G|`) — FullSharing's
    /// shared-data size in Fig. 12.
    pub fn full_shared_pairs(&self) -> usize {
        self.fulls.values().map(|f| f.pair_count()).sum()
    }

    /// Sum of `|V̄_R|` (SCC counts) across cached RTCs — RTCSharing's
    /// vertex-count metric in Fig. 13.
    pub fn rtc_total_sccs(&self) -> usize {
        self.rtcs.values().map(|r| r.scc_count()).sum()
    }

    /// Sum of `|V_R|` across cached RTCs.
    pub fn rtc_total_vr(&self) -> usize {
        self.rtcs.values().map(|r| r.stats().vr_vertices).sum()
    }

    /// Sum of `|V_R|` across cached full closures — FullSharing's
    /// vertex-count metric in Fig. 13.
    pub fn full_total_vertices(&self) -> usize {
        self.fulls.values().map(|f| f.vertex_count()).sum()
    }

    /// Resets the hit/miss counters while **preserving** every cached
    /// structure — the metric-reset half of [`SharedCache::clear`], used
    /// by `Engine::reset_metrics`.
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Merges a worker's cache back after a parallel batch: counters add
    /// up, and structures the worker computed that this cache lacks are
    /// adopted (first writer wins; the structures are deterministic per
    /// key, so which clone is kept is immaterial).
    pub fn absorb(&mut self, other: SharedCache) {
        self.hits += other.hits;
        self.misses += other.misses;
        for (key, rtc) in other.rtcs {
            self.rtcs.entry(key).or_insert(rtc);
        }
        for (key, full) in other.fulls {
            self.fulls.entry(key).or_insert(full);
        }
    }

    /// Drops all cached structures and resets counters.
    pub fn clear(&mut self) {
        self.rtcs.clear();
        self.fulls.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::PairSet;

    fn sample_rtc() -> Arc<Rtc> {
        let pairs: PairSet = [(0u32, 1u32), (1, 0)].into_iter().collect();
        Arc::new(Rtc::from_pairs(&pairs))
    }

    #[test]
    fn hit_miss_accounting() {
        let mut c = SharedCache::new();
        assert!(c.get_rtc("a.b").is_none());
        assert_eq!(c.misses(), 1);
        c.insert_rtc("a.b".into(), sample_rtc());
        assert!(c.get_rtc("a.b").is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.rtc_count(), 1);
    }

    #[test]
    fn shared_pair_totals() {
        let mut c = SharedCache::new();
        c.insert_rtc("a.b".into(), sample_rtc());
        // One 2-cycle SCC with a self-reach: closure has 1 pair.
        assert_eq!(c.rtc_shared_pairs(), 1);
        let pairs: PairSet = [(0u32, 1u32), (1, 0)].into_iter().collect();
        c.insert_full("a.b".into(), Arc::new(FullTc::from_pairs(&pairs)));
        // Full closure: both vertices reach both → 4 pairs.
        assert_eq!(c.full_shared_pairs(), 4);
    }

    #[test]
    fn clear_resets_everything() {
        let mut c = SharedCache::new();
        c.insert_rtc("x".into(), sample_rtc());
        let _ = c.get_rtc("x");
        c.clear();
        assert_eq!(c.rtc_count(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
    }

    #[test]
    fn reset_counters_preserves_structures() {
        let mut c = SharedCache::new();
        c.insert_rtc("x".into(), sample_rtc());
        let _ = c.get_rtc("x");
        let _ = c.get_rtc("missing");
        assert_eq!((c.hits(), c.misses()), (1, 1));
        c.reset_counters();
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert_eq!(c.rtc_count(), 1);
        assert_eq!(c.rtc_shared_pairs(), 1);
    }

    #[test]
    fn absorb_merges_counters_and_missing_structures() {
        let mut main = SharedCache::new();
        main.insert_rtc("shared".into(), sample_rtc());
        let _ = main.get_rtc("shared"); // 1 hit

        let mut worker = main.clone();
        worker.reset_counters();
        let _ = worker.get_rtc("shared"); // 1 worker hit
        let _ = worker.get_rtc("extra"); // 1 worker miss
        worker.insert_rtc("extra".into(), sample_rtc());

        main.absorb(worker);
        assert_eq!(main.hits(), 2);
        assert_eq!(main.misses(), 1);
        assert_eq!(main.rtc_count(), 2);
    }

    #[test]
    fn clone_is_a_cheap_shared_snapshot() {
        let mut c = SharedCache::new();
        let rtc = sample_rtc();
        c.insert_rtc("k".into(), Arc::clone(&rtc));
        let snapshot = c.clone();
        // The clone shares the same Arc'd structure, not a deep copy.
        assert_eq!(snapshot.rtc_count(), 1);
        assert_eq!(Arc::strong_count(&rtc), 3); // local + cache + snapshot
    }

    #[test]
    fn rtc_and_full_are_independent_namespaces() {
        let mut c = SharedCache::new();
        c.insert_rtc("k".into(), sample_rtc());
        assert!(c.get_full("k").is_none());
        assert_eq!(c.full_count(), 0);
    }
}
