//! Engine snapshots: graph + warm shared-structure cache, on disk.
//!
//! A long-lived [`Engine`] earns its keep by amortizing shared RTCs across
//! a query stream; a restart that only persisted the *graph* would still
//! pay Tarjan and the closure sweep again for every shared body before the
//! first warm answer. An **engine snapshot** therefore persists both
//! halves of the serving state:
//!
//! 1. the graph at its current epoch (the [`rpq_graph::snapshot`] section,
//!    embedded verbatim), and
//! 2. every **fresh** cache entry — key, recorded base relation `R_G`, and
//!    the complete structural tables of the shared [`rpq_reduction::Rtc`] /
//!    [`rpq_reduction::FullTc`] (via [`rpq_reduction::snapshot`]) — so the
//!    restored cache serves
//!    `Fresh` hits immediately, with zero recomputation.
//!
//! Stale entries (built at an older epoch than the graph) are *dropped* on
//! save: they would need a refresh before being served anyway, and the
//! refresh needs live evaluation state a snapshot cannot carry.
//!
//! Layout, after the 8-byte magic `b"RPQESNP2"`: the graph section, then
//! the RTC entry table, then the full-closure entry table, then the end
//! marker `b"RPQEEND."`. All integers are little-endian; see the field
//! comments in [`write_snapshot`] for the exact order. Version `2` adds
//! one `u64` per entry — the structure's build time in nanoseconds, the
//! cost-to-rebuild that drives budgeted eviction — right after the key;
//! version-`1` files (no cost word) still load, with cost 0. Closure
//! rows are
//! length-prefixed: a plain length word is followed by that many sorted
//! `u32` ids (the legacy sparse encoding, byte-identical to pre-hybrid
//! snapshots, so old files still load), while a length word with the
//! [`DENSE_ROW_TAG`] high bit set counts `u64` bitset words of a dense
//! row instead.
//!
//! Budgets are honoured on both sides of the roundtrip. A save from an
//! engine whose [`crate::CacheBudget`] is bounded trims to the
//! highest-score subset that fits (pinned epochs can push the live cache
//! past its budget; the file never is). A load inserts through the costed
//! budget-enforcing path, so restoring into a *tighter* budget than the
//! writer's deterministically keeps the highest-score entries and evicts
//! the rest. Loads re-validate
//! everything — magic, embedded graph, structural invariants of every
//! cached structure, `R_G` pair ordering, and the end marker — so a
//! truncated or corrupted file fails with [`EngineError::Snapshot`]
//! instead of serving garbage.
//!
//! ```
//! use rpq_core::{snapshot, Engine, EngineConfig};
//! use rpq_graph::fixtures::paper_graph;
//!
//! let mut engine = Engine::new_dynamic(paper_graph());
//! engine.evaluate_str("d.(b.c)+.c").unwrap(); // caches the (b.c) RTC
//!
//! let mut bytes = Vec::new();
//! snapshot::write_snapshot(&engine, &mut bytes).unwrap();
//!
//! let mut warm = snapshot::read_snapshot(&bytes[..], EngineConfig::default()).unwrap();
//! warm.evaluate_str("d.(b.c)+.c").unwrap();
//! assert_eq!(warm.cache().misses(), 0); // the restored entry was Fresh
//! assert!(warm.cache().hits() >= 1);
//! ```

use crate::engine::{Engine, EngineConfig};
use crate::error::EngineError;
use rpq_graph::{PairSet, RowSet, VertexId};
use rpq_reduction::{FullTcParts, RtcParts};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// High bit of a closure-row length word: set, the low 31 bits count the
/// `u64` words of a dense bitset row; clear, they count sparse `u32` ids
/// (the legacy encoding).
pub const DENSE_ROW_TAG: u32 = 1 << 31;

/// Leading magic of an engine snapshot; the trailing byte is the format
/// version this build *writes*. The reader also accepts the previous
/// version `'1'`, which lacks per-entry build costs.
pub const MAGIC: [u8; 8] = *b"RPQESNP2";

/// Trailing end marker: present iff the file was written to completion.
pub const END_MARKER: [u8; 8] = *b"RPQEEND.";

/// Whether `head` starts with the engine-snapshot magic (any version) —
/// the sniffing rule for front-ends whose `load` accepts engine
/// snapshots alongside the graph-level formats.
pub fn matches_magic(head: &[u8]) -> bool {
    head.len() >= 7 && head[..7] == MAGIC[..7]
}

/// Writes the engine's full serving state (graph + fresh cache entries).
pub fn write_snapshot<W: Write>(engine: &Engine<'_>, mut w: W) -> Result<(), EngineError> {
    w.write_all(&MAGIC).map_err(io_err)?;
    rpq_graph::snapshot::write_graph_snapshot(engine.graph(), engine.epoch(), &mut w)?;

    let cache = engine.cache();
    let mut rtcs = cache.fresh_rtc_entries();
    let mut fulls = cache.fresh_full_entries();

    // A bounded cache can sit past its budget while pinned epochs hold
    // entries hostage; the file must not inherit that excess. Trim to the
    // highest-score subset that fits — same score as eviction
    // (cost-to-rebuild per byte), ties broken by key then namespace, so
    // equal states trim identically.
    let budget = cache.budget();
    if !budget.is_unbounded() {
        struct Cand {
            is_rtc: bool,
            idx: usize,
            bytes: usize,
            score: f64,
        }
        let mut cands: Vec<Cand> = Vec::with_capacity(rtcs.len() + fulls.len());
        for (idx, (_, rtc, r_g, nanos)) in rtcs.iter().enumerate() {
            let bytes = rtc.closure_heap_bytes() + r_g.as_ref().map_or(0, |p| p.heap_bytes());
            let score = *nanos as f64 / bytes.max(1) as f64;
            cands.push(Cand {
                is_rtc: true,
                idx,
                bytes,
                score,
            });
        }
        for (idx, (_, full, r_g, nanos)) in fulls.iter().enumerate() {
            let bytes = full.heap_bytes() + r_g.as_ref().map_or(0, |p| p.heap_bytes());
            let score = *nanos as f64 / bytes.max(1) as f64;
            cands.push(Cand {
                is_rtc: false,
                idx,
                bytes,
                score,
            });
        }
        let key_of = |c: &Cand| {
            if c.is_rtc {
                rtcs[c.idx].0.as_str()
            } else {
                fulls[c.idx].0.as_str()
            }
        };
        cands.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| key_of(a).cmp(key_of(b)))
                .then_with(|| b.is_rtc.cmp(&a.is_rtc))
        });
        let mut bytes_left = budget.max_bytes.unwrap_or(usize::MAX);
        let mut entries_left = budget.max_entries.unwrap_or(usize::MAX);
        let mut keep_rtc = vec![false; rtcs.len()];
        let mut keep_full = vec![false; fulls.len()];
        for c in &cands {
            if entries_left == 0 {
                break;
            }
            if c.bytes > bytes_left {
                continue; // a smaller, lower-score entry may still fit
            }
            bytes_left -= c.bytes;
            entries_left -= 1;
            if c.is_rtc {
                keep_rtc[c.idx] = true;
            } else {
                keep_full[c.idx] = true;
            }
        }
        let mut keep = keep_rtc.iter();
        rtcs.retain(|_| *keep.next().expect("one flag per RTC entry"));
        let mut keep = keep_full.iter();
        fulls.retain(|_| *keep.next().expect("one flag per full entry"));
    }

    // Sort by key so snapshots of equal state are byte-equal (hash-map
    // iteration order is not deterministic).
    rtcs.sort_by(|a, b| a.0.cmp(&b.0));
    write_u32(&mut w, rtcs.len() as u32)?;
    for (key, rtc, r_g, build_nanos) in &rtcs {
        write_str(&mut w, key)?;
        write_u64(&mut w, *build_nanos)?;
        write_opt_pairs(&mut w, r_g.as_ref())?;
        let parts = RtcParts::of(rtc);
        write_u64(&mut w, parts.originals.len() as u64)?;
        write_all_u32(&mut w, &parts.originals)?;
        write_u32(&mut w, parts.scc_count)?;
        write_all_u32(&mut w, &parts.component_of)?;
        for row in &parts.closure_rows {
            write_row(&mut w, row)?;
        }
        write_u64(&mut w, parts.er_edges)?;
        write_u64(&mut w, parts.ebar_edges)?;
    }

    fulls.sort_by(|a, b| a.0.cmp(&b.0));
    write_u32(&mut w, fulls.len() as u32)?;
    for (key, full, r_g, build_nanos) in &fulls {
        write_str(&mut w, key)?;
        write_u64(&mut w, *build_nanos)?;
        write_opt_pairs(&mut w, r_g.as_ref())?;
        let parts = FullTcParts::of(full);
        write_u64(&mut w, parts.originals.len() as u64)?;
        write_all_u32(&mut w, &parts.originals)?;
        for row in &parts.rows {
            write_row(&mut w, row)?;
        }
    }

    w.write_all(&END_MARKER).map_err(io_err)?;
    w.flush().map_err(io_err)?;
    Ok(())
}

/// Reads an engine snapshot, returning a warm engine that owns its graph
/// (so deltas apply without an upgrade copy) and serves `Fresh` cache hits
/// for every persisted shared structure.
pub fn read_snapshot<R: Read>(
    mut r: R,
    config: EngineConfig,
) -> Result<Engine<'static>, EngineError> {
    let mut magic = [0u8; 8];
    read_exact(&mut r, &mut magic, "magic")?;
    if !matches_magic(&magic) {
        return Err(EngineError::Snapshot(
            "bad magic: not an engine snapshot file".into(),
        ));
    }
    let version = magic[7];
    if version != b'1' && version != MAGIC[7] {
        return Err(EngineError::Snapshot(format!(
            "unsupported engine snapshot version '{}' (this build reads versions '1'..='{}')",
            version as char, MAGIC[7] as char,
        )));
    }
    let graph = rpq_graph::snapshot::read_snapshot(&mut r)?;
    let engine = Engine::with_config_versioned(graph, config);

    let rtc_count = read_u32(&mut r, "RTC entry count")?;
    for _ in 0..rtc_count {
        let key = read_str(&mut r, "RTC entry key")?;
        let build = read_build_cost(&mut r, version, "RTC build cost")?;
        let r_g = read_opt_pairs(&mut r)?;
        let n = read_u64(&mut r, "RTC vertex count")? as usize;
        let originals = read_vec_u32(&mut r, n, "RTC originals")?;
        let scc_count = read_u32(&mut r, "RTC scc count")?;
        let component_of = read_vec_u32(&mut r, n, "RTC component table")?;
        let mut closure_rows = Vec::with_capacity((scc_count as usize).min(CAP));
        for _ in 0..scc_count {
            closure_rows.push(read_row(&mut r, "RTC closure row")?);
        }
        let er_edges = read_u64(&mut r, "RTC |E_R|")?;
        let ebar_edges = read_u64(&mut r, "RTC |Ē_R|")?;
        let parts = RtcParts {
            originals,
            component_of,
            scc_count,
            closure_rows,
            er_edges,
            ebar_edges,
        };
        let rtc = Arc::new(
            parts
                .assemble()
                .map_err(|e| EngineError::Snapshot(format!("entry '{key}': {e}")))?,
        );
        // Costed inserts go through budget enforcement, so a restore into
        // a tighter budget than the writer's trims deterministically.
        let epoch = engine.epoch();
        match r_g {
            Some(r_g) => {
                engine
                    .cache()
                    .insert_rtc_entry_costed(key, rtc, Arc::new(r_g), None, epoch, build)
            }
            None => engine.cache().insert_rtc_at_costed(key, rtc, epoch, build),
        }
    }

    let full_count = read_u32(&mut r, "full-closure entry count")?;
    for _ in 0..full_count {
        let key = read_str(&mut r, "full entry key")?;
        let build = read_build_cost(&mut r, version, "full build cost")?;
        let r_g = read_opt_pairs(&mut r)?;
        let n = read_u64(&mut r, "full vertex count")? as usize;
        let originals = read_vec_u32(&mut r, n, "full originals")?;
        let mut rows = Vec::with_capacity(n.min(CAP));
        for _ in 0..n {
            rows.push(read_row(&mut r, "full row")?);
        }
        let parts = FullTcParts { originals, rows };
        let full = Arc::new(
            parts
                .assemble()
                .map_err(|e| EngineError::Snapshot(format!("entry '{key}': {e}")))?,
        );
        let epoch = engine.epoch();
        match r_g {
            Some(r_g) => {
                engine
                    .cache()
                    .insert_full_entry_costed(key, full, Arc::new(r_g), epoch, build)
            }
            None => engine
                .cache()
                .insert_full_at_costed(key, full, epoch, build),
        }
    }

    let mut end = [0u8; 8];
    read_exact(&mut r, &mut end, "end marker")?;
    if end != END_MARKER {
        return Err(EngineError::Snapshot(
            "missing end marker: snapshot was not written to completion".into(),
        ));
    }
    Ok(engine)
}

/// Writes the engine's serving state to a snapshot file.
pub fn save_snapshot(engine: &Engine<'_>, path: &Path) -> Result<(), EngineError> {
    let file = std::fs::File::create(path).map_err(io_err)?;
    write_snapshot(engine, std::io::BufWriter::new(file))
}

/// Loads a warm engine from a snapshot file.
pub fn load_snapshot(path: &Path, config: EngineConfig) -> Result<Engine<'static>, EngineError> {
    let file = std::fs::File::open(path).map_err(io_err)?;
    read_snapshot(std::io::BufReader::new(file), config)
}

/// Cap for pre-allocation from length fields a corrupt file controls.
const CAP: usize = 1 << 16;

fn io_err(e: std::io::Error) -> EngineError {
    EngineError::Snapshot(format!("i/o error: {e}"))
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<(), EngineError> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), EngineError> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_all_u32<W: Write>(w: &mut W, vs: &[u32]) -> Result<(), EngineError> {
    for &v in vs {
        write_u32(w, v)?;
    }
    Ok(())
}

fn write_str<W: Write>(w: &mut W, s: &str) -> Result<(), EngineError> {
    // Same cap as read_str: a save must never produce a file its own
    // reader rejects (an over-long cache key fails loudly here instead).
    if s.len() > CAP {
        return Err(EngineError::Snapshot(format!(
            "cache key of {} bytes exceeds the {CAP}-byte snapshot cap",
            s.len()
        )));
    }
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes()).map_err(io_err)
}

fn write_row<W: Write>(w: &mut W, row: &RowSet) -> Result<(), EngineError> {
    match row {
        RowSet::Sparse(ids) => {
            write_u32(w, ids.len() as u32)?;
            write_all_u32(w, ids)
        }
        RowSet::Dense(_) => {
            let words = row.as_dense_words().expect("dense row has words");
            write_u32(w, DENSE_ROW_TAG | words.len() as u32)?;
            for &word in words {
                w.write_all(&word.to_le_bytes()).map_err(io_err)?;
            }
            Ok(())
        }
    }
}

fn read_row<R: Read>(r: &mut R, what: &str) -> Result<RowSet, EngineError> {
    let len_word = read_u32(r, what)?;
    if len_word & DENSE_ROW_TAG != 0 {
        let words = (len_word & !DENSE_ROW_TAG) as usize;
        let mut ws = Vec::with_capacity(words.min(CAP));
        for _ in 0..words {
            let mut buf = [0u8; 8];
            read_exact(r, &mut buf, what)?;
            ws.push(u64::from_le_bytes(buf));
        }
        Ok(RowSet::dense_from_words(ws))
    } else {
        // The legacy sparse encoding; sortedness is re-validated when the
        // parts assemble.
        Ok(RowSet::Sparse(read_vec_u32(r, len_word as usize, what)?))
    }
}

fn write_opt_pairs<W: Write>(w: &mut W, pairs: Option<&Arc<PairSet>>) -> Result<(), EngineError> {
    match pairs {
        None => w.write_all(&[0u8]).map_err(io_err),
        Some(p) => {
            w.write_all(&[1u8]).map_err(io_err)?;
            write_u64(w, p.len() as u64)?;
            for (a, b) in p.iter() {
                write_u32(w, a.raw())?;
                write_u32(w, b.raw())?;
            }
            Ok(())
        }
    }
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), EngineError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            EngineError::Snapshot(format!("truncated snapshot: unexpected EOF reading {what}"))
        } else {
            io_err(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> Result<u32, EngineError> {
    let mut buf = [0u8; 4];
    read_exact(r, &mut buf, what)?;
    Ok(u32::from_le_bytes(buf))
}

/// The per-entry cost-to-rebuild word, added in version `2`; version-`1`
/// entries carry no cost and restore as cost 0 (first in line to evict).
fn read_build_cost<R: Read>(
    r: &mut R,
    version: u8,
    what: &str,
) -> Result<std::time::Duration, EngineError> {
    if version < b'2' {
        return Ok(std::time::Duration::ZERO);
    }
    Ok(std::time::Duration::from_nanos(read_u64(r, what)?))
}

fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, EngineError> {
    let mut buf = [0u8; 8];
    read_exact(r, &mut buf, what)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_vec_u32<R: Read>(r: &mut R, n: usize, what: &str) -> Result<Vec<u32>, EngineError> {
    let mut out = Vec::with_capacity(n.min(CAP));
    for _ in 0..n {
        out.push(read_u32(r, what)?);
    }
    Ok(out)
}

fn read_str<R: Read>(r: &mut R, what: &str) -> Result<String, EngineError> {
    let len = read_u32(r, what)? as usize;
    if len > CAP {
        return Err(EngineError::Snapshot(format!(
            "{what} length {len} exceeds the {CAP}-byte cap"
        )));
    }
    let mut buf = vec![0u8; len];
    read_exact(r, &mut buf, what)?;
    String::from_utf8(buf).map_err(|_| EngineError::Snapshot(format!("{what} is not valid UTF-8")))
}

fn read_opt_pairs<R: Read>(r: &mut R) -> Result<Option<PairSet>, EngineError> {
    let mut tag = [0u8; 1];
    read_exact(r, &mut tag, "base-relation tag")?;
    match tag[0] {
        0 => Ok(None),
        1 => {
            let n = read_u64(r, "base-relation pair count")? as usize;
            let mut pairs = Vec::with_capacity(n.min(CAP));
            for _ in 0..n {
                let a = read_u32(r, "base-relation pair")?;
                let b = read_u32(r, "base-relation pair")?;
                pairs.push((VertexId(a), VertexId(b)));
            }
            if !pairs.windows(2).all(|w| w[0] < w[1]) {
                return Err(EngineError::Snapshot(
                    "base relation pairs are not strictly ascending".into(),
                ));
            }
            Ok(Some(PairSet::from_sorted_unique(pairs)))
        }
        t => Err(EngineError::Snapshot(format!(
            "bad base-relation tag {t} (expected 0 or 1)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Strategy;
    use rpq_graph::fixtures::paper_graph;
    use rpq_graph::GraphDelta;

    fn snapshot_bytes(engine: &Engine<'_>) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_snapshot(engine, &mut bytes).unwrap();
        bytes
    }

    /// `unwrap_err` without requiring `Engine: Debug`.
    fn expect_err(r: Result<Engine<'static>, EngineError>) -> EngineError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected a snapshot error, got a working engine"),
        }
    }

    #[test]
    fn warm_restart_serves_fresh_hits_without_recompute() {
        let engine = Engine::new_dynamic(paper_graph());
        let expected = engine.evaluate_str("d.(b.c)+.c").unwrap();
        assert_eq!(engine.cache().rtc_count(), 1);

        let bytes = snapshot_bytes(&engine);
        let warm = read_snapshot(&bytes[..], EngineConfig::default()).unwrap();
        assert_eq!(warm.epoch(), engine.epoch());
        assert_eq!(warm.cache().rtc_count(), 1);
        // The restored entry is Fresh: the very first evaluation hits it.
        let result = warm.evaluate_str("d.(b.c)+.c").unwrap();
        assert_eq!(result, expected);
        assert_eq!(warm.cache().misses(), 0, "warm cache must not miss");
        assert_eq!(
            warm.cache().stale_hits(),
            0,
            "entry must be Fresh, not stale"
        );
        assert!(warm.cache().hits() >= 1);
    }

    #[test]
    fn snapshot_preserves_epoch_and_supports_further_deltas() {
        let mut engine = Engine::new_dynamic(paper_graph());
        engine.evaluate_str("(b.c)+").unwrap();
        let mut delta = GraphDelta::new();
        delta.insert(6, "b", 8).insert(8, "c", 6);
        engine.apply_delta(&delta);
        let after_delta = engine.evaluate_str("(b.c)+").unwrap(); // refresh at epoch 1

        let bytes = snapshot_bytes(&engine);
        let mut warm = read_snapshot(&bytes[..], EngineConfig::default()).unwrap();
        assert_eq!(warm.epoch(), 1);
        assert_eq!(warm.evaluate_str("(b.c)+").unwrap(), after_delta);
        assert_eq!(warm.cache().misses(), 0);

        // The warm engine keeps mutating: the restored entry goes stale
        // and refreshes (r_g was persisted, so incrementally).
        let mut delta = GraphDelta::new();
        delta.delete(6, "b", 8);
        warm.apply_delta(&delta);
        let reverted = warm.evaluate_str("(b.c)+").unwrap();
        let oracle = Engine::new(&paper_graph()).evaluate_str("(b.c)+").unwrap();
        assert_eq!(reverted, oracle);
        assert!(warm.cache().stale_hits() >= 1);
    }

    #[test]
    fn stale_entries_are_dropped_on_save() {
        let mut engine = Engine::new_dynamic(paper_graph());
        engine.evaluate_str("(b.c)+").unwrap();
        // Advance the epoch without refreshing: the entry is now stale.
        engine.apply_delta(&GraphDelta::new());
        let bytes = snapshot_bytes(&engine);
        let warm = read_snapshot(&bytes[..], EngineConfig::default()).unwrap();
        assert_eq!(warm.cache().rtc_count(), 0);
        assert_eq!(warm.epoch(), 1);
    }

    #[test]
    fn full_sharing_entries_roundtrip() {
        let g = paper_graph();
        let engine = Engine::with_strategy(&g, Strategy::FullSharing);
        let expected = engine.evaluate_str("d.(b.c)+.c").unwrap();
        assert_eq!(engine.cache().full_count(), 1);

        let bytes = snapshot_bytes(&engine);
        let config = EngineConfig {
            strategy: Strategy::FullSharing,
            ..EngineConfig::default()
        };
        let warm = read_snapshot(&bytes[..], config).unwrap();
        assert_eq!(warm.cache().full_count(), 1);
        assert_eq!(warm.evaluate_str("d.(b.c)+.c").unwrap(), expected);
        assert_eq!(warm.cache().misses(), 0);
        assert!(warm.cache().hits() >= 1);
    }

    #[test]
    fn snapshots_are_deterministic() {
        let engine = Engine::new_dynamic(paper_graph());
        engine.evaluate_str("d.(b.c)+.c").unwrap();
        engine.evaluate_str("(a.b)+").unwrap();
        engine.evaluate_str("c.(a.b)*").unwrap();
        assert!(engine.cache().rtc_count() >= 2);
        assert_eq!(snapshot_bytes(&engine), snapshot_bytes(&engine));
    }

    #[test]
    fn borrowed_engine_snapshots_at_epoch_zero() {
        let g = paper_graph();
        let engine = Engine::new(&g);
        engine.evaluate_str("(b.c)+").unwrap();
        let bytes = snapshot_bytes(&engine);
        let warm = read_snapshot(&bytes[..], EngineConfig::default()).unwrap();
        assert_eq!(warm.epoch(), 0);
        assert_eq!(warm.cache().rtc_count(), 1);
        assert_eq!(warm.graph().edge_count(), g.edge_count());
    }

    #[test]
    fn bad_magic_and_truncation_are_rejected() {
        let err = expect_err(read_snapshot(&b"GARBAGE_"[..], EngineConfig::default()));
        assert!(
            matches!(err, EngineError::Snapshot(ref m) if m.contains("magic")),
            "{err}"
        );

        let engine = Engine::new_dynamic(paper_graph());
        engine.evaluate_str("d.(b.c)+.c").unwrap();
        let bytes = snapshot_bytes(&engine);
        for cut in [0, 4, 20, bytes.len() / 2, bytes.len() - 1] {
            let err = expect_err(read_snapshot(&bytes[..cut], EngineConfig::default()));
            // Truncation inside the embedded graph section surfaces as a
            // graph-layer snapshot error; everywhere else as the engine's.
            assert!(
                matches!(
                    err,
                    EngineError::Snapshot(_)
                        | EngineError::Graph(rpq_graph::GraphError::Snapshot(_))
                ),
                "prefix {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_structure_tables_are_rejected_at_assembly() {
        let engine = Engine::new_dynamic(paper_graph());
        engine.evaluate_str("d.(b.c)+.c").unwrap();
        let bytes = snapshot_bytes(&engine);
        // Flip one byte at a time over the cache section; every outcome
        // must be a clean error or a successful parse — never a panic.
        let mut rejected = 0;
        for at in (bytes.len().saturating_sub(120))..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x5a;
            if read_snapshot(&corrupt[..], EngineConfig::default()).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "no corruption detected at all");
    }

    #[test]
    fn oversized_cache_key_fails_at_save_not_load() {
        // Write/read symmetry: a key past the reader's cap must make the
        // *write* fail loudly, never produce an unloadable file.
        let engine = Engine::new_dynamic(paper_graph());
        let huge_key = "k".repeat(CAP + 1);
        engine.cache().insert_rtc(
            huge_key,
            Arc::new(rpq_reduction::Rtc::from_pairs(&PairSet::new())),
        );
        let mut bytes = Vec::new();
        let err = write_snapshot(&engine, &mut bytes).unwrap_err();
        assert!(
            matches!(err, EngineError::Snapshot(ref m) if m.contains("cap")),
            "{err}"
        );
    }

    /// ISSUE 7: dense closure rows survive the tagged encoding, a
    /// sparse-only writer emits the legacy encoding, and either file
    /// restores under any representation policy with identical results.
    #[test]
    fn dense_and_sparse_rows_roundtrip_across_policies() {
        use rpq_graph::RowSetPolicy;
        let dense_cfg = EngineConfig {
            representation: RowSetPolicy::dense(),
            ..EngineConfig::default()
        };
        let sparse_cfg = EngineConfig {
            representation: RowSetPolicy::sparse(),
            ..EngineConfig::default()
        };
        let g = paper_graph();

        let dense_engine = Engine::with_config(&g, dense_cfg);
        let expected = dense_engine.evaluate_str("d.(b.c)+.c").unwrap();
        let bytes = snapshot_bytes(&dense_engine);
        let warm = read_snapshot(&bytes[..], sparse_cfg).unwrap();
        assert!(
            warm.cache().rtc_dense_rows() > 0,
            "dense rows must survive the roundtrip"
        );
        assert_eq!(warm.evaluate_str("d.(b.c)+.c").unwrap(), expected);
        assert_eq!(warm.cache().misses(), 0);

        let sparse_engine = Engine::with_config(&g, sparse_cfg);
        sparse_engine.evaluate_str("d.(b.c)+.c").unwrap();
        let bytes = snapshot_bytes(&sparse_engine);
        let warm = read_snapshot(&bytes[..], dense_cfg).unwrap();
        assert_eq!(
            warm.cache().rtc_dense_rows(),
            0,
            "sparse rows restore as written (the legacy on-disk form)"
        );
        assert_eq!(warm.evaluate_str("d.(b.c)+.c").unwrap(), expected);
        assert_eq!(warm.cache().misses(), 0);
    }

    /// Version-`2` snapshots persist each entry's cost-to-rebuild, so a
    /// warm restart restores the same eviction order the writer had.
    #[test]
    fn build_costs_survive_the_roundtrip() {
        use std::time::Duration;
        let engine = Engine::new_dynamic(paper_graph());
        let pairs = sample_pairs();
        for (key, nanos) in [("cheap", 1_000u64), ("mid", 20_000), ("dear", 30_000)] {
            engine.cache().insert_rtc_entry_costed(
                key.to_owned(),
                Arc::new(rpq_reduction::Rtc::from_pairs(&pairs)),
                Arc::clone(&pairs),
                None,
                engine.epoch(),
                Duration::from_nanos(nanos),
            );
        }
        let bytes = snapshot_bytes(&engine);

        // Restored into a tighter budget than the writer's, the costed
        // inserts trim deterministically: lowest score evicted first.
        let config = EngineConfig {
            cache_budget: crate::CacheBudget {
                max_entries: Some(2),
                ..crate::CacheBudget::default()
            },
            ..EngineConfig::default()
        };
        let warm = read_snapshot(&bytes[..], config).unwrap();
        assert_eq!(warm.cache().rtc_count(), 2);
        assert_eq!(warm.cache().occupancy_entries(), 2);
        assert!(warm.cache().contains_fresh_rtc("dear"));
        assert!(warm.cache().contains_fresh_rtc("mid"));
        assert!(!warm.cache().contains_fresh_rtc("cheap"));
        assert_eq!(warm.cache().eviction_counters().by_entries, 1);
    }

    /// A pinned epoch can hold a bounded cache past its budget; the
    /// snapshot trims to the highest-score subset that fits, so the file
    /// — and any restore of it — is under budget from the first byte.
    #[test]
    fn over_budget_saves_trim_highest_score_first() {
        use std::time::Duration;
        let config = EngineConfig {
            cache_budget: crate::CacheBudget {
                max_entries: Some(1),
                ..crate::CacheBudget::default()
            },
            ..EngineConfig::default()
        };
        let g = paper_graph();
        let engine = Engine::with_config(&g, config);
        let view = engine.pin(); // pins epoch 0: both entries below survive
        let pairs = sample_pairs();
        for (key, nanos) in [("cold", 1_000u64), ("hot", 9_000)] {
            engine.cache().insert_rtc_entry_costed(
                key.to_owned(),
                Arc::new(rpq_reduction::Rtc::from_pairs(&pairs)),
                Arc::clone(&pairs),
                None,
                engine.epoch(),
                Duration::from_nanos(nanos),
            );
        }
        assert_eq!(
            engine.cache().rtc_count(),
            2,
            "the pin must hold the live cache over budget"
        );

        let bytes = snapshot_bytes(&engine);
        drop(view);
        let warm = read_snapshot(&bytes[..], EngineConfig::default()).unwrap();
        assert_eq!(
            warm.cache().rtc_count(),
            1,
            "the file was trimmed to budget"
        );
        assert!(warm.cache().contains_fresh_rtc("hot"));
        assert!(!warm.cache().contains_fresh_rtc("cold"));
    }

    #[test]
    fn version_1_files_load_with_zero_build_cost() {
        // With an empty cache the v1 and v2 bodies are byte-identical
        // (the cost word is per-entry), so rewriting the version byte
        // forges a valid legacy file.
        let engine = Engine::new_dynamic(paper_graph());
        let mut bytes = snapshot_bytes(&engine);
        assert_eq!(bytes[7], b'2');
        bytes[7] = b'1';
        let warm = read_snapshot(&bytes[..], EngineConfig::default()).unwrap();
        assert_eq!(warm.cache().rtc_count(), 0);
        assert_eq!(warm.epoch(), 0);

        bytes[7] = b'3';
        let err = expect_err(read_snapshot(&bytes[..], EngineConfig::default()));
        assert!(
            matches!(err, EngineError::Snapshot(ref m) if m.contains("unsupported")),
            "{err}"
        );
    }

    fn sample_pairs() -> Arc<PairSet> {
        Arc::new(PairSet::from_sorted_unique(vec![
            (VertexId(1), VertexId(2)),
            (VertexId(2), VertexId(3)),
        ]))
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rpq_engine_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("engine.snap");
        let engine = Engine::new_dynamic(paper_graph());
        engine.evaluate_str("d.(b.c)+.c").unwrap();
        save_snapshot(&engine, &path).unwrap();
        let warm = load_snapshot(&path, EngineConfig::default()).unwrap();
        warm.evaluate_str("d.(b.c)+.c").unwrap();
        assert_eq!(warm.cache().misses(), 0);
        std::fs::remove_file(&path).ok();
    }
}
