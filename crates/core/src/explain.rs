//! Query-plan introspection (`EXPLAIN` for RPQs).
//!
//! Renders the exact plan Algorithm 1 will execute — the DNF clauses, each
//! clause's `Pre · R^(+|*) · Post` decomposition, the recursion into `Pre`,
//! and which closure bodies are shared — without evaluating anything.
//! The textual rendering mirrors the recursion trees of the paper's Fig. 7.

use crate::error::EngineError;
use rpq_regex::{decompose, to_dnf_with_limit, ClosureKind, Regex, DEFAULT_CLAUSE_LIMIT};
use rustc_hash::FxHashMap;
use std::fmt;

/// The plan for one query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryPlan {
    /// The (normalized) query text.
    pub query: String,
    /// One plan per DNF clause, in evaluation order.
    pub clauses: Vec<ClausePlan>,
}

/// The plan for one DNF clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClausePlan {
    /// Closure-free clause: evaluated by label-edge joins
    /// (`EvalRPQwithoutKC`). An empty label list is the `ε` clause.
    LabelJoin {
        /// The label sequence.
        labels: Vec<String>,
    },
    /// A batch unit `Pre · R^(+|*) · Post` (Algorithm 2).
    BatchUnit {
        /// The recursive plan for `Pre` (`None` when `Pre = ε`).
        pre: Option<Box<QueryPlan>>,
        /// Cache key of the closure body `R`.
        r_key: String,
        /// Plus or star.
        closure: ClosureKind,
        /// The closure-free postfix labels.
        post: Vec<String>,
    },
}

/// A plan for a multiple-RPQ set with sharing analysis.
#[derive(Clone, Debug)]
pub struct SetPlan {
    /// Per-query plans in evaluation order.
    pub queries: Vec<QueryPlan>,
    /// Closure bodies and how many batch units reference each (sorted by
    /// descending reference count, then key). Counts > 1 mean the RTC is
    /// computed once and shared.
    pub shared_bodies: Vec<(String, usize)>,
}

/// Explains one query with the default clause budget.
pub fn explain(query: &Regex) -> Result<QueryPlan, EngineError> {
    explain_with_limit(query, DEFAULT_CLAUSE_LIMIT)
}

/// Explains one query with an explicit clause budget.
pub fn explain_with_limit(query: &Regex, limit: usize) -> Result<QueryPlan, EngineError> {
    let clauses = to_dnf_with_limit(query, limit)?;
    let mut plans = Vec::with_capacity(clauses.len());
    for clause in &clauses {
        let unit = decompose(clause);
        let plan = match unit.closure {
            None => ClausePlan::LabelJoin { labels: unit.post },
            Some((r, kind)) => {
                let pre = if unit.pre == Regex::Epsilon {
                    None
                } else {
                    Some(Box::new(explain_with_limit(&unit.pre, limit)?))
                };
                ClausePlan::BatchUnit {
                    pre,
                    r_key: r.canonical_key(),
                    closure: kind,
                    post: unit.post,
                }
            }
        };
        plans.push(plan);
    }
    Ok(QueryPlan {
        query: query.to_string(),
        clauses: plans,
    })
}

/// Explains a query set and reports which closure bodies are shared.
pub fn explain_set(queries: &[Regex]) -> Result<SetPlan, EngineError> {
    explain_set_with_limit(queries, DEFAULT_CLAUSE_LIMIT)
}

/// Explains a query set with an explicit clause budget.
pub fn explain_set_with_limit(queries: &[Regex], limit: usize) -> Result<SetPlan, EngineError> {
    let mut plans = Vec::with_capacity(queries.len());
    let mut counts: FxHashMap<String, usize> = FxHashMap::default();
    for q in queries {
        let plan = explain_with_limit(q, limit)?;
        count_bodies(&plan, &mut counts);
        plans.push(plan);
    }
    let mut shared_bodies: Vec<(String, usize)> = counts.into_iter().collect();
    shared_bodies.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Ok(SetPlan {
        queries: plans,
        shared_bodies,
    })
}

fn count_bodies(plan: &QueryPlan, counts: &mut FxHashMap<String, usize>) {
    for clause in &plan.clauses {
        if let ClausePlan::BatchUnit { pre, r_key, .. } = clause {
            *counts.entry(r_key.clone()).or_insert(0) += 1;
            if let Some(pre) = pre {
                count_bodies(pre, counts);
            }
        }
    }
}

impl QueryPlan {
    /// Total number of batch units across the whole recursion.
    pub fn batch_unit_count(&self) -> usize {
        self.clauses
            .iter()
            .map(|c| match c {
                ClausePlan::LabelJoin { .. } => 0,
                ClausePlan::BatchUnit { pre, .. } => {
                    1 + pre.as_ref().map_or(0, |p| p.batch_unit_count())
                }
            })
            .sum()
    }

    fn render(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        out.push_str(&format!("{pad}query {}\n", self.query));
        for (i, clause) in self.clauses.iter().enumerate() {
            match clause {
                ClausePlan::LabelJoin { labels } => {
                    let seq = if labels.is_empty() {
                        "ε".to_string()
                    } else {
                        labels.join("·")
                    };
                    out.push_str(&format!("{pad}  clause {i}: label-join [{seq}]\n"));
                }
                ClausePlan::BatchUnit {
                    pre,
                    r_key,
                    closure,
                    post,
                } => {
                    let post_s = if post.is_empty() {
                        "ε".to_string()
                    } else {
                        post.join("·")
                    };
                    out.push_str(&format!(
                        "{pad}  clause {i}: batch-unit Pre·({r_key}){closure}·{post_s}\n"
                    ));
                    match pre {
                        None => out.push_str(&format!("{pad}    pre: ε\n")),
                        Some(p) => {
                            out.push_str(&format!("{pad}    pre:\n"));
                            p.render(indent + 3, out);
                        }
                    }
                }
            }
        }
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(0, &mut out);
        f.write_str(out.trim_end())
    }
}

impl fmt::Display for SetPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for plan in &self.queries {
            writeln!(f, "{plan}")?;
        }
        writeln!(f, "shared closure bodies:")?;
        for (key, count) in &self.shared_bodies {
            writeln!(f, "  {key}  x{count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(src: &str) -> QueryPlan {
        explain(&Regex::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn closure_free_query_is_label_join() {
        let p = plan("a.b.c");
        assert_eq!(p.clauses.len(), 1);
        assert_eq!(
            p.clauses[0],
            ClausePlan::LabelJoin {
                labels: vec!["a".into(), "b".into(), "c".into()]
            }
        );
        assert_eq!(p.batch_unit_count(), 0);
    }

    #[test]
    fn paper_query_plan_shape() {
        let p = plan("d.(b.c)+.c");
        assert_eq!(p.clauses.len(), 1);
        match &p.clauses[0] {
            ClausePlan::BatchUnit {
                pre,
                r_key,
                closure,
                post,
            } => {
                assert_eq!(r_key, "b.c");
                assert_eq!(*closure, ClosureKind::Plus);
                assert_eq!(post, &vec!["c".to_string()]);
                // Pre = d is itself a single label-join plan.
                let pre = pre.as_ref().unwrap();
                assert_eq!(pre.query, "d");
                assert_eq!(pre.batch_unit_count(), 0);
            }
            other => panic!("expected batch unit, got {other:?}"),
        }
        assert_eq!(p.batch_unit_count(), 1);
    }

    #[test]
    fn example7_nested_plan() {
        // (a·b)*·b+·(a·b+·c)+ — Fig. 7's right-hand recursion tree.
        let p = plan("(a.b)*.b+.(a.b+.c)+");
        assert_eq!(p.batch_unit_count(), 3); // outer, b+, (a.b)*
        match &p.clauses[0] {
            ClausePlan::BatchUnit { pre, r_key, .. } => {
                assert_eq!(r_key, "a.b+.c");
                let pre = pre.as_ref().unwrap();
                assert_eq!(pre.query, "(a.b)*.b+");
                match &pre.clauses[0] {
                    ClausePlan::BatchUnit {
                        pre: pre2, r_key, ..
                    } => {
                        assert_eq!(r_key, "b");
                        let pre2 = pre2.as_ref().unwrap();
                        assert_eq!(pre2.query, "(a.b)*");
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alternation_produces_multiple_clauses() {
        let p = plan("a|b+.c");
        assert_eq!(p.clauses.len(), 2);
        assert!(matches!(p.clauses[0], ClausePlan::LabelJoin { .. }));
        assert!(matches!(p.clauses[1], ClausePlan::BatchUnit { .. }));
    }

    #[test]
    fn set_plan_counts_shared_bodies() {
        let queries = [
            Regex::parse("a.(b.c)+.d").unwrap(),
            Regex::parse("d.(b.c)+").unwrap(),
            Regex::parse("(b.c)*").unwrap(),
            Regex::parse("x+.y").unwrap(),
        ];
        let sp = explain_set(&queries).unwrap();
        assert_eq!(sp.queries.len(), 4);
        // b.c referenced by 3 batch units; x by 1.
        assert_eq!(sp.shared_bodies[0], ("b.c".to_string(), 3));
        assert!(sp.shared_bodies.contains(&("x".to_string(), 1)));
    }

    #[test]
    fn nested_bodies_are_counted() {
        // (a.b+.c)+ references both a·b+·c and (inside its Pre recursion
        // when evaluated) b — explain counts the bodies visible in the
        // plan tree: the outer body only, since R's own evaluation is not
        // part of the clause plan.
        let sp = explain_set(&[Regex::parse("(a.b+.c)+").unwrap()]).unwrap();
        assert_eq!(sp.shared_bodies[0].0, "a.b+.c");
    }

    #[test]
    fn display_renders_tree() {
        let p = plan("d.(b.c)+.c");
        let text = p.to_string();
        assert!(text.contains("query d.(b.c)+.c"), "{text}");
        assert!(text.contains("batch-unit"), "{text}");
        assert!(text.contains("(b.c)+"), "{text}");
        let sp = explain_set(&[Regex::parse("d.(b.c)+.c").unwrap()]).unwrap();
        let text = sp.to_string();
        assert!(text.contains("shared closure bodies:"), "{text}");
        assert!(text.contains("b.c  x1"), "{text}");
    }

    #[test]
    fn epsilon_clause_plan() {
        let p = plan("a?");
        assert_eq!(p.clauses.len(), 2);
        assert_eq!(p.clauses[1], ClausePlan::LabelJoin { labels: vec![] });
    }

    #[test]
    fn explain_respects_clause_limit() {
        let big = Regex::parse("(a|b).(a|b).(a|b)").unwrap();
        assert!(explain_with_limit(&big, 4).is_err());
        assert!(explain_with_limit(&big, 8).is_ok());
    }
}
