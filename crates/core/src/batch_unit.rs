//! Batch-unit evaluation: Algorithm 2 and the FullSharing-style join.
//!
//! A batch unit is `Pre·R⁺·Post` or `Pre·R*·Post` (Post closure-free). Its
//! result is the join pipeline of Theorem 2 / Eq. (6)–(10):
//!
//! ```text
//! Pre_G ⋈ SCC ⋈ TC(Ḡ_R) ⋈ SCC ⋈ Post_G
//! ```
//!
//! [`eval_batch_unit_rtc`] implements the optimized Algorithm 2:
//!
//! * **useless-1** — the closure is only expanded from `Pre_G` end vertices
//!   (and those outside `V_R` fail the SCC join immediately);
//! * **redundant-1** — Eq. (7)'s intermediate `(v_i, s_j)` pairs are
//!   deduplicated, so several `Pre_G` tuples landing in one SCC expand once;
//! * **redundant-2** — Eq. (8)'s `(v_i, s_k)` pairs are deduplicated, so
//!   SCCs reachable along several branches expand once;
//! * **useless-2** — Eq. (9)'s member expansion inserts *without duplicate
//!   checks*: SCC member sets are disjoint, so no duplicates can arise.
//!
//! The per-`v_i` dedup of (7)/(8) uses epoch-stamped scratch arrays over
//! SCC ids instead of hash sets of pairs — semantically identical to
//! `ResEq7`/`ResEq8` membership, with O(1) clears between groups.
//!
//! [`eval_batch_unit_full`] is the baseline join over the materialized
//! `R⁺_G`: every successor insert pays a duplicate check, which is exactly
//! the redundant work the paper attributes to FullSharing.

use crate::breakdown::EliminationStats;
use crate::pre_relation::PreRelation;
use rpq_eval::label_seq::eval_label_sequence_from;
use rpq_graph::{EpochVisited, LabelId, LabeledMultigraph, PairSet, SccId, VertexId};
use rpq_reduction::{FullTc, Rtc};
use rpq_regex::ClosureKind;
use rustc_hash::FxHashMap;
use std::time::{Duration, Instant};

/// Result of a batch-unit evaluation with its stage timings.
#[derive(Debug)]
pub struct BatchUnitResult {
    /// `(Pre·R^(+|*)·Post)_G`.
    pub result: PairSet,
    /// Time spent in the `Pre_G ⋈ R⁺_G` part (Algorithm 2 lines 4–12).
    pub pre_join: Duration,
    /// Time spent in the Post stage (lines 13–16).
    pub post: Duration,
}

/// Algorithm 2: optimized batch-unit evaluation over the RTC.
pub fn eval_batch_unit_rtc(
    graph: &LabeledMultigraph,
    pre: &PreRelation,
    rtc: &Rtc,
    kind: ClosureKind,
    post: &[String],
    stats: &mut EliminationStats,
) -> BatchUnitResult {
    let t0 = Instant::now();
    // ResEq9 is a plain vector: the expansion below never produces
    // duplicates (useless-2), and the star seed is guarded explicitly.
    let mut res9: Vec<(VertexId, VertexId)> = Vec::new();
    let mut stamp7 = EpochVisited::new(rtc.scc_count());
    let mut stamp8 = EpochVisited::new(rtc.scc_count());

    pre.for_each_group(|vi, ends| {
        stamp7.clear();
        stamp8.clear();
        if kind == ClosureKind::Star {
            // Initialization for Pre·R*·Post (Algorithm 2 lines 2–3).
            res9.extend(ends.iter().map(|vj| (vi, vj)));
        }
        for vj in ends.iter() {
            // (7): find the SCC containing vj. Tuples whose end vertex is
            // outside V_R never reach the closure — useless-1 elimination.
            let Some(sj) = rtc.scc_of_original(vj) else {
                stats.useless1_skipped += 1;
                continue;
            };
            // Duplicate check for (7) — redundant-1 elimination.
            if !stamp7.insert(sj.raw()) {
                stats.redundant1_skipped += 1;
                continue;
            }
            // (8): SCCs reachable from sj in TC(Ḡ_R).
            for sk in rtc.successors(sj).iter() {
                // Duplicate check for (8) — redundant-2 elimination.
                if !stamp8.insert(sk) {
                    stats.redundant2_skipped += 1;
                    continue;
                }
                // (9): expand members of sk with NO duplicate checks —
                // useless-2 elimination (SCC member sets are disjoint).
                for vk in rtc.members_original(SccId(sk)) {
                    if kind == ClosureKind::Star && ends.contains(vk) {
                        // Already present from the star seed.
                        continue;
                    }
                    res9.push((vi, vk));
                    stats.useless2_unchecked_inserts += 1;
                }
            }
        }
    });
    let pre_join = t0.elapsed();

    let t1 = Instant::now();
    let result = apply_post(graph, res9, post);
    let post_time = t1.elapsed();

    BatchUnitResult {
        result,
        pre_join,
        post: post_time,
    }
}

/// FullSharing-style batch-unit evaluation over the materialized `R⁺_G`.
///
/// Joins `Pre_G` directly with the per-source closure rows; every insert
/// into the intermediate result pays a duplicate check (the redundant-1/-2
/// operations Algorithm 2 eliminates), counted in
/// [`EliminationStats::full_duplicate_hits`].
pub fn eval_batch_unit_full(
    graph: &LabeledMultigraph,
    pre: &PreRelation,
    full: &FullTc,
    kind: ClosureKind,
    post: &[String],
    stats: &mut EliminationStats,
) -> BatchUnitResult {
    let t0 = Instant::now();
    let mut res9: rustc_hash::FxHashSet<(VertexId, VertexId)> = rustc_hash::FxHashSet::default();
    pre.for_each_group(|vi, ends| {
        if kind == ClosureKind::Star {
            res9.extend(ends.iter().map(|vj| (vi, vj)));
        }
        for vj in ends.iter() {
            for vk in full.successors_original(vj) {
                // Duplicate check on every insert — the redundant work.
                if !res9.insert((vi, vk)) {
                    stats.full_duplicate_hits += 1;
                }
            }
        }
    });
    let res9: Vec<(VertexId, VertexId)> = res9.into_iter().collect();
    let pre_join = t0.elapsed();

    let t1 = Instant::now();
    let result = apply_post(graph, res9, post);
    let post_time = t1.elapsed();

    BatchUnitResult {
        result,
        pre_join,
        post: post_time,
    }
}

/// Lines 13–16: extend `(Pre·R^(+|*))_G` with the closure-free `Post`.
///
/// `EvalRestrictedRPQ(Post, v_k)` results are memoized per distinct `v_k`;
/// all strategies use this same machinery, preserving the paper's
/// "Remainder is largely identical" comparison.
fn apply_post(
    graph: &LabeledMultigraph,
    res9: Vec<(VertexId, VertexId)>,
    post: &[String],
) -> PairSet {
    if post.is_empty() {
        return PairSet::from_pairs(res9);
    }
    let mut label_ids: Vec<LabelId> = Vec::with_capacity(post.len());
    for name in post {
        match graph.labels().get(name) {
            Some(id) => label_ids.push(id),
            // A label absent from the alphabet matches no edge.
            None => return PairSet::new(),
        }
    }
    let mut memo: FxHashMap<VertexId, Vec<VertexId>> = FxHashMap::default();
    let mut out: Vec<(VertexId, VertexId)> = Vec::new();
    for (vi, vk) in res9 {
        let ends = memo
            .entry(vk)
            .or_insert_with(|| eval_label_sequence_from(graph, &label_ids, vk));
        out.extend(ends.iter().map(|&vl| (vi, vl)));
    }
    PairSet::from_pairs(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_eval::ProductEvaluator;
    use rpq_graph::fixtures::paper_graph;
    use rpq_regex::Regex;

    /// Builds (Pre_G, Rtc, FullTc) for the paper's running batch unit
    /// d·(b·c)+·c: Pre = d, R = b·c, Post = [c].
    fn setup() -> (LabeledMultigraph, PairSet, Rtc, FullTc) {
        let g = paper_graph();
        let pre_g = ProductEvaluator::new(&g, &Regex::parse("d").unwrap()).evaluate();
        let r_g = ProductEvaluator::new(&g, &Regex::parse("b.c").unwrap()).evaluate();
        let rtc = Rtc::from_pairs(&r_g);
        let full = FullTc::from_pairs(&r_g);
        (g, pre_g, rtc, full)
    }

    fn pairs(ps: &PairSet) -> Vec<(u32, u32)> {
        ps.iter().map(|(a, b)| (a.raw(), b.raw())).collect()
    }

    #[test]
    fn example1_via_rtc_batch_unit() {
        let (g, pre_g, rtc, _) = setup();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_rtc(
            &g,
            &PreRelation::from(pre_g),
            &rtc,
            ClosureKind::Plus,
            &["c".into()],
            &mut stats,
        );
        assert_eq!(pairs(&out.result), vec![(7, 3), (7, 5)]);
    }

    #[test]
    fn example1_via_full_batch_unit() {
        let (g, pre_g, _, full) = setup();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_full(
            &g,
            &PreRelation::from(pre_g),
            &full,
            ClosureKind::Plus,
            &["c".into()],
            &mut stats,
        );
        assert_eq!(pairs(&out.result), vec![(7, 3), (7, 5)]);
    }

    #[test]
    fn star_batch_unit_includes_pre_pairs() {
        // d·(b·c)*·c = d·(b·c)+·c ∪ d·c; from v7: d reaches v4, c from v4
        // goes nowhere, so the star adds nothing here...
        let (g, pre_g, rtc, full) = setup();
        let mut stats = EliminationStats::default();
        let star_rtc = eval_batch_unit_rtc(
            &g,
            &PreRelation::from(pre_g.clone()),
            &rtc,
            ClosureKind::Star,
            &["c".into()],
            &mut stats,
        );
        let star_full = eval_batch_unit_full(
            &g,
            &PreRelation::from(pre_g),
            &full,
            ClosureKind::Star,
            &["c".into()],
            &mut stats,
        );
        assert_eq!(star_rtc.result, star_full.result);
        // ...and must match the product evaluator on the whole query.
        let expect = ProductEvaluator::new(&g, &Regex::parse("d.(b.c)*.c").unwrap()).evaluate();
        assert_eq!(star_rtc.result, expect);
    }

    #[test]
    fn star_with_empty_post_keeps_pre() {
        let (g, pre_g, rtc, _) = setup();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_rtc(
            &g,
            &PreRelation::from(pre_g.clone()),
            &rtc,
            ClosureKind::Star,
            &[],
            &mut stats,
        );
        // d·(b·c)* ⊇ d_G.
        for (a, b) in pre_g.iter() {
            assert!(out.result.contains(a, b));
        }
        let expect = ProductEvaluator::new(&g, &Regex::parse("d.(b.c)*").unwrap()).evaluate();
        assert_eq!(out.result, expect);
    }

    #[test]
    fn identity_pre_expands_whole_closure() {
        // Pre = ε: the batch unit is exactly R⁺, so the result must equal
        // Theorem 1's expansion.
        let (g, _, rtc, _) = setup();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_rtc(
            &g,
            &PreRelation::Identity(g.vertex_count()),
            &rtc,
            ClosureKind::Plus,
            &[],
            &mut stats,
        );
        assert_eq!(out.result, rtc.expand());
        // Vertices outside V_R were skipped as useless-1.
        assert_eq!(stats.useless1_skipped, 5); // v0, v1, v7, v8, v9
    }

    #[test]
    fn useless1_counted_for_off_path_pre_ends() {
        let (g, _, rtc, _) = setup();
        // Pre_G with end vertices off every b·c path.
        let pre: PairSet = [(7u32, 8u32), (7, 9)].into_iter().collect();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_rtc(
            &g,
            &PreRelation::from(pre),
            &rtc,
            ClosureKind::Plus,
            &[],
            &mut stats,
        );
        assert!(out.result.is_empty());
        assert_eq!(stats.useless1_skipped, 2);
        assert_eq!(stats.useless2_unchecked_inserts, 0);
    }

    #[test]
    fn redundant1_deduplicates_same_scc_ends() {
        let (g, _, rtc, _) = setup();
        // Two Pre tuples from the same start into the same SCC {v2, v4}.
        let pre: PairSet = [(0u32, 2u32), (0, 4)].into_iter().collect();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_rtc(
            &g,
            &PreRelation::from(pre),
            &rtc,
            ClosureKind::Plus,
            &[],
            &mut stats,
        );
        // Expansion ran once; the second tuple was redundant-1.
        assert_eq!(stats.redundant1_skipped, 1);
        // (0, x) for x ∈ members(TC successors of s{2,4}) = {2,4,6}.
        assert_eq!(pairs(&out.result), vec![(0, 2), (0, 4), (0, 6)]);
    }

    #[test]
    fn redundant2_deduplicates_shared_successor_sccs() {
        // Build a shape where two different SCCs reach a common third SCC:
        // R_G = {(0,1),(1,0)} ∪ {(2,3),(3,2)} ∪ {(1,4),(3,4)}.
        let mut gb = rpq_graph::GraphBuilder::new();
        gb.add_edge(9, "p", 0).add_edge(9, "p", 2); // Pre edges
        gb.ensure_vertices(10);
        let g = gb.build();
        let r_g: PairSet = [(0u32, 1u32), (1, 0), (2, 3), (3, 2), (1, 4), (3, 4)]
            .into_iter()
            .collect();
        let rtc = Rtc::from_pairs(&r_g);
        let pre: PairSet = [(9u32, 0u32), (9, 2)].into_iter().collect();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_rtc(
            &g,
            &PreRelation::from(pre),
            &rtc,
            ClosureKind::Plus,
            &[],
            &mut stats,
        );
        // {4} is reachable from both cycles but expanded once for v9.
        assert_eq!(stats.redundant2_skipped, 1);
        assert_eq!(
            pairs(&out.result),
            vec![(9, 0), (9, 1), (9, 2), (9, 3), (9, 4)]
        );
    }

    #[test]
    fn full_sharing_incurs_duplicate_hits_where_rtc_does_not() {
        let (_, _, _, _) = setup();
        // Same redundant-2 shape as above, measured on the Full side.
        let mut gb = rpq_graph::GraphBuilder::new();
        gb.add_edge(9, "p", 0).add_edge(9, "p", 2);
        gb.ensure_vertices(10);
        let g = gb.build();
        let r_g: PairSet = [(0u32, 1u32), (1, 0), (2, 3), (3, 2), (1, 4), (3, 4)]
            .into_iter()
            .collect();
        let full = FullTc::from_pairs(&r_g);
        let pre: PairSet = [(9u32, 0u32), (9, 2)].into_iter().collect();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_full(
            &g,
            &PreRelation::from(pre),
            &full,
            ClosureKind::Plus,
            &[],
            &mut stats,
        );
        assert_eq!(
            pairs(&out.result),
            vec![(9, 0), (9, 1), (9, 2), (9, 3), (9, 4)]
        );
        // (9,4) is produced by both branches: one duplicate hit.
        assert_eq!(stats.full_duplicate_hits, 1);
    }

    #[test]
    fn res9_is_duplicate_free_even_for_star() {
        // Star seed overlapping with expansion: Pre_G = (2,2) (self pair on
        // a closure vertex) — (2,2) is both seeded and in the expansion.
        let (g, _, rtc, _) = setup();
        let pre: PairSet = [(2u32, 2u32)].into_iter().collect();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_rtc(
            &g,
            &PreRelation::from(pre),
            &rtc,
            ClosureKind::Star,
            &[],
            &mut stats,
        );
        // (2,2) appears once; expansion adds (2,4) and (2,6).
        assert_eq!(pairs(&out.result), vec![(2, 2), (2, 4), (2, 6)]);
        // Inserts skipped the seeded pair: 2 unchecked inserts, not 3.
        assert_eq!(stats.useless2_unchecked_inserts, 2);
    }

    #[test]
    fn unknown_post_label_empties_result() {
        let (g, pre_g, rtc, _) = setup();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_rtc(
            &g,
            &PreRelation::from(pre_g),
            &rtc,
            ClosureKind::Plus,
            &["nope".into()],
            &mut stats,
        );
        assert!(out.result.is_empty());
    }

    #[test]
    fn multi_label_post_sequence() {
        let (g, pre_g, rtc, _) = setup();
        let mut stats = EliminationStats::default();
        // d·(b·c)+·c·c — wait, c·c from v2: c→v5, c from v5→{v4,v6}.
        let out = eval_batch_unit_rtc(
            &g,
            &PreRelation::from(pre_g),
            &rtc,
            ClosureKind::Plus,
            &["c".into(), "c".into()],
            &mut stats,
        );
        let expect = ProductEvaluator::new(&g, &Regex::parse("d.(b.c)+.c.c").unwrap()).evaluate();
        assert_eq!(out.result, expect);
    }

    #[test]
    fn empty_pre_relation_gives_empty_result() {
        let (g, _, rtc, _) = setup();
        let mut stats = EliminationStats::default();
        let out = eval_batch_unit_rtc(
            &g,
            &PreRelation::from(PairSet::new()),
            &rtc,
            ClosureKind::Plus,
            &[],
            &mut stats,
        );
        assert!(out.result.is_empty());
    }
}
