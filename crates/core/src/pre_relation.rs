//! The `Pre_G` relation, with a symbolic identity representation.
//!
//! When a batch unit has `Pre = ε` (the clause starts with its closure),
//! `Pre_G` is the identity relation over *all* graph vertices. Materializing
//! `|V|` self-pairs just to immediately join them away would be wasteful, so
//! [`PreRelation::Identity`] keeps it symbolic; the batch-unit evaluators
//! iterate it lazily.

use rpq_graph::{Ends, PairSet, VertexId};

/// `Pre_G`: either the symbolic identity over `0..n` or a concrete pair set.
#[derive(Clone, Debug)]
pub enum PreRelation {
    /// `{(v, v) | v ∈ 0..n}` — the result of `ε` over an `n`-vertex graph.
    Identity(usize),
    /// A materialized relation.
    Pairs(PairSet),
}

impl PreRelation {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        match self {
            PreRelation::Identity(n) => *n,
            PreRelation::Pairs(p) => p.len(),
        }
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `(start, end)` is in the relation.
    pub fn contains(&self, start: VertexId, end: VertexId) -> bool {
        match self {
            PreRelation::Identity(n) => start == end && start.index() < *n,
            PreRelation::Pairs(p) => p.contains(start, end),
        }
    }

    /// Iterates over `(start, ends)` runs in ascending start order — the
    /// shape the batch-unit evaluator consumes (per-start scratch resets).
    /// The identity relation yields each vertex as an [`Ends::Single`]
    /// without materializing self-pairs.
    pub fn for_each_group<F: FnMut(VertexId, Ends<'_>)>(&self, mut f: F) {
        match self {
            PreRelation::Identity(n) => {
                for v in 0..*n as u32 {
                    let v = VertexId(v);
                    f(v, Ends::Single(v));
                }
            }
            PreRelation::Pairs(p) => {
                for (start, ends) in p.groups() {
                    f(start, ends);
                }
            }
        }
    }

    /// Materializes into a [`PairSet`].
    pub fn to_pairset(&self) -> PairSet {
        match self {
            PreRelation::Identity(n) => PairSet::identity(*n),
            PreRelation::Pairs(p) => p.clone(),
        }
    }
}

impl From<PairSet> for PreRelation {
    fn from(p: PairSet) -> Self {
        PreRelation::Pairs(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_semantics() {
        let r = PreRelation::Identity(3);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(r.contains(VertexId(2), VertexId(2)));
        assert!(!r.contains(VertexId(2), VertexId(1)));
        assert!(!r.contains(VertexId(3), VertexId(3))); // out of range
        assert_eq!(r.to_pairset(), PairSet::identity(3));
    }

    #[test]
    fn identity_groups() {
        let r = PreRelation::Identity(2);
        let mut seen = Vec::new();
        r.for_each_group(|v, g| {
            assert_eq!(g.len(), 1);
            seen.push(v.raw());
        });
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn pairs_groups() {
        let p: PairSet = [(1u32, 2u32), (1, 3), (4, 0)].into_iter().collect();
        let r = PreRelation::from(p.clone());
        assert_eq!(r.len(), 3);
        let mut groups = Vec::new();
        r.for_each_group(|v, g| groups.push((v.raw(), g.len())));
        assert_eq!(groups, vec![(1, 2), (4, 1)]);
        assert_eq!(r.to_pairset(), p);
    }

    #[test]
    fn empty_identity() {
        let r = PreRelation::Identity(0);
        assert!(r.is_empty());
        let mut count = 0;
        r.for_each_group(|_, _| count += 1);
        assert_eq!(count, 0);
    }
}
