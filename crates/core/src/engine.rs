//! The [`Engine`] facade: one graph, one strategy, shared caches, timings.

use crate::breakdown::{Breakdown, EliminationStats, MaintenanceMetrics};
use crate::cache::{CacheBudget, SharedCache};
use crate::error::EngineError;
use crate::result_cache::ResultCache;
use crate::sharing::{eval_query, EvalCtx, SharingKind};
use crate::view::EpochView;
use rpq_eval::ProductEvaluator;
use rpq_graph::{
    DeltaSummary, GraphDelta, GraphView, LabeledMultigraph, PairSet, RowSetPolicy, VersionedGraph,
};
use rpq_reduction::MaintenanceConfig;
use rpq_regex::{Regex, DEFAULT_CLAUSE_LIMIT};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Multiple-RPQ evaluation strategy (the comparison set of Section V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Evaluate each query independently with the automaton-based method of
    /// Yakovets et al. \[5\]; share nothing.
    NoSharing,
    /// Share the materialized `R⁺_G` among queries (Abul-Basher \[8\]).
    FullSharing,
    /// Share the reduced transitive closure (this paper).
    RtcSharing,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [
        Strategy::NoSharing,
        Strategy::FullSharing,
        Strategy::RtcSharing,
    ];

    /// The short name used in the paper's figures.
    pub fn short_name(&self) -> &'static str {
        match self {
            Strategy::NoSharing => "No",
            Strategy::FullSharing => "Full",
            Strategy::RtcSharing => "RTC",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Strategy::NoSharing => "NoSharing",
            Strategy::FullSharing => "FullSharing",
            Strategy::RtcSharing => "RTCSharing",
        })
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Evaluation strategy.
    pub strategy: Strategy,
    /// DNF clause budget (guards against exponential blow-up).
    pub dnf_clause_limit: usize,
    /// Enable the Theorem-2 fast path: a bare closure batch unit
    /// (`Pre = ε`, `Post = ε`) is answered by direct RTC expansion instead
    /// of running the general Algorithm 2 join. Results are identical
    /// (property-tested); disable to benchmark the general path.
    pub enable_fast_paths: bool,
    /// Worker threads for the parallel paths: `1` (the default) keeps
    /// everything sequential, `0` uses every available core, `N > 1`
    /// spawns up to `N` scoped workers. Affects
    /// [`Engine::evaluate_set`]'s batch fan-out and the parallel
    /// shared-structure construction/expansion inside each evaluation.
    /// Results are identical at any thread count (property-tested).
    pub threads: usize,
    /// Tuning for incremental maintenance of stale shared structures
    /// after [`Engine::apply_delta`]. Results are identical at any
    /// setting (property-tested); only the refresh cost profile changes.
    pub maintenance: MaintenanceConfig,
    /// How closure tables back their rows: adaptive dense/sparse hybrid
    /// (the default), or forced to one representation. Results are
    /// identical under every mode (property-tested); only memory and
    /// set-operation cost change. The default honours the `RPQ_REPR`
    /// environment variable (`sparse` | `dense` | `adaptive`) so CI can
    /// run the whole suite under a forced representation.
    pub representation: RowSetPolicy,
    /// Retention budget enforced by both caches: the structural
    /// [`SharedCache`] (bytes, entries and a TTL sweep) and the
    /// [`ResultCache`] (bytes on top of its entry capacity). Unbounded by
    /// default; the default honours the `RPQ_CACHE_BUDGET` environment
    /// variable (e.g. `64k` or `bytes=1m,entries=128,ttl=4`) so CI can
    /// run the whole suite under eviction pressure. Results are identical
    /// under any budget — eviction only trades memory for rebuild time.
    pub cache_budget: CacheBudget,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::RtcSharing,
            dnf_clause_limit: DEFAULT_CLAUSE_LIMIT,
            enable_fast_paths: true,
            threads: 1,
            maintenance: MaintenanceConfig::default(),
            representation: RowSetPolicy::from_env_or_default(),
            cache_budget: CacheBudget::from_env_or_default(),
        }
    }
}

/// Outcome of [`Engine::prepare`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrepareReport {
    /// Closure bodies whose shared structure was computed by this call.
    pub bodies_computed: usize,
    /// Bodies that were already cached.
    pub bodies_reused: usize,
    /// Total shared pairs held after preparation.
    pub shared_pairs: usize,
}

/// An RPQ evaluation engine bound to a graph.
///
/// The engine owns the shared-structure cache, so evaluating several
/// queries through one engine gets the amortization the paper measures in
/// Experiment 2 (Figs. 14–15). [`Engine::breakdown`] exposes the
/// three-part timing split of Figs. 11/15 and
/// [`Engine::elimination_stats`] the operation counters behind Section IV-B.
///
/// ## Concurrency
///
/// The whole query path takes `&self`: [`Engine::evaluate`],
/// [`Engine::evaluate_set`], [`Engine::prepare`], the selective APIs and
/// every metric accessor. The cache interior is sharded and
/// lock-protected with atomic counters ([`SharedCache`]) and the metric
/// accumulators sit behind a private mutex, so any number of threads can
/// evaluate against one shared `&Engine` simultaneously — this is what
/// the serving front-end's read-write-locked sessions rely on. Only the
/// operations that change what the engine *is* need `&mut self`: graph
/// mutation ([`Engine::apply_delta`]) and configuration changes
/// ([`Engine::set_strategy`], [`Engine::set_threads`]). Per-call
/// configuration overrides that must not touch shared state go through
/// [`Engine::evaluate_with`] / [`Engine::prepare_with`] instead.
///
/// ```
/// use rpq_core::{Engine, Strategy};
/// use rpq_graph::fixtures::paper_graph;
/// use rpq_regex::Regex;
///
/// let g = paper_graph();
/// let engine = Engine::new(&g);
/// let result = engine.evaluate(&Regex::parse("d.(b.c)+.c").unwrap()).unwrap();
/// assert_eq!(result.len(), 2);
/// ```
pub struct Engine<'g> {
    store: GraphStore<'g>,
    config: EngineConfig,
    /// `Arc`'d so pinned [`EpochView`]s share the same structural cache
    /// (and its counters) with the engine and with each other.
    cache: Arc<SharedCache>,
    metrics: Arc<Mutex<EngineMetrics>>,
    /// Per-(epoch, query) materialized results served by pinned views.
    results: Arc<ResultCache>,
}

/// The engine's metric accumulators, grouped so the query path can merge
/// a whole evaluation's worth under one short lock acquisition.
#[derive(Clone, Copy, Default)]
pub(crate) struct EngineMetrics {
    pub(crate) breakdown: Breakdown,
    pub(crate) stats: EliminationStats,
    pub(crate) maintenance: MaintenanceMetrics,
}

/// How the engine holds its graph: borrowed (the classic static setup) or
/// owned and versioned (the dynamic setup, where deltas can be applied).
enum GraphStore<'g> {
    Borrowed(&'g LabeledMultigraph),
    Owned(Box<VersionedGraph>),
}

impl<'g> Engine<'g> {
    /// An engine with the default configuration (RTCSharing).
    pub fn new(graph: &'g LabeledMultigraph) -> Self {
        Self::with_config(graph, EngineConfig::default())
    }

    /// An engine with the given strategy and default limits.
    pub fn with_strategy(graph: &'g LabeledMultigraph, strategy: Strategy) -> Self {
        Self::with_config(
            graph,
            EngineConfig {
                strategy,
                ..EngineConfig::default()
            },
        )
    }

    /// An engine with an explicit configuration.
    pub fn with_config(graph: &'g LabeledMultigraph, config: EngineConfig) -> Self {
        Self::from_store(GraphStore::Borrowed(graph), config)
    }

    /// An engine that **owns** its graph, ready for [`Engine::apply_delta`]
    /// without the one-time copy a borrowed engine pays on its first delta.
    pub fn new_dynamic(graph: LabeledMultigraph) -> Engine<'static> {
        Engine::from_versioned(VersionedGraph::new(graph))
    }

    /// An engine over an existing versioned graph (the cache starts at the
    /// graph's current epoch).
    pub fn from_versioned(graph: VersionedGraph) -> Engine<'static> {
        Engine::with_config_versioned(graph, EngineConfig::default())
    }

    /// [`Engine::from_versioned`] with an explicit configuration.
    pub fn with_config_versioned(graph: VersionedGraph, config: EngineConfig) -> Engine<'static> {
        let epoch = graph.epoch();
        let engine = Engine::from_store(GraphStore::Owned(Box::new(graph)), config);
        engine.cache.advance_epoch(epoch);
        engine
    }

    fn from_store(store: GraphStore<'g>, config: EngineConfig) -> Self {
        Self {
            store,
            config,
            cache: Arc::new(SharedCache::with_budget(config.cache_budget)),
            metrics: Arc::new(Mutex::new(EngineMetrics::default())),
            results: Arc::new(ResultCache::with_capacity_and_budget(
                crate::result_cache::DEFAULT_RESULT_CACHE_ENTRIES,
                config.cache_budget.max_bytes,
            )),
        }
    }

    /// Locks the metric accumulators, clearing poisoning: the accumulators
    /// are plain counters/durations, consistent after any panic.
    fn metrics(&self) -> std::sync::MutexGuard<'_, EngineMetrics> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Folds one evaluation's locally-accumulated metrics into the shared
    /// accumulators under a single short lock acquisition.
    fn merge_metrics(&self, local: EngineMetrics) {
        let mut m = self.metrics();
        m.breakdown += local.breakdown;
        m.stats += local.stats;
        m.maintenance += local.maintenance;
    }

    /// The underlying graph (the current snapshot, for a dynamic engine).
    pub fn graph(&self) -> &LabeledMultigraph {
        match &self.store {
            GraphStore::Borrowed(g) => g,
            GraphStore::Owned(vg) => vg.graph(),
        }
    }

    /// The graph epoch this engine serves: 0 for a borrowed (static)
    /// graph, the versioned graph's epoch otherwise.
    pub fn epoch(&self) -> u64 {
        match &self.store {
            GraphStore::Borrowed(_) => 0,
            GraphStore::Owned(vg) => vg.epoch(),
        }
    }

    /// Applies a mutation batch to the graph and advances the epoch, so
    /// cached shared structures become stale and refresh — incrementally
    /// where the damage is contained — on their next use.
    ///
    /// A borrowed engine upgrades to an owned graph on its first delta by
    /// cloning the borrowed snapshot once (the borrowed graph itself is
    /// never mutated); construct with [`Engine::new_dynamic`] to avoid
    /// that copy.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> DeltaSummary {
        let borrowed: Option<&'g LabeledMultigraph> = match &self.store {
            GraphStore::Borrowed(g) => Some(g),
            GraphStore::Owned(_) => None,
        };
        if let Some(g) = borrowed {
            self.store = GraphStore::Owned(Box::new(VersionedGraph::new(g.clone())));
        }
        let GraphStore::Owned(vg) = &mut self.store else {
            unreachable!("store was just upgraded to owned");
        };
        let summary = vg.apply(delta);
        self.cache.advance_epoch(summary.epoch);
        self.metrics().maintenance.deltas_applied += 1;
        summary
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Switches the evaluation strategy of a *live* engine — the serving
    /// front-end's `strategy` command. Cached structures survive: the RTC
    /// and full-closure namespaces are independent, so flipping between
    /// [`Strategy::RtcSharing`] and [`Strategy::FullSharing`] re-uses
    /// whatever the other strategy already paid for on its next visit
    /// back, and [`Strategy::NoSharing`] simply bypasses the cache.
    pub fn set_strategy(&mut self, strategy: Strategy) {
        self.config.strategy = strategy;
    }

    /// Sets the worker-thread count of a live engine (see
    /// [`EngineConfig::threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
    }

    /// Evaluates one query, sharing structures with previous evaluations.
    pub fn evaluate(&self, query: &Regex) -> Result<PairSet, EngineError> {
        self.evaluate_with(query, self.config)
    }

    /// [`Engine::evaluate`] under an explicit configuration, without
    /// touching the engine's own. This is the per-connection overlay
    /// entry point of the serving layer: N clients resolve their own
    /// strategy/thread settings and evaluate concurrently against one
    /// engine (and one shared cache) under plain `&self`.
    ///
    /// The configuration only shapes *how* this evaluation runs (strategy,
    /// thread fan-out, clause budget); results are identical across
    /// strategies and thread counts (property-tested), so overlays can
    /// never leak observable state between connections.
    pub fn evaluate_with(
        &self,
        query: &Regex,
        config: EngineConfig,
    ) -> Result<PairSet, EngineError> {
        let t = Instant::now();
        let graph = self.graph();
        let mut local = EngineMetrics::default();
        let result = eval_one(graph, &config, &self.cache, self.epoch(), &mut local, query);
        local.breakdown.total = t.elapsed();
        self.merge_metrics(local);
        result
    }

    /// Pins the engine's current state as an immutable [`EpochView`].
    ///
    /// The view bundles a frozen graph snapshot with the engine's shared
    /// structural cache, result cache, metric accumulators and base
    /// configuration — everything a reader needs to answer queries without
    /// ever touching the engine again. Pinning a dynamic engine is cheap
    /// (`O(|V| + |Σ|)` the first time per epoch, one `Arc` bump after);
    /// later [`Engine::apply_delta`] calls copy-on-write only the rows
    /// they dirty, so a pinned view keeps observing its epoch bit for bit.
    /// A borrowed (static) engine clones its row tables per pin — still
    /// `O(|V| + |Σ|)` pointer bumps, never row data.
    pub fn pin(&self) -> EpochView {
        let graph = match &self.store {
            GraphStore::Owned(vg) => vg.freeze(),
            GraphStore::Borrowed(g) => Arc::new(GraphView::new((*g).clone(), 0)),
        };
        debug_assert_eq!(graph.epoch(), self.epoch());
        // The view pins its epoch in the structural cache: while it (or
        // any clone) is alive, budget eviction spares the epoch's entries.
        let pin = Arc::new(crate::cache::EpochPin::new(
            Arc::clone(&self.cache),
            graph.epoch(),
        ));
        EpochView::from_parts(
            graph,
            Arc::clone(&self.cache),
            Arc::clone(&self.results),
            Arc::clone(&self.metrics),
            self.config,
            pin,
        )
    }

    /// Parses and evaluates a query string.
    pub fn evaluate_str(&self, query: &str) -> Result<PairSet, EngineError> {
        let q = Regex::parse(query)?;
        self.evaluate(&q)
    }

    /// Evaluates a multiple-RPQ set, sharing along the way.
    ///
    /// Dispatches to [`Engine::evaluate_set_parallel`] when
    /// [`EngineConfig::threads`] *resolves* to more than one worker
    /// (`0` = all cores, so on a single-core host it stays sequential;
    /// the parallel entry point itself also falls back to sequential for
    /// sets of fewer than two queries).
    pub fn evaluate_set(&self, queries: &[Regex]) -> Result<Vec<PairSet>, EngineError> {
        if rpq_graph::par::effective_threads(self.config.threads) > 1 {
            self.evaluate_set_parallel(queries)
        } else {
            queries.iter().map(|q| self.evaluate(q)).collect()
        }
    }

    /// Parallel batch evaluation: [`Engine::prepare`] runs once to warm
    /// the shared cache, then the (now independent) queries fan out over
    /// up to [`EngineConfig::threads`] scoped workers, all reading and
    /// filling **the same** shared cache (its interior is lock-protected,
    /// so no per-worker snapshot or merge-back is needed — an RTC one
    /// worker computes is immediately a hit for the others). Results are
    /// returned in query order and are identical to the sequential path
    /// (property-tested).
    ///
    /// Metric semantics in this mode: `breakdown().total` advances by the
    /// *wall-clock* time of the whole batch, while the per-stage timers
    /// and the cache/elimination counters are *summed across workers*
    /// (CPU time), so stages can legitimately exceed the total on
    /// multi-core hosts.
    pub fn evaluate_set_parallel(&self, queries: &[Regex]) -> Result<Vec<PairSet>, EngineError> {
        let threads = rpq_graph::par::effective_threads(self.config.threads).min(queries.len());
        if threads <= 1 {
            return queries.iter().map(|q| self.evaluate(q)).collect();
        }
        // Warm every shared closure body once, up front (sequentially) —
        // after this, workers mostly read the cache.
        self.prepare(queries)?;

        let t = Instant::now();
        let graph = self.graph();
        let cache = &self.cache;
        let epoch = self.epoch();
        // Workers keep nested construction/expansion sequential: the batch
        // fan-out already owns the worker threads.
        let config = EngineConfig {
            threads: 1,
            ..self.config
        };
        let (results, workers) = rpq_graph::par::par_map_chunks_with_state(
            threads,
            queries.len(),
            1,
            EngineMetrics::default,
            |w: &mut EngineMetrics, range| {
                eval_one(graph, &config, cache, epoch, w, &queries[range.start])
            },
        );
        let mut m = self.metrics();
        for w in workers {
            m.breakdown.shared_data += w.breakdown.shared_data;
            m.breakdown.pre_join += w.breakdown.pre_join;
            m.stats += w.stats;
            m.maintenance += w.maintenance;
        }
        let out: Result<Vec<PairSet>, EngineError> = results.into_iter().collect();
        m.breakdown.total += t.elapsed();
        out
    }

    /// Warms the shared cache for a query set before evaluating it.
    ///
    /// The paper leaves "optimizing the evaluation order of the batch
    /// units" as future work (Section IV-A); this realizes the simplest
    /// useful form: walk the set's plans, collect every closure body, and
    /// compute each shared structure once up front. Subsequent
    /// [`Engine::evaluate`] calls only hit the cache, so the first query of
    /// a set no longer pays for all the shared work (flattening the
    /// latency profile that Fig. 14 shows for set size 1).
    ///
    /// No-op for [`Strategy::NoSharing`].
    pub fn prepare(&self, queries: &[Regex]) -> Result<PrepareReport, EngineError> {
        self.prepare_with(queries, self.config)
    }

    /// [`Engine::prepare`] under an explicit configuration (the warming
    /// half of [`Engine::evaluate_with`]): the serving layer's `prepare`
    /// command warms the structure kind of the *connection's* resolved
    /// strategy, not the engine default.
    pub fn prepare_with(
        &self,
        queries: &[Regex],
        config: EngineConfig,
    ) -> Result<PrepareReport, EngineError> {
        let kind = match config.strategy {
            Strategy::NoSharing => {
                return Ok(PrepareReport::default());
            }
            Strategy::FullSharing => SharingKind::Full,
            Strategy::RtcSharing => SharingKind::Rtc,
        };
        let plan = crate::explain::explain_set_with_limit(queries, config.dnf_clause_limit)?;
        let mut report = PrepareReport::default();
        let t = Instant::now();
        let graph = self.graph();
        let mut local = EngineMetrics::default();
        for (key, _) in &plan.shared_bodies {
            // Re-parse the canonical key back into the body expression and
            // evaluate the bare closure; the recursion fills the cache for
            // the body and everything nested inside it.
            let body = Regex::parse(key).map_err(EngineError::Parse)?;
            // Stale entries do not count as reusable: the evaluation below
            // refreshes them to the current epoch.
            let already = match kind {
                SharingKind::Rtc => self.cache.contains_fresh_rtc(key),
                SharingKind::Full => self.cache.contains_fresh_full(key),
            };
            if already {
                report.bodies_reused += 1;
                continue;
            }
            // Evaluating R+ populates the cache entry for R (and any
            // nested bodies) without retaining the expanded result.
            let result = eval_one(
                graph,
                &config,
                &self.cache,
                self.epoch(),
                &mut local,
                &Regex::plus(body),
            );
            if let Err(e) = result {
                local.breakdown.total = t.elapsed();
                self.merge_metrics(local);
                return Err(e);
            }
            report.bodies_computed += 1;
        }
        local.breakdown.total = t.elapsed();
        self.merge_metrics(local);
        report.shared_pairs = self.shared_data_pairs_with(config.strategy);
        Ok(report)
    }

    /// End vertices of `query`-paths starting at `source` (selective
    /// evaluation — does not materialize the full relation and does not
    /// touch the shared cache).
    pub fn ends_from(
        &self,
        query: &Regex,
        source: rpq_graph::VertexId,
    ) -> Vec<rpq_graph::VertexId> {
        ProductEvaluator::new(self.graph(), query).ends_from(source)
    }

    /// Start vertices of `query`-paths ending at `target` (selective
    /// backward evaluation via the reversed automaton).
    pub fn starts_to(
        &self,
        query: &Regex,
        target: rpq_graph::VertexId,
    ) -> Vec<rpq_graph::VertexId> {
        ProductEvaluator::new(self.graph(), query).starts_to(target)
    }

    /// Whether a `query`-path from `source` to `target` exists (early-exit
    /// reachability check).
    pub fn check(
        &self,
        query: &Regex,
        source: rpq_graph::VertexId,
        target: rpq_graph::VertexId,
    ) -> bool {
        rpq_eval::witness::find_witness(self.graph(), query, source, target).is_some()
    }

    /// Accumulated stage timings since the last [`Engine::reset_metrics`].
    /// Returned by value (it is `Copy`): the accumulators live behind the
    /// engine's metric lock so concurrent evaluations can update them.
    pub fn breakdown(&self) -> Breakdown {
        self.metrics().breakdown
    }

    /// Accumulated elimination counters (by value — see
    /// [`Engine::breakdown`]).
    pub fn elimination_stats(&self) -> EliminationStats {
        self.metrics().stats
    }

    /// Accumulated dynamic-graph maintenance counters and timings
    /// (deltas applied; incremental vs rebuild refreshes of stale shared
    /// structures). By value — see [`Engine::breakdown`].
    pub fn maintenance_metrics(&self) -> MaintenanceMetrics {
        self.metrics().maintenance
    }

    /// The shared-structure cache (hit/miss counters, sizes).
    pub fn cache(&self) -> &SharedCache {
        &self.cache
    }

    /// The per-(epoch, query) result cache served by pinned views (see
    /// [`EpochView::evaluate`]). The engine's own [`Engine::evaluate`]
    /// path bypasses it — materialized results are only memoized where an
    /// immutable epoch makes them provably reusable.
    pub fn results(&self) -> &ResultCache {
        &self.results
    }

    /// Total pairs held in shared structures — the "shared data size"
    /// metric of Fig. 12 for the active strategy.
    pub fn shared_data_pairs(&self) -> usize {
        self.shared_data_pairs_with(self.config.strategy)
    }

    /// [`Engine::shared_data_pairs`] for an explicit strategy (the
    /// overlay-resolved form).
    pub fn shared_data_pairs_with(&self, strategy: Strategy) -> usize {
        match strategy {
            Strategy::NoSharing => 0,
            Strategy::FullSharing => self.cache.full_shared_pairs(),
            Strategy::RtcSharing => self.cache.rtc_shared_pairs(),
        }
    }

    /// Heap bytes held by cached shared structural tables (RTC closure
    /// rows plus full closures, across both representations) — the memory
    /// side of the dense/sparse representation ablation, also surfaced by
    /// the serving layer's `metrics` and `info` commands.
    pub fn structural_heap_bytes(&self) -> usize {
        self.cache.rtc_heap_bytes() + self.cache.full_heap_bytes()
    }

    /// Clears timing/counter accumulators — including the cache's
    /// hit/miss counters, the result cache's hit/miss tiers and the
    /// maintenance metrics — but keeps cached structures, memoized
    /// results (and the graph epoch). Pinned [`EpochView`]s share these
    /// accumulators by `Arc`, so the reset is visible to every view and
    /// publishing a new view never forks (or double-counts) the counters.
    pub fn reset_metrics(&self) {
        *self.metrics() = EngineMetrics::default();
        self.cache.reset_counters();
        self.results.reset_counters();
    }

    /// Drops all cached shared structures and memoized results (and
    /// resets metrics).
    pub fn clear_cache(&self) {
        self.cache.clear();
        self.results.clear();
        self.reset_metrics();
    }
}

/// Evaluates one query against explicitly-passed engine state. Shared by
/// the sequential path (borrowing the engine's own fields), the parallel
/// batch mode (borrowing per-worker state) and pinned [`EpochView`]
/// readers (passing their frozen graph and epoch), so all run the
/// byte-for-byte same recursion. `epoch` pins which cache entries count
/// as fresh — the engine passes its live epoch, a view its frozen one.
pub(crate) fn eval_one(
    graph: &LabeledMultigraph,
    config: &EngineConfig,
    cache: &SharedCache,
    epoch: u64,
    metrics: &mut EngineMetrics,
    query: &Regex,
) -> Result<PairSet, EngineError> {
    let kind = match config.strategy {
        Strategy::NoSharing => {
            return Ok(ProductEvaluator::new(graph, query).evaluate());
        }
        Strategy::FullSharing => SharingKind::Full,
        Strategy::RtcSharing => SharingKind::Rtc,
    };
    let mut ctx = EvalCtx {
        graph,
        cache,
        epoch,
        kind,
        clause_limit: config.dnf_clause_limit,
        fast_paths: config.enable_fast_paths,
        threads: config.threads,
        maintenance_config: config.maintenance,
        representation: config.representation,
        breakdown: &mut metrics.breakdown,
        stats: &mut metrics.stats,
        maintenance: &mut metrics.maintenance,
    };
    eval_query(&mut ctx, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::fixtures::paper_graph;
    use rpq_graph::VertexId;

    #[test]
    fn all_strategies_agree_on_example1() {
        let g = paper_graph();
        for strategy in Strategy::ALL {
            let e = Engine::with_strategy(&g, strategy);
            let r = e.evaluate_str("d.(b.c)+.c").unwrap();
            assert_eq!(r.len(), 2, "{strategy}");
            assert!(r.contains(VertexId(7), VertexId(5)));
            assert!(r.contains(VertexId(7), VertexId(3)));
        }
    }

    #[test]
    fn example7_query_sequence_shares_rtcs() {
        // The three queries of Example 7, evaluated as one set.
        let g = paper_graph();
        let e = Engine::new(&g);
        let queries = [
            Regex::parse("a").unwrap(),
            Regex::parse("a.(a.b)+.b").unwrap(),
            Regex::parse("(a.b)*.b+.(a.b+.c)+").unwrap(),
        ];
        let results = e.evaluate_set(&queries).unwrap();
        assert_eq!(results.len(), 3);
        // RTCs cached: a·b (reused by (a·b)*), b (reused inside a·b+·c),
        // and a·b+·c — at least 3 distinct closure bodies.
        assert!(
            e.cache().rtc_count() >= 3,
            "cached {}",
            e.cache().rtc_count()
        );
        // The reuse described in Example 7 means at least two cache hits.
        assert!(e.cache().hits() >= 2, "hits {}", e.cache().hits());
    }

    #[test]
    fn evaluate_set_amortizes_shared_data() {
        let g = paper_graph();
        let e = Engine::new(&g);
        let q = Regex::parse("d.(b.c)+.c").unwrap();
        e.evaluate(&q).unwrap();
        let misses_after_first = e.cache().misses();
        e.evaluate(&q).unwrap();
        // Second evaluation hits the cache; no new misses.
        assert_eq!(e.cache().misses(), misses_after_first);
        assert!(e.cache().hits() >= 1);
    }

    #[test]
    fn breakdown_accumulates() {
        let g = paper_graph();
        let e = Engine::new(&g);
        e.evaluate_str("d.(b.c)+.c").unwrap();
        let b = e.breakdown();
        assert!(b.total > std::time::Duration::ZERO);
        assert!(b.total >= b.shared_data + b.pre_join);
        e.reset_metrics();
        assert_eq!(e.breakdown().total, std::time::Duration::ZERO);
        // Cache survives metric reset.
        assert_eq!(e.cache().rtc_count(), 1);
        e.clear_cache();
        assert_eq!(e.cache().rtc_count(), 0);
    }

    #[test]
    fn shared_data_pairs_by_strategy() {
        let g = paper_graph();
        let no = Engine::with_strategy(&g, Strategy::NoSharing);
        no.evaluate_str("d.(b.c)+.c").unwrap();
        assert_eq!(no.shared_data_pairs(), 0);

        let rtc = Engine::with_strategy(&g, Strategy::RtcSharing);
        rtc.evaluate_str("d.(b.c)+.c").unwrap();
        assert_eq!(rtc.shared_data_pairs(), 3); // TC(Ḡ_{b·c}) has 3 pairs

        let full = Engine::with_strategy(&g, Strategy::FullSharing);
        full.evaluate_str("d.(b.c)+.c").unwrap();
        assert_eq!(full.shared_data_pairs(), 10); // |（b·c)+_G| = 10
    }

    #[test]
    fn prepare_warms_the_cache() {
        let g = paper_graph();
        let queries = [
            Regex::parse("a.(b.c)+.d").unwrap(),
            Regex::parse("d.(b.c)*.c").unwrap(),
            Regex::parse("c.(a.b)+").unwrap(),
        ];
        let e = Engine::new(&g);
        let report = e.prepare(&queries).unwrap();
        assert_eq!(report.bodies_computed, 2); // b·c and a·b
        assert_eq!(report.bodies_reused, 0);
        assert_eq!(e.cache().rtc_count(), 2);
        // Evaluation now never misses.
        let misses = e.cache().misses();
        let results = e.evaluate_set(&queries).unwrap();
        assert_eq!(e.cache().misses(), misses);
        // Results agree with an unprepared engine.
        let plain = Engine::new(&g).evaluate_set(&queries).unwrap();
        assert_eq!(results, plain);
        // Preparing again reuses everything.
        let again = e.prepare(&queries).unwrap();
        assert_eq!(again.bodies_computed, 0);
        assert_eq!(again.bodies_reused, 2);
    }

    #[test]
    fn selective_apis_match_full_evaluation() {
        let g = paper_graph();
        let e = Engine::new(&g);
        let q = Regex::parse("d.(b.c)+.c").unwrap();
        let full = e.evaluate(&q).unwrap();
        // ends_from / starts_to / check agree with the materialized result.
        let ends: Vec<u32> = e
            .ends_from(&q, VertexId(7))
            .iter()
            .map(|v| v.raw())
            .collect();
        assert_eq!(ends, vec![3, 5]);
        let starts: Vec<u32> = e
            .starts_to(&q, VertexId(5))
            .iter()
            .map(|v| v.raw())
            .collect();
        assert_eq!(starts, vec![7]);
        assert!(e.check(&q, VertexId(7), VertexId(3)));
        assert!(!e.check(&q, VertexId(7), VertexId(4)));
        for (s, d) in full.iter() {
            assert!(e.check(&q, s, d));
        }
    }

    #[test]
    fn reset_metrics_clears_cache_counters_but_keeps_structures() {
        let g = paper_graph();
        let e = Engine::new(&g);
        e.evaluate_str("d.(b.c)+.c").unwrap();
        e.evaluate_str("d.(b.c)+.c").unwrap();
        assert!(e.cache().hits() > 0);
        assert!(e.cache().misses() > 0);
        e.reset_metrics();
        // Regression: the cache's hit/miss counters are part of the
        // "timing/counter accumulators" the method documents clearing.
        assert_eq!(e.cache().hits(), 0);
        assert_eq!(e.cache().misses(), 0);
        assert_eq!(e.cache().rtc_count(), 1); // structures preserved
                                              // Re-evaluation hits the preserved structure: no new misses.
        e.evaluate_str("d.(b.c)+.c").unwrap();
        assert_eq!(e.cache().misses(), 0);
        assert!(e.cache().hits() >= 1);
    }

    #[test]
    fn parallel_batch_matches_sequential_for_all_strategies() {
        let g = paper_graph();
        let queries: Vec<Regex> = ["d.(b.c)+.c", "a.(b.c)*", "(a.b)+|(b.c)+", "c.(a.b)+.b"]
            .iter()
            .map(|q| Regex::parse(q).unwrap())
            .collect();
        for strategy in Strategy::ALL {
            let seq = Engine::with_strategy(&g, strategy)
                .evaluate_set(&queries)
                .unwrap();
            for threads in [0usize, 2, 8] {
                let e = Engine::with_config(
                    &g,
                    EngineConfig {
                        strategy,
                        threads,
                        ..EngineConfig::default()
                    },
                );
                let par = e.evaluate_set(&queries).unwrap();
                assert_eq!(par, seq, "{strategy} at {threads} threads");
                assert!(e.breakdown().total > std::time::Duration::ZERO);
            }
        }
    }

    #[test]
    fn explicit_parallel_entry_point_handles_small_sets() {
        let g = paper_graph();
        let one = [Regex::parse("d.(b.c)+.c").unwrap()];
        let e = Engine::new(&g);
        // A single query (or an empty set) falls back to the sequential
        // path regardless of the configured thread count.
        assert_eq!(e.evaluate_set_parallel(&one).unwrap().len(), 1);
        assert!(e.evaluate_set_parallel(&[]).unwrap().is_empty());
    }

    #[test]
    fn parallel_batch_warms_and_reuses_the_cache() {
        let g = paper_graph();
        let queries = [
            Regex::parse("d.(b.c)+.c").unwrap(),
            Regex::parse("a.(b.c)+").unwrap(),
            Regex::parse("(b.c)*").unwrap(),
        ];
        let e = Engine::with_config(
            &g,
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
        );
        let results = e.evaluate_set_parallel(&queries).unwrap();
        assert_eq!(results.len(), 3);
        // One shared body (b·c) computed once by prepare; the workers only
        // ever hit the warmed cache.
        assert_eq!(e.cache().rtc_count(), 1);
        assert!(e.cache().hits() >= 3, "hits {}", e.cache().hits());
    }

    #[test]
    fn parallel_batch_respects_configured_clause_limit() {
        // Regression: prepare() used to hard-code DEFAULT_CLAUSE_LIMIT, so
        // an engine configured with a *larger* budget failed in parallel
        // mode on queries the sequential path accepted.
        let g = paper_graph();
        let big = ["(a|b)"; 13].join("."); // 2^13 = 8192 clauses > 4096
        let queries = [Regex::parse(&big).unwrap(), Regex::parse("(b.c)+").unwrap()];
        let config = EngineConfig {
            dnf_clause_limit: 10_000,
            threads: 2,
            ..EngineConfig::default()
        };
        let par = Engine::with_config(&g, config)
            .evaluate_set(&queries)
            .unwrap();
        let seq = Engine::with_config(
            &g,
            EngineConfig {
                threads: 1,
                ..config
            },
        )
        .evaluate_set(&queries)
        .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_batch_surfaces_dnf_errors() {
        let g = paper_graph();
        let e = Engine::with_config(
            &g,
            EngineConfig {
                dnf_clause_limit: 2,
                threads: 2,
                ..EngineConfig::default()
            },
        );
        let queries = [
            Regex::parse("(b.c)+").unwrap(),
            Regex::parse("(a|b).(a|b)").unwrap(), // 4 clauses > 2
        ];
        assert!(matches!(e.evaluate_set(&queries), Err(EngineError::Dnf(_))));
    }

    #[test]
    fn prepare_is_noop_for_nosharing() {
        let g = paper_graph();
        let e = Engine::with_strategy(&g, Strategy::NoSharing);
        let report = e.prepare(&[Regex::parse("(b.c)+").unwrap()]).unwrap();
        assert_eq!(report, PrepareReport::default());
    }

    #[test]
    fn parse_errors_surface() {
        let g = paper_graph();
        let e = Engine::new(&g);
        assert!(matches!(e.evaluate_str("(a"), Err(EngineError::Parse(_))));
    }

    #[test]
    fn dnf_limit_respected() {
        let g = paper_graph();
        let e = Engine::with_config(
            &g,
            EngineConfig {
                strategy: Strategy::RtcSharing,
                dnf_clause_limit: 2,
                ..EngineConfig::default()
            },
        );
        // (a|b).(a|b) needs 4 clauses > 2.
        let err = e.evaluate_str("(a|b).(a|b)").unwrap_err();
        assert!(matches!(err, EngineError::Dnf(_)));
    }

    #[test]
    fn elimination_stats_populated_for_rtc() {
        let g = paper_graph();
        // Disable the Theorem-2 fast path so the bare closure runs through
        // the general Algorithm 2 join and populates the counters.
        let e = Engine::with_config(
            &g,
            EngineConfig {
                enable_fast_paths: false,
                ..EngineConfig::default()
            },
        );
        e.evaluate_str("(b.c)+").unwrap();
        let s = e.elimination_stats();
        // Identity Pre over 10 vertices, 5 outside V_{b·c}.
        assert_eq!(s.useless1_skipped, 5);
        assert!(s.useless2_unchecked_inserts > 0);
    }

    #[test]
    fn apply_delta_refreshes_stale_rtc_incrementally() {
        let g = paper_graph();
        let mut e = Engine::new(&g);
        let q = Regex::parse("d.(b.c)+.c").unwrap();
        e.evaluate(&q).unwrap();
        assert_eq!(e.epoch(), 0);

        // Add a b/c two-cycle hanging off v6: (b·c)+ gains pairs.
        let mut delta = rpq_graph::GraphDelta::new();
        delta.insert(6, "b", 8).insert(8, "c", 6);
        let summary = e.apply_delta(&delta);
        assert_eq!(summary.epoch, 1);
        assert_eq!(e.epoch(), 1);

        let after = e.evaluate(&q).unwrap();
        // Oracle: a fresh engine over an equivalently mutated graph.
        let mut b = rpq_graph::GraphBuilder::new();
        b.ensure_vertices(g.vertex_count());
        for (s, l, d) in g.all_edges() {
            b.add_edge(s.raw(), g.labels().name(l), d.raw());
        }
        b.add_edge(6, "b", 8).add_edge(8, "c", 6);
        let mutated = b.build();
        let expect = Engine::new(&mutated).evaluate(&q).unwrap();
        assert_eq!(after, expect);
        // The stale entry was refreshed, not recomputed blind.
        let m = e.maintenance_metrics();
        assert_eq!(m.deltas_applied, 1);
        assert!(
            m.incremental_refreshes + m.unchanged_refreshes + m.rebuild_refreshes >= 1,
            "refresh not recorded: {m:?}"
        );
        assert!(e.cache().stale_hits() >= 1);
    }

    #[test]
    fn apply_delta_unrelated_label_is_an_unchanged_refresh() {
        let g = paper_graph();
        let mut e = Engine::new(&g);
        e.evaluate_str("(b.c)+").unwrap();
        let mut delta = rpq_graph::GraphDelta::new();
        delta.insert(0, "zzz", 9); // never touches b/c
        e.apply_delta(&delta);
        let before_pairs = e.shared_data_pairs();
        e.evaluate_str("(b.c)+").unwrap();
        assert_eq!(e.maintenance_metrics().unchanged_refreshes, 1);
        assert_eq!(e.maintenance_metrics().incremental_refreshes, 0);
        assert_eq!(e.shared_data_pairs(), before_pairs);
    }

    #[test]
    fn dynamic_engine_owns_its_graph() {
        let mut e = Engine::new_dynamic(paper_graph());
        let q = Regex::parse("(b.c)+").unwrap();
        let before = e.evaluate(&q).unwrap();
        assert_eq!(before.len(), 10);
        let mut delta = rpq_graph::GraphDelta::new();
        delta.delete(2, "b", 5);
        let s = e.apply_delta(&delta);
        assert_eq!((s.edges_deleted, s.edges_inserted), (1, 0));
        let after = e.evaluate(&q).unwrap();
        assert!(after.len() < before.len());
        // Delete-then-reinsert restores the original result bitwise.
        let mut delta = rpq_graph::GraphDelta::new();
        delta.insert(2, "b", 5);
        e.apply_delta(&delta);
        assert_eq!(e.evaluate(&q).unwrap(), before);
        assert_eq!(e.epoch(), 2);
    }

    #[test]
    fn apply_delta_agrees_with_rebuild_for_all_strategies() {
        let g = paper_graph();
        let queries = [
            Regex::parse("d.(b.c)+.c").unwrap(),
            Regex::parse("(a.b)+|(b.c)+").unwrap(),
            Regex::parse("a.(b.c)*").unwrap(),
        ];
        let mut delta = rpq_graph::GraphDelta::new();
        delta
            .insert(6, "b", 8)
            .insert(8, "c", 2)
            .delete(3, "c", 5)
            .insert(9, "d", 7);
        // Oracle graph with the same final edge set.
        let mut vg = rpq_graph::VersionedGraph::new(g.clone());
        vg.apply(&delta);
        let mutated = vg.into_graph();
        for strategy in Strategy::ALL {
            for threads in [1usize, 2] {
                let config = EngineConfig {
                    strategy,
                    threads,
                    ..EngineConfig::default()
                };
                let mut e = Engine::with_config(&g, config);
                e.evaluate_set(&queries).unwrap(); // warm at epoch 0
                e.apply_delta(&delta);
                let dynamic = e.evaluate_set(&queries).unwrap();
                let fresh = Engine::with_config(&mutated, config)
                    .evaluate_set(&queries)
                    .unwrap();
                assert_eq!(dynamic, fresh, "{strategy} at {threads} threads");
            }
        }
    }

    #[test]
    fn fullsharing_stale_entries_rebuild() {
        let g = paper_graph();
        let mut e = Engine::with_strategy(&g, Strategy::FullSharing);
        e.evaluate_str("(b.c)+").unwrap();
        let mut delta = rpq_graph::GraphDelta::new();
        delta.insert(6, "b", 8).insert(8, "c", 6);
        e.apply_delta(&delta);
        e.evaluate_str("(b.c)+").unwrap();
        let m = e.maintenance_metrics();
        assert_eq!(m.rebuild_refreshes, 1);
        assert_eq!(m.incremental_refreshes, 0);
    }

    #[test]
    fn fast_path_matches_general_path() {
        let g = paper_graph();
        for q in ["(b.c)+", "(b.c)*", "(b|c)+", "b+", "c*"] {
            let fast = Engine::new(&g).evaluate_str(q).unwrap();
            let general = Engine::with_config(
                &g,
                EngineConfig {
                    enable_fast_paths: false,
                    ..EngineConfig::default()
                },
            )
            .evaluate_str(q)
            .unwrap();
            assert_eq!(fast, general, "fast path diverged on {q}");
        }
    }

    /// The serving contract of this refactor: N threads evaluate through
    /// one `&Engine` simultaneously (no `&mut`, no external lock) and
    /// every result matches a single-threaded oracle, while the shared
    /// cache ends up with exactly one entry per closure body.
    #[test]
    fn concurrent_evaluation_through_a_shared_reference() {
        let g = paper_graph();
        let queries = [
            "d.(b.c)+.c",
            "a.(b.c)*",
            "(a.b)+|(b.c)+",
            "c.(a.b)+.b",
            "(a.b)*.b+",
            "b.c|d",
        ];
        let oracle: Vec<PairSet> = queries
            .iter()
            .map(|q| Engine::new(&g).evaluate_str(q).unwrap())
            .collect();
        let engine = Engine::new(&g);
        for round in 0..3 {
            std::thread::scope(|s| {
                let handles: Vec<_> = queries
                    .iter()
                    .map(|q| {
                        let engine = &engine;
                        s.spawn(move || engine.evaluate_str(q).unwrap())
                    })
                    .collect();
                for (h, expect) in handles.into_iter().zip(&oracle) {
                    assert_eq!(&h.join().unwrap(), expect, "round {round}");
                }
            });
        }
        // One entry per distinct closure body (b·c and a·b, plus the
        // nested bare b), no matter how many threads raced to fill it.
        assert_eq!(engine.cache().rtc_count(), 3);
        // Rounds 2 and 3 ran entirely warm.
        assert!(engine.cache().hits() >= 2 * queries.len() as u64);
    }

    /// Metric accumulators stay consistent when updated from many threads:
    /// totals add up across concurrent evaluations and reset under `&self`.
    #[test]
    fn metrics_accumulate_under_concurrent_evaluation() {
        let g = paper_graph();
        let engine = Engine::new(&g);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let engine = &engine;
                s.spawn(move || {
                    for _ in 0..8 {
                        engine.evaluate_str("d.(b.c)+.c").unwrap();
                    }
                });
            }
        });
        let b = engine.breakdown();
        assert!(b.total > std::time::Duration::ZERO);
        assert!(b.total >= b.shared_data + b.pre_join);
        // 32 evaluations, one lookup each; at worst each thread misses
        // once (racing on the cold key) before the insert lands.
        assert_eq!(engine.cache().hits() + engine.cache().misses(), 32);
        assert!(engine.cache().misses() <= 4, "{}", engine.cache().misses());
        engine.reset_metrics();
        assert_eq!(engine.breakdown().total, std::time::Duration::ZERO);
        assert_eq!(engine.cache().hits(), 0);
        assert_eq!(engine.cache().rtc_count(), 1);
    }
}
